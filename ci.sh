#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run from the repo root;
# everything must pass before a change lands (see CONTRIBUTING.md).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
