#!/usr/bin/env bash
# Local CI gate: build, test, lint, format. Run from the repo root;
# everything must pass before a change lands (see CONTRIBUTING.md).
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo build --release -p mpx-bench
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Fault-matrix smoke: each canned degradation scenario must complete with
# intact data (mpx exits nonzero otherwise) and must actually exercise the
# recovery loop (nonzero retry stats).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for scenario in degrade flap kill; do
  ./target/release/mpx fault-plan --topo beluga --paths 3_GPUs --size 64M \
    --scenario "$scenario" > "$tmp/$scenario.json"
  out="$(./target/release/mpx resilient --topo beluga --paths 3_GPUs --size 64M \
    --faults "$tmp/$scenario.json")"
  echo "$out"
  case "$out" in
    *"retries=0"*) echo "fault-matrix: $scenario did not trigger recovery" >&2; exit 1 ;;
    *"faults_fired=0"*) echo "fault-matrix: $scenario fault never fired" >&2; exit 1 ;;
  esac
done
# The same canned fault plans once more through the partitioned parallel
# engine: `mpx partition` replays each plan on a multi-component cluster
# scenario serial AND parallel and exits nonzero unless the two runs are
# bit-identical (and the faults actually fired).
for scenario in degrade flap kill; do
  out="$(./target/release/mpx partition --faults "$tmp/$scenario.json")"
  echo "$out"
  case "$out" in
    *"faults=0"*) echo "fault-matrix: $scenario never fired in the parallel engine" >&2; exit 1 ;;
    *"bit-identical"*) ;;
    *) echo "fault-matrix: $scenario parallel run not verified" >&2; exit 1 ;;
  esac
done
echo "fault-matrix smoke: ok"

# Trace-export smoke: `mpx trace` must exit cleanly, its trace.json must
# parse as JSON, and every instrumented phase must contribute at least
# one event (spans/instants carry the phase label in their `cat` field).
./target/release/mpx trace --topo beluga --size 64M \
  --trace-out "$tmp/trace.json" --metrics-out "$tmp/metrics.json"
python3 -c "import json, sys; json.load(open(sys.argv[1])); json.load(open(sys.argv[2]))" \
  "$tmp/trace.json" "$tmp/metrics.json"
for phase in plan probe transfer chunk-leg recovery collective fault tune graph.capture graph.replay health hedge broker partition; do
  if ! grep -q "\"cat\": \"$phase\"" "$tmp/trace.json"; then
    echo "trace smoke: no $phase events in trace.json" >&2; exit 1
  fi
done
echo "trace-export smoke: ok"

# Planning-throughput smoke: a short bench_transport run that fails on a
# zero cache-hit rate, on falling far below the committed after numbers
# in results/BENCH_transport.json, or on dipping under the committed
# mutex-baseline throughput. Thresholds are generous — this catches a
# concurrency regression, not run-to-run noise. The same quick run gates
# the compiled-graph replay path: zero replays or a replay slowdown
# versus the interpreted pipeline fails the run.
./target/release/bench_transport --quick
echo "bench_transport smoke: ok"

# Parallel-engine smoke: bench_sim --quick proves a cluster scenario with
# a fault storm bit-identical between serial and 8-worker parallel
# execution, then requires the parallel engine to at least match the
# serial engine's events/sec on the 100k-flow cell. Never rewrites
# results/BENCH_sim.json (full runs do that).
./target/release/bench_sim --quick
echo "bench_sim smoke: ok"

# Chaos-soak smoke: two fixed seeds of randomized degrade/flap/kill over
# concurrent resilient, plain/replayed, and hedged PUTs. Exits nonzero on
# data corruption, unbounded recovery (virtual-time ceiling), an
# unbalanced breaker ledger, a graph replay served while the pair's
# breaker was open, or a degraded hedged-PUT p99 above 2x the healthy
# p99. Never rewrites results/BENCH_chaos.json (full runs do that).
# With MPX_DUMP_DIR set, the soak's anomaly engine also writes each
# black-box dump to disk; the storm must leave at least one breaker dump
# whose cause carries the breaker's reason, and every dump must render
# through `mpx report`.
MPX_DUMP_DIR="$tmp/dumps" ./target/release/chaos_soak --quick
dump_count="$(find "$tmp/dumps" -name 'dump-*.json' | wc -l)"
if [ "$dump_count" -eq 0 ]; then
  echo "chaos-soak smoke: storm produced no black-box dump" >&2; exit 1
fi
if ! grep -l '"trigger": "breaker.trip"' "$tmp/dumps"/seed-*/dump-*.json \
    | xargs grep -q '"cause": "why='; then
  echo "chaos-soak smoke: no breaker dump carries its trigger cause" >&2; exit 1
fi
for dump in "$tmp/dumps"/seed-*/dump-*.json; do
  ./target/release/mpx report --dump "$dump" > /dev/null
done
echo "chaos-soak smoke: ok ($dump_count black-box dumps rendered)"

# OpenMetrics smoke: the exposition must carry histogram quantiles and
# pass a line-format check (TYPE lines, sane sample lines, EOF last).
./target/release/mpx metrics --topo beluga --size 8M --openmetrics > "$tmp/metrics.om"
python3 - "$tmp/metrics.om" <<'PY'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "empty exposition"
assert lines[-1] == "# EOF", "exposition must end with # EOF"
sample = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$')
types = 0
for ln in lines[:-1]:
    if ln.startswith("# TYPE "):
        types += 1
        continue
    assert sample.match(ln), f"bad OpenMetrics line: {ln!r}"
assert types > 0, "no # TYPE lines"
text = "\n".join(lines)
assert '_bucket{le="' in text, "no histogram buckets"
assert '+Inf' in text, "no +Inf bucket"
PY
echo "openmetrics smoke: ok"

# Broker-saturation smoke: a short bench_broker run driving the multi-tenant
# admission broker at 2x fabric capacity. Exits nonzero if overload sheds
# nothing (admission control inert), if the admitted p99 sojourn exceeds 2x
# the unloaded p99 (queues growing without bound), if per-tenant goodput
# drifts off the configured 3:2:1 weights, or if the accounting invariant
# (submitted = admitted + shed, admitted all terminal) breaks. Never
# rewrites results/BENCH_broker.json (full runs do that).
./target/release/bench_broker --quick
echo "bench_broker smoke: ok"
