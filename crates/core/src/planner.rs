//! Algorithm 1: computing the optimal path configuration for one
//! transfer, with the configuration cache (paper Section 4).
//!
//! Given `(src, dst, message size, candidate paths)` the planner:
//!
//! 1. resolves each candidate path's links and Hockney parameters
//!    (Algorithm 1 lines 7–15, via `mpx-topo`);
//! 2. derives each path's affine coefficients `Ωᵢ, Δᵢ` — pipelined
//!    staged paths through the φ-linearization (Eq. 22), direct paths
//!    exactly — accumulating the sequential-initiation latency of earlier
//!    paths into `Δᵢ` (line 18);
//! 3. solves for the optimal shares `θᵢ` (Eq. 24, lines 22–26);
//! 4. converts shares to aligned byte counts, giving the remainder to the
//!    direct path (lines 27–29), and picks per-path chunk counts
//!    (Eqs. 14/15 rounded);
//! 5. caches the result per `(src, dst, selection, n)`.

use crate::optimizer::{optimal_shares, OmegaDelta};
use crate::pipeline::{
    chunk_count, omega_delta_pipelined, omega_delta_unpipelined, time_pipelined, topology_constant,
};
use mpx_topo::params::{extract_all, PathParams};
use mpx_topo::path::{enumerate_paths_auto, PathKind, PathSelection, TransferPath};
use mpx_topo::units::{Bandwidth, Secs};
use mpx_topo::{DeviceId, Topology, TopologyError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Whether staged paths are modeled (and executed) with chunk pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineMode {
    /// One monolithic copy per leg (Section 3.3's model).
    Unpipelined,
    /// Chunked, pipelined staging (Section 3.4's model). The default.
    Pipelined,
}

/// Planner tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Pipelining mode for staged paths.
    pub mode: PipelineMode,
    /// Upper bound on chunks per path (staging-ring depth of the pipeline
    /// engine).
    pub max_chunks: u32,
    /// Do not split below this chunk size; bounds per-chunk overhead for
    /// small messages.
    pub min_chunk_bytes: usize,
    /// Share byte counts are rounded down to this alignment (element
    /// size); the remainder goes to the direct path.
    pub alignment: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            mode: PipelineMode::Pipelined,
            max_chunks: 32,
            min_chunk_bytes: 256 << 10,
            alignment: 4,
        }
    }
}

/// One path's slice of the plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedPath {
    /// Index within the candidate set (0 = direct).
    pub index: usize,
    /// Path class.
    pub kind: PathKind,
    /// Hockney parameters used (after the sequential-initiation
    /// correction).
    pub params: PathParams,
    /// Optimal fraction `θᵢ` from Eq. (24).
    pub theta: f64,
    /// Bytes assigned (aligned; direct path absorbs the remainder).
    pub share_bytes: usize,
    /// Chunks to pipeline this share through (1 for direct or excluded
    /// paths).
    pub chunks: u32,
    /// The model's predicted completion time for this path's share.
    pub predicted_time: Secs,
}

/// A complete transfer configuration: Algorithm 1's `configs[], shares[]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Message size in bytes.
    pub n: usize,
    /// Per-path assignments, direct path first.
    pub paths: Vec<PlannedPath>,
    /// Predicted end-to-end time: `max_i` of per-path predictions.
    pub predicted_time: Secs,
    /// Predicted aggregate bandwidth `n / T`.
    pub predicted_bandwidth: Bandwidth,
}

impl TransferPlan {
    /// Paths that actually carry bytes.
    pub fn active_paths(&self) -> impl Iterator<Item = &PlannedPath> {
        self.paths.iter().filter(|p| p.share_bytes > 0)
    }

    /// Number of paths carrying bytes.
    pub fn active_path_count(&self) -> usize {
        self.active_paths().count()
    }

    /// Predicted aggregate bandwidth when `window` messages of this size
    /// are in flight at once (the OMB windowed-BW protocol): the fixed
    /// costs `Δ` are paid once per window instead of once per message, so
    /// bandwidth approaches the asymptote as the window grows —
    /// Observation 2's mechanism, model-side.
    ///
    /// With all `window` messages sharing the same path set fairly, each
    /// path's per-byte time scales with the total bytes while its fixed
    /// cost does not: `T(w) ≈ w·(T − Δ_max) + Δ_max` where `Δ_max` is the
    /// slowest path's fixed cost at the equalized optimum.
    pub fn predicted_windowed_bandwidth(&self, window: usize) -> Bandwidth {
        let w = window.max(1) as f64;
        // The makespan path's fixed-cost component: T_i = θᵢnΩᵢ + Δᵢ at
        // the optimum; take the Δ of the path achieving the makespan.
        let delta_max = self
            .paths
            .iter()
            .filter(|p| p.share_bytes > 0)
            .max_by(|a, b| {
                a.predicted_time
                    .partial_cmp(&b.predicted_time)
                    .expect("finite")
            })
            .map(|p| p.params.delta_unpipelined())
            .unwrap_or(0.0);
        let streaming = (self.predicted_time - delta_max).max(0.0);
        (w * self.n as f64) / (w * streaming + delta_max)
    }

    /// Renders the plan as an aligned text table (used by the CLI and
    /// examples).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan for {} bytes ({} active path(s)):",
            self.n,
            self.active_path_count()
        );
        for p in &self.paths {
            let _ = writeln!(
                out,
                "  {:<22} theta={:<8.4} bytes={:<12} chunks={:<3} t={:.1}us",
                p.kind.to_string(),
                p.theta,
                p.share_bytes,
                p.chunks,
                p.predicted_time * 1e6
            );
        }
        let _ = writeln!(
            out,
            "  predicted: {:.2} GB/s in {:.1} us",
            self.predicted_bandwidth / 1e9,
            self.predicted_time * 1e6
        );
        out
    }
}

/// Cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans served from cache.
    pub hits: u64,
    /// Plans computed.
    pub misses: u64,
}

type CacheKey = (DeviceId, DeviceId, usize, bool, usize);

/// Algorithm 1 with its configuration cache.
pub struct Planner {
    topo: Arc<Topology>,
    cfg: PlannerConfig,
    cache: Mutex<(HashMap<CacheKey, Arc<TransferPlan>>, PlannerStats)>,
}

impl Planner {
    /// Creates a planner over `topo` with default tunables.
    pub fn new(topo: Arc<Topology>) -> Planner {
        Planner::with_config(topo, PlannerConfig::default())
    }

    /// Creates a planner with explicit tunables.
    pub fn with_config(topo: Arc<Topology>, cfg: PlannerConfig) -> Planner {
        Planner {
            topo,
            cfg,
            cache: Mutex::new((HashMap::new(), PlannerStats::default())),
        }
    }

    /// The topology this planner describes.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The active tunables.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Cache counters.
    pub fn stats(&self) -> PlannerStats {
        self.cache.lock().1
    }

    /// `populate_path_config` (Algorithm 1): the optimal configuration for
    /// an `n`-byte transfer `src → dst` over the paths selected by `sel`.
    pub fn plan(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        sel: PathSelection,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        let key = (src, dst, sel.max_gpu_staged, sel.host_staged, n);
        if let Some(hit) = {
            let mut c = self.cache.lock();
            let hit = c.0.get(&key).cloned();
            if hit.is_some() {
                c.1.hits += 1;
            }
            hit
        } {
            return Ok(hit);
        }
        let paths = enumerate_paths_auto(&self.topo, src, dst, sel)?;
        let plan = Arc::new(self.compute(n, &paths)?);
        let mut c = self.cache.lock();
        c.1.misses += 1;
        c.0.insert(key, plan.clone());
        Ok(plan)
    }

    /// Re-plan entry point for degraded fabrics: like [`Planner::plan`]
    /// but with the candidate paths at the given indices *excluded* —
    /// the caller has observed them fail or time out. Returns the plan
    /// together with the surviving candidate set (the path set
    /// `execute_plan` must be driven with). Never cached: exclusion sets
    /// are transient observations, not topology facts.
    ///
    /// Degrades gracefully down to a single surviving path; errors with
    /// [`TopologyError::NoUsablePath`] only when *every* candidate is
    /// excluded.
    pub fn plan_excluding(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        sel: PathSelection,
        excluded: &[usize],
    ) -> Result<(TransferPlan, Vec<TransferPath>), TopologyError> {
        let all = enumerate_paths_auto(&self.topo, src, dst, sel)?;
        let survivors: Vec<TransferPath> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !excluded.contains(i))
            .map(|(_, p)| p)
            .collect();
        if survivors.is_empty() {
            return Err(TopologyError::NoUsablePath(src, dst));
        }
        let plan = self.compute(n, &survivors)?;
        Ok((plan, survivors))
    }

    /// The uncached Algorithm-1 body, usable with an externally-supplied
    /// candidate set; parameters are extracted from the topology
    /// description.
    pub fn compute(&self, n: usize, paths: &[TransferPath]) -> Result<TransferPlan, TopologyError> {
        let params = extract_all(&self.topo, paths)?;
        Ok(self.compute_with_params(n, paths, params))
    }

    /// The uncached Algorithm-1 body with externally supplied per-path
    /// Hockney parameters — the hook for runtime-calibrated ("probed")
    /// parameters, which is how the paper's Dynamic Path Distribution
    /// obtains them.
    pub fn compute_with_params(
        &self,
        n: usize,
        paths: &[TransferPath],
        mut params: Vec<PathParams>,
    ) -> TransferPlan {
        assert!(n > 0, "cannot plan a zero-byte transfer");
        assert_eq!(paths.len(), params.len(), "one parameter set per path");

        // Line 18: sequential initiation — path i's first chunk cannot
        // launch before the launches of paths 0..i have been issued.
        let launch = self.topo.overheads.copy_launch;
        for (i, p) in params.iter_mut().enumerate() {
            p.first.alpha += launch * i as f64;
        }

        // Lines 16–21: per-path affine coefficients.
        let nf = n as f64;
        let beta_sum: f64 = params.iter().map(|p| p.bottleneck_bandwidth()).sum();
        let ods: Vec<OmegaDelta> = params
            .iter()
            .map(|p| {
                if !p.is_staged() || self.cfg.mode == PipelineMode::Unpipelined {
                    omega_delta_unpipelined(p)
                } else {
                    // Reference share for φ: bandwidth-proportional.
                    let theta_ref = (p.bottleneck_bandwidth() / beta_sum).max(1e-6);
                    let phi = topology_constant(p, theta_ref, nf);
                    omega_delta_pipelined(p, phi)
                }
            })
            .collect();

        // Lines 22–30 with a quantization-aware exclusion loop: the
        // optimizer's affine law assumes continuous chunk counts, but the
        // executed config rounds `k` and enforces the min-chunk-size
        // floor. A path whose share is so small that it ends up with one
        // unpipelinable chunk can overshoot the equalized time and
        // straggle the whole transfer; such paths are dropped (by
        // inflating their fixed cost — the optimizer's natural exclusion
        // mechanism) and the shares re-solved.
        let mut ods = ods;
        let mut best: Option<TransferPlan> = None;
        for _round in 0..paths.len() + 1 {
            // Lines 22–26: optimal shares.
            let sol = optimal_shares(&ods, nf);

            // Lines 27–29: shares → aligned bytes, remainder to the
            // first path (the direct one when it exists).
            let align = self.cfg.alignment.max(1);
            let mut bytes: Vec<usize> = sol
                .shares
                .iter()
                .map(|&t| ((t * nf) as usize / align) * align)
                .collect();
            let assigned: usize = bytes.iter().sum();
            bytes[0] += n - assigned;

            // Chunk counts and exact (quantized) per-path predictions.
            let mut planned = Vec::with_capacity(paths.len());
            let mut worst: Secs = 0.0;
            for (i, ((path, p), share)) in paths.iter().zip(&params).zip(&bytes).enumerate() {
                let theta = *share as f64 / nf;
                let chunks = if *share == 0
                    || !p.is_staged()
                    || self.cfg.mode == PipelineMode::Unpipelined
                {
                    1
                } else {
                    let by_overhead = chunk_count(p, theta, nf, self.cfg.max_chunks);
                    let by_size = (*share / self.cfg.min_chunk_bytes.max(1)).max(1) as u32;
                    by_overhead.min(by_size)
                };
                let predicted_time = if *share == 0 {
                    0.0
                } else if p.is_staged() && self.cfg.mode == PipelineMode::Pipelined {
                    time_pipelined(p, theta, nf, chunks)
                } else {
                    p.time_unpipelined(*share as f64)
                };
                worst = worst.max(predicted_time);
                planned.push(PlannedPath {
                    index: i,
                    kind: path.kind,
                    params: *p,
                    theta,
                    share_bytes: *share,
                    chunks,
                    predicted_time,
                });
            }

            // Straggler check: a non-first active path whose quantized
            // time overshoots the optimizer's equalized target by more
            // than 2% poisons the makespan — drop it and re-solve,
            // keeping the best plan seen so far. At termination either no
            // path overshoots (so the makespan is within 2% of the
            // equalized optimum, which never exceeds the direct-only
            // time) or the best earlier round wins.
            let candidate = TransferPlan {
                n,
                paths: planned,
                predicted_time: worst,
                predicted_bandwidth: nf / worst,
            };
            let candidate_time = candidate.predicted_time;
            if best
                .as_ref()
                .is_none_or(|b| candidate_time < b.predicted_time)
            {
                best = Some(candidate);
            }
            let straggler = best
                .as_ref()
                .expect("just set")
                .paths
                .iter()
                .skip(1)
                .filter(|pp| pp.share_bytes > 0 && pp.index < ods.len())
                .filter(|pp| pp.predicted_time > sol.time * 1.02 + 1e-9)
                .max_by(|a, b| {
                    a.predicted_time
                        .partial_cmp(&b.predicted_time)
                        .expect("finite times")
                })
                .map(|pp| pp.index);
            // Only re-solve if the straggler came from *this* round's
            // plan (otherwise we already improved past it).
            let this_round_straggler =
                if (candidate_time - best.as_ref().expect("set").predicted_time).abs() < 1e-18 {
                    straggler
                } else {
                    None
                };
            match this_round_straggler {
                Some(idx) => {
                    ods[idx] = OmegaDelta {
                        omega: ods[idx].omega,
                        delta: nf * ods[idx].omega + sol.time * 1e3,
                    };
                }
                None => break,
            }
        }
        best.expect("at least one round ran")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    fn planner(topo: Topology) -> Planner {
        Planner::new(Arc::new(topo))
    }

    fn beluga_plan(n: usize, sel: PathSelection) -> Arc<TransferPlan> {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], n, sel).unwrap()
    }

    #[test]
    fn all_bytes_are_assigned() {
        for n in [4096, 2 * MIB, 64 * MIB + 7, 512 * MIB] {
            let plan = beluga_plan(n, PathSelection::THREE_GPUS_WITH_HOST);
            let total: usize = plan.paths.iter().map(|p| p.share_bytes).sum();
            assert_eq!(total, n, "n = {n}");
        }
    }

    #[test]
    fn non_direct_shares_are_aligned() {
        let plan = beluga_plan(64 * MIB + 3, PathSelection::THREE_GPUS_WITH_HOST);
        for p in &plan.paths[1..] {
            assert_eq!(p.share_bytes % 4, 0, "path {} misaligned", p.index);
        }
    }

    #[test]
    fn direct_only_plan_is_trivial() {
        let plan = beluga_plan(16 * MIB, PathSelection::DIRECT_ONLY);
        assert_eq!(plan.paths.len(), 1);
        assert_eq!(plan.paths[0].share_bytes, 16 * MIB);
        assert_eq!(plan.paths[0].chunks, 1);
    }

    #[test]
    fn large_messages_use_all_four_paths() {
        let plan = beluga_plan(256 * MIB, PathSelection::THREE_GPUS_WITH_HOST);
        assert_eq!(plan.active_path_count(), 4);
        // Host path exists but carries the least.
        let host = plan.paths.last().unwrap();
        for p in &plan.paths[..3] {
            assert!(p.share_bytes > host.share_bytes);
        }
    }

    #[test]
    fn small_messages_collapse_to_direct() {
        let plan = beluga_plan(8 << 10, PathSelection::THREE_GPUS_WITH_HOST);
        assert_eq!(
            plan.active_path_count(),
            1,
            "8 KiB should ride the direct path only: {:?}",
            plan.paths
                .iter()
                .map(|p| (p.index, p.share_bytes))
                .collect::<Vec<_>>()
        );
        assert_eq!(plan.paths[0].share_bytes, 8 << 10);
    }

    #[test]
    fn predicted_bandwidth_grows_with_paths() {
        let n = 256 * MIB;
        let direct = beluga_plan(n, PathSelection::DIRECT_ONLY);
        let two = beluga_plan(n, PathSelection::TWO_GPUS);
        let three = beluga_plan(n, PathSelection::THREE_GPUS);
        let four = beluga_plan(n, PathSelection::THREE_GPUS_WITH_HOST);
        assert!(two.predicted_bandwidth > direct.predicted_bandwidth * 1.5);
        assert!(three.predicted_bandwidth > two.predicted_bandwidth);
        assert!(four.predicted_bandwidth > three.predicted_bandwidth);
        // Headline shape: ~3x for 3 GPU paths + host on Beluga.
        let speedup = four.predicted_bandwidth / direct.predicted_bandwidth;
        assert!(
            (2.5..3.6).contains(&speedup),
            "speedup {speedup} out of the expected band"
        );
    }

    #[test]
    fn staged_paths_get_multiple_chunks_for_large_messages() {
        let plan = beluga_plan(256 * MIB, PathSelection::THREE_GPUS);
        for p in &plan.paths[1..] {
            assert!(p.chunks > 1, "path {} should pipeline, got k=1", p.index);
        }
        assert_eq!(plan.paths[0].chunks, 1, "direct path never chunks");
    }

    #[test]
    fn chunk_size_floor_respected() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let plan = p
            .plan(gpus[0], gpus[1], 4 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        for pp in plan.active_paths() {
            if pp.index > 0 {
                let chunk = pp.share_bytes / pp.chunks as usize;
                assert!(
                    chunk >= p.config().min_chunk_bytes || pp.chunks == 1,
                    "path {}: chunk {} below floor",
                    pp.index,
                    chunk
                );
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_plans() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let a = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let b = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.stats(), PlannerStats { hits: 1, misses: 1 });
    }

    #[test]
    fn cache_distinguishes_sizes_and_selections() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], 4 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], 2 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        assert_eq!(p.stats().misses, 3);
    }

    #[test]
    fn unpipelined_mode_prediction_is_slower() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let piped = Planner::new(topo.clone())
            .plan(gpus[0], gpus[1], 256 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        let unpiped = Planner::with_config(
            topo,
            PlannerConfig {
                mode: PipelineMode::Unpipelined,
                ..PlannerConfig::default()
            },
        )
        .plan(gpus[0], gpus[1], 256 * MIB, PathSelection::THREE_GPUS)
        .unwrap();
        assert!(piped.predicted_time < unpiped.predicted_time);
    }

    #[test]
    fn narval_host_share_smaller_than_beluga_host_share() {
        // Observation 3: Narval's NUMA layout makes its host path weaker.
        let host_share = |topo: Topology| {
            let p = planner(topo);
            let gpus = p.topology().gpus();
            let plan = p
                .plan(
                    gpus[0],
                    gpus[1],
                    256 * MIB,
                    PathSelection::THREE_GPUS_WITH_HOST,
                )
                .unwrap();
            plan.paths.last().unwrap().theta
        };
        let beluga = host_share(presets::beluga());
        let narval = host_share(presets::narval());
        assert!(
            narval < beluga,
            "narval host share {narval} should trail beluga {beluga}"
        );
    }

    #[test]
    fn plan_rejects_non_gpu_endpoints() {
        let p = planner(presets::beluga());
        let hm = p.topology().host_memories()[0];
        let g0 = p.topology().gpus()[0];
        assert!(p.plan(hm, g0, MIB, PathSelection::DIRECT_ONLY).is_err());
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_plan_panics() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let _ = p.plan(gpus[0], gpus[1], 0, PathSelection::DIRECT_ONLY);
    }

    #[test]
    fn windowed_bandwidth_amortizes_fixed_costs() {
        let plan = beluga_plan(2 * MIB, PathSelection::THREE_GPUS);
        let w1 = plan.predicted_windowed_bandwidth(1);
        let w16 = plan.predicted_windowed_bandwidth(16);
        assert!((w1 - plan.predicted_bandwidth).abs() < 1e-3 * w1);
        assert!(w16 > w1, "window must raise small-message bandwidth");
        // Bounded by the streaming asymptote.
        let asymptote = plan.n as f64
            / plan
                .paths
                .iter()
                .filter(|p| p.share_bytes > 0)
                .map(|p| p.predicted_time - p.params.delta_unpipelined())
                .fold(0.0f64, f64::max);
        assert!(w16 <= asymptote * 1.001);
    }

    #[test]
    fn windowed_bandwidth_matters_less_for_large_messages() {
        let small = beluga_plan(2 * MIB, PathSelection::THREE_GPUS);
        let large = beluga_plan(256 * MIB, PathSelection::THREE_GPUS);
        let lift = |p: &TransferPlan| {
            p.predicted_windowed_bandwidth(16) / p.predicted_windowed_bandwidth(1)
        };
        assert!(lift(&small) > lift(&large));
        assert!(lift(&large) < 1.01, "256 MB is latency-insensitive");
    }

    #[test]
    fn theta_distribution_shifts_with_message_size() {
        // Fig. 4's qualitative shape: the direct share shrinks toward its
        // asymptote as n grows, staged shares grow.
        let direct_theta = |n: usize| beluga_plan(n, PathSelection::THREE_GPUS).paths[0].theta;
        let small = direct_theta(2 * MIB);
        let large = direct_theta(512 * MIB);
        assert!(
            small > large,
            "direct share should shrink: {small} -> {large}"
        );
        assert!(large > 0.3, "direct keeps the largest share: {large}");
    }
}
