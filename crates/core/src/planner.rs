//! Algorithm 1: computing the optimal path configuration for one
//! transfer, with the configuration cache (paper Section 4).
//!
//! Given `(src, dst, message size, candidate paths)` the planner:
//!
//! 1. resolves each candidate path's links and Hockney parameters
//!    (Algorithm 1 lines 7–15, via `mpx-topo`);
//! 2. derives each path's affine coefficients `Ωᵢ, Δᵢ` — pipelined
//!    staged paths through the φ-linearization (Eq. 22), direct paths
//!    exactly — accumulating the sequential-initiation latency of earlier
//!    paths into `Δᵢ` (line 18);
//! 3. solves for the optimal shares `θᵢ` (Eq. 24, lines 22–26);
//! 4. converts shares to aligned byte counts, giving the remainder to the
//!    direct path (lines 27–29), and picks per-path chunk counts
//!    (Eqs. 14/15 rounded);
//! 5. caches the result per `(src, dst, selection, n)` in a sharded,
//!    read-mostly [`PlanCache`], optionally quantized into geometric
//!    size classes (see [`SizeClassConfig`]) so an irregular size sweep
//!    costs O(size classes) solves instead of O(distinct sizes).

use crate::cache::{BuildFxHasher, CacheCounters, ShardedMap};
use crate::optimizer::{optimal_shares, optimal_time, OmegaDelta};
use crate::pipeline::{
    bottleneck, chunk_count, omega_delta_pipelined, omega_delta_unpipelined, time_pipelined,
    topology_constant, Bottleneck,
};
use mpx_topo::params::{extract_all, PathParams};
use mpx_topo::path::{enumerate_paths_auto, PathKind, PathSelection, TransferPath};
use mpx_topo::units::{Bandwidth, Secs};
use mpx_topo::{DeviceId, Topology, TopologyError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether staged paths are modeled (and executed) with chunk pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineMode {
    /// One monolithic copy per leg (Section 3.3's model).
    Unpipelined,
    /// Chunked, pipelined staging (Section 3.4's model). The default.
    Pipelined,
}

/// Size-class quantization of the plan-cache key.
///
/// With quantization enabled, messages above [`exact_below`] share one
/// cache entry per geometric size class ([`per_octave`] classes per
/// doubling): the first size in a class pays the full Algorithm-1 solve
/// and its share distribution is reused — rescaled to the exact byte
/// count — for every later size in the class. A guard keeps the
/// shortcut honest: the rescaled plan is accepted only if its
/// model-predicted time stays within `(1 + ε)` of the equalized-time
/// optimum computed (cheaply, in closed form) for the exact size;
/// otherwise the planner falls back to an exact solve. Below
/// [`exact_below`] the key is always the exact byte count — the paper's
/// Observation 4 nonlinearity (path activation thresholds) makes
/// bucketing unsafe for small messages.
///
/// [`exact_below`]: SizeClassConfig::exact_below
/// [`per_octave`]: SizeClassConfig::per_octave
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeClassConfig {
    /// Quantize cache keys at all. Off by default: exact keying
    /// reproduces the paper's per-`(pair, n)` cache bit for bit.
    pub enabled: bool,
    /// Guard tolerance ε: a class-derived plan may predict at most
    /// `(1 + ε)×` the exact plan's equalized time.
    pub epsilon: f64,
    /// Size classes per size doubling (geometric granularity).
    pub per_octave: u32,
    /// Messages below this many bytes always use exact keys.
    pub exact_below: usize,
}

// Not derivable: the default must keep the recommended tunables so
// flipping `enabled` alone yields a sane configuration.
#[allow(clippy::derivable_impls)]
impl Default for SizeClassConfig {
    fn default() -> Self {
        SizeClassConfig {
            enabled: false,
            ..SizeClassConfig::ENABLED
        }
    }
}

impl SizeClassConfig {
    /// The recommended quantizing configuration: 4 classes per octave,
    /// ε = 5%, exact keys below 4 MiB.
    pub const ENABLED: SizeClassConfig = SizeClassConfig {
        enabled: true,
        epsilon: 0.05,
        per_octave: 4,
        exact_below: 4 << 20,
    };

    /// The class index of an `n`-byte message.
    #[inline]
    pub fn class_of(&self, n: usize) -> u32 {
        debug_assert!(n > 0);
        (self.per_octave.max(1) as f64 * (n as f64).log2()).floor() as u32
    }
}

/// Quantizes fractional path shares of an `n`-byte message into
/// `alignment`-aligned byte counts (each rounded down), writing them into
/// `bytes` and returning the total assigned. Callers give the rounding
/// remainder `n - total` to path 0 — the direct path, the only one free
/// of the alignment constraint. The single Lines 27–29 implementation
/// shared by the planner's solve loop, the size-class realization, and
/// the exhaustive tuner's manual plans.
pub fn quantize_shares(
    bytes: &mut [usize],
    shares: impl IntoIterator<Item = f64>,
    n: usize,
    alignment: usize,
) -> usize {
    let nf = n as f64;
    let align = alignment.max(1);
    let mut assigned = 0usize;
    for (b, t) in bytes.iter_mut().zip(shares) {
        *b = ((t * nf) as usize / align) * align;
        assigned += *b;
    }
    assigned
}

/// Planner tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Pipelining mode for staged paths.
    pub mode: PipelineMode,
    /// Upper bound on chunks per path (staging-ring depth of the pipeline
    /// engine).
    pub max_chunks: u32,
    /// Do not split below this chunk size; bounds per-chunk overhead for
    /// small messages.
    pub min_chunk_bytes: usize,
    /// Share byte counts are rounded down to this alignment (element
    /// size); the remainder goes to the direct path.
    pub alignment: usize,
    /// Size-class quantization of the plan-cache key.
    #[serde(default)]
    pub size_classes: SizeClassConfig,
    /// Exact plans retained per cache shard before the shard's epoch is
    /// cleared (bounds the cache footprint under irregular size sweeps;
    /// the steady-state working set stays resident).
    #[serde(default = "default_plans_per_shard")]
    pub plans_per_shard: usize,
}

fn default_plans_per_shard() -> usize {
    512
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            mode: PipelineMode::Pipelined,
            max_chunks: 32,
            min_chunk_bytes: 256 << 10,
            alignment: 4,
            size_classes: SizeClassConfig::default(),
            plans_per_shard: default_plans_per_shard(),
        }
    }
}

/// One path's slice of the plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlannedPath {
    /// Index within the candidate set (0 = direct).
    pub index: usize,
    /// Path class.
    pub kind: PathKind,
    /// Hockney parameters used (after the sequential-initiation
    /// correction).
    pub params: PathParams,
    /// Optimal fraction `θᵢ` from Eq. (24).
    pub theta: f64,
    /// Bytes assigned (aligned; direct path absorbs the remainder).
    pub share_bytes: usize,
    /// Chunks to pipeline this share through (1 for direct or excluded
    /// paths).
    pub chunks: u32,
    /// The model's predicted completion time for this path's share.
    pub predicted_time: Secs,
}

/// A complete transfer configuration: Algorithm 1's `configs[], shares[]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Message size in bytes.
    pub n: usize,
    /// Per-path assignments, direct path first.
    pub paths: Vec<PlannedPath>,
    /// Predicted end-to-end time: `max_i` of per-path predictions.
    pub predicted_time: Secs,
    /// Predicted aggregate bandwidth `n / T`.
    pub predicted_bandwidth: Bandwidth,
}

impl TransferPlan {
    /// Paths that actually carry bytes.
    pub fn active_paths(&self) -> impl Iterator<Item = &PlannedPath> {
        self.paths.iter().filter(|p| p.share_bytes > 0)
    }

    /// Number of paths carrying bytes.
    pub fn active_path_count(&self) -> usize {
        self.active_paths().count()
    }

    /// Predicted aggregate bandwidth when `window` messages of this size
    /// are in flight at once (the OMB windowed-BW protocol): the fixed
    /// costs `Δ` are paid once per window instead of once per message, so
    /// bandwidth approaches the asymptote as the window grows —
    /// Observation 2's mechanism, model-side.
    ///
    /// With all `window` messages sharing the same path set fairly, each
    /// path's per-byte time scales with the total bytes while its fixed
    /// cost does not: `T(w) ≈ w·(T − Δ_max) + Δ_max` where `Δ_max` is the
    /// slowest path's fixed cost at the equalized optimum.
    pub fn predicted_windowed_bandwidth(&self, window: usize) -> Bandwidth {
        let w = window.max(1) as f64;
        // The makespan path's fixed-cost component: T_i = θᵢnΩᵢ + Δᵢ at
        // the optimum; take the Δ of the path achieving the makespan.
        let delta_max = self
            .paths
            .iter()
            .filter(|p| p.share_bytes > 0)
            .max_by(|a, b| {
                a.predicted_time
                    .partial_cmp(&b.predicted_time)
                    .expect("finite")
            })
            .map(|p| p.params.delta_unpipelined())
            .unwrap_or(0.0);
        let streaming = (self.predicted_time - delta_max).max(0.0);
        (w * self.n as f64) / (w * streaming + delta_max)
    }

    /// Renders the plan as an aligned text table (used by the CLI and
    /// examples).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan for {} bytes ({} active path(s)):",
            self.n,
            self.active_path_count()
        );
        for p in &self.paths {
            let _ = writeln!(
                out,
                "  {:<22} theta={:<8.4} bytes={:<12} chunks={:<3} t={:.1}us",
                p.kind.to_string(),
                p.theta,
                p.share_bytes,
                p.chunks,
                p.predicted_time * 1e6
            );
        }
        let _ = writeln!(
            out,
            "  predicted: {:.2} GB/s in {:.1} us",
            self.predicted_bandwidth / 1e9,
            self.predicted_time * 1e6
        );
        out
    }
}

/// Cache counters (a snapshot; the live counters are atomics and reading
/// them never blocks planning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans served from the exact-size cache.
    pub hits: u64,
    /// Plans computed from scratch.
    pub misses: u64,
    /// Plans realized cheaply from a cached size-class entry.
    pub class_hits: u64,
    /// Size-class candidates rejected by the ε guard (fell back to an
    /// exact solve).
    pub class_fallbacks: u64,
    /// Drift-triggered pair invalidations.
    pub invalidations: u64,
}

impl PlannerStats {
    /// Component-wise sum (for aggregating several caches).
    pub fn merged(self, other: PlannerStats) -> PlannerStats {
        PlannerStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            class_hits: self.class_hits + other.class_hits,
            class_fallbacks: self.class_fallbacks + other.class_fallbacks,
            invalidations: self.invalidations + other.invalidations,
        }
    }
}

/// The pair-level cache key — `(src, dst, max_gpu_staged, host_staged)`,
/// i.e. everything that determines the candidate path set. It doubles as
/// the shard key of every map in a [`PlanCache`], so invalidating one
/// pair locks exactly one shard.
pub type PairKey = (DeviceId, DeviceId, usize, bool);

type ExactKey = (PairKey, usize);
type ClassKey = (PairKey, u32);

/// One path's slice of a cached size-class solution: the launch-corrected
/// parameters, the solved share fraction, and the memoized affine-law
/// coefficients — everything needed to re-realize the distribution (and
/// re-check its optimality bound) at a nearby exact size without touching
/// the topology or the pair memo.
///
/// The Eq. 22 φ-linearization factors as `Ω(φ) = ob + oc·φ` and
/// `Δ(φ) = db + dc/φ`, and the topology constant scales as
/// `φ(n) = phi_scale/√n` (it is `1/√x_ref` with `x_ref ∝ n`), so the
/// coefficients at any message size cost a handful of flops. Direct or
/// unpipelined paths are constants: `oc = dc = 0`, `phi_scale = 0`.
#[derive(Debug, Clone)]
struct ClassPath {
    kind: PathKind,
    params: PathParams,
    theta: f64,
    ob: f64,
    oc: f64,
    db: f64,
    dc: f64,
    phi_scale: f64,
}

/// A size-class cache entry: the share distribution Algorithm 1 solved at
/// the first size seen in the class.
#[derive(Debug)]
struct ClassEntry {
    paths: Vec<ClassPath>,
}

/// Outcome of one locked cache probe.
enum Lookup {
    Exact(Arc<TransferPlan>),
    Class(Arc<ClassEntry>),
    Miss,
}

/// One cache shard: the exact and size-class tables of the pairs hashing
/// here, behind a single `RwLock` so a probe costs one read acquisition.
#[derive(Default)]
struct CacheShard {
    exact: HashMap<ExactKey, Arc<TransferPlan>, BuildFxHasher>,
    class: HashMap<ClassKey, Arc<ClassEntry>, BuildFxHasher>,
}

/// A sharded, read-mostly configuration cache: exact `(pair, n)` plans
/// plus (when quantization is on) per-size-class share distributions,
/// with lock-free atomic counters. Shards are selected by the device
/// pair, so invalidating one pair locks exactly one shard.
///
/// The planner owns one for datasheet-parameter plans; the transport
/// layer owns a second one for probed-parameter plans and drives it
/// through [`Planner::plan_in_cache`], so both share the identical
/// caching and quantization logic.
pub struct PlanCache {
    shards: Box<[RwLock<CacheShard>]>,
    counters: CacheCounters,
    /// Process-unique id, distinguishing this cache's entries in the
    /// thread-local L0 (addresses can be reused; ids never are).
    id: u64,
    /// Bumped after every invalidation/clear. Thread-local L0 entries
    /// remember the epoch they were filled under and are ignored once it
    /// moves on, so no stale plan survives an invalidation.
    epoch: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// Source of process-unique [`PlanCache::id`]s.
static CACHE_IDS: AtomicU64 = AtomicU64::new(1);

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            shards: (0..crate::cache::SHARDS)
                .map(|_| RwLock::new(CacheShard::default()))
                .collect(),
            counters: CacheCounters::default(),
            id: CACHE_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, pair: &PairKey) -> &RwLock<CacheShard> {
        let idx = crate::cache::fx_hash_of(pair) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// One shard read acquisition: the exact plan if cached, else the
    /// size-class entry if `class_key` was given and is cached.
    fn probe(&self, exact_key: &ExactKey, class_key: Option<&ClassKey>) -> Lookup {
        let shard = self.shard(&exact_key.0).read();
        if let Some(p) = shard.exact.get(exact_key) {
            return Lookup::Exact(p.clone());
        }
        if let Some(ck) = class_key {
            if let Some(e) = shard.class.get(ck) {
                return Lookup::Class(e.clone());
            }
        }
        Lookup::Miss
    }

    /// Inserts an exact plan (and, on a solve that seeds a new size
    /// class, its class entry), epoch-clearing the exact table at `cap`
    /// entries so an irregular size sweep cannot grow the cache — and
    /// its allocation footprint — without bound.
    fn store(
        &self,
        exact_key: ExactKey,
        plan: Arc<TransferPlan>,
        class: Option<(ClassKey, Arc<ClassEntry>)>,
        cap: usize,
    ) {
        let mut shard = self.shard(&exact_key.0).write();
        if shard.exact.len() >= cap.max(1) {
            shard.exact.clear();
        }
        shard.exact.insert(exact_key, plan);
        if let Some((ck, entry)) = class {
            shard.class.insert(ck, entry);
        }
    }

    /// A snapshot of the counters. Reads relaxed atomics only — never
    /// contends with concurrent planning.
    pub fn stats(&self) -> PlannerStats {
        let c = &self.counters;
        PlannerStats {
            hits: CacheCounters::read(&c.hits),
            misses: CacheCounters::read(&c.misses),
            class_hits: CacheCounters::read(&c.class_hits),
            class_fallbacks: CacheCounters::read(&c.class_fallbacks),
            invalidations: CacheCounters::read(&c.invalidations),
        }
    }

    /// Drops every cached plan and class entry of one device pair,
    /// locking only that pair's shard. The drift-invalidation primitive.
    /// The epoch bump (after the purge, so a concurrent planner can never
    /// re-validate a pre-purge plan under the new epoch) retires every
    /// thread's L0 entries for this cache.
    pub fn invalidate_pair(&self, pair: PairKey) {
        let mut shard = self.shard(&pair).write();
        shard.exact.retain(|k, _| k.0 != pair);
        shard.class.retain(|k, _| k.0 != pair);
        drop(shard);
        self.epoch.fetch_add(1, Ordering::Release);
        CacheCounters::bump(&self.counters.invalidations);
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut s = shard.write();
            s.exact.clear();
            s.class.clear();
        }
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Number of exact plans currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().exact.len()).sum()
    }

    /// Whether no exact plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One entry of the thread-local L0: the plan this thread last obtained
/// for `(cache, pair, n)`, valid only while the cache's epoch stands
/// still. Serving from it costs no lock at all — the steady-state repeat
/// workload of a rank thread never touches the shared shards.
struct L0Slot {
    cache_id: u64,
    pair: PairKey,
    n: usize,
    epoch: u64,
    plan: Arc<TransferPlan>,
}

/// Direct-mapped thread-local slots (power of two for mask indexing).
const L0_SLOTS: usize = 64;

thread_local! {
    static L0: RefCell<Vec<Option<L0Slot>>> =
        RefCell::new((0..L0_SLOTS).map(|_| None).collect());
}

/// Memoized per-pair candidate paths and datasheet parameters: a cache
/// miss re-solves only the share system instead of re-walking the
/// topology.
struct PairMemo {
    paths: Vec<TransferPath>,
    params: Vec<PathParams>,
}

/// Paths per pair above which size-class realization bails out to an
/// exact solve (stack buffers in the guard are this large; real nodes
/// have ≤ 5 candidate paths per pair).
const MAX_CLASS_PATHS: usize = 16;

/// Algorithm 1 with its configuration cache.
pub struct Planner {
    topo: Arc<Topology>,
    cfg: PlannerConfig,
    cache: PlanCache,
    pairs: ShardedMap<PairKey, Arc<PairMemo>>,
}

impl Planner {
    /// Creates a planner over `topo` with default tunables.
    pub fn new(topo: Arc<Topology>) -> Planner {
        Planner::with_config(topo, PlannerConfig::default())
    }

    /// Creates a planner with explicit tunables.
    pub fn with_config(topo: Arc<Topology>, cfg: PlannerConfig) -> Planner {
        Planner {
            topo,
            cfg,
            cache: PlanCache::new(),
            pairs: ShardedMap::new(),
        }
    }

    /// The topology this planner describes.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The active tunables.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Cache counters (atomic snapshot; never blocks planning).
    pub fn stats(&self) -> PlannerStats {
        self.cache.stats()
    }

    /// The datasheet-parameter plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Forgets everything cached about one device pair — plans, class
    /// entries, and the memoized path set/parameters.
    pub fn invalidate_pair(&self, pair: PairKey) {
        self.pairs.remove(&pair, &pair);
        self.cache.invalidate_pair(pair);
    }

    /// `populate_path_config` (Algorithm 1): the optimal configuration for
    /// an `n`-byte transfer `src → dst` over the paths selected by `sel`.
    pub fn plan(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        sel: PathSelection,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        let pair: PairKey = (src, dst, sel.max_gpu_staged, sel.host_staged);
        self.plan_in_cache(&self.cache, pair, n, || {
            let memo = self.pair_memo(pair, src, dst, sel)?;
            Ok(self.compute_with_params(n, &memo.paths, memo.params.clone()))
        })
    }

    /// The memoized candidate path set and datasheet parameters of one
    /// pair: only the first plan per pair walks the topology.
    fn pair_memo(
        &self,
        pair: PairKey,
        src: DeviceId,
        dst: DeviceId,
        sel: PathSelection,
    ) -> Result<Arc<PairMemo>, TopologyError> {
        if let Some(m) = self.pairs.get(&pair, &pair) {
            return Ok(m);
        }
        let paths = enumerate_paths_auto(&self.topo, src, dst, sel)?;
        let params = extract_all(&self.topo, &paths)?;
        let memo = Arc::new(PairMemo { paths, params });
        self.pairs.insert(&pair, pair, memo.clone());
        Ok(memo)
    }

    /// The caching engine behind [`Planner::plan`], parameterized over the
    /// cache and the solve: probes `(pair, n)` exactly, then — with
    /// quantization on and `n` above the exact-keying threshold — tries to
    /// realize the pair's cached size-class distribution at `n` (accepted
    /// only within the ε guard, see [`SizeClassConfig`]), and only then
    /// runs `solve` for the full Algorithm-1 answer. Both lookups share
    /// one shard read acquisition, and `solve` is never called on a hit —
    /// the transport's probe/enumerate work stays off the hot path.
    pub fn plan_in_cache(
        &self,
        cache: &PlanCache,
        pair: PairKey,
        n: usize,
        solve: impl FnOnce() -> Result<TransferPlan, TopologyError>,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        assert!(n > 0, "cannot plan a zero-byte transfer");
        // L0: this thread's own last answer for (cache, pair, n) — no
        // lock, no shared-line traffic beyond the epoch load. The epoch
        // is read *before* any shared state so a concurrent invalidation
        // can only make us conservatively re-probe, never serve stale.
        let idx = crate::cache::fx_hash_of(&(cache.id, pair, n)) as usize & (L0_SLOTS - 1);
        let epoch = cache.epoch.load(Ordering::Acquire);
        let l0_hit = L0.with(|l0| match &l0.borrow()[idx] {
            Some(s) if s.cache_id == cache.id && s.pair == pair && s.n == n && s.epoch == epoch => {
                Some(s.plan.clone())
            }
            _ => None,
        });
        if let Some(plan) = l0_hit {
            CacheCounters::bump(&cache.counters.hits);
            return Ok(plan);
        }

        let sc = self.cfg.size_classes;
        let quantize = sc.enabled && n >= sc.exact_below;
        let exact_key: ExactKey = (pair, n);
        let class_key: Option<ClassKey> = if quantize {
            Some((pair, sc.class_of(n)))
        } else {
            None
        };
        let plan = 'plan: {
            match cache.probe(&exact_key, class_key.as_ref()) {
                Lookup::Exact(hit) => {
                    CacheCounters::bump(&cache.counters.hits);
                    break 'plan hit;
                }
                Lookup::Class(entry) => {
                    if let Some(plan) = self.realize_guarded(&entry, n) {
                        // Not written back to the shared exact table:
                        // realization is cheap and deterministic, and a
                        // sweep of distinct sizes would only churn the
                        // shard; repeats are served by the L0 below.
                        CacheCounters::bump(&cache.counters.class_hits);
                        break 'plan Arc::new(plan);
                    }
                    CacheCounters::bump(&cache.counters.class_fallbacks);
                }
                Lookup::Miss => {}
            }
            CacheCounters::bump(&cache.counters.misses);
            let plan = Arc::new(solve()?);
            let class = class_key.map(|ck| (ck, Arc::new(self.class_entry(&plan))));
            cache.store(exact_key, plan.clone(), class, self.cfg.plans_per_shard);
            plan
        };
        L0.with(|l0| {
            l0.borrow_mut()[idx] = Some(L0Slot {
                cache_id: cache.id,
                pair,
                n,
                epoch,
                plan: plan.clone(),
            })
        });
        Ok(plan)
    }

    /// Re-plan entry point for degraded fabrics: like [`Planner::plan`]
    /// but with the candidate paths at the given indices *excluded* —
    /// the caller has observed them fail or time out. Returns the plan
    /// together with the surviving candidate set (the path set
    /// `execute_plan` must be driven with). Never cached: exclusion sets
    /// are transient observations, not topology facts.
    ///
    /// Degrades gracefully down to a single surviving path; errors with
    /// [`TopologyError::NoUsablePath`] only when *every* candidate is
    /// excluded.
    pub fn plan_excluding(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        sel: PathSelection,
        excluded: &[usize],
    ) -> Result<(TransferPlan, Vec<TransferPath>), TopologyError> {
        let all = enumerate_paths_auto(&self.topo, src, dst, sel)?;
        let survivors: Vec<TransferPath> = all
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !excluded.contains(i))
            .map(|(_, p)| p)
            .collect();
        if survivors.is_empty() {
            return Err(TopologyError::NoUsablePath(src, dst));
        }
        let plan = self.compute(n, &survivors)?;
        Ok((plan, survivors))
    }

    /// The uncached Algorithm-1 body, usable with an externally-supplied
    /// candidate set; parameters are extracted from the topology
    /// description.
    pub fn compute(&self, n: usize, paths: &[TransferPath]) -> Result<TransferPlan, TopologyError> {
        let params = extract_all(&self.topo, paths)?;
        Ok(self.compute_with_params(n, paths, params))
    }

    /// The uncached Algorithm-1 body with externally supplied per-path
    /// Hockney parameters — the hook for runtime-calibrated ("probed")
    /// parameters, which is how the paper's Dynamic Path Distribution
    /// obtains them.
    pub fn compute_with_params(
        &self,
        n: usize,
        paths: &[TransferPath],
        mut params: Vec<PathParams>,
    ) -> TransferPlan {
        assert!(n > 0, "cannot plan a zero-byte transfer");
        assert_eq!(paths.len(), params.len(), "one parameter set per path");

        // Line 18: sequential initiation — path i's first chunk cannot
        // launch before the launches of paths 0..i have been issued.
        let launch = self.topo.overheads.copy_launch;
        for (i, p) in params.iter_mut().enumerate() {
            p.first.alpha += launch * i as f64;
        }

        // Lines 16–21: per-path affine coefficients.
        let nf = n as f64;
        let beta_sum: f64 = params.iter().map(|p| p.bottleneck_bandwidth()).sum();
        let ods: Vec<OmegaDelta> = params
            .iter()
            .map(|p| {
                if !p.is_staged() || self.cfg.mode == PipelineMode::Unpipelined {
                    omega_delta_unpipelined(p)
                } else {
                    // Reference share for φ: bandwidth-proportional.
                    let theta_ref = (p.bottleneck_bandwidth() / beta_sum).max(1e-6);
                    let phi = topology_constant(p, theta_ref, nf);
                    omega_delta_pipelined(p, phi)
                }
            })
            .collect();

        // Lines 22–30 with a quantization-aware exclusion loop: the
        // optimizer's affine law assumes continuous chunk counts, but the
        // executed config rounds `k` and enforces the min-chunk-size
        // floor. A path whose share is so small that it ends up with one
        // unpipelinable chunk can overshoot the equalized time and
        // straggle the whole transfer; such paths are dropped (by
        // inflating their fixed cost — the optimizer's natural exclusion
        // mechanism) and the shares re-solved.
        let mut ods = ods;
        let mut best: Option<TransferPlan> = None;
        for _round in 0..paths.len() + 1 {
            // Lines 22–26: optimal shares.
            let sol = optimal_shares(&ods, nf);

            // Lines 27–29: shares → aligned bytes, remainder to the
            // first path (the direct one when it exists).
            let mut bytes = vec![0usize; sol.shares.len()];
            let assigned = quantize_shares(
                &mut bytes,
                sol.shares.iter().copied(),
                n,
                self.cfg.alignment,
            );
            bytes[0] += n - assigned;

            // Chunk counts and exact (quantized) per-path predictions.
            let mut planned = Vec::with_capacity(paths.len());
            let mut worst: Secs = 0.0;
            for (i, ((path, p), share)) in paths.iter().zip(&params).zip(&bytes).enumerate() {
                let (chunks, predicted_time) = self.path_assignment(p, *share, nf);
                worst = worst.max(predicted_time);
                planned.push(PlannedPath {
                    index: i,
                    kind: path.kind,
                    params: *p,
                    theta: *share as f64 / nf,
                    share_bytes: *share,
                    chunks,
                    predicted_time,
                });
            }

            // Straggler check: a non-first active path whose quantized
            // time overshoots the optimizer's equalized target by more
            // than 2% poisons the makespan — drop it and re-solve,
            // keeping the best plan seen so far. At termination either no
            // path overshoots (so the makespan is within 2% of the
            // equalized optimum, which never exceeds the direct-only
            // time) or the best earlier round wins.
            let candidate = TransferPlan {
                n,
                paths: planned,
                predicted_time: worst,
                predicted_bandwidth: nf / worst,
            };
            let candidate_time = candidate.predicted_time;
            if best
                .as_ref()
                .is_none_or(|b| candidate_time < b.predicted_time)
            {
                best = Some(candidate);
            }
            let straggler = best
                .as_ref()
                .expect("just set")
                .paths
                .iter()
                .skip(1)
                .filter(|pp| pp.share_bytes > 0 && pp.index < ods.len())
                .filter(|pp| pp.predicted_time > sol.time * 1.02 + 1e-9)
                .max_by(|a, b| {
                    a.predicted_time
                        .partial_cmp(&b.predicted_time)
                        .expect("finite times")
                })
                .map(|pp| pp.index);
            // Only re-solve if the straggler came from *this* round's
            // plan (otherwise we already improved past it).
            let this_round_straggler =
                if (candidate_time - best.as_ref().expect("set").predicted_time).abs() < 1e-18 {
                    straggler
                } else {
                    None
                };
            match this_round_straggler {
                Some(idx) => {
                    ods[idx] = OmegaDelta {
                        omega: ods[idx].omega,
                        delta: nf * ods[idx].omega + sol.time * 1e3,
                    };
                }
                None => break,
            }
        }
        best.expect("at least one round ran")
    }

    /// Chunk count and model-predicted time of one path given its byte
    /// share — the quantized realization step shared by the full solve
    /// and the size-class shortcut.
    fn path_assignment(&self, p: &PathParams, share: usize, nf: f64) -> (u32, Secs) {
        let theta = share as f64 / nf;
        let chunks = if share == 0 || !p.is_staged() || self.cfg.mode == PipelineMode::Unpipelined {
            1
        } else {
            let by_overhead = chunk_count(p, theta, nf, self.cfg.max_chunks);
            let by_size = (share / self.cfg.min_chunk_bytes.max(1)).max(1) as u32;
            by_overhead.min(by_size)
        };
        let predicted_time = if share == 0 {
            0.0
        } else if p.is_staged() && self.cfg.mode == PipelineMode::Pipelined {
            time_pipelined(p, theta, nf, chunks)
        } else {
            p.time_unpipelined(share as f64)
        };
        (chunks, predicted_time)
    }

    /// Builds the size-class cache entry of a freshly solved plan,
    /// memoizing each path's affine-law coefficients so later
    /// realizations in the class never touch the pipeline math.
    fn class_entry(&self, plan: &TransferPlan) -> ClassEntry {
        let beta_sum: f64 = plan
            .paths
            .iter()
            .map(|pp| pp.params.bottleneck_bandwidth())
            .sum();
        ClassEntry {
            paths: plan
                .paths
                .iter()
                .map(|pp| self.class_path(pp, beta_sum))
                .collect(),
        }
    }

    /// One path's memoized coefficients. For a pipelined staged path the
    /// Eq. 22 law splits by the Eq. 13 bottleneck case into
    /// `Ω = ob + oc·φ`, `Δ = db + dc/φ` with `φ = √(c/θ_ref)/√n` — the
    /// per-chunk cost product `c` is `α·β′` (first-leg-bound) or
    /// `β(ε+α′)` (second-leg-bound), exactly [`topology_constant`]'s
    /// `1/√x_ref`. Direct/unpipelined paths (and the `c = 0`
    /// zero-chunk-cost degenerate, where `dc` vanishes too) are constant:
    /// `oc = dc = phi_scale = 0`.
    fn class_path(&self, pp: &PlannedPath, beta_sum: f64) -> ClassPath {
        let p = pp.params;
        let (ob, oc, db, dc, phi_scale) =
            if p.is_staged() && self.cfg.mode == PipelineMode::Pipelined {
                let second = p.second.expect("staged path has a second leg");
                let theta_ref = (p.bottleneck_bandwidth() / beta_sum).max(1e-6);
                let (ob, oc, db, dc, c) = match bottleneck(&p) {
                    Bottleneck::FirstLeg => (
                        1.0 / p.first.beta,
                        1.0 / second.beta,
                        p.eps + second.alpha,
                        p.first.alpha,
                        p.first.alpha * second.beta,
                    ),
                    Bottleneck::SecondLeg => (
                        1.0 / second.beta,
                        1.0 / p.first.beta,
                        p.first.alpha,
                        p.eps + second.alpha,
                        p.first.beta * (p.eps + second.alpha),
                    ),
                };
                let scale = (c / theta_ref).sqrt();
                if scale.is_finite() && scale > 0.0 {
                    (ob, oc, db, dc, scale)
                } else {
                    // c = 0 (zero per-chunk cost): φ pins to the 1e-12 floor
                    // independently of n, so fold the constant in. `dc` is
                    // zero exactly in this case, keeping Δ finite.
                    let od = omega_delta_pipelined(&p, 1e-12);
                    (od.omega, 0.0, od.delta, 0.0, 0.0)
                }
            } else {
                let od = omega_delta_unpipelined(&p);
                (od.omega, 0.0, od.delta, 0.0, 0.0)
            };
        ClassPath {
            kind: pp.kind,
            params: p,
            theta: pp.theta,
            ob,
            oc,
            db,
            dc,
            phi_scale,
        }
    }

    /// The equalized completion time (Eq. 24's `T`, via the memoized
    /// affine Ω/Δ coefficients) of `entry`'s path set at message size
    /// `nf` — the reference the ε guard compares against. Allocation-free
    /// and a handful of flops per path.
    fn equalized_bound(&self, entry: &ClassEntry, nf: f64) -> f64 {
        let inv_sqrt_n = 1.0 / nf.sqrt();
        let mut ods = [OmegaDelta {
            omega: 1.0,
            delta: 0.0,
        }; MAX_CLASS_PATHS];
        for (od, cp) in ods.iter_mut().zip(&entry.paths) {
            *od = if cp.phi_scale > 0.0 {
                let phi = cp.phi_scale * inv_sqrt_n;
                OmegaDelta {
                    omega: cp.ob + cp.oc * phi,
                    delta: cp.db + cp.dc / phi,
                }
            } else {
                OmegaDelta {
                    omega: cp.ob,
                    delta: cp.db,
                }
            };
        }
        optimal_time(&ods[..entry.paths.len()], nf)
    }

    /// Realizes a cached size-class share distribution at the exact size
    /// `n`: shares → aligned bytes → chunk counts and predicted times,
    /// then the ε guard — the plan is returned only if its makespan stays
    /// within `(1 + ε)` of the equalized-time optimum recomputed for `n`.
    /// `None` means "solve exactly instead".
    fn realize_guarded(&self, entry: &ClassEntry, n: usize) -> Option<TransferPlan> {
        let m = entry.paths.len();
        if m == 0 || m > MAX_CLASS_PATHS {
            return None;
        }
        let nf = n as f64;
        let mut bytes = [0usize; MAX_CLASS_PATHS];
        let assigned = quantize_shares(
            &mut bytes[..m],
            entry.paths.iter().map(|cp| cp.theta),
            n,
            self.cfg.alignment,
        );
        if assigned > n {
            // Floating-point overshoot (θ sums above 1 by rounding residue):
            // bail out rather than hand out more bytes than the message has.
            return None;
        }
        bytes[0] += n - assigned;

        let mut planned = Vec::with_capacity(m);
        let mut worst: Secs = 0.0;
        for (i, (cp, share)) in entry.paths.iter().zip(&bytes).enumerate() {
            let (chunks, predicted_time) = self.path_assignment(&cp.params, *share, nf);
            worst = worst.max(predicted_time);
            planned.push(PlannedPath {
                index: i,
                kind: cp.kind,
                params: cp.params,
                theta: *share as f64 / nf,
                share_bytes: *share,
                chunks,
                predicted_time,
            });
        }

        let bound = self.equalized_bound(entry, nf);
        if !(bound.is_finite() && bound > 0.0)
            || worst > bound * (1.0 + self.cfg.size_classes.epsilon) + 1e-12
        {
            return None;
        }
        Some(TransferPlan {
            n,
            paths: planned,
            predicted_time: worst,
            predicted_bandwidth: nf / worst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    fn planner(topo: Topology) -> Planner {
        Planner::new(Arc::new(topo))
    }

    fn beluga_plan(n: usize, sel: PathSelection) -> Arc<TransferPlan> {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], n, sel).unwrap()
    }

    #[test]
    fn all_bytes_are_assigned() {
        for n in [4096, 2 * MIB, 64 * MIB + 7, 512 * MIB] {
            let plan = beluga_plan(n, PathSelection::THREE_GPUS_WITH_HOST);
            let total: usize = plan.paths.iter().map(|p| p.share_bytes).sum();
            assert_eq!(total, n, "n = {n}");
        }
    }

    #[test]
    fn non_direct_shares_are_aligned() {
        let plan = beluga_plan(64 * MIB + 3, PathSelection::THREE_GPUS_WITH_HOST);
        for p in &plan.paths[1..] {
            assert_eq!(p.share_bytes % 4, 0, "path {} misaligned", p.index);
        }
    }

    #[test]
    fn direct_only_plan_is_trivial() {
        let plan = beluga_plan(16 * MIB, PathSelection::DIRECT_ONLY);
        assert_eq!(plan.paths.len(), 1);
        assert_eq!(plan.paths[0].share_bytes, 16 * MIB);
        assert_eq!(plan.paths[0].chunks, 1);
    }

    #[test]
    fn large_messages_use_all_four_paths() {
        let plan = beluga_plan(256 * MIB, PathSelection::THREE_GPUS_WITH_HOST);
        assert_eq!(plan.active_path_count(), 4);
        // Host path exists but carries the least.
        let host = plan.paths.last().unwrap();
        for p in &plan.paths[..3] {
            assert!(p.share_bytes > host.share_bytes);
        }
    }

    #[test]
    fn small_messages_collapse_to_direct() {
        let plan = beluga_plan(8 << 10, PathSelection::THREE_GPUS_WITH_HOST);
        assert_eq!(
            plan.active_path_count(),
            1,
            "8 KiB should ride the direct path only: {:?}",
            plan.paths
                .iter()
                .map(|p| (p.index, p.share_bytes))
                .collect::<Vec<_>>()
        );
        assert_eq!(plan.paths[0].share_bytes, 8 << 10);
    }

    #[test]
    fn predicted_bandwidth_grows_with_paths() {
        let n = 256 * MIB;
        let direct = beluga_plan(n, PathSelection::DIRECT_ONLY);
        let two = beluga_plan(n, PathSelection::TWO_GPUS);
        let three = beluga_plan(n, PathSelection::THREE_GPUS);
        let four = beluga_plan(n, PathSelection::THREE_GPUS_WITH_HOST);
        assert!(two.predicted_bandwidth > direct.predicted_bandwidth * 1.5);
        assert!(three.predicted_bandwidth > two.predicted_bandwidth);
        assert!(four.predicted_bandwidth > three.predicted_bandwidth);
        // Headline shape: ~3x for 3 GPU paths + host on Beluga.
        let speedup = four.predicted_bandwidth / direct.predicted_bandwidth;
        assert!(
            (2.5..3.6).contains(&speedup),
            "speedup {speedup} out of the expected band"
        );
    }

    #[test]
    fn staged_paths_get_multiple_chunks_for_large_messages() {
        let plan = beluga_plan(256 * MIB, PathSelection::THREE_GPUS);
        for p in &plan.paths[1..] {
            assert!(p.chunks > 1, "path {} should pipeline, got k=1", p.index);
        }
        assert_eq!(plan.paths[0].chunks, 1, "direct path never chunks");
    }

    #[test]
    fn chunk_size_floor_respected() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let plan = p
            .plan(gpus[0], gpus[1], 4 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        for pp in plan.active_paths() {
            if pp.index > 0 {
                let chunk = pp.share_bytes / pp.chunks as usize;
                assert!(
                    chunk >= p.config().min_chunk_bytes || pp.chunks == 1,
                    "path {}: chunk {} below floor",
                    pp.index,
                    chunk
                );
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_plans() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let a = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let b = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            p.stats(),
            PlannerStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
    }

    /// Regression guard for the atomic-counter redesign: a stats
    /// snapshot must not touch the shard locks. Holding every shard's
    /// write lock while snapshotting would deadlock (parking_lot locks
    /// are not reentrant) if `stats()` ever went back to reading
    /// counters from under the maps — failing the suite by timeout.
    #[test]
    fn stats_snapshot_never_touches_shard_locks() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let _guards: Vec<_> = p.cache.shards.iter().map(|s| s.write()).collect();
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
    }

    #[test]
    fn cache_distinguishes_sizes_and_selections() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], 4 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], 2 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        assert_eq!(p.stats().misses, 3);
    }

    #[test]
    fn unpipelined_mode_prediction_is_slower() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let piped = Planner::new(topo.clone())
            .plan(gpus[0], gpus[1], 256 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        let unpiped = Planner::with_config(
            topo,
            PlannerConfig {
                mode: PipelineMode::Unpipelined,
                ..PlannerConfig::default()
            },
        )
        .plan(gpus[0], gpus[1], 256 * MIB, PathSelection::THREE_GPUS)
        .unwrap();
        assert!(piped.predicted_time < unpiped.predicted_time);
    }

    #[test]
    fn narval_host_share_smaller_than_beluga_host_share() {
        // Observation 3: Narval's NUMA layout makes its host path weaker.
        let host_share = |topo: Topology| {
            let p = planner(topo);
            let gpus = p.topology().gpus();
            let plan = p
                .plan(
                    gpus[0],
                    gpus[1],
                    256 * MIB,
                    PathSelection::THREE_GPUS_WITH_HOST,
                )
                .unwrap();
            plan.paths.last().unwrap().theta
        };
        let beluga = host_share(presets::beluga());
        let narval = host_share(presets::narval());
        assert!(
            narval < beluga,
            "narval host share {narval} should trail beluga {beluga}"
        );
    }

    #[test]
    fn plan_rejects_non_gpu_endpoints() {
        let p = planner(presets::beluga());
        let hm = p.topology().host_memories()[0];
        let g0 = p.topology().gpus()[0];
        assert!(p.plan(hm, g0, MIB, PathSelection::DIRECT_ONLY).is_err());
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_plan_panics() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let _ = p.plan(gpus[0], gpus[1], 0, PathSelection::DIRECT_ONLY);
    }

    #[test]
    fn windowed_bandwidth_amortizes_fixed_costs() {
        let plan = beluga_plan(2 * MIB, PathSelection::THREE_GPUS);
        let w1 = plan.predicted_windowed_bandwidth(1);
        let w16 = plan.predicted_windowed_bandwidth(16);
        assert!((w1 - plan.predicted_bandwidth).abs() < 1e-3 * w1);
        assert!(w16 > w1, "window must raise small-message bandwidth");
        // Bounded by the streaming asymptote.
        let asymptote = plan.n as f64
            / plan
                .paths
                .iter()
                .filter(|p| p.share_bytes > 0)
                .map(|p| p.predicted_time - p.params.delta_unpipelined())
                .fold(0.0f64, f64::max);
        assert!(w16 <= asymptote * 1.001);
    }

    #[test]
    fn windowed_bandwidth_matters_less_for_large_messages() {
        let small = beluga_plan(2 * MIB, PathSelection::THREE_GPUS);
        let large = beluga_plan(256 * MIB, PathSelection::THREE_GPUS);
        let lift = |p: &TransferPlan| {
            p.predicted_windowed_bandwidth(16) / p.predicted_windowed_bandwidth(1)
        };
        assert!(lift(&small) > lift(&large));
        assert!(lift(&large) < 1.01, "256 MB is latency-insensitive");
    }

    fn quantizing_planner(topo: Topology) -> Planner {
        Planner::with_config(
            Arc::new(topo),
            PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
        )
    }

    #[test]
    fn size_classes_are_geometric() {
        let sc = SizeClassConfig::ENABLED;
        // Same octave, same quarter → same class.
        assert_eq!(sc.class_of(16 * MIB), sc.class_of(16 * MIB + 4096));
        // A doubling advances by `per_octave` classes.
        assert_eq!(sc.class_of(32 * MIB), sc.class_of(16 * MIB) + sc.per_octave);
    }

    #[test]
    fn nearby_sizes_share_one_solve() {
        let p = quantizing_planner(presets::beluga());
        let gpus = p.topology().gpus();
        let a = p
            .plan(gpus[0], gpus[1], 64 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        // A size in the same class: realized from the class entry, not
        // re-solved.
        let n2 = 64 * MIB + 8192;
        let b = p
            .plan(gpus[0], gpus[1], n2, PathSelection::THREE_GPUS)
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.class_hits, 1, "{stats:?}");
        // The realized plan is exact in the ways that matter: every byte
        // assigned, and predicted time within ε of the exact solve.
        assert_eq!(b.paths.iter().map(|pp| pp.share_bytes).sum::<usize>(), n2);
        let exact = Planner::new(p.topology().clone())
            .plan(gpus[0], gpus[1], n2, PathSelection::THREE_GPUS)
            .unwrap();
        let eps = p.config().size_classes.epsilon;
        assert!(
            b.predicted_time <= exact.predicted_time * (1.0 + eps) + 1e-12,
            "quantized {} vs exact {}",
            b.predicted_time,
            exact.predicted_time
        );
        assert!(a.predicted_time > 0.0);
    }

    #[test]
    fn small_messages_keep_exact_keys() {
        let p = quantizing_planner(presets::beluga());
        let gpus = p.topology().gpus();
        let below = p.config().size_classes.exact_below;
        p.plan(gpus[0], gpus[1], below / 2, PathSelection::THREE_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], below / 2 + 64, PathSelection::THREE_GPUS)
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.class_hits, 0, "{stats:?}");
    }

    #[test]
    fn quantization_off_by_default() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        p.plan(gpus[0], gpus[1], 64 * MIB, PathSelection::THREE_GPUS)
            .unwrap();
        p.plan(gpus[0], gpus[1], 64 * MIB + 8192, PathSelection::THREE_GPUS)
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats.misses, 2, "exact keying must re-solve: {stats:?}");
        assert_eq!(stats.class_hits, 0);
    }

    #[test]
    fn invalidate_pair_forgets_only_that_pair() {
        let p = planner(presets::beluga());
        let gpus = p.topology().gpus();
        let a1 = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let b1 = p
            .plan(gpus[0], gpus[2], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let sel = PathSelection::TWO_GPUS;
        p.invalidate_pair((gpus[0], gpus[1], sel.max_gpu_staged, sel.host_staged));
        let a2 = p
            .plan(gpus[0], gpus[1], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        let b2 = p
            .plan(gpus[0], gpus[2], 2 * MIB, PathSelection::TWO_GPUS)
            .unwrap();
        assert!(!Arc::ptr_eq(&a1, &a2), "invalidated pair must re-solve");
        assert!(Arc::ptr_eq(&b1, &b2), "other pair must stay cached");
        let stats = p.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn theta_distribution_shifts_with_message_size() {
        // Fig. 4's qualitative shape: the direct share shrinks toward its
        // asymptote as n grows, staged shares grow.
        let direct_theta = |n: usize| beluga_plan(n, PathSelection::THREE_GPUS).paths[0].theta;
        let small = direct_theta(2 * MIB);
        let large = direct_theta(512 * MIB);
        assert!(
            small > large,
            "direct share should shrink: {small} -> {large}"
        );
        assert!(large > 0.3, "direct keeps the largest share: {large}");
    }
}
