//! Fitting Hockney parameters from measurements (paper Fig. 2(a) Step 1:
//! "performance model parameters are extracted once per system topology").
//!
//! A sweep of `(message size, completion time)` probe samples on one link
//! is fit to `t = α + n/β` by ordinary least squares. The slope gives the
//! asymptotic inverse bandwidth, the intercept the startup latency.

use mpx_topo::params::LegParams;
use mpx_topo::units::Secs;
use std::fmt;

/// Why a calibration failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// Fewer than two distinct message sizes.
    NotEnoughSamples,
    /// The fitted slope was non-positive (noise dominates, or the samples
    /// are degenerate).
    NonPositiveSlope(f64),
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::NotEnoughSamples => {
                write!(f, "need at least two samples with distinct sizes")
            }
            CalibrationError::NonPositiveSlope(s) => {
                write!(f, "fitted slope {s} is not positive")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Least-squares fit of `t = α + n/β` over `(bytes, seconds)` samples.
/// The fitted `α` is clamped to zero from below (a tiny negative
/// intercept is measurement noise, and a negative startup latency would
/// poison the share optimizer).
pub fn fit_hockney(samples: &[(f64, Secs)]) -> Result<LegParams, CalibrationError> {
    let n = samples.len() as f64;
    if samples.len() < 2 {
        return Err(CalibrationError::NotEnoughSamples);
    }
    let mean_x: f64 = samples.iter().map(|s| s.0).sum::<f64>() / n;
    let mean_y: f64 = samples.iter().map(|s| s.1).sum::<f64>() / n;
    let sxx: f64 = samples.iter().map(|s| (s.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return Err(CalibrationError::NotEnoughSamples);
    }
    let sxy: f64 = samples
        .iter()
        .map(|s| (s.0 - mean_x) * (s.1 - mean_y))
        .sum();
    let slope = sxy / sxx;
    if slope <= 0.0 || !slope.is_finite() {
        return Err(CalibrationError::NonPositiveSlope(slope));
    }
    let intercept = (mean_y - slope * mean_x).max(0.0);
    Ok(LegParams {
        alpha: intercept,
        beta: 1.0 / slope,
    })
}

/// Convenience: fit from a bandwidth sweep `(bytes, bytes-per-second)`
/// as reported by OSU-style benchmarks.
pub fn fit_hockney_from_bandwidth(samples: &[(f64, f64)]) -> Result<LegParams, CalibrationError> {
    let times: Vec<(f64, Secs)> = samples.iter().map(|&(n, bw)| (n, n / bw)).collect();
    fit_hockney(&times)
}

/// Goodness-of-fit: RMS relative residual of the fitted law over the
/// samples. Useful to flag links whose behaviour is not Hockney-linear
/// (Observation 4's small-message regime).
pub fn relative_rms_error(params: &LegParams, samples: &[(f64, Secs)]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let sum: f64 = samples
        .iter()
        .map(|&(n, t)| {
            let pred = params.time(n);
            ((pred - t) / t).powi(2)
        })
        .sum();
    (sum / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::units::gb_per_s;

    fn exact_samples(alpha: f64, beta: f64) -> Vec<(f64, Secs)> {
        [1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28]
            .iter()
            .map(|&n| (n as f64, alpha + n as f64 / beta))
            .collect()
    }

    #[test]
    fn recovers_exact_parameters() {
        let fit = fit_hockney(&exact_samples(2e-6, gb_per_s(48.0))).unwrap();
        assert!((fit.alpha - 2e-6).abs() < 1e-12);
        assert!((fit.beta - 48e9).abs() / 48e9 < 1e-12);
    }

    #[test]
    fn tolerates_multiplicative_noise() {
        let mut samples = exact_samples(5e-6, gb_per_s(12.0));
        for (i, s) in samples.iter_mut().enumerate() {
            s.1 *= 1.0 + if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let fit = fit_hockney(&samples).unwrap();
        assert!((fit.beta - 12e9).abs() / 12e9 < 0.05);
    }

    #[test]
    fn negative_intercept_clamped_to_zero() {
        // Slightly superlinear small-message behaviour can pull the
        // intercept negative; it must clamp.
        let samples = vec![(1e6, 0.9e-4), (2e6, 2.0e-4), (4e6, 4.2e-4)];
        let fit = fit_hockney(&samples).unwrap();
        assert!(fit.alpha >= 0.0);
    }

    #[test]
    fn too_few_samples_rejected() {
        assert_eq!(
            fit_hockney(&[(1e6, 1e-3)]),
            Err(CalibrationError::NotEnoughSamples)
        );
        assert_eq!(
            fit_hockney(&[(1e6, 1e-3), (1e6, 2e-3)]),
            Err(CalibrationError::NotEnoughSamples)
        );
    }

    #[test]
    fn decreasing_times_rejected() {
        let samples = vec![(1e6, 2e-3), (2e6, 1e-3), (4e6, 0.5e-3)];
        assert!(matches!(
            fit_hockney(&samples),
            Err(CalibrationError::NonPositiveSlope(_))
        ));
    }

    #[test]
    fn bandwidth_sweep_fit() {
        let alpha = 3e-6;
        let beta = gb_per_s(24.0);
        let sweep: Vec<(f64, f64)> = [1 << 20, 1 << 24, 1 << 28]
            .iter()
            .map(|&n| {
                let n = n as f64;
                (n, n / (alpha + n / beta))
            })
            .collect();
        let fit = fit_hockney_from_bandwidth(&sweep).unwrap();
        assert!((fit.beta - beta).abs() / beta < 1e-9);
        assert!((fit.alpha - alpha).abs() < 1e-10);
    }

    #[test]
    fn rms_error_zero_on_exact_fit() {
        let samples = exact_samples(2e-6, gb_per_s(48.0));
        let fit = fit_hockney(&samples).unwrap();
        assert!(relative_rms_error(&fit, &samples) < 1e-9);
    }

    #[test]
    fn rms_error_flags_nonlinear_data() {
        let fit = LegParams {
            alpha: 0.0,
            beta: gb_per_s(48.0),
        };
        // Times 2x the linear law → relative error 1.
        let samples: Vec<(f64, Secs)> = [1e6, 4e6].iter().map(|&n| (n, 2.0 * n / 48e9)).collect();
        assert!((relative_rms_error(&fit, &samples) - 0.5).abs() < 1e-12);
    }
}
