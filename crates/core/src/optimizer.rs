//! Optimal message-share computation (paper Sections 3.2–3.4).
//!
//! Every variant of the model reduces a path to an affine time law
//! `Tᵢ(θᵢ) = θᵢ·n·Ωᵢ + Δᵢ` (Eq. 21) — direct paths via `Ωᵢ = 1/βᵢ,
//! Δᵢ = αᵢ`, staged paths via Eq. (11)'s definitions, pipelined staged
//! paths via the φ-linearized Eq. (22). Minimizing `max_i Tᵢ` subject to
//! `Σθᵢ = 1, θᵢ ≥ 0` is then solved two ways:
//!
//! * [`optimal_shares`] — the paper's closed form (Eq. 24), extended with
//!   the exclusion loop Algorithm 1 implies ("any path, except the direct
//!   one, may be excluded"): paths whose closed-form share is negative
//!   (their `Δᵢ` exceeds the equalized time at this message size) are
//!   dropped and the remainder re-solved.
//! * [`optimal_shares_bisection`] — an independent numeric reference:
//!   for a candidate completion time `T`, each path can absorb
//!   `θᵢ(T) = max(0, (T−Δᵢ)/(n·Ωᵢ))`; `Σθᵢ(T)` is continuous and
//!   increasing in `T`, so the optimal `T` is found by bisection. Tests
//!   assert both agree, which is the computational content of Theorem 1.

use serde::{Deserialize, Serialize};

/// The affine coefficients of one path's time law `T(θ) = θ·n·Ω + Δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmegaDelta {
    /// Per-byte cost `Ω` (s/byte): `1/β` for direct paths, `1/β + 1/β′`
    /// unpipelined staged, Eq. (22) pipelined.
    pub omega: f64,
    /// Fixed cost `Δ` (s): `α`, `α + α′ + ε`, or Eq. (22).
    pub delta: f64,
}

impl OmegaDelta {
    /// Time to move a `theta` fraction of an `n`-byte message.
    #[inline]
    pub fn time(&self, theta: f64, n: f64) -> f64 {
        theta * n * self.omega + self.delta
    }
}

/// Result of a share optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareSolution {
    /// Per-path share `θᵢ ∈ [0, 1]`, summing to 1. Excluded paths have 0.
    pub shares: Vec<f64>,
    /// The equalized (= maximal) per-path completion time.
    pub time: f64,
}

impl ShareSolution {
    /// Predicted aggregate bandwidth `n / T` in bytes/s.
    pub fn bandwidth(&self, n: f64) -> f64 {
        n / self.time
    }
}

/// Closed-form optimal shares (Eq. 24) with the exclusion loop.
///
/// By convention `paths[0]` is the direct path; on physical topologies it
/// has the smallest `Δ` and is therefore never excluded, matching the
/// paper's statement that only non-direct paths can drop out.
///
/// ```
/// use mpx_model::{optimal_shares, OmegaDelta};
/// // A 48 GB/s direct link and a 12 GB/s detour with 20 µs of setup.
/// let paths = [
///     OmegaDelta { omega: 1.0 / 48e9, delta: 2e-6 },
///     OmegaDelta { omega: 1.0 / 12e9, delta: 20e-6 },
/// ];
/// let sol = optimal_shares(&paths, 64e6);
/// assert!(sol.shares[0] > sol.shares[1]); // bandwidth-proportional-ish
/// assert!((sol.shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// // Both active paths finish at the equalized time (Theorem 1).
/// assert!((paths[0].time(sol.shares[0], 64e6) - sol.time).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `paths` is empty, `n ≤ 0`, or any `Ωᵢ ≤ 0` / `Δᵢ < 0`.
pub fn optimal_shares(paths: &[OmegaDelta], n: f64) -> ShareSolution {
    validate(paths, n);
    let mut included: Vec<usize> = (0..paths.len()).collect();
    loop {
        let sol = closed_form(paths, &included, n);
        // Drop the most negative share and re-solve. (In the paper only
        // non-direct paths can be excluded; that holds automatically on
        // real topologies because the direct path has the smallest Δ, but
        // the solver stays correct for adversarial inputs by allowing any
        // exclusion — except the last remaining path.)
        let mut worst: Option<(usize, f64)> = None;
        for (&pi, &theta) in included.iter().zip(&sol) {
            if theta < 0.0 && worst.is_none_or(|(_, w)| theta < w) {
                worst = Some((pi, theta));
            }
        }
        match worst {
            Some((pi, _)) if included.len() > 1 => included.retain(|&x| x != pi),
            _ => {
                let mut shares = vec![0.0; paths.len()];
                for (&pi, &theta) in included.iter().zip(&sol) {
                    shares[pi] = theta.max(0.0);
                }
                // Normalize away rounding residue.
                let sum: f64 = shares.iter().sum();
                debug_assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
                for s in &mut shares {
                    *s /= sum;
                }
                let time = shares
                    .iter()
                    .zip(paths)
                    .filter(|(s, _)| **s > 0.0)
                    .map(|(s, p)| p.time(*s, n))
                    .fold(0.0f64, f64::max);
                return ShareSolution { shares, time };
            }
        }
    }
}

/// The equalized completion time of [`optimal_shares`] without
/// materializing the shares — the allocation-free form the plan cache's
/// ε guard runs on every size-class hit.
///
/// Mirrors the closed form's exclusion loop over an inclusion bitmask:
/// each round computes `T = (n + Σ Δⱼ/Ωⱼ) / Σ 1/Ωⱼ` over the included
/// set (algebraically the equalized time of Eq. 24) and drops the path
/// with the most negative share, i.e. the largest `Δᵢ > T`.
///
/// # Panics
/// Panics on invalid inputs (as [`optimal_shares`]) or on more than 128
/// candidate paths.
pub fn optimal_time(paths: &[OmegaDelta], n: f64) -> f64 {
    validate(paths, n);
    assert!(paths.len() <= 128, "too many candidate paths");
    let mut included: u128 = if paths.len() == 128 {
        u128::MAX
    } else {
        (1u128 << paths.len()) - 1
    };
    loop {
        let mut s = 0.0;
        let mut d = 0.0;
        for (i, p) in paths.iter().enumerate() {
            if included & (1 << i) != 0 {
                s += 1.0 / p.omega;
                d += p.delta / p.omega;
            }
        }
        let t = (n + d) / s;
        // θᵢ < 0 ⇔ Δᵢ > T; drop the most negative share, i.e. the
        // largest (Δᵢ − T)/Ωᵢ... the same ordering as the largest
        // (T − Δᵢ) deficit scaled by 1/Ωᵢ used in `optimal_shares`.
        let mut worst: Option<(usize, f64)> = None;
        for (i, p) in paths.iter().enumerate() {
            if included & (1 << i) == 0 {
                continue;
            }
            let raw = (t - p.delta) / (n * p.omega);
            if raw < 0.0 && worst.is_none_or(|(_, w)| raw < w) {
                worst = Some((i, raw));
            }
        }
        match worst {
            Some((i, _)) if included.count_ones() > 1 => included &= !(1 << i),
            _ => return t,
        }
    }
}

/// Eq. (24) restricted to `included` (indices into `paths`): returns the
/// raw, possibly-negative shares in `included` order.
fn closed_form(paths: &[OmegaDelta], included: &[usize], n: f64) -> Vec<f64> {
    assert!(!included.is_empty());
    // S = Σ 1/Ωⱼ,   D = Σ Δⱼ/Ωⱼ
    let s: f64 = included.iter().map(|&j| 1.0 / paths[j].omega).sum();
    let d: f64 = included
        .iter()
        .map(|&j| paths[j].delta / paths[j].omega)
        .sum();
    included
        .iter()
        .map(|&i| {
            let p = &paths[i];
            (1.0 - p.delta / n * s + d / n) / (p.omega * s)
        })
        .collect()
}

/// Numeric reference solver: bisection on the completion time `T`.
///
/// At a given `T`, path `i` can carry `θᵢ(T) = max(0, (T−Δᵢ)/(n·Ωᵢ))`.
/// The total is continuous, non-decreasing and unbounded in `T`, so the
/// unique `T*` with `Σθᵢ(T*) = 1` is the optimum (this is the
/// "water-filling" reading of Theorem 1).
pub fn optimal_shares_bisection(paths: &[OmegaDelta], n: f64) -> ShareSolution {
    validate(paths, n);
    let total_at = |t: f64| -> f64 {
        paths
            .iter()
            .map(|p| ((t - p.delta) / (n * p.omega)).max(0.0))
            .sum()
    };
    // Bracket: at T = min Δ the total is 0; grow until ≥ 1.
    let mut lo = paths.iter().map(|p| p.delta).fold(f64::INFINITY, f64::min);
    let mut hi = lo.max(1e-12) * 2.0 + n * paths[0].omega + paths[0].delta;
    while total_at(hi) < 1.0 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total_at(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-18 + 1e-15 * hi {
            break;
        }
    }
    let t = hi;
    let mut shares: Vec<f64> = paths
        .iter()
        .map(|p| ((t - p.delta) / (n * p.omega)).max(0.0))
        .collect();
    let sum: f64 = shares.iter().sum();
    for s in &mut shares {
        *s /= sum;
    }
    ShareSolution { shares, time: t }
}

fn validate(paths: &[OmegaDelta], n: f64) {
    assert!(!paths.is_empty(), "no candidate paths");
    assert!(n > 0.0 && n.is_finite(), "invalid message size {n}");
    for (i, p) in paths.iter().enumerate() {
        assert!(
            p.omega > 0.0 && p.omega.is_finite(),
            "path {i}: invalid omega {}",
            p.omega
        );
        assert!(
            p.delta >= 0.0 && p.delta.is_finite(),
            "path {i}: invalid delta {}",
            p.delta
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn od(omega: f64, delta: f64) -> OmegaDelta {
        OmegaDelta { omega, delta }
    }

    /// Direct Eq. (8) check: two direct paths with zero latency split
    /// proportionally to bandwidth.
    #[test]
    fn zero_latency_split_is_bandwidth_proportional() {
        // β₁ = 30 GB/s, β₂ = 10 GB/s → θ = (0.75, 0.25).
        let paths = [od(1.0 / 30e9, 0.0), od(1.0 / 10e9, 0.0)];
        let sol = optimal_shares(&paths, 1e9);
        assert!((sol.shares[0] - 0.75).abs() < 1e-12);
        assert!((sol.shares[1] - 0.25).abs() < 1e-12);
        // Equalized time: 0.75 GB / 30 GB/s = 25 ms.
        assert!((sol.time - 0.025).abs() < 1e-12);
    }

    #[test]
    fn single_path_gets_everything() {
        let sol = optimal_shares(&[od(1.0 / 50e9, 2e-6)], 1e8);
        assert_eq!(sol.shares, vec![1.0]);
        assert!((sol.time - (2e-6 + 1e8 / 50e9)).abs() < 1e-12);
    }

    /// Theorem 1: at the optimum, per-path times are equal for all paths
    /// carrying a positive share.
    #[test]
    fn optimal_times_are_equal_across_active_paths() {
        let paths = [
            od(1.0 / 48e9, 3e-6),
            od(1.0 / 48e9 + 0.2 / 48e9, 9e-6),
            od(1.0 / 12e9 + 1.0 / 12e9, 15e-6),
        ];
        let n = 64e6;
        let sol = optimal_shares(&paths, n);
        let times: Vec<f64> = paths
            .iter()
            .zip(&sol.shares)
            .filter(|(_, s)| **s > 0.0)
            .map(|(p, s)| p.time(*s, n))
            .collect();
        for t in &times {
            assert!(
                (t - sol.time).abs() < 1e-12 * sol.time.max(1.0),
                "times {times:?} not equalized at {}",
                sol.time
            );
        }
    }

    /// Perturbation check of optimality: moving mass between any two
    /// active paths cannot reduce the makespan.
    #[test]
    fn perturbations_do_not_improve() {
        let paths = [
            od(1.0 / 48e9, 3e-6),
            od(1.0 / 40e9, 8e-6),
            od(1.0 / 10e9, 20e-6),
        ];
        let n = 16e6;
        let sol = optimal_shares(&paths, n);
        let makespan = |shares: &[f64]| -> f64 {
            shares
                .iter()
                .zip(&paths)
                .filter(|(s, _)| **s > 0.0)
                .map(|(s, p)| p.time(*s, n))
                .fold(0.0f64, f64::max)
        };
        let base = makespan(&sol.shares);
        let eps = 1e-3;
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                if i == j || sol.shares[i] < eps {
                    continue;
                }
                let mut s = sol.shares.clone();
                s[i] -= eps;
                s[j] += eps;
                assert!(
                    makespan(&s) >= base - 1e-15,
                    "moving {eps} from {i} to {j} improved the makespan"
                );
            }
        }
    }

    /// Exclusion: at small n a high-Δ path must receive zero share, and
    /// the direct path is never dropped.
    #[test]
    fn expensive_path_excluded_for_small_messages() {
        let paths = [
            od(1.0 / 48e9, 2e-6),
            od(1.0 / 12e9, 500e-6), // huge startup cost
        ];
        let n = 4096.0;
        let sol = optimal_shares(&paths, n);
        assert_eq!(sol.shares[1], 0.0, "host path must be excluded");
        assert!((sol.shares[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excluded_path_rejoins_for_large_messages() {
        let paths = [od(1.0 / 48e9, 2e-6), od(1.0 / 12e9, 500e-6)];
        let sol = optimal_shares(&paths, 1e9);
        assert!(sol.shares[1] > 0.0, "large n should re-include the path");
    }

    /// `optimal_time` must reproduce `optimal_shares`' equalized time
    /// exactly — it is the same exclusion loop without the shares.
    #[test]
    fn optimal_time_matches_optimal_shares() {
        let cases: Vec<Vec<OmegaDelta>> = vec![
            vec![od(1.0 / 48e9, 2e-6)],
            vec![od(1.0 / 48e9, 3e-6), od(1.0 / 48e9, 9e-6)],
            vec![od(1.0 / 48e9, 2e-6), od(1.0 / 12e9, 500e-6)],
            vec![
                od(1.0 / 48e9, 3e-6),
                od(1.05 / 48e9, 9e-6),
                od(1.05 / 48e9, 9e-6),
                od(1.0 / 6e9, 20e-6),
            ],
        ];
        for paths in &cases {
            for n in [4e3, 64e3, 1e6, 16e6, 256e6, 512e6] {
                let full = optimal_shares(paths, n);
                let fast = optimal_time(paths, n);
                assert!(
                    (full.time - fast).abs() <= 1e-12 * full.time.max(1e-12),
                    "n={n}: {} vs {}",
                    full.time,
                    fast
                );
            }
        }
    }

    /// The closed form (Eq. 24) and the bisection reference must agree.
    #[test]
    fn closed_form_matches_bisection() {
        let cases: Vec<Vec<OmegaDelta>> = vec![
            vec![od(1.0 / 48e9, 3e-6), od(1.0 / 48e9, 9e-6)],
            vec![
                od(1.0 / 48e9, 3e-6),
                od(1.05 / 48e9, 9e-6),
                od(1.05 / 48e9, 9e-6),
                od(1.0 / 6e9, 20e-6),
            ],
            vec![od(1.0 / 96e9, 1.5e-6), od(1.0 / 10e9, 300e-6)],
        ];
        for paths in &cases {
            for n in [64e3, 1e6, 16e6, 256e6, 512e6] {
                let a = optimal_shares(paths, n);
                let b = optimal_shares_bisection(paths, n);
                assert!(
                    (a.time - b.time).abs() < 1e-9 * b.time,
                    "time mismatch at n={n}: {} vs {}",
                    a.time,
                    b.time
                );
                for (x, y) in a.shares.iter().zip(&b.shares) {
                    assert!(
                        (x - y).abs() < 1e-6,
                        "shares {:?} vs {:?}",
                        a.shares,
                        b.shares
                    );
                }
            }
        }
    }

    #[test]
    fn equal_paths_split_equally() {
        let p = od(1.0 / 48e9, 5e-6);
        let sol = optimal_shares(&[p, p, p, p], 64e6);
        for s in &sol.shares {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_bandwidth_gets_larger_share() {
        let paths = [od(1.0 / 96e9, 2e-6), od(1.0 / 12e9, 2e-6)];
        let sol = optimal_shares(&paths, 256e6);
        assert!(sol.shares[0] > sol.shares[1]);
        // With equal latencies the split is exactly β-proportional.
        assert!((sol.shares[0] / sol.shares[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn higher_latency_gets_smaller_share() {
        let paths = [od(1.0 / 48e9, 2e-6), od(1.0 / 48e9, 50e-6)];
        let sol = optimal_shares(&paths, 8e6);
        assert!(sol.shares[0] > sol.shares[1]);
    }

    #[test]
    fn shares_sum_to_one() {
        let paths = [
            od(1.0 / 48e9, 3e-6),
            od(1.1 / 48e9, 9e-6),
            od(1.0 / 6e9, 250e-6),
        ];
        for n in [4e3, 1e6, 64e6, 512e6] {
            let sol = optimal_shares(&paths, n);
            let sum: f64 = sol.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n}: sum={sum}");
        }
    }

    #[test]
    #[should_panic(expected = "no candidate paths")]
    fn empty_paths_panics() {
        optimal_shares(&[], 1e6);
    }

    #[test]
    #[should_panic(expected = "invalid message size")]
    fn zero_n_panics() {
        optimal_shares(&[od(1e-9, 0.0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid omega")]
    fn non_positive_omega_panics() {
        optimal_shares(&[od(0.0, 0.0)], 1e6);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_paths() -> impl Strategy<Value = Vec<OmegaDelta>> {
            proptest::collection::vec(
                (1.0f64..100.0, 0.0f64..1e-3)
                    .prop_map(|(gbps, delta)| od(1.0 / (gbps * 1e9), delta)),
                1..6,
            )
        }

        proptest! {
            #[test]
            fn solution_is_a_distribution(paths in arb_paths(), n in 1e3f64..1e9) {
                let sol = optimal_shares(&paths, n);
                let sum: f64 = sol.shares.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                for s in &sol.shares {
                    prop_assert!(*s >= 0.0 && *s <= 1.0 + 1e-9);
                }
            }

            #[test]
            fn never_worse_than_direct_only(paths in arb_paths(), n in 1e3f64..1e9) {
                let sol = optimal_shares(&paths, n);
                let direct_only = paths[0].time(1.0, n);
                prop_assert!(sol.time <= direct_only * (1.0 + 1e-9),
                    "multi-path {} worse than direct {}", sol.time, direct_only);
            }

            #[test]
            fn agrees_with_bisection(paths in arb_paths(), n in 1e3f64..1e9) {
                let a = optimal_shares(&paths, n);
                let b = optimal_shares_bisection(&paths, n);
                prop_assert!((a.time - b.time).abs() < 1e-6 * b.time.max(1e-12),
                    "{} vs {}", a.time, b.time);
            }

            #[test]
            fn optimal_time_agrees_with_shares(paths in arb_paths(), n in 1e3f64..1e9) {
                let full = optimal_shares(&paths, n);
                let fast = optimal_time(&paths, n);
                prop_assert!((full.time - fast).abs() <= 1e-9 * full.time.max(1e-12),
                    "{} vs {}", full.time, fast);
            }

            #[test]
            fn active_paths_have_equal_times(paths in arb_paths(), n in 1e3f64..1e9) {
                let sol = optimal_shares(&paths, n);
                for (p, s) in paths.iter().zip(&sol.shares) {
                    if *s > 1e-9 {
                        let t = p.time(*s, n);
                        prop_assert!((t - sol.time).abs() < 1e-9 * sol.time.max(1e-12),
                            "active path time {t} != equalized {}", sol.time);
                    }
                }
            }
        }
    }
}
