//! The classical Hockney model (Eq. 1) and small helpers shared by the
//! rest of the crate.

use mpx_topo::units::{Bandwidth, Secs};

/// Hockney's linear law: `T = α + n/β` (Eq. 1).
#[inline]
pub fn hockney_time(alpha: Secs, beta: Bandwidth, bytes: f64) -> Secs {
    alpha + bytes / beta
}

/// The effective bandwidth `n / T(n)` of a Hockney channel — asymptotes
/// to `β` as `n → ∞`.
#[inline]
pub fn effective_bandwidth(alpha: Secs, beta: Bandwidth, bytes: f64) -> Bandwidth {
    bytes / hockney_time(alpha, beta, bytes)
}

/// The half-performance message size `n_{1/2} = α·β`: the size at which
/// the channel reaches half its asymptotic bandwidth. A classic Hockney
/// figure of merit, used in reporting.
#[inline]
pub fn half_performance_size(alpha: Secs, beta: Bandwidth) -> f64 {
    alpha * beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::units::gb_per_s;

    #[test]
    fn time_is_affine() {
        let t = hockney_time(2e-6, gb_per_s(50.0), 50e9);
        assert!((t - 1.000002).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth_asymptote() {
        let beta = gb_per_s(48.0);
        let small = effective_bandwidth(2e-6, beta, 4096.0);
        let large = effective_bandwidth(2e-6, beta, 1e12);
        assert!(small < 0.1 * beta);
        assert!(large > 0.999 * beta);
    }

    #[test]
    fn half_performance_point() {
        let alpha = 2e-6;
        let beta = gb_per_s(48.0);
        let n_half = half_performance_size(alpha, beta);
        let bw = effective_bandwidth(alpha, beta, n_half);
        assert!((bw - beta / 2.0).abs() < 1e-3 * beta);
    }
}
