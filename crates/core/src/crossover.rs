//! Crossover analysis: at what message size does multi-path overtake the
//! direct path?
//!
//! For small messages the detours' startup costs (`Δᵢ`) exceed any
//! bandwidth gain and Algorithm 1 collapses to the direct path (visible
//! in Fig. 4: staged shares vanish toward 2 MB). The crossover point is
//! where a second path first earns a positive share: from Eq. (11), path
//! `i` enters when the equalized time exceeds its fixed cost, i.e. at
//!
//! ```text
//! n_i = (Δᵢ − Δ_d) · β_d        (Δ_d, β_d: the direct path's Δ, 1/Ω)
//! ```
//!
//! because below that size the direct path alone finishes before path
//! `i` could move its first byte.

use crate::optimizer::{optimal_shares, OmegaDelta};

/// The smallest message size (bytes) at which `path` would receive a
/// positive share next to `direct` alone. `None` if it never pays off
/// (`Ω` not better than nothing — with only two paths every finite-Ω
/// path eventually enters).
pub fn entry_size(direct: &OmegaDelta, path: &OmegaDelta) -> Option<f64> {
    if path.delta <= direct.delta {
        return Some(0.0); // enters immediately
    }
    // Path i first helps when T_direct(1.0) > Δᵢ: n/β_d + Δ_d > Δᵢ.
    let n = (path.delta - direct.delta) / direct.omega;
    n.is_finite().then_some(n)
}

/// The smallest size in `[lo, hi]` where the optimizer assigns every
/// path of `paths` a share above `min_share`, by bisection over the
/// monotone entry behaviour. Returns `None` if even `hi` doesn't.
pub fn full_activation_size(paths: &[OmegaDelta], min_share: f64, lo: f64, hi: f64) -> Option<f64> {
    let all_active = |n: f64| -> bool {
        optimal_shares(paths, n)
            .shares
            .iter()
            .all(|&s| s >= min_share)
    };
    if !all_active(hi) {
        return None;
    }
    if all_active(lo) {
        return Some(lo);
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..64 {
        let mid = (lo * hi).sqrt(); // geometric bisection: sizes span decades
        if all_active(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::omega_delta_unpipelined;
    use mpx_topo::params::extract_all;
    use mpx_topo::path::{enumerate_paths, PathSelection};
    use mpx_topo::presets;

    fn beluga_laws() -> Vec<OmegaDelta> {
        let topo = presets::beluga();
        let gpus = topo.gpus();
        let paths =
            enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        extract_all(&topo, &paths)
            .unwrap()
            .iter()
            .map(omega_delta_unpipelined)
            .collect()
    }

    #[test]
    fn entry_size_zero_for_equal_delta() {
        let d = OmegaDelta {
            omega: 1.0 / 48e9,
            delta: 2e-6,
        };
        assert_eq!(entry_size(&d, &d), Some(0.0));
    }

    #[test]
    fn entry_size_matches_share_activation() {
        // Around the predicted entry size, the optimizer's share for the
        // path flips from zero to positive.
        let laws = beluga_laws();
        let host = laws.last().unwrap();
        let n_entry = entry_size(&laws[0], host).unwrap();
        assert!(n_entry > 0.0);
        let below = optimal_shares(&laws, (n_entry * 0.5).max(1.0));
        let above = optimal_shares(&laws, n_entry * 4.0);
        assert_eq!(*below.shares.last().unwrap(), 0.0, "below entry: no share");
        assert!(
            *above.shares.last().unwrap() > 0.0,
            "above entry: positive share"
        );
    }

    #[test]
    fn full_activation_in_the_paper_band() {
        // On Beluga all four paths are active well inside the paper's
        // 2–512 MB sweep (Fig. 4c shows the host path alive at 2 MB).
        let laws = beluga_laws();
        let n = full_activation_size(&laws, 1e-3, 1e3, 1e9).expect("activates");
        assert!(
            n < 4e6,
            "all paths should be active below 4 MB, got {:.1} KB",
            n / 1e3
        );
    }

    #[test]
    fn tighter_share_floor_needs_larger_messages() {
        let laws = beluga_laws();
        let loose = full_activation_size(&laws, 1e-3, 1e3, 1e10).unwrap();
        let tight = full_activation_size(&laws, 0.05, 1e3, 1e10).unwrap();
        assert!(tight > loose, "5% floor {tight} vs 0.1% floor {loose}");
    }

    #[test]
    fn unreachable_floor_returns_none() {
        let laws = beluga_laws();
        // The host path's asymptotic share on Beluga is ~7%; demanding
        // 30% for every path can never happen.
        assert!(full_activation_size(&laws, 0.30, 1e3, 1e12).is_none());
    }
}
