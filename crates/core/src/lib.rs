//! # mpx-model — the paper's analytical performance model
//!
//! The primary contribution of *"Accelerating Intra-Node GPU
//! Communication: A Performance Model for Multi-Path Transfers"*: given a
//! topology's per-path Hockney parameters, compute — in closed form, with
//! no exhaustive search — how to split one point-to-point GPU transfer
//! across the direct, GPU-staged and host-staged paths so all paths
//! finish simultaneously (Theorem 1).
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Eq. 1 (Hockney) | [`hockney`] |
//! | Eq. 2–4 (per-path time) | `mpx_topo::params::PathParams` + [`optimizer::OmegaDelta`] |
//! | Theorem 1 + Eq. 8/11/24 (optimal shares) | [`optimizer::optimal_shares`] (closed form) and [`optimizer::optimal_shares_bisection`] (numeric cross-check) |
//! | Eq. 12–18 (pipelined chunks) | [`pipeline::time_pipelined`], [`pipeline::optimal_chunks_exact`] |
//! | Eq. 19–23 (φ linearization) | [`pipeline::topology_constant`], [`pipeline::omega_delta_pipelined`] |
//! | Algorithm 1 (+ config cache) | [`planner::Planner`] |
//! | Fig. 2(a) Step 1 (parameter extraction) | [`calibrate::fit_hockney`] |
//!
//! ```
//! use std::sync::Arc;
//! use mpx_model::Planner;
//! use mpx_topo::{presets, PathSelection};
//!
//! let planner = Planner::new(Arc::new(presets::beluga()));
//! let gpus = planner.topology().gpus();
//! let plan = planner
//!     .plan(gpus[0], gpus[1], 64 << 20, PathSelection::THREE_GPUS_WITH_HOST)
//!     .unwrap();
//! assert_eq!(plan.paths.iter().map(|p| p.share_bytes).sum::<usize>(), 64 << 20);
//! assert!(plan.predicted_bandwidth > 100e9); // beats the 48 GB/s direct link
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod calibrate;
pub mod collectives;
pub mod contention;
pub mod crossover;
pub mod hockney;
pub mod optimizer;
pub mod pipeline;
pub mod planner;
pub mod sensitivity;

pub use cache::{CacheCounters, ShardedMap};
pub use calibrate::{fit_hockney, fit_hockney_from_bandwidth, CalibrationError};
pub use collectives::{
    predict_allgather_rd, predict_allreduce_knomial, predict_allreduce_knomial_radix,
    predict_alltoall_bruck, predict_bcast_binomial, CollectivePrediction,
};
pub use contention::{plan_concurrent, ConcurrentPlan, ConcurrentTransfer};
pub use crossover::{entry_size, full_activation_size};
pub use optimizer::{
    optimal_shares, optimal_shares_bisection, optimal_time, OmegaDelta, ShareSolution,
};
pub use pipeline::{
    chunk_count, omega_delta_pipelined, omega_delta_unpipelined, optimal_chunks_exact,
    time_pipelined, time_pipelined_opt, topology_constant,
};
pub use planner::{
    quantize_shares, PairKey, PipelineMode, PlanCache, PlannedPath, Planner, PlannerConfig,
    PlannerStats, SizeClassConfig, TransferPlan,
};
pub use sensitivity::{bandwidth_regret_curve, perturb, regret, Perturb, SensitivityPoint};
