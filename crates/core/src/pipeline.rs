//! Pipelined staged transfers (paper Section 3.4, Eqs. 12–23).
//!
//! A staged path moves its share in `k` chunks through the three-step
//! loop *copy to staging → sync → copy to destination*. With pipelining
//! the two legs overlap; the slower leg paces the pipeline and the faster
//! leg contributes one chunk of exposed time (Eq. 13). The optimal chunk
//! count balances per-chunk startup cost against the exposed remainder
//! (Eqs. 14/15); because the resulting per-path time is no longer affine
//! in `θ`, the paper linearizes it through topology constants `φ`
//! (Eqs. 19–22) so the share optimizer keeps its closed form.

use crate::optimizer::OmegaDelta;
use mpx_topo::params::PathParams;
use mpx_topo::units::Secs;

/// Which leg paces a pipelined staged path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// `β < β′`: the source→staging leg is slower (Eq. 13 case 1).
    FirstLeg,
    /// `β ≥ β′`: the staging→destination leg is slower (case 2).
    SecondLeg,
}

/// Case split of Eq. (13): which leg limits the pipeline.
///
/// # Panics
/// Panics on a direct (single-leg) path.
pub fn bottleneck(p: &PathParams) -> Bottleneck {
    let second = p.second.expect("pipelining applies to staged paths only");
    if p.first.beta < second.beta {
        Bottleneck::FirstLeg
    } else {
        Bottleneck::SecondLeg
    }
}

/// Exact optimal chunk count (Eqs. 14/15), continuous (not yet clamped or
/// rounded): `√(θn/(αβ′))` or `√(θn/(β(ε+α′)))`.
pub fn optimal_chunks_exact(p: &PathParams, theta: f64, n: f64) -> f64 {
    let second = p.second.expect("pipelining applies to staged paths only");
    let load = theta * n;
    match bottleneck(p) {
        Bottleneck::FirstLeg => (load / (p.first.alpha * second.beta)).sqrt(),
        Bottleneck::SecondLeg => (load / (p.first.beta * (p.eps + second.alpha))).sqrt(),
    }
}

/// The integer chunk count the pipeline engine actually uses: the exact
/// optimum rounded and clamped to `[1, max_chunks]`.
pub fn chunk_count(p: &PathParams, theta: f64, n: f64, max_chunks: u32) -> u32 {
    if theta <= 0.0 || n <= 0.0 {
        return 1;
    }
    let k = optimal_chunks_exact(p, theta, n).round();
    (k as u32).clamp(1, max_chunks.max(1))
}

/// Exact pipelined path time for a given integer chunk count (Eq. 13).
pub fn time_pipelined(p: &PathParams, theta: f64, n: f64, k: u32) -> Secs {
    let second = p.second.expect("pipelining applies to staged paths only");
    let k = k.max(1) as f64;
    let chunk = theta * n / k;
    match bottleneck(p) {
        Bottleneck::FirstLeg => {
            k * (p.first.alpha + chunk / p.first.beta) + p.eps + second.alpha + chunk / second.beta
        }
        Bottleneck::SecondLeg => {
            p.first.alpha + chunk / p.first.beta + k * (p.eps + second.alpha + chunk / second.beta)
        }
    }
}

/// Exact pipelined path time at the *continuous-optimal* chunk count
/// (Eqs. 17/18): `2√(θnα/β′) + θn/β + ε + α′` (case 1) and symmetrically
/// for case 2.
pub fn time_pipelined_opt(p: &PathParams, theta: f64, n: f64) -> Secs {
    let second = p.second.expect("pipelining applies to staged paths only");
    let load = theta * n;
    match bottleneck(p) {
        Bottleneck::FirstLeg => {
            2.0 * (load * p.first.alpha / second.beta).sqrt()
                + load / p.first.beta
                + p.eps
                + second.alpha
        }
        Bottleneck::SecondLeg => {
            2.0 * (load * (p.eps + second.alpha) / p.first.beta).sqrt()
                + load / second.beta
                + p.first.alpha
        }
    }
}

/// Topology constant `φ` (Eq. 19) for one path at reference load
/// `θ_ref·n`: chosen so the linear chunk law `k = φ·x` meets the exact
/// optimum `k = √x` at the reference point, i.e. `φ = 1/√x_ref`.
///
/// The paper's "constants in the form of c·f(n)" are exactly this: `φ`
/// depends on the topology through `(α, β′, ε)` and on the operating
/// point through `√(θ_ref·n)`.
pub fn topology_constant(p: &PathParams, theta_ref: f64, n: f64) -> f64 {
    let x = x_ref(p, theta_ref, n);
    if !x.is_finite() {
        // Zero per-chunk cost (α = 0 or ε + α′ = 0): the optimum is
        // infinitely fine chunking; a vanishing φ makes the linearized
        // law degenerate to the bottleneck-leg rate with zero fixed
        // cost, which is the correct limit.
        return 1e-12;
    }
    if x <= 0.0 {
        1.0
    } else {
        1.0 / x.sqrt()
    }
}

/// The dimensionless reference operating point `x_ref` of Eqs. 14/15.
fn x_ref(p: &PathParams, theta_ref: f64, n: f64) -> f64 {
    let second = p.second.expect("pipelining applies to staged paths only");
    let load = theta_ref * n;
    match bottleneck(p) {
        Bottleneck::FirstLeg => load / (p.first.alpha * second.beta),
        Bottleneck::SecondLeg => load / (p.first.beta * (p.eps + second.alpha)),
    }
}

/// The linearized affine coefficients of a pipelined staged path
/// (Eq. 22), given its topology constant `φ`:
///
/// * case 1 (`β < β′`): `Ω = 1/β + φ/β′`, `Δ = ε + α′ + α/φ`;
/// * case 2 (`β ≥ β′`): `Ω = φ/β + 1/β′`, `Δ = α + (ε + α′)/φ`.
pub fn omega_delta_pipelined(p: &PathParams, phi: f64) -> OmegaDelta {
    let second = p.second.expect("pipelining applies to staged paths only");
    assert!(phi > 0.0 && phi.is_finite(), "invalid phi {phi}");
    match bottleneck(p) {
        Bottleneck::FirstLeg => OmegaDelta {
            omega: 1.0 / p.first.beta + phi / second.beta,
            delta: p.eps + second.alpha + p.first.alpha / phi,
        },
        Bottleneck::SecondLeg => OmegaDelta {
            omega: phi / p.first.beta + 1.0 / second.beta,
            delta: p.first.alpha + (p.eps + second.alpha) / phi,
        },
    }
}

/// The un-pipelined affine coefficients (Eq. 11's `Ω, Δ`; also covers
/// direct paths where they degenerate to `1/β, α`).
pub fn omega_delta_unpipelined(p: &PathParams) -> OmegaDelta {
    OmegaDelta {
        omega: p.omega_unpipelined(),
        delta: p.delta_unpipelined(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::params::LegParams;
    use mpx_topo::path::PathKind;
    use mpx_topo::units::gb_per_s;
    use mpx_topo::DeviceId;

    fn staged(a1: f64, b1: f64, eps: f64, a2: f64, b2: f64) -> PathParams {
        PathParams::staged(
            PathKind::GpuStaged { via: DeviceId(2) },
            LegParams {
                alpha: a1,
                beta: b1,
            },
            LegParams {
                alpha: a2,
                beta: b2,
            },
            eps,
        )
    }

    #[test]
    fn bottleneck_case_split() {
        let p1 = staged(1e-6, gb_per_s(10.0), 0.0, 1e-6, gb_per_s(50.0));
        assert_eq!(bottleneck(&p1), Bottleneck::FirstLeg);
        let p2 = staged(1e-6, gb_per_s(50.0), 0.0, 1e-6, gb_per_s(10.0));
        assert_eq!(bottleneck(&p2), Bottleneck::SecondLeg);
        // Equal bandwidths fall to case 2 (β ≥ β′), as in Eq. 13.
        let p3 = staged(1e-6, gb_per_s(48.0), 0.0, 1e-6, gb_per_s(48.0));
        assert_eq!(bottleneck(&p3), Bottleneck::SecondLeg);
    }

    #[test]
    fn exact_chunks_formula_case1() {
        // k = sqrt(θn / (α β')): α·β' = 1e-6 · 50e9 = 5e4; with θn = 1e5
        // the ratio is 2, so k = √2.
        let p = staged(1e-6, gb_per_s(10.0), 0.0, 1e-6, gb_per_s(50.0));
        let k = optimal_chunks_exact(&p, 1.0, 1e5);
        assert!((k - 2.0f64.sqrt()).abs() < 1e-12, "k = {k}");
    }

    #[test]
    fn exact_chunks_formula_case2() {
        // k = sqrt(θn / (β (ε+α'))): β·(ε+α') = 50e9 · 2e-6 = 1e5; with
        // θn = 1e5 the ratio is 1, so k = 1.
        let p = staged(1e-6, gb_per_s(50.0), 1e-6, 1e-6, gb_per_s(10.0));
        let k = optimal_chunks_exact(&p, 1.0, 1e5);
        assert!((k - 1.0).abs() < 1e-12, "k = {k}");
    }

    #[test]
    fn chunk_count_clamps() {
        let p = staged(1e-9, gb_per_s(10.0), 0.0, 1e-9, gb_per_s(50.0));
        assert_eq!(chunk_count(&p, 1.0, 1e12, 64), 64);
        assert_eq!(chunk_count(&p, 0.0, 1e12, 64), 1);
        let tiny = chunk_count(&p, 1e-12, 1.0, 64);
        assert_eq!(tiny, 1);
    }

    #[test]
    fn pipelining_beats_unpipelined_for_large_messages() {
        let p = staged(2e-6, gb_per_s(48.0), 4e-6, 2e-6, gb_per_s(48.0));
        let n = 64e6;
        let un = p.time_unpipelined(n);
        let k = chunk_count(&p, 1.0, n, 64);
        let piped = time_pipelined(&p, 1.0, n, k);
        assert!(
            piped < un,
            "pipelined {piped} should beat unpipelined {un} (k={k})"
        );
        // The pipeline can at best hide one full leg: never better than
        // the bottleneck leg alone.
        let floor = n / 48e9;
        assert!(piped > floor);
    }

    #[test]
    fn discrete_k_near_continuous_optimum() {
        let p = staged(2e-6, gb_per_s(12.0), 4e-6, 2e-6, gb_per_s(48.0));
        let n = 32e6;
        let k = chunk_count(&p, 1.0, n, 1024);
        let t_discrete = time_pipelined(&p, 1.0, n, k);
        let t_cont = time_pipelined_opt(&p, 1.0, n);
        assert!(t_discrete >= t_cont - 1e-12, "continuous bound violated");
        assert!(
            t_discrete < t_cont * 1.02,
            "rounded k loses too much: {t_discrete} vs {t_cont}"
        );
    }

    #[test]
    fn continuous_optimum_is_a_lower_envelope() {
        let p = staged(3e-6, gb_per_s(24.0), 5e-6, 2e-6, gb_per_s(12.0));
        let n = 16e6;
        let t_opt = time_pipelined_opt(&p, 1.0, n);
        for k in [1u32, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            let t = time_pipelined(&p, 1.0, n, k);
            assert!(
                t >= t_opt - 1e-12,
                "k={k}: {t} below continuous optimum {t_opt}"
            );
        }
    }

    #[test]
    fn phi_linearization_exact_at_reference_point() {
        // At θ = θ_ref the linearized affine law (Eq. 22) must reproduce
        // the exact continuous-optimal time (Eq. 17/18).
        for p in [
            staged(2e-6, gb_per_s(12.0), 4e-6, 2e-6, gb_per_s(48.0)), // case 1
            staged(2e-6, gb_per_s(48.0), 4e-6, 2e-6, gb_per_s(12.0)), // case 2
        ] {
            let n = 64e6;
            let theta = 0.4;
            let phi = topology_constant(&p, theta, n);
            let od = omega_delta_pipelined(&p, phi);
            let linear = od.time(theta, n);
            let exact = time_pipelined_opt(&p, theta, n);
            assert!(
                (linear - exact).abs() < 1e-12 * exact,
                "linear {linear} vs exact {exact}"
            );
        }
    }

    #[test]
    fn phi_linearization_close_off_reference() {
        let p = staged(2e-6, gb_per_s(12.0), 4e-6, 2e-6, gb_per_s(48.0));
        let n = 64e6;
        let phi = topology_constant(&p, 0.5, n);
        let od = omega_delta_pipelined(&p, phi);
        for theta in [0.25, 0.4, 0.6, 0.75] {
            let linear = od.time(theta, n);
            let exact = time_pipelined_opt(&p, theta, n);
            let rel = (linear - exact).abs() / exact;
            assert!(rel < 0.10, "theta={theta}: rel error {rel}");
        }
    }

    #[test]
    fn unpipelined_omega_delta_degenerates_for_direct() {
        let p = PathParams::direct(2e-6, gb_per_s(48.0));
        let od = omega_delta_unpipelined(&p);
        assert!((od.omega - 1.0 / 48e9).abs() < 1e-24);
        assert!((od.delta - 2e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "staged paths only")]
    fn pipelining_direct_path_panics() {
        let p = PathParams::direct(2e-6, gb_per_s(48.0));
        optimal_chunks_exact(&p, 1.0, 1e6);
    }
}
