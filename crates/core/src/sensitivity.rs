//! Sensitivity of the model's decisions to parameter error.
//!
//! The model is only as good as its `(α, β, ε)` inputs — calibration is a
//! measurement, and measurements drift (thermals, driver versions,
//! background load). This module quantifies the *regret* of planning
//! with perturbed parameters but executing on the true ones:
//!
//! ```text
//! regret(δ) = T(shares planned with params·(1+δ)) / T(optimal shares) − 1
//! ```
//!
//! evaluated analytically on the true affine laws. A small regret under
//! sizeable perturbation is what makes the paper's one-shot calibration
//! ("extracted once per system topology") viable in practice: uniform
//! calibration error cancels entirely (only relative path speeds matter),
//! and single-path error is attenuated by the share that path carries.

use crate::optimizer::{optimal_shares, OmegaDelta};
use mpx_topo::params::PathParams;

/// Which parameter family a perturbation scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturb {
    /// Scale every bandwidth `β` (and `β′`) by `1+δ`.
    Bandwidth,
    /// Scale every latency `α` (and `α′`, `ε`) by `1+δ`.
    Latency,
    /// Scale only the paths' *second* legs' bandwidths (mis-calibrated
    /// staging rates, the Narval-host failure mode).
    SecondLegBandwidth,
}

/// Applies a relative perturbation to a parameter set.
pub fn perturb(params: &[PathParams], what: Perturb, delta: f64) -> Vec<PathParams> {
    assert!(delta > -1.0, "perturbation must keep parameters positive");
    params
        .iter()
        .map(|p| {
            let mut q = *p;
            match what {
                Perturb::Bandwidth => {
                    q.first.beta *= 1.0 + delta;
                    if let Some(s) = q.second.as_mut() {
                        s.beta *= 1.0 + delta;
                    }
                }
                Perturb::Latency => {
                    q.first.alpha *= 1.0 + delta;
                    q.eps *= 1.0 + delta;
                    if let Some(s) = q.second.as_mut() {
                        s.alpha *= 1.0 + delta;
                    }
                }
                Perturb::SecondLegBandwidth => {
                    if let Some(s) = q.second.as_mut() {
                        s.beta *= 1.0 + delta;
                    }
                }
            }
            q
        })
        .collect()
}

/// Evaluates the makespan of a share vector on the *true* affine laws.
pub fn makespan(true_laws: &[OmegaDelta], shares: &[f64], n: f64) -> f64 {
    assert_eq!(true_laws.len(), shares.len());
    true_laws
        .iter()
        .zip(shares)
        .filter(|(_, s)| **s > 0.0)
        .map(|(p, s)| p.time(*s, n))
        .fold(0.0f64, f64::max)
}

/// The relative regret of planning with `planning_laws` but executing on
/// `true_laws` (both affine): 0 means the perturbed plan is still
/// optimal.
pub fn regret(true_laws: &[OmegaDelta], planning_laws: &[OmegaDelta], n: f64) -> f64 {
    let optimal = optimal_shares(true_laws, n);
    let planned = optimal_shares(planning_laws, n);
    let achieved = makespan(true_laws, &planned.shares, n);
    achieved / optimal.time - 1.0
}

/// A sensitivity sweep row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// Relative perturbation applied.
    pub delta: f64,
    /// Resulting relative regret.
    pub regret: f64,
}

/// Sweeps `deltas`, returning the regret curve for affine laws derived
/// from `true_laws` by scaling `Ω` (bandwidth error maps to `Ω` error).
pub fn bandwidth_regret_curve(
    true_laws: &[OmegaDelta],
    n: f64,
    deltas: &[f64],
) -> Vec<SensitivityPoint> {
    deltas
        .iter()
        .map(|&delta| {
            let planning: Vec<OmegaDelta> = true_laws
                .iter()
                .map(|p| OmegaDelta {
                    omega: p.omega / (1.0 + delta),
                    delta: p.delta,
                })
                .collect();
            SensitivityPoint {
                delta,
                regret: regret(true_laws, &planning, n),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::params::{extract_all, LegParams};
    use mpx_topo::path::{enumerate_paths, PathKind, PathSelection};
    use mpx_topo::presets;
    use mpx_topo::DeviceId;

    fn laws() -> Vec<OmegaDelta> {
        vec![
            OmegaDelta {
                omega: 1.0 / 48e9,
                delta: 3e-6,
            },
            OmegaDelta {
                omega: 1.05 / 48e9,
                delta: 9e-6,
            },
            OmegaDelta {
                omega: 1.0 / 10e9,
                delta: 15e-6,
            },
        ]
    }

    #[test]
    fn zero_perturbation_zero_regret() {
        let l = laws();
        assert!(regret(&l, &l, 64e6).abs() < 1e-12);
    }

    #[test]
    fn uniform_bandwidth_error_is_harmless() {
        // Scaling every Ω by the same factor leaves the *relative* split
        // unchanged (for small Δ), so regret stays tiny.
        let l = laws();
        let curve = bandwidth_regret_curve(&l, 256e6, &[-0.2, -0.1, 0.1, 0.2]);
        for p in &curve {
            assert!(
                p.regret < 0.01,
                "uniform ±{:.0}% bandwidth error cost {:.2}%",
                p.delta * 100.0,
                p.regret * 100.0
            );
        }
    }

    #[test]
    fn regret_is_nonnegative_and_grows_with_skew() {
        // Skew only one path's planning Ω: regret grows with the skew.
        let l = laws();
        let n = 64e6;
        let mut last = 0.0;
        for skew in [0.05, 0.1, 0.2, 0.4] {
            let mut planning = l.clone();
            planning[2].omega = l[2].omega / (1.0 + skew);
            let r = regret(&l, &planning, n);
            assert!(r >= -1e-12, "regret must be nonnegative, got {r}");
            assert!(
                r >= last - 1e-9,
                "regret should grow with skew: {r} after {last}"
            );
            last = r;
        }
        assert!(last > 0.001, "large skew must cost something: {last}");
    }

    #[test]
    fn error_is_attenuated_near_optimum() {
        // Mis-calibrating one path by 5% shifts only that path's share;
        // the makespan penalty is bounded by the share it carries, so the
        // regret stays well below the 5% input error.
        let l = laws();
        let mut planning = l.clone();
        planning[1].omega = l[1].omega * 1.05;
        let r = regret(&l, &planning, 128e6);
        assert!(
            r < 0.035,
            "5% single-path error should cost well under 5%, got {:.2}%",
            r * 100.0
        );
    }

    #[test]
    fn perturb_scales_the_right_fields() {
        let leg = LegParams {
            alpha: 1e-6,
            beta: 10e9,
        };
        let staged = PathParams::staged(PathKind::GpuStaged { via: DeviceId(2) }, leg, leg, 2e-6);
        let params = vec![PathParams::direct(2e-6, 48e9), staged];

        let b = perturb(&params, Perturb::Bandwidth, 0.5);
        assert_eq!(b[0].first.beta, 72e9);
        assert_eq!(b[1].second.unwrap().beta, 15e9);
        assert_eq!(b[0].first.alpha, 2e-6, "latency untouched");

        let l = perturb(&params, Perturb::Latency, 1.0);
        assert_eq!(l[0].first.alpha, 4e-6);
        assert_eq!(l[1].eps, 4e-6);
        assert_eq!(l[0].first.beta, 48e9, "bandwidth untouched");

        let s = perturb(&params, Perturb::SecondLegBandwidth, -0.5);
        assert_eq!(s[1].second.unwrap().beta, 5e9);
        assert_eq!(s[1].first.beta, 10e9);
        assert_eq!(s[0].first.beta, 48e9, "direct path has no second leg");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn perturb_rejects_total_collapse() {
        perturb(&[PathParams::direct(1e-6, 1e9)], Perturb::Bandwidth, -1.0);
    }

    #[test]
    fn beluga_end_to_end_sensitivity() {
        // Full-stack smoke: perturb the Beluga parameter set, plan with
        // it, evaluate the analytic regret on the true laws.
        let topo = presets::beluga();
        let gpus = topo.gpus();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS).unwrap();
        let true_params = extract_all(&topo, &paths).unwrap();
        let true_laws: Vec<OmegaDelta> = true_params
            .iter()
            .map(|p| OmegaDelta {
                omega: p.omega_unpipelined(),
                delta: p.delta_unpipelined(),
            })
            .collect();
        let bad = perturb(&true_params, Perturb::SecondLegBandwidth, -0.3);
        let bad_laws: Vec<OmegaDelta> = bad
            .iter()
            .map(|p| OmegaDelta {
                omega: p.omega_unpipelined(),
                delta: p.delta_unpipelined(),
            })
            .collect();
        let r = regret(&true_laws, &bad_laws, 256e6);
        assert!((0.0..0.15).contains(&r), "regret {r}");
    }
}
