//! Collective-operation prediction (paper Section 6 future work: "extend
//! our model to support more complex intra-node communication patterns,
//! such as collective operations").
//!
//! A collective is a schedule of steps; each step is a set of concurrent
//! P2P transfers plus local compute. The per-step communication time
//! comes from the *contention-aware* joint planner
//! ([`crate::contention::plan_concurrent`]) over that step's transfer
//! set — the same machinery the transport uses, so prediction and
//! execution share one model.
//!
//! Implemented schedules match the algorithms `mpx-mpi` runs (and UCC's
//! large-message choices, per the paper's Section 5.3): recursive
//! K-nomial (radix-2) scatter-reduce + allgather for Allreduce, Bruck
//! for Alltoall.

use crate::pipeline::time_pipelined;
use crate::planner::{PipelineMode, Planner, TransferPlan};
use mpx_topo::params::extract_all;
use mpx_topo::path::{enumerate_paths_auto, PathSelection, TransferPath};
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, TopologyError};

/// A predicted collective cost, decomposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectivePrediction {
    /// End-to-end latency.
    pub total: Secs,
    /// Communication part.
    pub comm: Secs,
    /// Local compute part (reductions / packing).
    pub compute: Secs,
    /// Number of communication steps.
    pub steps: usize,
}

/// One step's directed transfers: `(src rank, dst rank, bytes)`.
type Step = Vec<(usize, usize, usize)>;

/// Predicted duration of one step, modelling what the transport will
/// actually do: every transfer is planned *blindly* (per-transfer
/// Algorithm 1, exactly as `UcxContext` does at runtime), then those
/// shares are evaluated under the step's contention — each leg's
/// bandwidth deflated to its fair share of every link it crosses, given
/// how many concurrently active path-legs use that link. Active paths of
/// an equal-time plan run for the whole transfer, so each counts fully.
fn step_time(
    planner: &Planner,
    devices: &[DeviceId],
    step: &Step,
    sel: PathSelection,
) -> Result<Secs, TopologyError> {
    let topo = planner.topology().clone();
    let mut members: Vec<(Vec<TransferPath>, TransferPlan)> = Vec::with_capacity(step.len());
    for &(src, dst, bytes) in step {
        if bytes == 0 {
            continue;
        }
        let paths = enumerate_paths_auto(&topo, devices[src], devices[dst], sel)?;
        let params = extract_all(&topo, &paths)?;
        let plan = planner.compute_with_params(bytes, &paths, params);
        members.push((paths, plan));
    }
    if members.is_empty() {
        return Ok(0.0);
    }

    // Concurrent users per link.
    let mut users = vec![0.0f64; topo.link_count()];
    for (paths, plan) in &members {
        for (path, pp) in paths.iter().zip(&plan.paths) {
            if pp.theta <= 1e-6 {
                continue;
            }
            for leg in &path.legs {
                for lid in &leg.route {
                    users[lid.index()] += 1.0;
                }
            }
        }
    }

    // Evaluate each plan's shares with contention-deflated bandwidths.
    let mut worst: Secs = 0.0;
    for (paths, plan) in &members {
        let nf = plan.n as f64;
        for (path, pp) in paths.iter().zip(&plan.paths) {
            if pp.theta <= 1e-6 {
                continue;
            }
            let mut params = pp.params;
            for (li, leg) in path.legs.iter().enumerate() {
                let mut beta = f64::INFINITY;
                for lid in &leg.route {
                    let link = topo.link(*lid)?;
                    beta = beta.min(link.bandwidth / users[lid.index()].max(1.0));
                }
                match li {
                    0 => params.first.beta = beta,
                    _ => {
                        if let Some(s) = params.second.as_mut() {
                            s.beta = beta;
                        }
                    }
                }
            }
            let contended = path
                .legs
                .iter()
                .flat_map(|l| &l.route)
                .any(|lid| users[lid.index()] > 1.0);
            let t = if !params.is_staged() || planner.config().mode != PipelineMode::Pipelined {
                params.time_unpipelined(pp.share_bytes as f64)
            } else if contended {
                // Under contention the competing pipelines fill each
                // other's bubbles: the leg streams continuously at its
                // fair share, so the affine law with the deflated
                // bottleneck bandwidth is the right estimate — adding
                // per-chunk exposure on top would double-count.
                pp.theta * nf / params.bottleneck_bandwidth() + params.delta_unpipelined()
            } else {
                time_pipelined(&params, pp.theta, nf, pp.chunks)
            };
            worst = worst.max(t);
        }
    }
    Ok(worst)
}

/// The radix-`k` scatter-reduce + allgather schedule for `p = k^m` ranks
/// and an `n`-byte buffer: per-step transfer sets and reduced bytes. In
/// every scatter round each rank ships `k−1` sub-blocks of the active
/// region (keeping one) to its digit-group peers and reduces the `k−1`
/// it receives; the allgather mirrors the exchanges.
fn knomial_allreduce_schedule(p: usize, n: usize, k: usize) -> (Vec<Step>, Vec<usize>) {
    assert!(k >= 2 && p >= 2);
    let mut rounds = 0u32;
    let mut v = 1usize;
    while v < p {
        v *= k;
        rounds += 1;
    }
    assert_eq!(v, p, "world size {p} is not a power of radix {k}");

    let mut steps = Vec::new();
    let mut reduce_bytes = Vec::new();
    // Scatter-reduce rounds: region shrinks by k each round.
    let mut len = n;
    let mut group = p;
    for _ in 0..rounds {
        let sub = len / k;
        let stride = group / k;
        let mut step: Step = Vec::with_capacity(p * (k - 1));
        for r in 0..p {
            let digit = (r / stride) % k;
            let base = r - digit * stride;
            for d in 0..k {
                if d != digit {
                    step.push((r, base + d * stride, sub));
                }
            }
        }
        steps.push(step);
        // Each rank reduces k−1 received sub-blocks.
        reduce_bytes.push(sub * (k - 1));
        len = sub;
        group = stride;
    }
    // Allgather rounds: mirror image, regions grow back.
    let mut len = n / p;
    let mut group = k;
    for _ in 0..rounds {
        let stride = group / k;
        let mut step: Step = Vec::with_capacity(p * (k - 1));
        for r in 0..p {
            let digit = (r / stride) % k;
            let base = r - digit * stride;
            for d in 0..k {
                if d != digit {
                    step.push((r, base + d * stride, len));
                }
            }
        }
        steps.push(step);
        reduce_bytes.push(0);
        len *= k;
        group *= k;
    }
    (steps, reduce_bytes)
}

/// Predicts the latency of a radix-2 K-nomial allreduce of `n` bytes over
/// `devices` (one rank per device, power-of-two count). `reduce_cost`
/// prices the element-wise combine of `bytes` of received data.
pub fn predict_allreduce_knomial(
    planner: &Planner,
    devices: &[DeviceId],
    n: usize,
    sel: PathSelection,
    reduce_cost: &dyn Fn(usize) -> Secs,
) -> Result<CollectivePrediction, TopologyError> {
    predict_allreduce_knomial_radix(planner, devices, n, sel, reduce_cost, 2)
}

/// [`predict_allreduce_knomial`] at an arbitrary radix `k`
/// (`size == k^m`).
pub fn predict_allreduce_knomial_radix(
    planner: &Planner,
    devices: &[DeviceId],
    n: usize,
    sel: PathSelection,
    reduce_cost: &dyn Fn(usize) -> Secs,
    k: usize,
) -> Result<CollectivePrediction, TopologyError> {
    let p = devices.len();
    if p == 1 {
        return Ok(CollectivePrediction {
            total: 0.0,
            comm: 0.0,
            compute: 0.0,
            steps: 0,
        });
    }
    let (steps, reduce_bytes) = knomial_allreduce_schedule(p, n, k);
    let mut comm = 0.0;
    let mut compute = 0.0;
    for (step, &rb) in steps.iter().zip(&reduce_bytes) {
        comm += step_time(planner, devices, step, sel)?;
        if rb > 0 {
            compute += reduce_cost(rb);
        }
    }
    Ok(CollectivePrediction {
        total: comm + compute,
        comm,
        compute,
        steps: steps.len(),
    })
}

/// Predicts the latency of a Bruck alltoall with `block` bytes per
/// destination over `devices`. `copy_cost` prices one local pack/unpack
/// of `bytes`.
pub fn predict_alltoall_bruck(
    planner: &Planner,
    devices: &[DeviceId],
    block: usize,
    sel: PathSelection,
    copy_cost: &dyn Fn(usize) -> Secs,
) -> Result<CollectivePrediction, TopologyError> {
    let p = devices.len();
    if p == 1 {
        return Ok(CollectivePrediction {
            total: copy_cost(block),
            comm: 0.0,
            compute: copy_cost(block),
            steps: 0,
        });
    }
    let mut comm = 0.0;
    let mut compute = copy_cost(block); // own-block copy
    let mut steps = 0;
    let mut dist = 1usize;
    while dist < p {
        let blocks: usize = (0..p).filter(|i| i & dist != 0).count();
        let bytes = blocks * block;
        let step: Step = (0..p).map(|r| (r, (r + dist) % p, bytes)).collect();
        comm += step_time(planner, devices, &step, sel)?;
        // Pack before, unpack after — every block moved twice locally.
        compute += 2.0 * copy_cost(bytes);
        steps += 1;
        dist <<= 1;
    }
    Ok(CollectivePrediction {
        total: comm + compute,
        comm,
        compute,
        steps,
    })
}

/// Predicts a recursive-doubling allgather of `block` bytes per rank
/// (power-of-two world): step `s` exchanges `2^s · block` with one
/// partner.
pub fn predict_allgather_rd(
    planner: &Planner,
    devices: &[DeviceId],
    block: usize,
    sel: PathSelection,
) -> Result<CollectivePrediction, TopologyError> {
    let p = devices.len();
    if p == 1 {
        return Ok(CollectivePrediction {
            total: 0.0,
            comm: 0.0,
            compute: 0.0,
            steps: 0,
        });
    }
    assert!(p.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let mut comm = 0.0;
    let mut steps = 0;
    let mut mask = 1usize;
    let mut bytes = block;
    while mask < p {
        let step: Step = (0..p).map(|r| (r, r ^ mask, bytes)).collect();
        comm += step_time(planner, devices, &step, sel)?;
        steps += 1;
        mask <<= 1;
        bytes *= 2;
    }
    Ok(CollectivePrediction {
        total: comm,
        comm,
        compute: 0.0,
        steps,
    })
}

/// Predicts a binomial-tree broadcast of `n` bytes from rank 0: the
/// critical path is the chain of ⌈log₂ p⌉ sequential sends (each round's
/// transfers run concurrently, but a leaf at depth d waited d rounds).
pub fn predict_bcast_binomial(
    planner: &Planner,
    devices: &[DeviceId],
    n: usize,
    sel: PathSelection,
) -> Result<CollectivePrediction, TopologyError> {
    let p = devices.len();
    if p == 1 {
        return Ok(CollectivePrediction {
            total: 0.0,
            comm: 0.0,
            compute: 0.0,
            steps: 0,
        });
    }
    let mut comm = 0.0;
    let mut steps = 0;
    // Round r: senders are ranks with vrank < 2^r, each to vrank + 2^r.
    let mut mask = 1usize;
    while mask < p {
        let step: Step = (0..p)
            .filter(|&r| r < mask && r + mask < p)
            .map(|r| (r, r + mask, n))
            .collect();
        comm += step_time(planner, devices, &step, sel)?;
        steps += 1;
        mask <<= 1;
    }
    Ok(CollectivePrediction {
        total: comm,
        comm,
        compute: 0.0,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use std::sync::Arc;

    fn setup() -> (Planner, Vec<DeviceId>) {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        (Planner::new(topo), gpus)
    }

    #[test]
    fn schedule_shapes_are_right() {
        let (steps, reduce) = knomial_allreduce_schedule(4, 1 << 20, 2);
        assert_eq!(steps.len(), 4, "2 scatter + 2 allgather");
        // Scatter halves: n/2 then n/4.
        assert_eq!(steps[0][0].2, 1 << 19);
        assert_eq!(steps[1][0].2, 1 << 18);
        // Allgather doubles back: n/4 then n/2.
        assert_eq!(steps[2][0].2, 1 << 18);
        assert_eq!(steps[3][0].2, 1 << 19);
        assert_eq!(reduce, vec![1 << 19, 1 << 18, 0, 0]);
        // Every step pairs each rank with exactly one partner.
        for step in &steps {
            assert_eq!(step.len(), 4);
            for &(src, dst, _) in step {
                assert!(step.iter().any(|&(s, d, _)| s == dst && d == src));
            }
        }

        // Radix 4 on 4 ranks: one scatter round (3 partners, n/4 each)
        // and one allgather round.
        let (steps4, reduce4) = knomial_allreduce_schedule(4, 1 << 20, 4);
        assert_eq!(steps4.len(), 2);
        assert_eq!(steps4[0].len(), 12, "4 ranks x 3 partners");
        assert_eq!(steps4[0][0].2, 1 << 18);
        assert_eq!(reduce4, vec![3 << 18, 0]);
    }

    #[test]
    fn allreduce_prediction_scales_with_n() {
        let (planner, gpus) = setup();
        let zero = |_: usize| 0.0;
        let small =
            predict_allreduce_knomial(&planner, &gpus, 4 << 20, PathSelection::THREE_GPUS, &zero)
                .unwrap();
        let large =
            predict_allreduce_knomial(&planner, &gpus, 64 << 20, PathSelection::THREE_GPUS, &zero)
                .unwrap();
        assert!(large.total > 8.0 * small.total, "{large:?} vs {small:?}");
        assert_eq!(small.steps, 4);
    }

    #[test]
    fn compute_term_reflects_reduce_cost() {
        let (planner, gpus) = setup();
        let n = 16 << 20;
        let free =
            predict_allreduce_knomial(&planner, &gpus, n, PathSelection::THREE_GPUS, &|_| 0.0)
                .unwrap();
        let slow = predict_allreduce_knomial(&planner, &gpus, n, PathSelection::THREE_GPUS, &|b| {
            b as f64 / 250e9 + 3e-6
        })
        .unwrap();
        assert_eq!(free.compute, 0.0);
        assert!(slow.compute > 0.0);
        assert!((slow.comm - free.comm).abs() < 1e-12, "comm unaffected");
    }

    #[test]
    fn multipath_prediction_beats_single_path() {
        let (planner, gpus) = setup();
        let n = 64 << 20;
        let zero = |_: usize| 0.0;
        let single =
            predict_allreduce_knomial(&planner, &gpus, n, PathSelection::DIRECT_ONLY, &zero)
                .unwrap();
        let multi = predict_allreduce_knomial(&planner, &gpus, n, PathSelection::THREE_GPUS, &zero)
            .unwrap();
        let speedup = single.total / multi.total;
        assert!(
            (1.1..2.5).contains(&speedup),
            "predicted allreduce speedup {speedup}"
        );
    }

    #[test]
    fn bruck_prediction_counts_rounds_and_packs() {
        let (planner, gpus) = setup();
        let pred =
            predict_alltoall_bruck(&planner, &gpus, 4 << 20, PathSelection::THREE_GPUS, &|b| {
                b as f64 / 1000e9
            })
            .unwrap();
        assert_eq!(pred.steps, 2, "log2(4) rounds");
        assert!(pred.comm > 0.0 && pred.compute > 0.0);
    }

    #[test]
    fn allgather_prediction_has_log_steps_and_scales() {
        let (planner, gpus) = setup();
        let small =
            predict_allgather_rd(&planner, &gpus, 1 << 20, PathSelection::THREE_GPUS).unwrap();
        let large =
            predict_allgather_rd(&planner, &gpus, 16 << 20, PathSelection::THREE_GPUS).unwrap();
        assert_eq!(small.steps, 2);
        assert!(large.total > 8.0 * small.total);
        assert_eq!(small.compute, 0.0);
    }

    #[test]
    fn bcast_prediction_counts_rounds() {
        let (planner, gpus) = setup();
        let pred =
            predict_bcast_binomial(&planner, &gpus, 8 << 20, PathSelection::THREE_GPUS).unwrap();
        assert_eq!(pred.steps, 2, "log2(4) rounds");
        // Multi-path should beat single-path here too.
        let single =
            predict_bcast_binomial(&planner, &gpus, 8 << 20, PathSelection::DIRECT_ONLY).unwrap();
        assert!(pred.total < single.total);
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let (planner, gpus) = setup();
        let one = &gpus[..1];
        let ar =
            predict_allreduce_knomial(&planner, one, 1 << 20, PathSelection::THREE_GPUS, &|_| 0.0)
                .unwrap();
        assert_eq!(ar.total, 0.0);
    }
}
