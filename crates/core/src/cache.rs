//! Concurrency-scalable, read-mostly caching primitives for the planning
//! hot path.
//!
//! The configuration cache (paper Section 4) is consulted on every
//! transfer; under concurrent rank threads a single `Mutex<HashMap>`
//! serializes all of them. This module provides the two building blocks
//! the planner and the transport share instead:
//!
//! * [`ShardedMap`] — a hash map split into shards, each behind its own
//!   `RwLock`. Cache hits take a shard *read* lock (shared, no exclusive
//!   contention between readers) and the shard index is derived from a
//!   caller-chosen *shard key* — the `(src, dst, selection)` pair — so
//!   drift-based invalidation locks only the affected pair's shard.
//! * [`CacheCounters`] — relaxed atomic hit/miss/size-class/invalidation
//!   counters, readable concurrently without touching any map lock.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shards per map. Plenty for the device-pair count of one node (a
/// 4-GPU node has 12 ordered pairs) while keeping the footprint small.
pub(crate) const SHARDS: usize = 16;

/// A minimal FxHash-style hasher: multiply-xor over the written words.
/// The cache keys are tiny `Copy` tuples of ids and sizes; SipHash's
/// DoS resistance buys nothing here and costs a meaningful fraction of
/// the hit path.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.hash = (self.hash.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The map-level hasher state (zero-sized, deterministic).
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

pub(crate) fn fx_hash_of(key: &impl Hash) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A sharded, read-mostly concurrent map.
///
/// Every operation takes an explicit *shard key* (hashable, typically a
/// prefix of the entry key such as the device pair) that selects the
/// shard; the entry key itself may carry more detail (message size,
/// size class). Entries whose shard key differ must never share an
/// entry key, which holds whenever the shard key is a function of the
/// entry key.
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V, BuildFxHasher>>]>,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, shard_key: &impl Hash) -> &RwLock<HashMap<K, V, BuildFxHasher>> {
        let idx = fx_hash_of(shard_key) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up `key` under a shard *read* lock (shared with all other
    /// readers of the shard).
    #[inline]
    pub fn get(&self, shard_key: &impl Hash, key: &K) -> Option<V> {
        self.shard(shard_key).read().get(key).cloned()
    }

    /// Inserts `key → value` (exclusive lock on one shard only).
    pub fn insert(&self, shard_key: &impl Hash, key: K, value: V) {
        self.shard(shard_key).write().insert(key, value);
    }

    /// Inserts `key → value`, first clearing the shard if it already
    /// holds `cap` entries — epoch eviction. An unbounded plan cache under
    /// an irregular size sweep grows without limit and every insert then
    /// touches cold, ever-growing heap; clearing (which keeps the
    /// allocated table) bounds the footprint so the whole map stays
    /// cache-resident, at the price of occasionally re-computing entries
    /// from before the epoch.
    pub fn insert_bounded(&self, shard_key: &impl Hash, key: K, value: V, cap: usize) {
        let mut shard = self.shard(shard_key).write();
        if shard.len() >= cap.max(1) {
            shard.clear();
        }
        shard.insert(key, value);
    }

    /// Removes one entry; returns whether it existed.
    pub fn remove(&self, shard_key: &impl Hash, key: &K) -> bool {
        self.shard(shard_key).write().remove(key).is_some()
    }

    /// Drops every entry of `shard_key`'s shard whose key fails the
    /// predicate — the per-pair invalidation primitive. Only the one
    /// shard is locked; other pairs' lookups proceed untouched.
    pub fn retain_in_shard(&self, shard_key: &impl Hash, mut keep: impl FnMut(&K) -> bool) {
        self.shard(shard_key).write().retain(|k, _| keep(k));
    }

    /// Clears the whole map (exclusive lock per shard, one at a time).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    /// Total entries across shards (advisory; taken shard by shard).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

/// Relaxed atomic counters of one plan cache. Reads never contend with
/// the planning hot path (no lock is shared with the maps).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Plans served straight from the exact-size cache.
    pub hits: AtomicU64,
    /// Plans computed from scratch.
    pub misses: AtomicU64,
    /// Plans realized cheaply from a cached size-class entry.
    pub class_hits: AtomicU64,
    /// Size-class candidates rejected by the ε guard (fell back to an
    /// exact solve).
    pub class_fallbacks: AtomicU64,
    /// Drift-triggered invalidations.
    pub invalidations: AtomicU64,
}

impl CacheCounters {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_insert_remove_roundtrip() {
        let m: ShardedMap<(u64, usize), Arc<String>> = ShardedMap::new();
        let pair = 7u64;
        assert!(m.get(&pair, &(pair, 1)).is_none());
        m.insert(&pair, (pair, 1), Arc::new("a".into()));
        m.insert(&pair, (pair, 2), Arc::new("b".into()));
        assert_eq!(m.get(&pair, &(pair, 1)).unwrap().as_str(), "a");
        assert_eq!(m.len(), 2);
        assert!(m.remove(&pair, &(pair, 1)));
        assert!(!m.remove(&pair, &(pair, 1)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_in_shard_only_touches_matching_keys() {
        let m: ShardedMap<(u64, usize), usize> = ShardedMap::new();
        for pair in 0..8u64 {
            for n in 0..4usize {
                m.insert(&pair, (pair, n), n);
            }
        }
        m.retain_in_shard(&3u64, |k| k.0 != 3);
        assert_eq!(m.len(), 28);
        for pair in 0..8u64 {
            let expect = if pair == 3 { None } else { Some(0) };
            assert_eq!(m.get(&pair, &(pair, 0)), expect);
        }
    }

    #[test]
    fn concurrent_readers_and_writers_make_progress() {
        let m: Arc<ShardedMap<(u64, usize), u64>> = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..1000usize {
                        m.insert(&t, (t, i), t);
                        assert_eq!(m.get(&t, &(t, i)), Some(t));
                    }
                });
            }
        });
        assert_eq!(m.len(), 8000);
    }

    #[test]
    fn fx_hash_spreads_small_tuples() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..16u64 {
            for b in 0..16usize {
                seen.insert(fx_hash_of(&(a, b)) % SHARDS as u64);
            }
        }
        assert!(seen.len() >= SHARDS / 2, "shard spread too poor: {seen:?}");
    }
}
