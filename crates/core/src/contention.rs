//! Contention-aware joint planning for *concurrent* transfers — the
//! paper's stated future work ("utilizing other performance models as
//! the basis ... such as MaxRate when considering contention on shared
//! links in a loaded network", Section 6).
//!
//! The per-transfer model (Algorithm 1) assumes its paths are idle. When
//! several transfers run at once — every collective step does this — a
//! staged path of one transfer can cross a link that another transfer is
//! using, and both the share optimization and the prediction degrade.
//!
//! [`plan_concurrent`] fixes the point: it iterates between
//!
//! 1. computing each transfer's optimal shares with the *current*
//!    effective bandwidths, and
//! 2. recomputing every link's expected load from those shares and
//!    deflating each leg's bandwidth to its fair share
//!    `β_l / max(1, users_l)`, where a path's "use" of a link is weighted
//!    by the share it carries,
//!
//! which is a fixed-point analogue of the max-min fair allocation the
//! fabric actually enforces.

use crate::planner::{Planner, TransferPlan};
use mpx_topo::params::PathParams;
use mpx_topo::path::TransferPath;
use mpx_topo::Topology;

/// One member of a concurrently executing communication pattern.
#[derive(Debug, Clone)]
pub struct ConcurrentTransfer {
    /// Candidate paths (direct first, as from `enumerate_paths`).
    pub paths: Vec<TransferPath>,
    /// Baseline (uncontended) per-path parameters — datasheet or probed.
    pub params: Vec<PathParams>,
    /// Message size in bytes.
    pub n: usize,
}

/// Result of a joint planning round.
#[derive(Debug, Clone)]
pub struct ConcurrentPlan {
    /// One plan per transfer, in input order.
    pub plans: Vec<TransferPlan>,
    /// Fixed-point iterations executed.
    pub iterations: usize,
    /// Maximum share movement in the final iteration (convergence
    /// indicator; small is converged).
    pub residual: f64,
}

/// Jointly plans `transfers` assuming they run concurrently. `max_iter`
/// bounds the fixed-point loop (4–8 suffices in practice).
pub fn plan_concurrent(
    planner: &Planner,
    topo: &Topology,
    transfers: &[ConcurrentTransfer],
    max_iter: usize,
) -> ConcurrentPlan {
    assert!(!transfers.is_empty(), "empty communication pattern");
    let nlinks = topo.link_count();

    // Start from contention-blind plans.
    let mut plans: Vec<TransferPlan> = transfers
        .iter()
        .map(|t| planner.compute_with_params(t.n, &t.paths, t.params.clone()))
        .collect();

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    for _ in 0..max_iter {
        iterations += 1;
        // Expected load per link: sum of share-weighted uses. A path
        // carrying share θ keeps each link of each of its legs busy for a
        // θ fraction of the pattern's duration (all transfers are
        // size-comparable by assumption).
        let mut load = vec![0.0f64; nlinks];
        for (t, plan) in transfers.iter().zip(&plans) {
            for (path, pp) in t.paths.iter().zip(&plan.paths) {
                if pp.theta <= 1e-6 {
                    continue;
                }
                for leg in &path.legs {
                    for lid in &leg.route {
                        load[lid.index()] += pp.theta;
                    }
                }
            }
        }

        // Deflate each leg's β to its fair share of every link it
        // crosses, relative to the uncontended baseline.
        let mut moved = 0.0f64;
        let mut next = Vec::with_capacity(plans.len());
        for (t, old_plan) in transfers.iter().zip(&plans) {
            let adjusted: Vec<PathParams> = t
                .paths
                .iter()
                .zip(&t.params)
                .zip(&old_plan.paths)
                .map(|((path, base), pp)| {
                    let mut p = *base;
                    for (li, leg) in path.legs.iter().enumerate() {
                        // This path's own contribution to the load must
                        // not penalize itself.
                        let own = pp.theta.min(1.0);
                        let mut factor: f64 = 1.0;
                        for lid in &leg.route {
                            let others = (load[lid.index()] - own).max(0.0);
                            factor = factor.min(1.0 / (1.0 + others));
                        }
                        match li {
                            0 => p.first.beta = base.first.beta * factor,
                            _ => {
                                if let (Some(s), Some(bs)) = (p.second.as_mut(), base.second) {
                                    s.beta = bs.beta * factor;
                                }
                            }
                        }
                    }
                    p
                })
                .collect();
            let plan = planner.compute_with_params(t.n, &t.paths, adjusted);
            for (a, b) in plan.paths.iter().zip(&old_plan.paths) {
                moved = moved.max((a.theta - b.theta).abs());
            }
            next.push(plan);
        }
        plans = next;
        residual = moved;
        if residual < 1e-3 {
            break;
        }
    }

    ConcurrentPlan {
        plans,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::params::extract_all;
    use mpx_topo::path::{enumerate_paths, PathSelection};
    use mpx_topo::presets;
    use std::sync::Arc;

    fn transfer(
        topo: &Topology,
        src: usize,
        dst: usize,
        n: usize,
        sel: PathSelection,
    ) -> ConcurrentTransfer {
        let gpus = topo.gpus();
        let paths = enumerate_paths(topo, gpus[src], gpus[dst], sel).unwrap();
        let params = extract_all(topo, &paths).unwrap();
        ConcurrentTransfer { paths, params, n }
    }

    #[test]
    fn single_transfer_reduces_to_algorithm1() {
        let topo = presets::beluga();
        let planner = Planner::new(Arc::new(topo.clone()));
        let t = transfer(&topo, 0, 1, 64 << 20, PathSelection::THREE_GPUS);
        let joint = plan_concurrent(&planner, &topo, std::slice::from_ref(&t), 8);
        let solo = planner.compute_with_params(t.n, &t.paths, t.params.clone());
        for (a, b) in joint.plans[0].paths.iter().zip(&solo.paths) {
            assert!(
                (a.theta - b.theta).abs() < 1e-6,
                "lone transfer must match Algorithm 1"
            );
        }
    }

    #[test]
    fn crossing_transfers_back_off_shared_staged_paths() {
        // Pairs 0→1 and 2→3 both want to stage through each other's
        // endpoints: 0→1 via 2 crosses link 2→1, while 2→3 occupies
        // 2's outgoing links. Joint planning must shrink the contended
        // staged shares relative to blind planning.
        let topo = presets::beluga();
        let planner = Planner::new(Arc::new(topo.clone()));
        let n = 128 << 20;
        let a = transfer(&topo, 0, 1, n, PathSelection::THREE_GPUS);
        let b = transfer(&topo, 2, 3, n, PathSelection::THREE_GPUS);
        let blind = planner.compute_with_params(a.n, &a.paths, a.params.clone());
        let joint = plan_concurrent(&planner, &topo, &[a, b], 8);
        let blind_staged: f64 = blind.paths[1..].iter().map(|p| p.theta).sum();
        let joint_staged: f64 = joint.plans[0].paths[1..].iter().map(|p| p.theta).sum();
        assert!(
            joint_staged < blind_staged,
            "contended staged shares should shrink: {joint_staged} vs {blind_staged}"
        );
        // And the direct share grows correspondingly.
        assert!(joint.plans[0].paths[0].theta > blind.paths[0].theta);
    }

    #[test]
    fn fixed_point_converges() {
        let topo = presets::beluga();
        let planner = Planner::new(Arc::new(topo.clone()));
        let n = 64 << 20;
        let pattern: Vec<_> = [(0, 1), (1, 2), (2, 3), (3, 0)]
            .iter()
            .map(|&(s, d)| transfer(&topo, s, d, n, PathSelection::THREE_GPUS))
            .collect();
        let joint = plan_concurrent(&planner, &topo, &pattern, 16);
        assert!(
            joint.residual < 0.05,
            "ring pattern should converge, residual {}",
            joint.residual
        );
        // Symmetric pattern ⇒ symmetric plans.
        let t0: Vec<f64> = joint.plans[0].paths.iter().map(|p| p.theta).collect();
        for plan in &joint.plans[1..] {
            let t: Vec<f64> = plan.paths.iter().map(|p| p.theta).collect();
            for (x, y) in t0.iter().zip(&t) {
                assert!((x - y).abs() < 0.05, "{t0:?} vs {t:?}");
            }
        }
    }

    #[test]
    fn predictions_account_for_sharing() {
        // Under a 4-transfer ring, the blind prediction per transfer is
        // wildly optimistic; the joint prediction must be lower.
        let topo = presets::beluga();
        let planner = Planner::new(Arc::new(topo.clone()));
        let n = 64 << 20;
        let pattern: Vec<_> = [(0, 1), (1, 2), (2, 3), (3, 0)]
            .iter()
            .map(|&(s, d)| transfer(&topo, s, d, n, PathSelection::THREE_GPUS))
            .collect();
        let blind =
            planner.compute_with_params(pattern[0].n, &pattern[0].paths, pattern[0].params.clone());
        let joint = plan_concurrent(&planner, &topo, &pattern, 8);
        assert!(
            joint.plans[0].predicted_bandwidth < blind.predicted_bandwidth,
            "joint prediction must reflect sharing"
        );
    }

    #[test]
    #[should_panic(expected = "empty communication pattern")]
    fn empty_pattern_panics() {
        let topo = presets::beluga();
        let planner = Planner::new(Arc::new(topo.clone()));
        plan_concurrent(&planner, &topo, &[], 4);
    }
}
