//! Property-based tests of the Algorithm-1 planner over randomized
//! synthetic topologies and message sizes.

use mpx_model::{Planner, PlannerConfig};
use mpx_topo::overhead::OverheadModel;
use mpx_topo::presets::{synthetic, SyntheticSpec};
use mpx_topo::units::gb_per_s;
use mpx_topo::PathSelection;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        2usize..6,           // gpus
        5.0f64..200.0,       // nvlink GB/s
        0.0f64..10e-6,       // nvlink latency
        2.0f64..30.0,        // pcie GB/s
        0.0f64..10e-6,       // pcie latency
        10.0f64..100.0,      // dram GB/s
        proptest::bool::ANY, // overheads on/off
    )
        .prop_map(|(gpus, nv, nvl, pc, pcl, dr, oh)| SyntheticSpec {
            gpus,
            nvlink_bw: gb_per_s(nv),
            nvlink_lat: nvl,
            pcie_bw: gb_per_s(pc),
            pcie_lat: pcl,
            dram_bw: gb_per_s(dr),
            overheads: if oh {
                OverheadModel::default_cuda()
            } else {
                OverheadModel::zero()
            },
        })
}

fn arb_selection() -> impl Strategy<Value = PathSelection> {
    (0usize..4, proptest::bool::ANY).prop_map(|(g, h)| PathSelection {
        max_gpu_staged: g,
        host_staged: h,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plans_assign_every_byte(
        spec in arb_spec(),
        sel in arb_selection(),
        n in 1usize..(1 << 28),
    ) {
        let topo = Arc::new(synthetic(spec));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let total: usize = plan.paths.iter().map(|p| p.share_bytes).sum();
        prop_assert_eq!(total, n);
        for p in &plan.paths {
            prop_assert!(p.theta >= 0.0 && p.theta <= 1.0 + 1e-9);
            prop_assert!(p.chunks >= 1);
        }
        prop_assert!(plan.predicted_time > 0.0);
        prop_assert!(plan.predicted_bandwidth.is_finite());
    }

    #[test]
    fn multipath_never_predicted_slower_than_direct(
        spec in arb_spec(),
        n in (1usize << 20)..(1 << 28),
    ) {
        let topo = Arc::new(synthetic(spec));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let direct = planner
            .plan(gpus[0], gpus[1], n, PathSelection::DIRECT_ONLY)
            .unwrap();
        let multi = planner
            .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
            .unwrap();
        // The planner's quantization-aware exclusion loop guarantees the
        // makespan stays within its 2% straggler threshold of the
        // equalized optimum, which never exceeds the direct-only time.
        prop_assert!(
            multi.predicted_time <= direct.predicted_time * 1.03,
            "multi {} > direct {}",
            multi.predicted_time,
            direct.predicted_time
        );
    }

    #[test]
    fn predicted_bandwidth_is_monotone_in_message_size(
        spec in arb_spec(),
    ) {
        // Hockney-style laws: effective bandwidth grows with n.
        let topo = Arc::new(synthetic(spec));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let mut last = 0.0f64;
        for n in [1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28] {
            let plan = planner
                .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS)
                .unwrap();
            // Integer chunk counts and byte alignment allow small local
            // wobbles; the trend must still be monotone within 3%.
            prop_assert!(
                plan.predicted_bandwidth >= last * 0.97,
                "bandwidth regressed at n={n}: {} < {last}",
                plan.predicted_bandwidth
            );
            last = plan.predicted_bandwidth;
        }
    }

    #[test]
    fn chunk_sizes_respect_floor(
        spec in arb_spec(),
        n in (1usize << 20)..(1 << 28),
    ) {
        let topo = Arc::new(synthetic(spec));
        let cfg = PlannerConfig::default();
        let planner = Planner::with_config(topo.clone(), cfg);
        let gpus = topo.gpus();
        let plan = planner
            .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS)
            .unwrap();
        for p in plan.active_paths() {
            if p.chunks > 1 {
                prop_assert!(
                    p.share_bytes / p.chunks as usize >= cfg.min_chunk_bytes,
                    "path {}: {} bytes in {} chunks below floor",
                    p.index,
                    p.share_bytes,
                    p.chunks
                );
            }
        }
    }

    #[test]
    fn active_path_times_equalize(
        spec in arb_spec(),
        n in (1usize << 22)..(1 << 28),
    ) {
        // Theorem 1 observed through the planner: per-path predicted
        // times of active paths agree within the linearization slack.
        let topo = Arc::new(synthetic(spec));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let plan = planner
            .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS)
            .unwrap();
        let times: Vec<f64> = plan
            .active_paths()
            .map(|p| p.predicted_time)
            .collect();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        // Integer chunk rounding + φ linearization allow ~15% spread.
        prop_assert!(
            max <= min * 1.15 + 20e-6,
            "active path times spread too far: {times:?}"
        );
    }
}
