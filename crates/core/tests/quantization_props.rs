//! Property-based tests of size-class plan reuse on the paper's two
//! machine presets (Beluga 4×V100, Narval 4×A100).
//!
//! The ε guard's contract: a plan realized from a memoized size-class
//! entry never predicts more than `(1 + ε)×` the time of the plan an
//! exact solve would have produced for the same `(pair, n)`, and
//! messages below the `exact_below` threshold never touch class entries
//! at all.

use mpx_model::{Planner, PlannerConfig, SizeClassConfig};
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::{PathSelection, Topology};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_preset() -> impl Strategy<Value = Topology> {
    prop_oneof![Just(presets::beluga()), Just(presets::narval()),]
}

fn arb_selection() -> impl Strategy<Value = PathSelection> {
    prop_oneof![
        Just(PathSelection::TWO_GPUS),
        Just(PathSelection::THREE_GPUS),
        Just(PathSelection::THREE_GPUS_WITH_HOST),
    ]
}

fn quantizing() -> PlannerConfig {
    PlannerConfig {
        size_classes: SizeClassConfig::ENABLED,
        ..PlannerConfig::default()
    }
}

/// A pair of distinct 4-byte-aligned sizes in the same size class, both
/// at or above the exact-keying threshold.
fn arb_classmates() -> impl Strategy<Value = (usize, usize)> {
    let sc = SizeClassConfig::ENABLED;
    (sc.exact_below..(256 * MIB), 0.0f64..1.0).prop_map(move |(seed, f)| {
        let seed = seed & !3;
        let class = sc.class_of(seed);
        // The class spans [2^(c/q), 2^((c+1)/q)); pick the partner at
        // fraction `f` of the span, re-aligned and clamped inside it.
        let q = f64::from(sc.per_octave);
        let lo = (f64::from(class) / q).exp2().ceil() as usize;
        // The upper boundary is exclusive (and lands on an exact power
        // of two every `per_octave` classes), so stay strictly below it.
        let hi = (((f64::from(class + 1) / q).exp2() - 1.0).floor() as usize) & !3;
        let partner = (lo + (f * (hi - lo) as f64) as usize) & !3;
        let partner = partner.clamp(lo.next_multiple_of(4), hi);
        (seed.max(sc.exact_below), partner.max(sc.exact_below))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Above the threshold, the second size of a class pair is served
    /// from the memoized class entry (or falls back to an exact solve),
    /// and either way its predicted time stays within ε of what a
    /// quantization-free planner computes for the same size.
    #[test]
    fn class_reuse_stays_within_epsilon(
        topo in arb_preset(),
        sel in arb_selection(),
        (seed_n, reuse_n) in arb_classmates(),
    ) {
        let sc = SizeClassConfig::ENABLED;
        prop_assert_eq!(sc.class_of(seed_n), sc.class_of(reuse_n));

        let topo = Arc::new(topo);
        let gpus = topo.gpus();
        let exact = Planner::new(topo.clone());
        let quant = Planner::with_config(topo.clone(), quantizing());

        quant.plan(gpus[0], gpus[1], seed_n, sel).unwrap();
        let q = quant.plan(gpus[0], gpus[1], reuse_n, sel).unwrap();
        let e = exact.plan(gpus[0], gpus[1], reuse_n, sel).unwrap();

        let total: usize = q.paths.iter().map(|p| p.share_bytes).sum();
        prop_assert_eq!(total, reuse_n, "quantized plan dropped bytes");
        prop_assert!(
            q.predicted_time <= e.predicted_time * (1.0 + sc.epsilon) + 1e-9,
            "quantized plan {} exceeds (1+eps) x exact {} at n={reuse_n}",
            q.predicted_time,
            e.predicted_time
        );

        // The reuse request must have probed the class entry seeded by
        // the first solve: it resolves as a class hit or a guard
        // fallback, never as a plain miss (unless it was the same size,
        // which hits the exact table instead).
        let s = quant.stats();
        if seed_n != reuse_n {
            prop_assert_eq!(
                s.class_hits + s.class_fallbacks,
                1,
                "class entry was never consulted: {s:?}"
            );
        }
    }

    /// Below the threshold, quantization is inert: same-class sizes get
    /// independent exact solves and identical plans to an exact-keyed
    /// planner, byte for byte.
    #[test]
    fn small_messages_bypass_size_classes(
        topo in arb_preset(),
        sel in arb_selection(),
        n in 4096usize..(4 * MIB - 4096),
        delta in 4usize..4096,
    ) {
        let sc = SizeClassConfig::ENABLED;
        let n = n & !3;
        let n2 = (n + delta) & !3;
        assert!(n2 < sc.exact_below);

        let topo = Arc::new(topo);
        let gpus = topo.gpus();
        let exact = Planner::new(topo.clone());
        let quant = Planner::with_config(topo.clone(), quantizing());

        let q1 = quant.plan(gpus[0], gpus[1], n, sel).unwrap();
        let q2 = quant.plan(gpus[0], gpus[1], n2, sel).unwrap();
        let e1 = exact.plan(gpus[0], gpus[1], n, sel).unwrap();
        let e2 = exact.plan(gpus[0], gpus[1], n2, sel).unwrap();

        let shares =
            |p: &mpx_model::TransferPlan| p.paths.iter().map(|q| q.share_bytes).collect::<Vec<_>>();
        prop_assert_eq!(shares(&q1), shares(&e1));
        prop_assert_eq!(shares(&q2), shares(&e2));

        let s = quant.stats();
        prop_assert_eq!(s.class_hits, 0, "sub-threshold size took a class hit");
        prop_assert_eq!(s.class_fallbacks, 0);
        prop_assert_eq!(s.misses, 2, "sub-threshold sizes must keep exact keys");
    }
}
