//! Property tests for the broker's fairness machinery: long-run served
//! bytes converge to configured weights under saturation, and a
//! zero-weight tenant is starved only while the broker is Shedding.
//!
//! The harness mirrors the scheduler's batch-selection loop exactly
//! (spend existing credit first, accrue only while no head is covered)
//! over synthetic always-full queues, so the properties exercise the
//! same [`DeficitLedger`] + [`weighted_shares`] composition the broker
//! dispatches with — without needing a simulated fabric per case.

use mpx_broker::{weighted_shares, DeficitLedger, LoadRegime, RegimeConfig, RegimeMachine};
use proptest::prelude::*;

const QUANTUM: f64 = (1 << 20) as f64;
const BATCH_LIMIT: usize = 4;
const ACCRUE_ROUNDS: usize = 4096;

/// One saturated tenant: an inexhaustible queue of `head`-byte requests.
#[derive(Debug, Clone)]
struct SatTenant {
    weight: f64,
    head: usize,
}

/// Runs `batches` batch selections over always-full queues, mirroring
/// `Broker::next_batch` + `collect_batch`, and returns served bytes per
/// tenant.
fn serve(tenants: &[SatTenant], best_effort: bool, batches: usize) -> Vec<u64> {
    let nt = tenants.len();
    let weights: Vec<f64> = tenants.iter().map(|t| t.weight).collect();
    let pending = vec![true; nt];
    let shares = weighted_shares(&weights, &pending, best_effort);
    let mut ledger = DeficitLedger::new(nt);
    let mut served = vec![0u64; nt];
    for _ in 0..batches {
        let mut picked = 0usize;
        'select: for round in 0..ACCRUE_ROUNDS {
            // Spend existing credit round-robin until the batch fills
            // or a full pass makes no progress.
            let mut progress = true;
            while progress && picked < BATCH_LIMIT {
                progress = false;
                for (i, t) in tenants.iter().enumerate() {
                    if picked >= BATCH_LIMIT {
                        break;
                    }
                    if ledger.try_spend(i, t.head as f64) {
                        served[i] += t.head as u64;
                        picked += 1;
                        progress = true;
                    }
                }
            }
            if picked > 0 {
                break 'select;
            }
            if shares.iter().all(|&s| s <= 0.0) && round > 0 {
                break 'select;
            }
            ledger.accrue(&shares, &pending, QUANTUM);
        }
        if picked == 0 {
            break;
        }
    }
    served
}

fn tenant_strategy() -> impl Strategy<Value = SatTenant> {
    ((1usize..17), ((64usize << 10)..(4 << 20))).prop_map(|(w, head)| SatTenant {
        weight: w as f64,
        head: head & !3,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under saturation, each tenant's long-run served-byte fraction
    /// converges to its weight fraction. DRR bounds the lag per tenant
    /// by one head plus one quantum, so with thousands of batches the
    /// relative error must be small.
    #[test]
    fn served_bytes_converge_to_weights(
        tenants in proptest::collection::vec(tenant_strategy(), 2..5),
    ) {
        let served = serve(&tenants, false, 4000);
        let total: u64 = served.iter().sum();
        prop_assert!(total > 0, "saturated tenants must be served");
        let weight_sum: f64 = tenants.iter().map(|t| t.weight).sum();
        for (i, t) in tenants.iter().enumerate() {
            let got = served[i] as f64 / total as f64;
            let want = t.weight / weight_sum;
            prop_assert!(
                (got - want).abs() <= 0.05 * want.max(0.1),
                "tenant {i}: served fraction {got:.4} vs weight fraction {want:.4} \
                 (weights {:?}, heads {:?})",
                tenants.iter().map(|t| t.weight).collect::<Vec<_>>(),
                tenants.iter().map(|t| t.head).collect::<Vec<_>>()
            );
        }
    }

    /// A zero-weight tenant is served in the Normal regime (epsilon
    /// share) and starved outright when best-effort service is off —
    /// the Shedding/Drain dequeue rule.
    #[test]
    fn zero_weight_starved_only_when_shedding(
        mut tenants in proptest::collection::vec(tenant_strategy(), 1..4),
        zidx in 0usize..4,
    ) {
        let zidx = zidx % (tenants.len() + 1);
        tenants.insert(zidx, SatTenant { weight: 0.0, head: 256 << 10 });

        // Normal regime: best-effort rides along and must eventually
        // be served. Its epsilon share is 1/16 of the smallest weight,
        // so give the loop enough batches to cover a 256 KiB head.
        let normal = serve(&tenants, true, 20_000);
        prop_assert!(
            normal[zidx] > 0,
            "best-effort tenant starved in Normal regime: {normal:?}"
        );

        // Shedding: excluded from the fairness solve entirely.
        let shed = serve(&tenants, false, 4000);
        prop_assert_eq!(
            shed[zidx], 0,
            "best-effort tenant served while Shedding: {:?}", shed
        );
        if tenants.len() > 1 {
            prop_assert!(
                shed.iter().sum::<u64>() > 0,
                "weighted tenants must still be served while Shedding"
            );
        }
    }

    /// The regime machine never flaps: fed any occupancy walk, a
    /// transition fires only when the walk actually crosses the
    /// matching enter/exit threshold, transitions are stepwise, and
    /// replaying the walk reproduces the exact same transitions.
    #[test]
    fn regime_transitions_are_hysteretic_and_deterministic(
        walk in proptest::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let cfg = RegimeConfig::default();
        let mut m = RegimeMachine::new(cfg);
        let mut transitions = Vec::new();
        for &occ in &walk {
            let before = m.current();
            if let Some((from, to)) = m.observe(occ) {
                prop_assert_eq!(from, before, "transition must leave the current regime");
                // Stepwise: exactly one level at a time, and only past
                // the matching threshold.
                match (from, to) {
                    (LoadRegime::Normal, LoadRegime::Shedding) => {
                        prop_assert!(occ >= cfg.shed_enter)
                    }
                    (LoadRegime::Shedding, LoadRegime::Drain) => {
                        prop_assert!(occ >= cfg.drain_enter)
                    }
                    (LoadRegime::Shedding, LoadRegime::Normal) => {
                        prop_assert!(occ <= cfg.shed_exit)
                    }
                    (LoadRegime::Drain, LoadRegime::Shedding) => {
                        prop_assert!(occ <= cfg.drain_exit)
                    }
                    other => prop_assert!(false, "illegal transition {:?}", other),
                }
                transitions.push((from, to));
            } else {
                prop_assert_eq!(m.current(), before);
            }
        }
        // Determinism: replay produces the identical transition list.
        let mut m2 = RegimeMachine::new(cfg);
        let replay: Vec<_> = walk.iter().filter_map(|&o| m2.observe(o)).collect();
        prop_assert_eq!(transitions, replay);
    }
}
