//! End-to-end broker behaviour over the simulated fabric: explicit
//! rejection reasons, regime escalation through occupancy, coalesced
//! dispatch, and the accounting invariants.

use std::sync::{Arc, Barrier};

use mpx_broker::{Broker, BrokerConfig, LoadRegime, Outcome, Rejected, TenantSpec};
use mpx_gpu::GpuRuntime;
use mpx_obs::TelemetryRegistry;
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_ucx::{UcxConfig, UcxContext};

fn context() -> UcxContext {
    let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
    UcxContext::new(rt, UcxConfig::default())
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("gold", 3.0),
        TenantSpec::new("silver", 1.0),
        TenantSpec::new("scavenger", 0.0),
    ]
}

#[test]
fn unknown_tenant_is_rejected() {
    let ctx = context();
    let gpus = ctx.runtime().engine().topology().gpus();
    let broker = Broker::new(ctx, BrokerConfig::default(), tenants());
    let err = broker
        .submit("nobody", gpus[0], gpus[1], 1 << 20)
        .unwrap_err();
    assert!(matches!(err, Rejected::UnknownTenant { .. }), "{err}");
    let s = broker.stats();
    assert_eq!(s.shed_invalid, 1);
    assert!(s.accounting_ok(), "{s:?}");
}

#[test]
fn infeasible_deadline_is_shed_at_the_door() {
    let ctx = context();
    let gpus = ctx.runtime().engine().topology().gpus();
    let broker = Broker::new(ctx, BrokerConfig::default(), tenants());
    // A 64 MiB transfer cannot finish in a nanosecond on any fabric.
    let err = broker
        .submit_with_deadline("gold", gpus[0], gpus[1], 64 << 20, Some(1e-9))
        .unwrap_err();
    match err {
        Rejected::DeadlineInfeasible {
            predicted,
            backlog,
            budget,
        } => {
            assert!(predicted > budget, "prediction must exceed the budget");
            assert!(backlog >= 0.0);
        }
        other => panic!("expected DeadlineInfeasible, got {other}"),
    }
    assert_eq!(broker.stats().shed_deadline, 1);
}

#[test]
fn full_queue_sheds_and_regimes_escalate_with_occupancy() {
    let ctx = context();
    let gpus = ctx.runtime().engine().topology().gpus();
    let cfg = BrokerConfig {
        queue_depth: 4,
        ..BrokerConfig::default()
    };
    let broker = Broker::new(ctx, cfg, tenants());
    assert_eq!(broker.regime(), LoadRegime::Normal);

    // No scheduler running: queued requests accumulate. Generous
    // explicit deadlines keep admission happy until the bound.
    let loose = Some(1e6);
    for i in 0..3 {
        broker
            .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
            .unwrap_or_else(|e| panic!("submit {i}: {e}"));
    }
    // Occupancy hit 3/4 = shed_enter: the broker is now Shedding, so
    // the best-effort tenant is refused at the door...
    assert_eq!(broker.regime(), LoadRegime::Shedding);
    let err = broker
        .submit_with_deadline("scavenger", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap_err();
    assert!(matches!(err, Rejected::Shed { .. }), "{err}");

    // ...while a weighted tenant still gets the last slot, which fills
    // the queue and tips the machine into Drain.
    broker
        .submit_with_deadline("silver", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap();
    assert_eq!(broker.regime(), LoadRegime::Drain);

    // Drain refuses everyone, weighted or not.
    let err = broker
        .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap_err();
    assert!(matches!(err, Rejected::Draining), "{err}");

    let s = broker.stats();
    assert_eq!(s.admitted, 4);
    assert_eq!(s.shed_regime, 2);
    assert_eq!(s.regime_changes, 2);
    assert!(s.accounting_ok(), "{s:?}");
}

#[test]
fn queue_full_rejection_carries_the_pair_and_bound() {
    let ctx = context();
    let gpus = ctx.runtime().engine().topology().gpus();
    let cfg = BrokerConfig {
        queue_depth: 2,
        // Disarm the occupancy regimes for this test so the queue bound
        // itself is what rejects.
        regimes: mpx_broker::RegimeConfig {
            shed_enter: 0.99,
            shed_exit: 0.5,
            drain_enter: 1.0,
            drain_exit: 0.625,
        },
        ..BrokerConfig::default()
    };
    let broker = Broker::new(ctx, cfg, tenants());
    let loose = Some(1e6);
    broker
        .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap();
    broker
        .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap();
    let err = broker
        .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
        .unwrap_err();
    match err {
        Rejected::QueueFull { pair, depth } => {
            assert_eq!(pair, (gpus[0], gpus[1]));
            assert_eq!(depth, 2);
        }
        other => panic!("expected QueueFull, got {other}"),
    }
    assert_eq!(broker.stats().shed_queue_full, 1);
}

#[test]
fn coalesces_queued_same_pair_requests_and_drains_clean() {
    let ctx = context();
    let engine = ctx.runtime().engine().clone();
    let gpus = engine.topology().gpus();
    let broker = Broker::new(ctx, BrokerConfig::default(), tenants());
    broker.set_producers(1);

    let sched_thread = engine.register_thread("broker-sched");
    let client_thread = engine.register_thread("client");
    // The client submits everything before the scheduler takes its
    // first look, so the four queued requests must ride one flow.
    let gate = Arc::new(Barrier::new(2));

    std::thread::scope(|s| {
        {
            let broker = broker.clone();
            let gate = gate.clone();
            s.spawn(move || {
                gate.wait();
                broker.run(sched_thread);
            });
        }
        {
            let broker = broker.clone();
            s.spawn(move || {
                let mut tickets = Vec::new();
                for _ in 0..4 {
                    tickets.push(broker.submit("gold", gpus[0], gpus[1], 256 << 10).unwrap());
                }
                broker.producer_done();
                gate.wait();
                for t in tickets {
                    match t.wait(&client_thread) {
                        Outcome::Completed { latency, bytes } => {
                            assert_eq!(bytes, 256 << 10);
                            assert!(latency > 0.0);
                        }
                        Outcome::Failed { waited } => panic!("failed after {waited}s"),
                    }
                }
                drop(client_thread);
            });
        }
    });

    let s = broker.stats();
    assert_eq!(s.admitted, 4);
    assert_eq!(s.completed, 4);
    assert_eq!(s.failed, 0);
    assert_eq!(
        s.dispatches, 1,
        "four queued requests should share one flow"
    );
    assert_eq!(s.coalesced, 3);
    assert!(s.accounting_ok() && s.drained_ok(), "{s:?}");

    // Telemetry surfaces the same numbers.
    let reg = TelemetryRegistry::new();
    broker.fill_registry(&reg);
    let snap = reg.snapshot();
    assert_eq!(snap.get("broker.completed"), Some(4.0));
    assert_eq!(
        snap.get("tenant.gold.completed_bytes"),
        Some(4.0 * (256 << 10) as f64)
    );

    // Every reaped request fed the sojourn histogram, and the registry
    // surfaces its quantiles.
    assert_eq!(broker.sojourn_hist().count(), 4);
    assert_eq!(snap.get("broker.sojourn_secs.count"), Some(4.0));
    assert!(snap.get("broker.sojourn_secs.p99").unwrap() > 0.0);
}

#[test]
fn entering_shed_regime_fires_the_anomaly_sink() {
    let ctx = context();
    let sink = Arc::new(mpx_obs::AnomalyEngine::new(
        mpx_obs::FlightRecorder::new(1024),
        mpx_obs::AnomalyConfig::default(),
    ));
    ctx.set_anomaly_sink(sink.clone());
    let gpus = ctx.runtime().engine().topology().gpus();
    let cfg = BrokerConfig {
        queue_depth: 4,
        ..BrokerConfig::default()
    };
    let broker = Broker::new(ctx, cfg, tenants());
    let loose = Some(1e6);
    for _ in 0..3 {
        broker
            .submit_with_deadline("gold", gpus[0], gpus[1], 1 << 20, loose)
            .unwrap();
    }
    assert_eq!(broker.regime(), LoadRegime::Shedding);
    let dumps = sink.dumps();
    assert_eq!(dumps.len(), 1, "one dump for the Normal -> Shedding entry");
    assert_eq!(dumps[0].trigger, "shed.regime");
    assert!(
        dumps[0].cause.contains("normal -> shedding"),
        "{}",
        dumps[0].cause
    );
}
