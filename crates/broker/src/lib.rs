//! # mpx-broker — overload-safe multi-tenant transfer broker
//!
//! A front-end over the [`mpx_ucx`] transport for nodes shared by many
//! tenants. Requests enter sharded per-GPU-pair queues with **bounded
//! depth**; a scheduler thread dequeues by **per-tenant weighted fair
//! share** (the sim's max-min machinery used as policy, see [`fair`]),
//! performs **deadline-based admission control** using the performance
//! model's predicted completion time, **coalesces** compatible same-pair
//! requests into one planned multi-path flow, and consults the
//! path-health supervisor so transfers never land on open-breaker paths
//! without accounting for the lost lanes. Under saturation the broker
//! degrades through explicit **load regimes** (Normal → Shedding →
//! Drain) with hysteresis ([`regime`]) instead of queueing without
//! bound: every refusal is an immediate, typed [`Rejected`] reason.
//!
//! DESIGN.md §4g describes the architecture, the regime state machine,
//! and the admission math; `docs/OBSERVABILITY.md` lists the `broker.*`
//! and `tenant.*` telemetry this crate publishes.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_broker::{Broker, BrokerConfig, Outcome, TenantSpec};
//! use mpx_gpu::GpuRuntime;
//! use mpx_sim::Engine;
//! use mpx_topo::presets;
//! use mpx_ucx::{UcxConfig, UcxContext};
//!
//! let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
//! let ctx = UcxContext::new(rt, UcxConfig::default());
//! let engine = ctx.runtime().engine().clone();
//! let gpus = engine.topology().gpus();
//! let broker = Broker::new(
//!     ctx,
//!     BrokerConfig::default(),
//!     vec![TenantSpec::new("train", 3.0), TenantSpec::new("eval", 1.0)],
//! );
//! broker.set_producers(1);
//! let sched = engine.register_thread("broker-sched");
//! let client = engine.register_thread("client");
//! let b = broker.clone();
//! std::thread::scope(|s| {
//!     s.spawn(move || b.run(sched));
//!     s.spawn(move || {
//!         let ticket = broker.submit("train", gpus[0], gpus[1], 4 << 20).unwrap();
//!         let outcome = ticket.wait(&client);
//!         assert!(matches!(outcome, Outcome::Completed { .. }));
//!         broker.producer_done();
//!         drop(client);
//!     });
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broker;
pub mod fair;
pub mod regime;

pub use broker::{
    Broker, BrokerConfig, BrokerStats, Outcome, Rejected, TenantSpec, TenantStats, Ticket,
};
pub use fair::{weighted_shares, DeficitLedger, BEST_EFFORT_FRACTION};
pub use mpx_ucx::DeadlinePolicy;
pub use regime::{LoadRegime, RegimeConfig, RegimeMachine};
