//! Load-regime state machine with hysteresis.
//!
//! The broker degrades through three explicit regimes as queue occupancy
//! rises, rather than letting behaviour drift implicitly with load:
//!
//! - **Normal** — every tenant is admitted subject only to queue bounds
//!   and deadline feasibility; zero-weight tenants ride along with an
//!   epsilon fair share.
//! - **Shedding** — the fabric is saturated: zero-weight (best-effort)
//!   tenants are shed at submit time and excluded from the fairness
//!   solve, concentrating capacity on weighted tenants.
//! - **Drain** — the broker is overwhelmed: all new submissions are
//!   refused so queued work can complete and occupancy can fall.
//!
//! Each boundary has separate enter/exit thresholds (exit strictly below
//! enter), so occupancy noise around a threshold cannot flap the regime —
//! a transition only reverses after a genuine recovery.

/// The broker's degradation level, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoadRegime {
    /// Uncongested: admit everyone, best-effort tenants included.
    Normal,
    /// Saturated: shed best-effort tenants, keep weighted tenants.
    Shedding,
    /// Overwhelmed: refuse all new work until queues drain.
    Drain,
}

impl LoadRegime {
    /// Stable lowercase label for telemetry and logs.
    pub fn label(self) -> &'static str {
        match self {
            LoadRegime::Normal => "normal",
            LoadRegime::Shedding => "shedding",
            LoadRegime::Drain => "drain",
        }
    }

    /// Numeric encoding for the `broker.regime` gauge (0, 1, 2).
    pub fn as_gauge(self) -> f64 {
        match self {
            LoadRegime::Normal => 0.0,
            LoadRegime::Shedding => 1.0,
            LoadRegime::Drain => 2.0,
        }
    }
}

/// Occupancy thresholds for regime transitions. Occupancy is the worst
/// (highest) `queued / queue_depth` ratio across shards, in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct RegimeConfig {
    /// Enter Shedding when occupancy reaches this level.
    pub shed_enter: f64,
    /// Return from Shedding to Normal once occupancy falls to this level.
    pub shed_exit: f64,
    /// Enter Drain when occupancy reaches this level.
    pub drain_enter: f64,
    /// Return from Drain to Shedding once occupancy falls to this level.
    pub drain_exit: f64,
}

impl Default for RegimeConfig {
    fn default() -> RegimeConfig {
        RegimeConfig {
            shed_enter: 0.75,
            shed_exit: 0.50,
            drain_enter: 0.95,
            drain_exit: 0.625,
        }
    }
}

impl RegimeConfig {
    /// Panics unless thresholds are ordered so hysteresis is real:
    /// `0 < shed_exit < shed_enter <= drain_exit' < drain_enter <= 1`
    /// with each exit strictly below its enter.
    pub fn validate(&self) {
        assert!(
            self.shed_exit > 0.0 && self.shed_exit < self.shed_enter,
            "shed_exit must lie in (0, shed_enter)"
        );
        assert!(
            self.drain_exit < self.drain_enter && self.drain_enter <= 1.0,
            "drain_exit must lie below drain_enter, drain_enter <= 1"
        );
        assert!(
            self.shed_enter <= self.drain_enter,
            "shed_enter must not exceed drain_enter"
        );
        assert!(
            self.drain_exit >= self.shed_exit,
            "drain_exit below shed_exit would skip the Shedding regime on recovery"
        );
    }
}

/// Hysteretic regime tracker: feed it occupancy samples, get back
/// transitions. Transitions are stepwise (Normal ⇄ Shedding ⇄ Drain);
/// a single observation never jumps two levels in one call, so every
/// transition edge is observable in telemetry.
#[derive(Debug, Clone)]
pub struct RegimeMachine {
    cfg: RegimeConfig,
    current: LoadRegime,
}

impl RegimeMachine {
    /// A machine starting in [`LoadRegime::Normal`]. Panics on invalid
    /// thresholds.
    pub fn new(cfg: RegimeConfig) -> RegimeMachine {
        cfg.validate();
        RegimeMachine {
            cfg,
            current: LoadRegime::Normal,
        }
    }

    /// The regime as of the last observation.
    pub fn current(&self) -> LoadRegime {
        self.current
    }

    /// Feeds one occupancy sample; returns `Some((from, to))` when the
    /// regime steps up or down, `None` when it holds.
    pub fn observe(&mut self, occupancy: f64) -> Option<(LoadRegime, LoadRegime)> {
        let from = self.current;
        let to = match from {
            LoadRegime::Normal if occupancy >= self.cfg.shed_enter => LoadRegime::Shedding,
            LoadRegime::Shedding if occupancy >= self.cfg.drain_enter => LoadRegime::Drain,
            LoadRegime::Shedding if occupancy <= self.cfg.shed_exit => LoadRegime::Normal,
            LoadRegime::Drain if occupancy <= self.cfg.drain_exit => LoadRegime::Shedding,
            other => other,
        };
        self.current = to;
        (from != to).then_some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> RegimeMachine {
        RegimeMachine::new(RegimeConfig::default())
    }

    #[test]
    fn starts_normal() {
        assert_eq!(machine().current(), LoadRegime::Normal);
    }

    #[test]
    fn escalates_stepwise() {
        let mut m = machine();
        assert_eq!(
            m.observe(0.80),
            Some((LoadRegime::Normal, LoadRegime::Shedding))
        );
        // A spike past drain_enter from Normal still takes two samples.
        let mut m2 = machine();
        assert_eq!(
            m2.observe(1.0),
            Some((LoadRegime::Normal, LoadRegime::Shedding))
        );
        assert_eq!(
            m2.observe(1.0),
            Some((LoadRegime::Shedding, LoadRegime::Drain))
        );
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut m = machine();
        m.observe(0.80);
        // Dipping just below shed_enter but above shed_exit holds.
        assert_eq!(m.observe(0.70), None);
        assert_eq!(m.current(), LoadRegime::Shedding);
        assert_eq!(
            m.observe(0.50),
            Some((LoadRegime::Shedding, LoadRegime::Normal))
        );
    }

    #[test]
    fn drain_recovers_through_shedding() {
        let mut m = machine();
        m.observe(0.80);
        m.observe(0.96);
        assert_eq!(m.current(), LoadRegime::Drain);
        assert_eq!(m.observe(0.70), None); // above drain_exit: hold Drain
        assert_eq!(
            m.observe(0.60),
            Some((LoadRegime::Drain, LoadRegime::Shedding))
        );
        assert_eq!(
            m.observe(0.10),
            Some((LoadRegime::Shedding, LoadRegime::Normal))
        );
    }

    #[test]
    #[should_panic(expected = "shed_exit")]
    fn inverted_thresholds_rejected() {
        RegimeMachine::new(RegimeConfig {
            shed_enter: 0.5,
            shed_exit: 0.6,
            ..RegimeConfig::default()
        });
    }

    #[test]
    fn labels_and_gauges_are_stable() {
        assert_eq!(LoadRegime::Normal.label(), "normal");
        assert_eq!(LoadRegime::Shedding.label(), "shedding");
        assert_eq!(LoadRegime::Drain.label(), "drain");
        assert_eq!(LoadRegime::Drain.as_gauge(), 2.0);
    }
}
