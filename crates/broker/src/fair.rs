//! Weighted-fair dequeue policy: the sim's max-min machinery applied to
//! tenants instead of flows.
//!
//! Tenants contending for one GPU pair's service capacity are exactly
//! flows contending for one link: model each pending tenant as a
//! [`FlowDemand`] crossing a single unit-capacity link with its
//! configured weight, and [`max_min_rates`] hands back the weighted fair
//! share each tenant is entitled to this round. A deficit ledger (classic
//! deficit round robin) turns those instantaneous shares into long-run
//! byte-proportional service: each round credits `share × quantum` bytes
//! per tenant, and a queued request is served once its tenant's credit
//! covers it.
//!
//! Zero-weight ("best-effort") tenants never enter the fairness solve
//! with their own weight — [`FlowDemand::from_route_weighted`] rightly
//! rejects non-positive weights. In the Normal regime they ride along
//! with a small epsilon weight ([`BEST_EFFORT_FRACTION`] of the smallest
//! configured positive weight), so they see a trickle of service on a
//! busy fabric. The Shedding regime drops the epsilon: best-effort
//! tenants are starved outright until load recedes — the first and
//! cheapest thing to degrade.

use mpx_sim::{max_min_rates, FlowDemand};

/// A zero-weight tenant's effective weight in the Normal regime, as a
/// fraction of the smallest configured positive weight.
pub const BEST_EFFORT_FRACTION: f64 = 1.0 / 16.0;

/// Per-round weighted fair shares over one contended pair.
///
/// `pending[i]` marks tenants with queued work; `best_effort` controls
/// whether zero-weight tenants receive the epsilon weight (Normal
/// regime) or nothing (Shedding and Drain). Returns one share per
/// tenant, summing to 1.0 over the served set (all zeros when nothing is
/// pending or nothing is eligible).
pub fn weighted_shares(weights: &[f64], pending: &[bool], best_effort: bool) -> Vec<f64> {
    assert_eq!(weights.len(), pending.len());
    let min_positive = weights
        .iter()
        .copied()
        .filter(|&w| w > 0.0)
        .fold(f64::INFINITY, f64::min);
    let epsilon = if min_positive.is_finite() {
        min_positive * BEST_EFFORT_FRACTION
    } else {
        1.0 // only best-effort tenants exist: equal shares among them
    };
    let mut idx = Vec::new();
    let mut flows = Vec::new();
    for (i, (&w, &p)) in weights.iter().zip(pending).enumerate() {
        if !p {
            continue;
        }
        let eff = if w > 0.0 {
            w
        } else if best_effort {
            epsilon
        } else {
            continue;
        };
        idx.push(i);
        flows.push(FlowDemand::from_route_weighted(&[0], eff));
    }
    let mut shares = vec![0.0; weights.len()];
    if flows.is_empty() {
        return shares;
    }
    // One unit-capacity link: the pair's service budget for this round.
    for (i, rate) in idx.into_iter().zip(max_min_rates(&[1.0], &flows)) {
        shares[i] = rate;
    }
    shares
}

/// Deficit round-robin ledger: byte credit per tenant, spent as queued
/// requests are served. Credit only accrues while a tenant has pending
/// work (an emptied queue forfeits its balance — standard DRR, so an
/// idle tenant cannot bank service and burst past its weight later).
#[derive(Debug, Clone)]
pub struct DeficitLedger {
    deficit: Vec<f64>,
}

impl DeficitLedger {
    /// A ledger for `tenants` tenants, all balances zero.
    pub fn new(tenants: usize) -> DeficitLedger {
        DeficitLedger {
            deficit: vec![0.0; tenants],
        }
    }

    /// One round of credit: `share × quantum` bytes per pending tenant;
    /// non-pending tenants are reset to zero.
    pub fn accrue(&mut self, shares: &[f64], pending: &[bool], quantum: f64) {
        assert_eq!(shares.len(), self.deficit.len());
        for (i, d) in self.deficit.iter_mut().enumerate() {
            if pending[i] {
                *d += shares[i] * quantum;
            } else {
                *d = 0.0;
            }
        }
    }

    /// Spends `bytes` from tenant `i`'s balance if covered; `false`
    /// leaves the balance untouched (the request waits for more credit).
    pub fn try_spend(&mut self, i: usize, bytes: f64) -> bool {
        if self.deficit[i] + 1e-6 >= bytes {
            self.deficit[i] -= bytes;
            true
        } else {
            false
        }
    }

    /// Current balance of tenant `i` (diagnostics).
    pub fn balance(&self, i: usize) -> f64 {
        self.deficit[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_divide_by_weight() {
        let s = weighted_shares(&[3.0, 1.0], &[true, true], true);
        assert!((s[0] - 0.75).abs() < 1e-9);
        assert!((s[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn non_pending_tenants_get_nothing() {
        let s = weighted_shares(&[3.0, 1.0], &[false, true], true);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_rides_along_only_with_best_effort() {
        let with = weighted_shares(&[1.0, 0.0], &[true, true], true);
        assert!(with[1] > 0.0 && with[1] < 0.1);
        let without = weighted_shares(&[1.0, 0.0], &[true, true], false);
        assert_eq!(without[1], 0.0);
        assert!((without[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn only_best_effort_tenants_split_evenly() {
        let s = weighted_shares(&[0.0, 0.0], &[true, true], true);
        assert!((s[0] - 0.5).abs() < 1e-9);
        assert!((s[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_serves_once_credit_covers() {
        let mut l = DeficitLedger::new(1);
        let pending = [true];
        assert!(!l.try_spend(0, 10.0));
        l.accrue(&[1.0], &pending, 6.0);
        assert!(!l.try_spend(0, 10.0));
        l.accrue(&[1.0], &pending, 6.0);
        assert!(l.try_spend(0, 10.0));
        assert!((l.balance(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_queue_forfeits_credit() {
        let mut l = DeficitLedger::new(2);
        l.accrue(&[0.5, 0.5], &[true, true], 8.0);
        l.accrue(&[0.5, 0.5], &[false, true], 8.0);
        assert_eq!(l.balance(0), 0.0);
        assert!((l.balance(1) - 8.0).abs() < 1e-6);
    }
}
