//! The broker proper: sharded bounded queues, model-driven admission
//! control, weighted-fair coalescing dispatch, and regime-aware load
//! shedding.
//!
//! Many tenants submit transfer requests; the broker either admits a
//! request into the bounded queue of its GPU pair (the *shard*) or
//! rejects it immediately with an explicit, typed [`Rejected`] reason —
//! a caller always learns its fate at submit time, and queues cannot
//! grow without bound. Admission is *model-driven*: the performance
//! model's predicted completion time, scaled by the tenant's current
//! fair share and by path-health exclusions, is compared against the
//! request's deadline budget; work that cannot finish in time is shed
//! at the door instead of rotting in a queue.
//!
//! A single scheduler thread dequeues by deficit round robin over the
//! tenants' max-min fair shares (see [`crate::fair`]), coalesces up to
//! [`BrokerConfig::coalesce_limit`] same-pair requests into one planned
//! multi-path flow, and dispatches it through the transport's
//! asynchronous PUT with a completion waker. Under rising queue
//! occupancy the broker degrades through explicit load regimes with
//! hysteresis (see [`crate::regime`]), shedding best-effort tenants
//! first and finally refusing all new work until the backlog drains.

use crate::fair::{weighted_shares, DeficitLedger};
use crate::regime::{LoadRegime, RegimeConfig, RegimeMachine};
use mpx_gpu::Buffer;
use mpx_obs::{Phase, QuantileHist, TelemetryRegistry, TriggerClass};
use mpx_sim::{SimThread, SimTime, Waker};
use mpx_topo::path::PathSelection;
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, TopologyError};
use mpx_ucx::{DeadlinePolicy, TransferHandle, TuningMode, UcxContext};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One tenant of the broker: a name and a fair-share weight.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant identity, used in submit calls and telemetry counters.
    pub name: String,
    /// Fair-share weight. Zero marks a *best-effort* tenant: served from
    /// leftover capacity in the Normal regime, shed outright while the
    /// broker is Shedding.
    pub weight: f64,
}

impl TenantSpec {
    /// A tenant with the given name and weight. Panics on negative or
    /// non-finite weights (zero is allowed and means best-effort).
    pub fn new(name: impl Into<String>, weight: f64) -> TenantSpec {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "tenant weight must be finite and non-negative"
        );
        TenantSpec {
            name: name.into(),
            weight,
        }
    }
}

/// Broker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Maximum queued (not yet dispatched) requests per GPU-pair shard,
    /// across all tenants. Submissions past the bound are rejected with
    /// [`Rejected::QueueFull`].
    pub queue_depth: usize,
    /// Default deadline budget for requests submitted without an
    /// explicit deadline: `budget(predicted)` of this policy bounds the
    /// model-estimated sojourn (queue wait + service) a request may
    /// face at admission.
    pub admission: DeadlinePolicy,
    /// Watchdog for dispatched flows: a flow older than
    /// `budget(predicted)` of this policy is declared failed (its
    /// tickets resolve to [`Outcome::Failed`]) so a dead link cannot
    /// wedge the broker.
    pub stuck: DeadlinePolicy,
    /// Bytes of deficit credit distributed per accrual round, split
    /// across pending tenants by fair share. Credit only accrues while
    /// no queued head is covered by existing credit, so balances stay
    /// bounded by one request plus one quantum.
    pub quantum: f64,
    /// Maximum same-pair requests coalesced into one dispatched flow.
    pub coalesce_limit: usize,
    /// Maximum concurrently dispatched flows per GPU-pair shard.
    pub max_inflight: usize,
    /// Load-regime hysteresis thresholds over queue occupancy.
    pub regimes: RegimeConfig,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            queue_depth: 64,
            admission: DeadlinePolicy::new(4.0, 1e-3),
            stuck: DeadlinePolicy::new(64.0, 0.05),
            quantum: (1 << 20) as f64,
            coalesce_limit: 4,
            max_inflight: 1,
            regimes: RegimeConfig::default(),
        }
    }
}

/// Why a submission was refused. Every rejection is explicit and
/// immediate — the broker never accepts work it does not believe it can
/// finish.
#[derive(Debug, Clone)]
pub enum Rejected {
    /// The pair's shard is at [`BrokerConfig::queue_depth`].
    QueueFull {
        /// The saturated GPU pair.
        pair: (DeviceId, DeviceId),
        /// The configured bound that was hit.
        depth: usize,
    },
    /// The model predicts the request cannot finish inside its budget.
    DeadlineInfeasible {
        /// Model-predicted service time (health-scaled), seconds.
        predicted: Secs,
        /// Estimated queue wait ahead of this request at the tenant's
        /// current fair share, seconds.
        backlog: Secs,
        /// The deadline budget the sum had to fit, seconds.
        budget: Secs,
    },
    /// The broker is in the Drain regime: no new work of any kind.
    Draining,
    /// A best-effort (zero-weight) tenant submitted while the broker is
    /// Shedding.
    Shed {
        /// The shed tenant.
        tenant: String,
    },
    /// The tenant name was never registered with the broker.
    UnknownTenant {
        /// The unrecognized name.
        tenant: String,
    },
    /// Path planning failed for the requested pair.
    Topology(TopologyError),
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { pair, depth } => {
                write!(
                    f,
                    "queue full for pair {}->{} (depth {})",
                    pair.0, pair.1, depth
                )
            }
            Rejected::DeadlineInfeasible {
                predicted,
                backlog,
                budget,
            } => write!(
                f,
                "deadline infeasible: backlog {:.3}ms + predicted {:.3}ms > budget {:.3}ms",
                backlog * 1e3,
                predicted * 1e3,
                budget * 1e3
            ),
            Rejected::Draining => write!(f, "broker is draining: no new work admitted"),
            Rejected::Shed { tenant } => {
                write!(f, "best-effort tenant '{tenant}' shed under load")
            }
            Rejected::UnknownTenant { tenant } => write!(f, "unknown tenant '{tenant}'"),
            Rejected::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl std::error::Error for Rejected {}

impl Rejected {
    /// Stable short label for telemetry (`shed <label>` instants).
    pub fn label(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue-full",
            Rejected::DeadlineInfeasible { .. } => "deadline",
            Rejected::Draining => "draining",
            Rejected::Shed { .. } => "regime",
            Rejected::UnknownTenant { .. } => "unknown-tenant",
            Rejected::Topology(_) => "topology",
        }
    }
}

/// Terminal state of an admitted request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The transfer landed.
    Completed {
        /// Submit-to-completion sojourn in virtual seconds.
        latency: Secs,
        /// Message size.
        bytes: usize,
    },
    /// The dispatched flow missed the stuck watchdog (dead path, fault
    /// storm) and was abandoned by the broker.
    Failed {
        /// Virtual seconds between submission and abandonment.
        waited: Secs,
    },
}

type TicketState = Arc<Mutex<Option<Outcome>>>;

/// A claim on an admitted request: wait on it (from a registered sim
/// thread) or poll it for the terminal [`Outcome`].
#[derive(Debug, Clone)]
pub struct Ticket {
    id: u64,
    waker: Waker,
    state: TicketState,
}

impl Ticket {
    /// Broker-unique request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The outcome, if the request has reached one.
    pub fn outcome(&self) -> Option<Outcome> {
        *self.state.lock()
    }

    /// Blocks the calling simulated thread until the request completes
    /// or fails.
    pub fn wait(&self, thread: &SimThread) -> Outcome {
        loop {
            if let Some(o) = *self.state.lock() {
                return o;
            }
            thread.wait(&self.waker);
        }
    }
}

/// An admitted request sitting in a shard queue.
struct QueuedReq {
    tenant: usize,
    n: usize,
    submitted_at: SimTime,
    state: TicketState,
    waker: Waker,
}

/// A dispatched (possibly coalesced) flow awaiting completion.
struct Inflight {
    handle: TransferHandle,
    parts: Vec<QueuedReq>,
    bytes: usize,
    dispatched_at: SimTime,
    deadline: SimTime,
    /// The model's predicted completion time for the whole flow, kept
    /// so the shard can calibrate modeled against delivered time.
    modeled: f64,
    // Buffers must outlive the flow.
    _src: Buffer,
    _dst: Buffer,
}

/// Per-GPU-pair state: one bounded queue per tenant plus the inflight
/// set.
struct Shard {
    src: DeviceId,
    dst: DeviceId,
    queues: Vec<VecDeque<QueuedReq>>,
    queued: usize,
    tenant_queued_bytes: Vec<u64>,
    tenant_inflight_bytes: Vec<u64>,
    /// Virtual-clock shaper, one entry per tenant: the sim time at
    /// which the tenant's admitted work would finish draining at its
    /// *entitled, calibrated* rate. Admission charges this clock per
    /// request, so a tenant's long-run admitted rate converges to its
    /// entitlement even though the work-conserving dispatcher may
    /// empty its real queue faster.
    virtual_finish: Vec<f64>,
    /// Wall time the shard has spent with a flow in flight, and the
    /// model's prediction for those same flows. Their ratio calibrates
    /// the shaper against what the fabric actually delivers (chunking
    /// and pipeline-fill overheads the plan-level model does not see).
    busy_secs: f64,
    modeled_busy_secs: f64,
    ledger: DeficitLedger,
    inflight: Vec<Inflight>,
    inflight_bytes: usize,
}

impl Shard {
    fn new(src: DeviceId, dst: DeviceId, tenants: usize) -> Shard {
        Shard {
            src,
            dst,
            queues: (0..tenants).map(|_| VecDeque::new()).collect(),
            queued: 0,
            tenant_queued_bytes: vec![0; tenants],
            tenant_inflight_bytes: vec![0; tenants],
            virtual_finish: vec![0.0; tenants],
            busy_secs: 0.0,
            modeled_busy_secs: 0.0,
            ledger: DeficitLedger::new(tenants),
            inflight: Vec::new(),
            inflight_bytes: 0,
        }
    }

    /// How much slower the fabric actually serves this shard's flows
    /// than the plan-level model predicts (≥ 1). Starts neutral and
    /// converges as flows complete.
    fn calibration(&self) -> f64 {
        if self.modeled_busy_secs > 0.0 {
            (self.busy_secs / self.modeled_busy_secs).max(1.0)
        } else {
            1.0
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    shed_regime: AtomicU64,
    shed_invalid: AtomicU64,
    coalesced: AtomicU64,
    dispatches: AtomicU64,
    regime_changes: AtomicU64,
    queue_peak: AtomicU64,
}

#[derive(Default)]
struct TenantCounters {
    submitted: AtomicU64,
    admitted_bytes: AtomicU64,
    completed_bytes: AtomicU64,
    shed: AtomicU64,
}

/// Per-tenant accounting snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Requests submitted by this tenant.
    pub submitted: u64,
    /// Bytes of admitted requests.
    pub admitted_bytes: u64,
    /// Bytes of completed requests (the tenant's goodput numerator).
    pub completed_bytes: u64,
    /// Requests rejected, any reason.
    pub shed: u64,
}

/// Broker accounting snapshot: every submission is exactly one of
/// admitted or shed; every admitted request eventually exactly one of
/// completed or failed.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerStats {
    /// Total submissions.
    pub submitted: u64,
    /// Requests accepted into a queue.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests abandoned by the stuck watchdog.
    pub failed: u64,
    /// Rejections: shard at queue-depth bound.
    pub shed_queue_full: u64,
    /// Rejections: model-predicted finish exceeded the deadline budget.
    pub shed_deadline: u64,
    /// Rejections: regime gate (Draining, or best-effort while
    /// Shedding).
    pub shed_regime: u64,
    /// Rejections: unknown tenant or topology error.
    pub shed_invalid: u64,
    /// Requests that shared a dispatched flow with an earlier request
    /// (batch size minus one, summed over dispatches).
    pub coalesced: u64,
    /// Flows dispatched.
    pub dispatches: u64,
    /// Load-regime transitions observed.
    pub regime_changes: u64,
    /// Highest queued-request count seen in any one shard.
    pub queue_peak: u64,
    /// Regime at snapshot time.
    pub regime: LoadRegime,
    /// Per-tenant breakdown, in registration order.
    pub tenants: Vec<TenantStats>,
}

impl BrokerStats {
    /// Total rejections across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_regime + self.shed_invalid
    }

    /// Every submission is exactly one of admitted or shed.
    pub fn accounting_ok(&self) -> bool {
        self.submitted == self.admitted + self.shed_total()
    }

    /// After a full drain, every admitted request has a terminal
    /// outcome — and sheds never masquerade as failures.
    pub fn drained_ok(&self) -> bool {
        self.admitted == self.completed + self.failed
    }
}

type Completion = (TicketState, Waker, Outcome, usize, usize);

/// Bound on deficit-accrual rounds per batch selection: far above what
/// any real head-of-line request needs (`head / (min_share × quantum)`
/// rounds), yet finite so a pathological configuration cannot spin the
/// scheduler.
const ACCRUE_ROUNDS: usize = 4096;

/// Safety factor applied on top of the measured calibration when the
/// admission shaper charges a request: tenants are collectively shaped
/// to slightly *under* the delivered capacity, so queues drain instead
/// of hovering at the edge of the budget.
const CAPACITY_HEADROOM: f64 = 1.1;

/// The multi-tenant transfer broker. Construct with [`Broker::new`],
/// share via [`Arc`]: generator threads call [`Broker::submit`], one
/// dedicated registered sim thread runs [`Broker::run`].
pub struct Broker {
    ctx: UcxContext,
    cfg: BrokerConfig,
    tenants: Vec<TenantSpec>,
    weights: Vec<f64>,
    by_name: HashMap<String, usize>,
    shards: Mutex<HashMap<(DeviceId, DeviceId), Shard>>,
    regime: Mutex<RegimeMachine>,
    work: Waker,
    producers: AtomicUsize,
    next_id: AtomicU64,
    c: Counters,
    tc: Vec<TenantCounters>,
    /// Queue-sojourn histogram (submit → terminal outcome), always on.
    sojourn: Arc<QuantileHist>,
}

impl Broker {
    /// A broker over `ctx` serving `tenants`. Panics when the tenant
    /// list is empty, holds duplicate names, or the regime thresholds
    /// are invalid.
    pub fn new(ctx: UcxContext, cfg: BrokerConfig, tenants: Vec<TenantSpec>) -> Arc<Broker> {
        assert!(!tenants.is_empty(), "broker needs at least one tenant");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        assert!(cfg.coalesce_limit > 0, "coalesce_limit must be positive");
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        let mut by_name = HashMap::new();
        for (i, t) in tenants.iter().enumerate() {
            assert!(
                by_name.insert(t.name.clone(), i).is_none(),
                "duplicate tenant name '{}'",
                t.name
            );
        }
        let weights = tenants.iter().map(|t| t.weight).collect();
        let tc = tenants.iter().map(|_| TenantCounters::default()).collect();
        Arc::new(Broker {
            ctx,
            cfg,
            weights,
            by_name,
            tenants,
            shards: Mutex::new(HashMap::new()),
            regime: Mutex::new(RegimeMachine::new(cfg.regimes)),
            work: Waker::new("broker-work"),
            producers: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            c: Counters::default(),
            tc,
            sojourn: Arc::new(QuantileHist::new()),
        })
    }

    /// The transport context the broker dispatches through.
    pub fn context(&self) -> &UcxContext {
        &self.ctx
    }

    /// The current load regime.
    pub fn regime(&self) -> LoadRegime {
        self.regime.lock().current()
    }

    /// The queue-sojourn histogram: submit-to-terminal-outcome seconds
    /// of every reaped request, watchdog kills included.
    pub fn sojourn_hist(&self) -> &Arc<QuantileHist> {
        &self.sojourn
    }

    /// Declares how many producer (generator) threads will submit work.
    /// The scheduler loop exits only once this count has been returned
    /// to zero via [`Broker::producer_done`] *and* all queues and
    /// inflight flows are empty. Call before spawning the scheduler.
    pub fn set_producers(&self, n: usize) {
        self.producers.store(n, Ordering::SeqCst);
    }

    /// Signals that one producer has finished submitting. Call before
    /// dropping the producer's `SimThread` guard, so the scheduler can
    /// observe the decrement and exit instead of deadlocking the sim.
    pub fn producer_done(&self) {
        self.producers.fetch_sub(1, Ordering::SeqCst);
        self.ctx.runtime().engine().signal_waker(&self.work);
    }

    /// Replicates the context's effective path selection (the context's
    /// own helper is crate-private).
    fn selection(&self) -> PathSelection {
        match self.ctx.config().mode {
            TuningMode::SinglePath => PathSelection::DIRECT_ONLY,
            _ => self.ctx.config().selection,
        }
    }

    fn shed(&self, tenant: Option<usize>, counter: &AtomicU64, why: &Rejected) {
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(ti) = tenant {
            self.tc[ti].shed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(rec) = self.ctx.recorder() {
            rec.instant(
                Phase::Broker,
                "broker",
                format!("shed {}", why.label()),
                self.ctx.runtime().engine().now().as_secs(),
                format!("{why}"),
            );
        }
    }

    /// Submits a request under the default admission budget
    /// ([`BrokerConfig::admission`] applied to the model's prediction).
    pub fn submit(
        &self,
        tenant: &str,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
    ) -> Result<Ticket, Rejected> {
        self.submit_with_deadline(tenant, src, dst, n, None)
    }

    /// Submits a request with an explicit deadline budget in virtual
    /// seconds from now (`None` uses the configured admission policy).
    /// Returns a [`Ticket`] on admission or the typed rejection.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        deadline: Option<Secs>,
    ) -> Result<Ticket, Rejected> {
        self.c.submitted.fetch_add(1, Ordering::Relaxed);
        let ti = match self.by_name.get(tenant) {
            Some(&i) => i,
            None => {
                let why = Rejected::UnknownTenant {
                    tenant: tenant.to_string(),
                };
                self.shed(None, &self.c.shed_invalid, &why);
                return Err(why);
            }
        };
        self.tc[ti].submitted.fetch_add(1, Ordering::Relaxed);

        // Regime gate: Drain refuses everyone; Shedding refuses
        // best-effort tenants.
        let regime = self.regime.lock().current();
        match regime {
            LoadRegime::Drain => {
                let why = Rejected::Draining;
                self.shed(Some(ti), &self.c.shed_regime, &why);
                return Err(why);
            }
            LoadRegime::Shedding if self.weights[ti] == 0.0 => {
                let why = Rejected::Shed {
                    tenant: tenant.to_string(),
                };
                self.shed(Some(ti), &self.c.shed_regime, &why);
                return Err(why);
            }
            _ => {}
        }

        // Model-predicted service time, inflated when path health has
        // excluded candidates (fewer lanes carry the same bytes).
        let plan = match self.ctx.plan_for(src, dst, n) {
            Ok(p) => p,
            Err(e) => {
                let why = Rejected::Topology(e);
                self.shed(Some(ti), &self.c.shed_invalid, &why);
                return Err(why);
            }
        };
        let sel = self.selection();
        let predicted = match self.ctx.paths_for(src, dst, sel) {
            Ok(paths) => {
                let pair = (src, dst, sel.max_gpu_staged, sel.host_staged);
                let now = self.ctx.runtime().engine().now().as_secs();
                let adm = self.ctx.health().admissions(pair, paths.len(), now);
                let healthy = paths.len().saturating_sub(adm.excluded.len()).max(1);
                plan.predicted_time * paths.len() as f64 / healthy as f64
            }
            Err(e) => {
                let why = Rejected::Topology(e);
                self.shed(Some(ti), &self.c.shed_invalid, &why);
                return Err(why);
            }
        };

        let engine = self.ctx.runtime().engine();
        let mut shards = self.shards.lock();
        let nt = self.tenants.len();
        let shard = shards
            .entry((src, dst))
            .or_insert_with(|| Shard::new(src, dst, nt));

        // Bound check first: a full shard sheds regardless of deadline.
        if shard.queued >= self.cfg.queue_depth {
            let why = Rejected::QueueFull {
                pair: (src, dst),
                depth: self.cfg.queue_depth,
            };
            drop(shards);
            self.shed(Some(ti), &self.c.shed_queue_full, &why);
            return Err(why);
        }

        // Deadline admission at the tenant's *entitled* fair share —
        // computed as if every tenant were backlogged — via a
        // per-tenant virtual-clock shaper. Each admitted request
        // charges the clock `calibration × headroom × predicted /
        // share`: the time its tenant's entitlement needs to pay for
        // it, scaled by how much slower the fabric actually serves
        // this shard than the plan-level model claims (measured from
        // completed flows) plus a safety headroom. That makes the
        // shaper — not queue buildup — the binding constraint under
        // saturation, which is what keeps per-tenant goodput
        // proportional to the configured weights: once queues are deep
        // enough to matter, coalesced dispatch serves whoever is
        // queued and washes the weights out.
        //
        // The tenant's real in-system bytes (queued + in flight),
        // drained at the same calibrated rate, gate the same budget as
        // a closed-loop backstop: the window only reopens when work
        // actually completes, so no amount of residual model optimism
        // can grow the queues without bound.
        //
        // Entitled (rather than instantaneous) shares matter here: a
        // tenant submitting while the others idle must not bank a
        // burst it could not drain at its entitlement once they return
        // — the dispatcher still hands any actually-unused capacity to
        // whoever has work queued.
        let now_secs = engine.now().as_secs();
        let all = vec![true; nt];
        let shares = weighted_shares(&self.weights, &all, regime == LoadRegime::Normal);
        let share = shares[ti].max(1e-9);
        let eff_bw = (n as f64 / predicted.max(1e-12)).max(1.0);
        let rate = (eff_bw * share / (shard.calibration() * CAPACITY_HEADROOM)).max(1.0);
        let vstart = shard.virtual_finish[ti].max(now_secs);
        let in_system = shard.tenant_queued_bytes[ti] + shard.tenant_inflight_bytes[ti];
        let backlog = (vstart - now_secs).max(in_system as f64 / rate);
        let budget = deadline.unwrap_or_else(|| self.cfg.admission.budget(predicted));
        if backlog + predicted > budget {
            let why = Rejected::DeadlineInfeasible {
                predicted,
                backlog,
                budget,
            };
            drop(shards);
            self.shed(Some(ti), &self.c.shed_deadline, &why);
            return Err(why);
        }
        shard.virtual_finish[ti] = vstart + n as f64 / rate;

        // Admitted: enqueue and kick the scheduler.
        self.c.admitted.fetch_add(1, Ordering::Relaxed);
        self.tc[ti]
            .admitted_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state: TicketState = Arc::new(Mutex::new(None));
        let waker = Waker::new(format!("broker-ticket-{id}"));
        shard.queues[ti].push_back(QueuedReq {
            tenant: ti,
            n,
            submitted_at: engine.now(),
            state: state.clone(),
            waker: waker.clone(),
        });
        shard.queued += 1;
        shard.tenant_queued_bytes[ti] += n as u64;
        self.c
            .queue_peak
            .fetch_max(shard.queued as u64, Ordering::Relaxed);
        let occ = occupancy(&shards, self.cfg.queue_depth);
        drop(shards);
        self.note_regime(occ);
        engine.signal_waker(&self.work);
        Ok(Ticket { id, waker, state })
    }

    /// Feeds an occupancy sample to the regime machine and records any
    /// transition.
    fn note_regime(&self, occ: f64) {
        let transition = self.regime.lock().observe(occ);
        if let Some((from, to)) = transition {
            self.c.regime_changes.fetch_add(1, Ordering::Relaxed);
            let now = self.ctx.runtime().engine().now().as_secs();
            if let Some(rec) = self.ctx.recorder() {
                rec.instant(
                    Phase::Broker,
                    "broker",
                    format!("regime {}", to.label()),
                    now,
                    format!("{} -> {} occupancy={occ:.3}", from.label(), to.label()),
                );
            }
            // Degrading transitions (Normal → Shedding, Shedding →
            // Drain) are anomalies worth a black box; recoveries not.
            if to.as_gauge() > from.as_gauge() {
                if let Some(sink) = self.ctx.anomaly_sink() {
                    sink.signal(
                        TriggerClass::ShedRegime,
                        now,
                        None,
                        None,
                        &format!("{} -> {} occupancy={occ:.3}", from.label(), to.label()),
                    );
                }
            }
        }
    }

    /// The scheduler loop. Run from a dedicated registered sim thread;
    /// returns once every producer has called [`Broker::producer_done`]
    /// and all queues and inflight flows are empty.
    pub fn run(&self, thread: SimThread) {
        let engine = self.ctx.runtime().engine().clone();
        loop {
            let now = thread.now();
            let mut completions: Vec<Completion> = Vec::new();
            let mut earliest: Option<SimTime> = None;
            let idle;
            {
                let mut shards = self.shards.lock();
                for shard in shards.values_mut() {
                    self.reap_shard(shard, now, &mut completions, &mut earliest);
                }
                let occ = occupancy(&shards, self.cfg.queue_depth);
                drop(shards);
                self.note_regime(occ);
                let regime = self.regime.lock().current();
                let mut shards = self.shards.lock();
                for shard in shards.values_mut() {
                    self.dispatch_shard(shard, regime, now, &mut completions, &mut earliest);
                }
                idle = shards
                    .values()
                    .all(|s| s.queued == 0 && s.inflight.is_empty());
            }
            // Resolve tickets outside the shard lock: ticket waiters may
            // immediately re-submit, which takes the same lock.
            for (state, waker, outcome, ti, n) in completions {
                match outcome {
                    Outcome::Completed { .. } => {
                        self.c.completed.fetch_add(1, Ordering::Relaxed);
                        self.tc[ti]
                            .completed_bytes
                            .fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Outcome::Failed { .. } => {
                        self.c.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                *state.lock() = Some(outcome);
                engine.signal_waker(&waker);
            }
            if idle && self.producers.load(Ordering::SeqCst) == 0 {
                return;
            }
            match earliest {
                Some(d) => {
                    let _ = thread.wait_until(&self.work, d);
                }
                None => thread.wait(&self.work),
            }
        }
    }

    /// Completes or times out inflight flows of one shard.
    fn reap_shard(
        &self,
        shard: &mut Shard,
        now: SimTime,
        completions: &mut Vec<Completion>,
        earliest: &mut Option<SimTime>,
    ) {
        let mut i = 0;
        while i < shard.inflight.len() {
            let done = shard.inflight[i].handle.is_complete();
            let expired = !done && now >= shard.inflight[i].deadline;
            if !done && !expired {
                let d = shard.inflight[i].deadline;
                *earliest = Some(earliest.map_or(d, |e| e.min(d)));
                i += 1;
                continue;
            }
            let inf = shard.inflight.swap_remove(i);
            shard.inflight_bytes -= inf.bytes;
            shard.busy_secs += now.secs_since(inf.dispatched_at);
            shard.modeled_busy_secs += inf.modeled;
            if let Some(rec) = self.ctx.recorder() {
                rec.span(
                    Phase::Broker,
                    format!("pair:{}->{}", shard.src, shard.dst),
                    format!("dispatch {}B x{}", inf.bytes, inf.parts.len()),
                    inf.dispatched_at.as_secs(),
                    now.as_secs(),
                    if done { "completed" } else { "stuck-watchdog" },
                );
            }
            for part in inf.parts {
                shard.tenant_inflight_bytes[part.tenant] -= part.n as u64;
                self.sojourn.observe(now.secs_since(part.submitted_at));
                let outcome = if done {
                    Outcome::Completed {
                        latency: now.secs_since(part.submitted_at),
                        bytes: part.n,
                    }
                } else {
                    Outcome::Failed {
                        waited: now.secs_since(part.submitted_at),
                    }
                };
                completions.push((part.state, part.waker, outcome, part.tenant, part.n));
            }
        }
    }

    /// Dispatches as many coalesced flows as the shard's inflight
    /// budget allows.
    fn dispatch_shard(
        &self,
        shard: &mut Shard,
        regime: LoadRegime,
        now: SimTime,
        completions: &mut Vec<Completion>,
        earliest: &mut Option<SimTime>,
    ) {
        let rt = self.ctx.runtime();
        while shard.inflight.len() < self.cfg.max_inflight && shard.queued > 0 {
            let best_effort = regime == LoadRegime::Normal;
            let mut batch = self.next_batch(shard, best_effort, false);
            if batch.is_empty() && shard.inflight.is_empty() {
                // Nothing dispatchable and nothing running: capacity
                // would idle. Serve best-effort work regardless of
                // regime — starving it only makes sense while weighted
                // work is consuming the capacity instead.
                batch = self.next_batch(shard, true, true);
            }
            if batch.is_empty() {
                return;
            }
            let total: usize = batch.iter().map(|r| r.n).sum();
            for r in &batch {
                shard.queued -= 1;
                shard.tenant_queued_bytes[r.tenant] -= r.n as u64;
            }
            let src = rt.alloc(shard.src, total);
            let dst = rt.alloc(shard.dst, total);
            match self
                .ctx
                .put_async_notify(&src, &dst, total, std::slice::from_ref(&self.work))
            {
                Ok(handle) => {
                    self.c.dispatches.fetch_add(1, Ordering::Relaxed);
                    if batch.len() > 1 {
                        self.c
                            .coalesced
                            .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);
                    }
                    let predicted = self
                        .ctx
                        .plan_for(shard.src, shard.dst, total)
                        .map(|p| p.predicted_time)
                        .unwrap_or(self.cfg.stuck.floor);
                    let deadline = self.cfg.stuck.deadline(now, predicted);
                    *earliest = Some(earliest.map_or(deadline, |e| e.min(deadline)));
                    for r in &batch {
                        shard.tenant_inflight_bytes[r.tenant] += r.n as u64;
                    }
                    shard.inflight_bytes += total;
                    shard.inflight.push(Inflight {
                        handle,
                        parts: batch,
                        bytes: total,
                        dispatched_at: now,
                        deadline,
                        modeled: predicted,
                        _src: src,
                        _dst: dst,
                    });
                }
                Err(_) => {
                    // Paths vanished between admission and dispatch:
                    // fail the batch rather than wedge it.
                    for part in batch {
                        let outcome = Outcome::Failed {
                            waited: now.secs_since(part.submitted_at),
                        };
                        completions.push((part.state, part.waker, outcome, part.tenant, part.n));
                    }
                }
            }
        }
    }

    /// Selects the next coalesced batch by deficit round robin:
    /// existing credit is spent first, and new credit accrues (bounded)
    /// only while no queued head is covered — so deficits stay bounded
    /// by one head plus one quantum and long-run service tracks the
    /// fair shares. In `forced` mode a non-empty shard always yields
    /// progress, overriding the deficit as a last resort (e.g. every
    /// eligible share is zero).
    fn next_batch(&self, shard: &mut Shard, best_effort: bool, forced: bool) -> Vec<QueuedReq> {
        let nt = self.tenants.len();
        let pending: Vec<bool> = (0..nt).map(|i| !shard.queues[i].is_empty()).collect();
        let shares = weighted_shares(&self.weights, &pending, best_effort);
        let mut batch = Vec::new();
        for round in 0..ACCRUE_ROUNDS {
            collect_batch(shard, self.cfg.coalesce_limit, &mut batch);
            if !batch.is_empty() {
                return batch;
            }
            if shares.iter().all(|&s| s <= 0.0) && round > 0 {
                break; // no eligible tenant: credit will never arrive
            }
            shard.ledger.accrue(&shares, &pending, self.cfg.quantum);
        }
        if forced {
            // Serve the oldest head outright so capacity never idles
            // while work is queued.
            if let Some(ti) = oldest_head(shard) {
                if let Some(req) = shard.queues[ti].pop_front() {
                    batch.push(req);
                }
            }
        }
        batch
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            submitted: self.c.submitted.load(Ordering::Relaxed),
            admitted: self.c.admitted.load(Ordering::Relaxed),
            completed: self.c.completed.load(Ordering::Relaxed),
            failed: self.c.failed.load(Ordering::Relaxed),
            shed_queue_full: self.c.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.c.shed_deadline.load(Ordering::Relaxed),
            shed_regime: self.c.shed_regime.load(Ordering::Relaxed),
            shed_invalid: self.c.shed_invalid.load(Ordering::Relaxed),
            coalesced: self.c.coalesced.load(Ordering::Relaxed),
            dispatches: self.c.dispatches.load(Ordering::Relaxed),
            regime_changes: self.c.regime_changes.load(Ordering::Relaxed),
            queue_peak: self.c.queue_peak.load(Ordering::Relaxed),
            regime: self.regime.lock().current(),
            tenants: self
                .tenants
                .iter()
                .zip(&self.tc)
                .map(|(t, c)| TenantStats {
                    name: t.name.clone(),
                    submitted: c.submitted.load(Ordering::Relaxed),
                    admitted_bytes: c.admitted_bytes.load(Ordering::Relaxed),
                    completed_bytes: c.completed_bytes.load(Ordering::Relaxed),
                    shed: c.shed.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Publishes `broker.*` and `tenant.*` counters into `reg`.
    pub fn fill_registry(&self, reg: &TelemetryRegistry) {
        let s = self.stats();
        reg.set_counter("broker.submitted", s.submitted);
        reg.set_counter("broker.admitted", s.admitted);
        reg.set_counter("broker.completed", s.completed);
        reg.set_counter("broker.failed", s.failed);
        reg.set_counter("broker.shed.queue_full", s.shed_queue_full);
        reg.set_counter("broker.shed.deadline", s.shed_deadline);
        reg.set_counter("broker.shed.regime", s.shed_regime);
        reg.set_counter("broker.shed.invalid", s.shed_invalid);
        reg.set_counter("broker.coalesced", s.coalesced);
        reg.set_counter("broker.dispatches", s.dispatches);
        reg.set_counter("broker.regime_changes", s.regime_changes);
        reg.set_counter("broker.queue_peak", s.queue_peak);
        reg.set_gauge("broker.regime", s.regime.as_gauge());
        reg.set_hist("broker.sojourn_secs", &self.sojourn);
        for t in &s.tenants {
            reg.set_counter(format!("tenant.{}.submitted", t.name), t.submitted);
            reg.set_counter(
                format!("tenant.{}.admitted_bytes", t.name),
                t.admitted_bytes,
            );
            reg.set_counter(
                format!("tenant.{}.completed_bytes", t.name),
                t.completed_bytes,
            );
            reg.set_counter(format!("tenant.{}.shed", t.name), t.shed);
        }
    }
}

/// Worst queued/depth ratio across shards — the regime machine's input.
fn occupancy(shards: &HashMap<(DeviceId, DeviceId), Shard>, depth: usize) -> f64 {
    shards
        .values()
        .map(|s| s.queued as f64 / depth as f64)
        .fold(0.0, f64::max)
}

/// Round robin over tenant queues, spending deficit, until the batch is
/// full or a full pass makes no progress.
fn collect_batch(shard: &mut Shard, limit: usize, batch: &mut Vec<QueuedReq>) {
    let nt = shard.queues.len();
    let mut progress = true;
    while progress && batch.len() < limit {
        progress = false;
        for ti in 0..nt {
            if batch.len() >= limit {
                break;
            }
            let fits = shard.queues[ti]
                .front()
                .is_some_and(|h| shard.ledger.try_spend(ti, h.n as f64));
            if fits {
                batch.push(shard.queues[ti].pop_front().expect("head just observed"));
                progress = true;
            }
        }
    }
}

/// The tenant whose queue head has waited longest.
fn oldest_head(shard: &Shard) -> Option<usize> {
    shard
        .queues
        .iter()
        .enumerate()
        .filter_map(|(i, q)| q.front().map(|h| (i, h.submitted_at)))
        .min_by_key(|&(_, at)| at)
        .map(|(i, _)| i)
}
