//! Property-based tests of stream ordering: arbitrary interleavings of
//! copies, kernels, events and callbacks must retire strictly in FIFO
//! order per stream, and cross-stream event edges must never be
//! reordered.

use mpx_gpu::{Buffer, GpuRuntime};
use mpx_sim::Engine;
use mpx_topo::presets;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum OpKind {
    Copy { kib: usize },
    Kernel { micros: u16 },
    Marker,
}

fn arb_ops() -> impl Strategy<Value = Vec<OpKind>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..256).prop_map(|kib| OpKind::Copy { kib }),
            (1u16..50).prop_map(|micros| OpKind::Kernel { micros }),
            Just(OpKind::Marker),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_stream_retires_in_order(ops in arb_ops()) {
        let topo = Arc::new(presets::synthetic_default());
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let gpus = topo.gpus();
        let s = rt.stream(gpus[0]);
        let route = rt.direct_route(gpus[0], gpus[1]).unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, op) in ops.iter().enumerate() {
            match op {
                OpKind::Copy { kib } => {
                    let src = Buffer::synthetic(gpus[0], kib << 10);
                    let dst = Buffer::synthetic(gpus[1], kib << 10);
                    s.copy(&src, 0, &dst, 0, kib << 10, route.clone(), 0.0, format!("c{i}"));
                }
                OpKind::Kernel { micros } => {
                    s.kernel(*micros as f64 * 1e-6, None, format!("k{i}"));
                }
                OpKind::Marker => {}
            }
            let log = log.clone();
            s.callback(Box::new(move |_| log.lock().push(i)));
        }
        rt.engine().run_until_idle();
        let got = log.lock().clone();
        let want: Vec<usize> = (0..ops.len()).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn event_chains_serialize_across_streams(hops in 2usize..4, kib in 1usize..512) {
        // A relay: stream k waits on stream k-1's event, copies, records
        // its own. Completion order must follow the chain regardless of
        // sizes.
        let topo = Arc::new(presets::synthetic_default());
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let gpus = topo.gpus();
        let route = rt.direct_route(gpus[0], gpus[1]).unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut prev_event: Option<mpx_gpu::GpuEvent> = None;
        for k in 0..hops {
            let s = rt.stream(gpus[k % gpus.len()]);
            if let Some(ev) = &prev_event {
                s.wait_event(ev);
            }
            let src = Buffer::synthetic(gpus[0], kib << 10);
            let dst = Buffer::synthetic(gpus[1], kib << 10);
            s.copy(&src, 0, &dst, 0, kib << 10, route.clone(), 0.0, format!("hop{k}"));
            let log = log.clone();
            s.callback(Box::new(move |_| log.lock().push(k)));
            let ev = rt.event(format!("e{k}"));
            s.record(&ev);
            prev_event = Some(ev);
        }
        rt.engine().run_until_idle();
        let got = log.lock().clone();
        let want: Vec<usize> = (0..hops).collect();
        prop_assert_eq!(got, want);
    }
}
