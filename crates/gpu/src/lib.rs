//! # mpx-gpu — simulated CUDA-like runtime
//!
//! The device runtime the UCX-style transport drives: buffers, ordered
//! asynchronous [`Stream`]s, one-shot [`GpuEvent`]s for cross-stream
//! synchronization, an IPC handle cache, and element-wise reduction
//! kernels — everything the paper's pipeline engine (Section 3.4's
//! copy → sync → copy chunk loop) needs from CUDA, re-implemented over the
//! discrete-event fabric of `mpx-sim`.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_gpu::GpuRuntime;
//! use mpx_sim::Engine;
//! use mpx_topo::presets;
//!
//! let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
//! let gpus = rt.engine().topology().gpus();
//! let src = rt.alloc_bytes(gpus[0], vec![42; 1024]);
//! let dst = rt.alloc_zeroed(gpus[1], 1024);
//! let s = rt.stream(gpus[0]);
//! rt.memcpy_peer_async(&s, &src, &dst).unwrap();
//! rt.engine().run_until_idle();
//! assert_eq!(dst.to_vec().unwrap(), vec![42; 1024]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod event;
pub mod graph;
pub mod ipc;
pub mod memory;
pub mod reduce;
pub mod runtime;
pub mod stream;

pub use buffer::Buffer;
pub use event::GpuEvent;
pub use graph::{GraphBuf, GraphBuilder, GraphLaunchError, GraphPathEnd, TransferGraph};
pub use ipc::{IpcCache, IpcStats, IPC_OPEN_COST};
pub use memory::{MemTracker, MemoryStats};
pub use reduce::ReduceOp;
pub use runtime::{GpuRuntime, KernelCostModel};
pub use stream::{Issuer, KernelEffect, Stream};
