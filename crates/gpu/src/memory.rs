//! Per-device memory accounting.
//!
//! Simulated allocations are cheap, but *bounded staging memory* is a
//! correctness property of the pipeline engine (its staging ring must
//! not grow with message size), so the runtime tracks current and peak
//! bytes per device and tests assert the bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live/peak byte counters for every device of a topology.
#[derive(Debug)]
pub struct MemTracker {
    per_device: Vec<(AtomicU64, AtomicU64)>, // (current, peak)
}

/// Snapshot of the tracker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryStats {
    /// Live bytes per device (indexed by `DeviceId`).
    pub current: Vec<u64>,
    /// Peak live bytes per device since runtime creation.
    pub peak: Vec<u64>,
}

impl MemTracker {
    /// A tracker for `devices` devices.
    pub fn new(devices: usize) -> Arc<MemTracker> {
        Arc::new(MemTracker {
            per_device: (0..devices)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        })
    }

    pub(crate) fn acquire(&self, device: usize, len: u64) {
        let Some((cur, peak)) = self.per_device.get(device) else {
            return;
        };
        let now = cur.fetch_add(len, Ordering::AcqRel) + len;
        peak.fetch_max(now, Ordering::AcqRel);
    }

    pub(crate) fn release(&self, device: usize, len: u64) {
        if let Some((cur, _)) = self.per_device.get(device) {
            cur.fetch_sub(len, Ordering::AcqRel);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            current: self
                .per_device
                .iter()
                .map(|(c, _)| c.load(Ordering::Acquire))
                .collect(),
            peak: self
                .per_device
                .iter()
                .map(|(_, p)| p.load(Ordering::Acquire))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let t = MemTracker::new(2);
        t.acquire(0, 100);
        t.acquire(0, 50);
        t.acquire(1, 10);
        t.release(0, 100);
        let s = t.stats();
        assert_eq!(s.current, vec![50, 10]);
        assert_eq!(s.peak, vec![150, 10]);
    }

    #[test]
    fn out_of_range_device_ignored() {
        let t = MemTracker::new(1);
        t.acquire(5, 100);
        t.release(5, 100);
        assert_eq!(t.stats().current, vec![0]);
    }
}
