//! Streams: ordered asynchronous work queues, CUDA-style.
//!
//! A stream executes its operations strictly in order. Enqueueing never
//! blocks; completion is observed via events, wakers, or
//! [`Stream::synchronize`]. The executor is driven in two ways that must
//! coexist without deadlock:
//!
//! * rank threads enqueue ops and kick the stream (no engine lock held
//!   while the stream lock is held, and vice versa);
//! * engine callbacks retire the in-flight op and advance the stream
//!   (engine lock held, stream lock taken inside — the single permitted
//!   nesting order).
//!
//! The [`Issuer`] abstraction lets both paths share the same `advance`
//! loop.

use crate::buffer::Buffer;
use crate::event::GpuEvent;
use mpx_sim::{Ctx, Engine, FlowSpec, OnComplete, Waker};
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, LinkId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Either the public (locking) engine API or an in-callback context.
pub enum Issuer<'a, 'b> {
    /// Issue through the engine's public API (from a rank thread).
    Api(&'a Engine),
    /// Issue through an event-loop context (from a completion callback).
    Call(&'a mut Ctx<'b>),
}

impl Issuer<'_, '_> {
    fn start_flow(&mut self, spec: FlowSpec, done: OnComplete) {
        match self {
            Issuer::Api(e) => {
                e.start_flow(spec, done);
            }
            Issuer::Call(ctx) => {
                ctx.start_flow(spec, done);
            }
        }
    }

    fn schedule_in(&mut self, delay: Secs, done: OnComplete) {
        match self {
            Issuer::Api(e) => e.schedule_in(delay, done),
            Issuer::Call(ctx) => ctx.schedule_in(delay, done),
        }
    }

    fn signal(&mut self, w: &Waker) {
        match self {
            Issuer::Api(e) => e.signal_waker(w),
            Issuer::Call(ctx) => ctx.signal(w),
        }
    }
}

/// A kernel's completion effect (e.g. the reduction arithmetic). Runs when
/// the kernel retires; must not block.
pub type KernelEffect = Box<dyn FnOnce() + Send>;

pub(crate) enum Op {
    Copy {
        src: Buffer,
        src_off: usize,
        dst: Buffer,
        dst_off: usize,
        len: usize,
        /// Shared, not owned: a compiled graph re-enqueues the same
        /// route/label on every replay, so cloning an op must be a
        /// refcount bump, not a heap copy.
        route: Arc<[LinkId]>,
        extra_latency: Secs,
        label: Arc<str>,
    },
    Record(GpuEvent),
    WaitEvent(GpuEvent),
    Kernel {
        cost: Secs,
        effect: Option<KernelEffect>,
        label: String,
    },
    Signal(Waker),
    Callback(mpx_sim::EventFn),
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Copy { len, label, .. } => write!(f, "Copy({label}, {len}B)"),
            Op::Record(e) => write!(f, "Record({})", e.name()),
            Op::WaitEvent(e) => write!(f, "WaitEvent({})", e.name()),
            Op::Kernel { label, .. } => write!(f, "Kernel({label})"),
            Op::Signal(w) => write!(f, "Signal({})", w.name()),
            Op::Callback(_) => write!(f, "Callback"),
        }
    }
}

struct StreamState {
    queue: VecDeque<Op>,
    /// An async op (copy/kernel) is in flight.
    busy: bool,
    /// Parked on an unrecorded event.
    parked: bool,
}

struct StreamInner {
    name: String,
    device: DeviceId,
    engine: Engine,
    state: Mutex<StreamState>,
}

/// An ordered asynchronous work queue bound to a device. Cloning shares
/// the queue.
#[derive(Clone)]
pub struct Stream {
    inner: Arc<StreamInner>,
}

impl Stream {
    /// Creates an idle stream on `device`.
    pub fn new(engine: Engine, device: DeviceId, name: impl Into<String>) -> Stream {
        Stream {
            inner: Arc::new(StreamInner {
                name: name.into(),
                device,
                engine,
                state: Mutex::new(StreamState {
                    queue: VecDeque::new(),
                    busy: false,
                    parked: false,
                }),
            }),
        }
    }

    /// Stream name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The device this stream executes on.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// Number of ops waiting or in flight.
    pub fn pending_ops(&self) -> usize {
        let st = self.inner.state.lock();
        st.queue.len() + usize::from(st.busy)
    }

    /// Enqueues an asynchronous copy of `len` bytes over `route`,
    /// from `src[src_off..]` to `dst[dst_off..]`. `extra_latency` models
    /// the launch overhead; `label` appears in traces.
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        len: usize,
        route: Vec<LinkId>,
        extra_latency: Secs,
        label: impl Into<String>,
    ) {
        self.enqueue(Op::Copy {
            src: src.clone(),
            src_off,
            dst: dst.clone(),
            dst_off,
            len,
            route: route.into(),
            extra_latency,
            label: label.into().into(),
        });
    }

    /// Enqueues an event record: the event completes when every earlier op
    /// on this stream has retired.
    pub fn record(&self, ev: &GpuEvent) {
        self.enqueue(Op::Record(ev.clone()));
    }

    /// Enqueues an event wait: later ops on this stream hold until the
    /// event completes.
    pub fn wait_event(&self, ev: &GpuEvent) {
        self.enqueue(Op::WaitEvent(ev.clone()));
    }

    /// Enqueues a compute kernel costing `cost` seconds; `effect` runs at
    /// retirement (e.g. reduction arithmetic on real buffers).
    pub fn kernel(&self, cost: Secs, effect: Option<KernelEffect>, label: impl Into<String>) {
        self.enqueue(Op::Kernel {
            cost,
            effect,
            label: label.into(),
        });
    }

    /// Enqueues a waker signal: fires when every earlier op has retired.
    pub fn signal(&self, w: &Waker) {
        self.enqueue(Op::Signal(w.clone()));
    }

    /// Enqueues a callback run in the event loop once every earlier op has
    /// retired. The callback receives the engine context and must not
    /// block.
    pub fn callback(&self, f: mpx_sim::EventFn) {
        self.enqueue(Op::Callback(f));
    }

    /// Blocks the calling simulated thread until every op enqueued so far
    /// has retired.
    pub fn synchronize(&self, thread: &mpx_sim::SimThread) {
        let w = Waker::new(format!("{}.sync", self.inner.name));
        self.signal(&w);
        thread.wait(&w);
    }

    fn enqueue(&self, op: Op) {
        self.inner.state.lock().queue.push_back(op);
        self.advance(&mut Issuer::Api(&self.inner.engine));
    }

    /// Enqueues a pre-built op sequence with one lock acquisition and one
    /// advance — the replay fast path of [`crate::TransferGraph`], which
    /// materializes a whole stream program at once instead of paying a
    /// lock/advance cycle per op.
    pub(crate) fn enqueue_batch(&self, ops: impl IntoIterator<Item = Op>) {
        self.inner.state.lock().queue.extend(ops);
        self.advance(&mut Issuer::Api(&self.inner.engine));
    }

    /// Runs ops until the stream blocks (async op in flight, parked on an
    /// event, or queue empty). Called from enqueue sites and from
    /// completion callbacks.
    pub(crate) fn advance(&self, issuer: &mut Issuer<'_, '_>) {
        loop {
            let op = {
                let mut st = self.inner.state.lock();
                if st.busy || st.parked {
                    return;
                }
                match st.queue.pop_front() {
                    None => return,
                    Some(op) => {
                        st.busy = true;
                        op
                    }
                }
            };
            match op {
                Op::Copy {
                    src,
                    src_off,
                    dst,
                    dst_off,
                    len,
                    route,
                    extra_latency,
                    label,
                } => {
                    let this = self.clone();
                    let spec = FlowSpec::new(route.to_vec(), len)
                        .with_extra_latency(extra_latency)
                        .labeled(&*label);
                    issuer.start_flow(
                        spec,
                        OnComplete::Call(Box::new(move |ctx| {
                            Buffer::transfer(&src, src_off, &dst, dst_off, len);
                            this.retire(ctx);
                        })),
                    );
                    return;
                }
                Op::Kernel {
                    cost,
                    effect,
                    label: _,
                } => {
                    let this = self.clone();
                    issuer.schedule_in(
                        cost,
                        OnComplete::Call(Box::new(move |ctx| {
                            if let Some(f) = effect {
                                f();
                            }
                            this.retire(ctx);
                        })),
                    );
                    return;
                }
                Op::Record(ev) => {
                    self.inner.state.lock().busy = false;
                    let parked = ev.complete();
                    for s in parked {
                        s.inner.state.lock().parked = false;
                        s.advance(issuer);
                    }
                    continue;
                }
                Op::WaitEvent(ev) => {
                    {
                        let mut st = self.inner.state.lock();
                        st.busy = false;
                        st.parked = true;
                    }
                    if ev.park_unless_complete(self.clone()) {
                        self.inner.state.lock().parked = false;
                        continue;
                    }
                    return;
                }
                Op::Signal(w) => {
                    self.inner.state.lock().busy = false;
                    issuer.signal(&w);
                    continue;
                }
                Op::Callback(f) => {
                    self.inner.state.lock().busy = false;
                    match issuer {
                        // From a rank thread: defer to the event loop at
                        // the current virtual time.
                        Issuer::Api(e) => e.schedule_in(0.0, OnComplete::Call(f)),
                        Issuer::Call(ctx) => f(ctx),
                    }
                    continue;
                }
            }
        }
    }

    /// Retires the in-flight async op (engine callback context) and
    /// advances.
    fn retire(&self, ctx: &mut Ctx<'_>) {
        self.inner.state.lock().busy = false;
        self.advance(&mut Issuer::Call(ctx));
    }
}

impl fmt::Debug for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Stream")
            .field("name", &self.inner.name)
            .field("device", &self.inner.device)
            .field("queued", &st.queue.len())
            .field("busy", &st.busy)
            .field("parked", &st.parked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::presets;
    use parking_lot::Mutex as PlMutex;
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(Arc::new(presets::synthetic_default()))
    }

    fn route(eng: &Engine, a: usize, b: usize) -> Vec<LinkId> {
        let topo = eng.topology();
        let gpus = topo.gpus();
        vec![topo.link_between(gpus[a], gpus[b]).unwrap().id]
    }

    #[test]
    fn one_event_releases_many_streams() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let ev = GpuEvent::new("fan-out");
        let log = Arc::new(PlMutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let s = Stream::new(eng.clone(), gpus[1], format!("w{i}"));
            s.wait_event(&ev);
            let log = log.clone();
            s.callback(Box::new(move |_| log.lock().push(i)));
            waiters.push(s);
        }
        eng.run_until_idle();
        assert!(
            log.lock().is_empty(),
            "no waiter may pass an unrecorded event"
        );
        let producer = Stream::new(eng.clone(), gpus[0], "producer");
        let src = Buffer::synthetic(gpus[0], 1 << 20);
        let dst = Buffer::synthetic(gpus[1], 1 << 20);
        producer.copy(&src, 0, &dst, 0, 1 << 20, route(&eng, 0, 1), 0.0, "work");
        producer.record(&ev);
        eng.run_until_idle();
        let mut got = log.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn stream_waits_on_many_events() {
        // Fan-in: a consumer stream waits on three producers' events.
        let eng = engine();
        let gpus = eng.topology().gpus();
        let consumer = Stream::new(eng.clone(), gpus[3], "consumer");
        let done = Waker::new("all-done");
        let mut events = Vec::new();
        for i in 0..3 {
            let ev = GpuEvent::new(format!("p{i}"));
            consumer.wait_event(&ev);
            events.push(ev);
        }
        consumer.signal(&done);
        // Record the events in reverse order on separate streams.
        for (i, ev) in events.iter().enumerate().rev() {
            let s = Stream::new(eng.clone(), gpus[i], format!("prod{i}"));
            let src = Buffer::synthetic(gpus[i], 1 << 16);
            let dst = Buffer::synthetic(gpus[3], 1 << 16);
            s.copy(&src, 0, &dst, 0, 1 << 16, route(&eng, i, 3), 0.0, "w");
            s.record(ev);
        }
        eng.run_until_idle();
        assert!(done.is_signaled());
    }

    #[test]
    fn callbacks_preserve_stream_order() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let s = Stream::new(eng.clone(), gpus[0], "ordered");
        let log = Arc::new(PlMutex::new(Vec::new()));
        for i in 0..4 {
            let src = Buffer::synthetic(gpus[0], 1 << 12);
            let dst = Buffer::synthetic(gpus[1], 1 << 12);
            s.copy(
                &src,
                0,
                &dst,
                0,
                1 << 12,
                route(&eng, 0, 1),
                0.0,
                format!("c{i}"),
            );
            let log = log.clone();
            s.callback(Box::new(move |_| log.lock().push(i)));
        }
        eng.run_until_idle();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn kernel_without_effect_still_charges_time() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let s = Stream::new(eng.clone(), gpus[0], "k");
        s.kernel(5e-6, None, "noop");
        eng.run_until_idle();
        assert!((eng.now().as_secs() - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_synchronize_returns_immediately() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let s = Stream::new(eng.clone(), gpus[0], "idle");
        let t = eng.register_thread("host");
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            s2.synchronize(&t);
            t.now().as_nanos()
        });
        assert_eq!(h.join().unwrap(), 0, "nothing queued: no time passes");
    }

    #[test]
    fn debug_formats_mention_state() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let s = Stream::new(eng.clone(), gpus[0], "dbg");
        let text = format!("{s:?}");
        assert!(text.contains("dbg") && text.contains("queued"));
    }
}
