//! Element-wise reduction kernels over buffers.
//!
//! Collectives (MPI_Allreduce) combine received chunks with local data on
//! the GPU. We model the kernel's *time* through
//! [`crate::runtime::KernelCostModel`] and, for real buffers, apply the
//! arithmetic so correctness tests can verify end-to-end collective
//! results.
//!
//! Data is interpreted as little-endian `f32` (the common deep-learning
//! case) for [`ReduceOp::Sum`]/[`ReduceOp::Max`]; [`ReduceOp::BandU8`]
//! operates on raw bytes.

use crate::buffer::Buffer;

/// Supported reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise `f32` addition.
    Sum,
    /// Element-wise `f32` maximum.
    Max,
    /// Byte-wise AND (exercises non-float paths).
    BandU8,
}

/// Applies `dst[i] op= src[i]` over `len` bytes at the given offsets.
/// No-op if either buffer is synthetic.
///
/// # Panics
/// Panics on out-of-bounds ranges, or if `len` is not a multiple of 4 for
/// the `f32` operators.
pub fn apply(op: ReduceOp, src: &Buffer, src_off: usize, dst: &Buffer, dst_off: usize, len: usize) {
    let Some(s) = src.read(src_off, len) else {
        return;
    };
    match op {
        ReduceOp::BandU8 => {
            dst.with_data(|d| {
                for (i, b) in s.iter().enumerate() {
                    d[dst_off + i] &= b;
                }
            });
        }
        ReduceOp::Sum | ReduceOp::Max => {
            assert_eq!(len % 4, 0, "f32 reduction needs 4-byte multiples");
            dst.with_data(|d| {
                for i in (0..len).step_by(4) {
                    let a = f32::from_le_bytes(s[i..i + 4].try_into().unwrap());
                    let off = dst_off + i;
                    let b = f32::from_le_bytes(d[off..off + 4].try_into().unwrap());
                    let r = match op {
                        ReduceOp::Sum => a + b,
                        ReduceOp::Max => a.max(b),
                        ReduceOp::BandU8 => unreachable!(),
                    };
                    d[off..off + 4].copy_from_slice(&r.to_le_bytes());
                }
            });
        }
    }
}

/// Encodes a slice of `f32` as a little-endian byte vector (test helper).
pub fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decodes a little-endian byte vector into `f32`s (test helper).
pub fn bytes_f32(bytes: &[u8]) -> Vec<f32> {
    assert_eq!(bytes.len() % 4, 0);
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::DeviceId;

    #[test]
    fn sum_adds_f32() {
        let a = Buffer::from_bytes(DeviceId(0), f32_bytes(&[1.0, 2.0, 3.0]));
        let b = Buffer::from_bytes(DeviceId(1), f32_bytes(&[10.0, 20.0, 30.0]));
        apply(ReduceOp::Sum, &a, 0, &b, 0, 12);
        assert_eq!(bytes_f32(&b.to_vec().unwrap()), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn max_takes_elementwise_max() {
        let a = Buffer::from_bytes(DeviceId(0), f32_bytes(&[5.0, -1.0]));
        let b = Buffer::from_bytes(DeviceId(1), f32_bytes(&[2.0, 3.0]));
        apply(ReduceOp::Max, &a, 0, &b, 0, 8);
        assert_eq!(bytes_f32(&b.to_vec().unwrap()), vec![5.0, 3.0]);
    }

    #[test]
    fn band_ands_bytes() {
        let a = Buffer::from_bytes(DeviceId(0), vec![0b1100, 0b1010]);
        let b = Buffer::from_bytes(DeviceId(1), vec![0b1010, 0b1010]);
        apply(ReduceOp::BandU8, &a, 0, &b, 0, 2);
        assert_eq!(b.to_vec().unwrap(), vec![0b1000, 0b1010]);
    }

    #[test]
    fn offsets_respected() {
        let a = Buffer::from_bytes(DeviceId(0), f32_bytes(&[0.0, 7.0]));
        let b = Buffer::from_bytes(DeviceId(1), f32_bytes(&[1.0, 1.0, 1.0]));
        apply(ReduceOp::Sum, &a, 4, &b, 8, 4);
        assert_eq!(bytes_f32(&b.to_vec().unwrap()), vec![1.0, 1.0, 8.0]);
    }

    #[test]
    fn synthetic_src_is_noop() {
        let a = Buffer::synthetic(DeviceId(0), 8);
        let b = Buffer::from_bytes(DeviceId(1), f32_bytes(&[1.0, 2.0]));
        apply(ReduceOp::Sum, &a, 0, &b, 0, 8);
        assert_eq!(bytes_f32(&b.to_vec().unwrap()), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "4-byte multiples")]
    fn unaligned_f32_len_panics() {
        let a = Buffer::zeroed(DeviceId(0), 6);
        let b = Buffer::zeroed(DeviceId(1), 6);
        apply(ReduceOp::Sum, &a, 0, &b, 0, 6);
    }

    #[test]
    fn f32_roundtrip_helpers() {
        let vals = vec![1.5, -2.25, 1e10];
        assert_eq!(bytes_f32(&f32_bytes(&vals)), vals);
    }
}
