//! CUDA-IPC handle cache.
//!
//! UCX's `cuda_ipc` module opens an IPC handle the first time a process
//! touches a peer's allocation and caches the mapping (paper Section 2.1:
//! "caching the CUDA IPC handles translations"). Opening is expensive
//! (~100 µs-class driver call); cache hits are free. The transport layer
//! asks this cache for the *extra latency* to charge on each transfer.

use mpx_topo::units::Secs;
use parking_lot::Mutex;
use std::collections::HashSet;

/// Cost charged on an IPC-handle cache miss.
pub const IPC_OPEN_COST: Secs = 80e-6;

/// Counters exposed for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpcStats {
    /// Lookups that found a cached handle.
    pub hits: u64,
    /// Lookups that had to open the handle.
    pub misses: u64,
}

/// Cache of opened `(importing device, allocation)` handles.
pub struct IpcCache {
    state: Mutex<(HashSet<(u32, u64)>, IpcStats)>,
}

impl IpcCache {
    /// Creates an empty cache.
    pub fn new() -> IpcCache {
        IpcCache {
            state: Mutex::new((HashSet::new(), IpcStats::default())),
        }
    }

    /// Returns the latency to charge for `importer` accessing allocation
    /// `buffer_id`: [`IPC_OPEN_COST`] on first access, zero afterwards.
    pub fn open_cost(&self, importer: u32, buffer_id: u64) -> Secs {
        let mut st = self.state.lock();
        if st.0.insert((importer, buffer_id)) {
            st.1.misses += 1;
            IPC_OPEN_COST
        } else {
            st.1.hits += 1;
            0.0
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IpcStats {
        self.state.lock().1
    }
}

impl Default for IpcCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_open_costs_then_free() {
        let c = IpcCache::new();
        assert_eq!(c.open_cost(1, 42), IPC_OPEN_COST);
        assert_eq!(c.open_cost(1, 42), 0.0);
        assert_eq!(c.open_cost(1, 42), 0.0);
        assert_eq!(c.stats(), IpcStats { hits: 2, misses: 1 });
    }

    #[test]
    fn cache_is_per_importer() {
        let c = IpcCache::new();
        assert_eq!(c.open_cost(1, 42), IPC_OPEN_COST);
        assert_eq!(c.open_cost(2, 42), IPC_OPEN_COST);
        assert_eq!(c.open_cost(2, 42), 0.0);
    }

    #[test]
    fn cache_is_per_allocation() {
        let c = IpcCache::new();
        assert_eq!(c.open_cost(1, 1), IPC_OPEN_COST);
        assert_eq!(c.open_cost(1, 2), IPC_OPEN_COST);
    }
}
