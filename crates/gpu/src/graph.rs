//! Compiled transfer graphs: capture a stream/event program once, replay
//! it at near-zero issue cost (CUDA-Graphs style).
//!
//! The interpreted pipeline re-derives its chunk schedule and allocates
//! streams, events, staging rings, labels, and closures on *every*
//! transfer. For a training-loop workload that repeats the same
//! (pair, size) transfer each iteration, that per-PUT orchestration
//! dominates the small-message regime (the source paper's Obs. 4; the
//! follow-up CUDA-Graphs paper eliminates it by capture → instantiate →
//! replay). A [`TransferGraph`] is the instantiated form: the full op
//! DAG — copy legs, staging hops, event records/waits — precompiled with
//! *placeholder* buffer references, plus the streams, events, and staging
//! ring it executes on, all owned by the graph and recycled across
//! replays. [`TransferGraph::launch`] only patches the source/destination
//! buffer pointers and offsets, rearms the events
//! ([`GpuEvent::reset`]), and enqueues the pre-built program batch-wise
//! per stream.
//!
//! Replay also strips the per-op software overheads the interpreted
//! pipeline charges (per-copy launch cost, event-sync ε, rendezvous,
//! sequential path initiation): a replayed graph pays one configurable
//! `first_extra` on each path's first copy — the single graph-launch
//! cost plus whatever the caller still owes (e.g. an IPC handle open for
//! a new destination buffer) — and nothing else. That is the
//! launch-overhead model of the follow-up paper.

use crate::buffer::Buffer;
use crate::event::GpuEvent;
use crate::runtime::GpuRuntime;
use crate::stream::{Op, Stream};
use mpx_sim::Waker;
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, LinkId};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique graph ids, used only to keep trace labels and waker
/// names distinguishable across graphs.
static GRAPH_IDS: AtomicU64 = AtomicU64::new(0);

/// A buffer placeholder inside a compiled graph: patched to a concrete
/// buffer (plus caller offset) at every [`TransferGraph::launch`].
/// Staging slots resolve to the graph's own persistent ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphBuf {
    /// The transfer's source buffer (offsets are message-relative).
    Src,
    /// The transfer's destination buffer (offsets are message-relative).
    Dst,
    /// Slot `i` of the graph-owned staging ring (offsets are absolute).
    Staging(usize),
}

/// One precompiled copy op: everything the interpreted pipeline computes
/// per chunk, frozen at capture time.
struct CopyNode {
    stream: usize,
    src: GraphBuf,
    src_off: usize,
    dst: GraphBuf,
    dst_off: usize,
    len: usize,
    /// Shared with every materialized replay op (refcount bump per
    /// replay instead of a heap copy — the point of compiling).
    route: Arc<[LinkId]>,
    /// Fixed software overhead baked at capture (normally 0 for replay).
    extra: Secs,
    /// First op of its path: additionally charged the per-replay
    /// `first_extra` (graph launch + residual one-time costs).
    first: bool,
    label: Arc<str>,
}

enum Node {
    Copy(CopyNode),
    Record { stream: usize, event: usize },
    Wait { stream: usize, event: usize },
}

/// Where one path's program ends, and which message range it owned — the
/// graph-side analogue of the interpreted pipeline's `PathSlot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphPathEnd {
    /// Stream index (into the graph's stream set) whose drain completes
    /// the path.
    pub stream: usize,
    /// Index into the candidate path set the plan was computed from.
    pub path_index: usize,
    /// Start of this path's range within the message.
    pub offset: usize,
    /// Bytes assigned to this path.
    pub bytes: usize,
}

/// Why a [`TransferGraph::launch`] was refused. Callers fall back to the
/// interpreted pipeline (or another pooled instance) — a refusal is
/// never fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphLaunchError {
    /// The graph is still executing a previous replay; a graph instance
    /// cannot overlap itself (its staging ring and events are single-
    /// occupancy).
    Busy,
    /// The offered buffers don't match what the graph was captured for
    /// (device, length, or synthetic/real storage class).
    Mismatch(&'static str),
}

impl fmt::Display for GraphLaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphLaunchError::Busy => write!(f, "graph busy: previous replay still in flight"),
            GraphLaunchError::Mismatch(what) => write!(f, "graph/buffer mismatch: {what}"),
        }
    }
}

impl std::error::Error for GraphLaunchError {}

/// Builds a [`TransferGraph`] by replaying the capture-side API the
/// interpreted pipeline would have issued: declare streams, events, and
/// staging slots, then record copies/records/waits in program order and
/// close each path with [`GraphBuilder::end_path`].
pub struct GraphBuilder {
    rt: GpuRuntime,
    id: u64,
    src_device: DeviceId,
    dst_device: DeviceId,
    n: usize,
    src_synthetic: bool,
    streams: Vec<Stream>,
    events: Vec<GpuEvent>,
    staging: Vec<Buffer>,
    nodes: Vec<Node>,
    ends: Vec<GraphPathEnd>,
}

impl GraphBuilder {
    /// Starts a capture of an `n`-byte `src_device → dst_device`
    /// transfer. `src_synthetic` fixes the storage class the graph is
    /// valid for (staging slots must match the payload's class, exactly
    /// as the interpreted pipeline chooses per transfer).
    pub fn new(
        rt: &GpuRuntime,
        src_device: DeviceId,
        dst_device: DeviceId,
        n: usize,
        src_synthetic: bool,
    ) -> GraphBuilder {
        GraphBuilder {
            rt: rt.clone(),
            id: GRAPH_IDS.fetch_add(1, Ordering::Relaxed),
            src_device,
            dst_device,
            n,
            src_synthetic,
            streams: Vec::new(),
            events: Vec::new(),
            staging: Vec::new(),
            nodes: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// The graph's process-unique id (appears in labels).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Declares a persistent stream on `device`; returns its index.
    pub fn stream(&mut self, device: DeviceId) -> usize {
        self.streams.push(self.rt.stream(device));
        self.streams.len() - 1
    }

    /// Declares a persistent, replay-recycled event; returns its index.
    pub fn event(&mut self) -> usize {
        self.events.push(
            self.rt
                .event(format!("g{}.e{}", self.id, self.events.len())),
        );
        self.events.len() - 1
    }

    /// Allocates a persistent staging slot of `len` bytes on `device`
    /// (real storage iff the payload is real); returns its
    /// [`GraphBuf::Staging`] index.
    pub fn staging(&mut self, device: DeviceId, len: usize) -> GraphBuf {
        let buf = if self.src_synthetic {
            self.rt.alloc(device, len)
        } else {
            self.rt.alloc_zeroed(device, len)
        };
        self.staging.push(buf);
        GraphBuf::Staging(self.staging.len() - 1)
    }

    /// Records a copy op. `Src`/`Dst` offsets are message-relative (the
    /// launch-time buffer offsets are added on replay); staging offsets
    /// are absolute. `first` marks each path's first copy, which carries
    /// the per-replay `first_extra` on top of the baked `extra`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &mut self,
        stream: usize,
        src: GraphBuf,
        src_off: usize,
        dst: GraphBuf,
        dst_off: usize,
        len: usize,
        route: Vec<LinkId>,
        extra: Secs,
        first: bool,
        label: String,
    ) {
        self.nodes.push(Node::Copy(CopyNode {
            stream,
            src,
            src_off,
            dst,
            dst_off,
            len,
            route: route.into(),
            extra,
            first,
            label: label.into(),
        }));
    }

    /// Records an event record on `stream`.
    pub fn record(&mut self, stream: usize, event: usize) {
        self.nodes.push(Node::Record { stream, event });
    }

    /// Records an event wait on `stream`.
    pub fn wait(&mut self, stream: usize, event: usize) {
        self.nodes.push(Node::Wait { stream, event });
    }

    /// Closes a path: its program drained once `stream` retires every op
    /// recorded so far; it owned `bytes` bytes of the message starting
    /// at `offset`.
    pub fn end_path(&mut self, stream: usize, path_index: usize, offset: usize, bytes: usize) {
        self.ends.push(GraphPathEnd {
            stream,
            path_index,
            offset,
            bytes,
        });
    }

    /// Freezes the capture into a replayable [`TransferGraph`].
    ///
    /// # Panics
    /// Panics if no path was closed, or an op references an undeclared
    /// stream/event/staging slot — capture bugs, not runtime conditions.
    pub fn finish(self) -> TransferGraph {
        assert!(!self.ends.is_empty(), "graph captured without any path");
        for node in &self.nodes {
            let (stream, event) = match node {
                Node::Copy(c) => {
                    if let GraphBuf::Staging(i) = c.src {
                        assert!(i < self.staging.len(), "undeclared staging slot {i}");
                    }
                    if let GraphBuf::Staging(i) = c.dst {
                        assert!(i < self.staging.len(), "undeclared staging slot {i}");
                    }
                    (c.stream, None)
                }
                Node::Record { stream, event } | Node::Wait { stream, event } => {
                    (*stream, Some(*event))
                }
            };
            assert!(stream < self.streams.len(), "undeclared stream {stream}");
            if let Some(e) = event {
                assert!(e < self.events.len(), "undeclared event {e}");
            }
        }
        for end in &self.ends {
            assert!(end.stream < self.streams.len(), "undeclared end stream");
        }
        // Per-stream op counts (program + end signal/tail), so replay
        // materialization allocates each program exactly once.
        let mut program_len = vec![0usize; self.streams.len()];
        for node in &self.nodes {
            let s = match node {
                Node::Copy(c) => c.stream,
                Node::Record { stream, .. } | Node::Wait { stream, .. } => *stream,
            };
            program_len[s] += 1;
        }
        for end in &self.ends {
            program_len[end.stream] += 2;
        }
        TransferGraph {
            id: self.id,
            src_device: self.src_device,
            dst_device: self.dst_device,
            n: self.n,
            src_synthetic: self.src_synthetic,
            streams: self.streams,
            events: self.events,
            staging: self.staging,
            nodes: self.nodes,
            ends: self.ends,
            program_len,
            in_flight: Arc::new(AtomicBool::new(false)),
            replays: AtomicU64::new(0),
        }
    }
}

/// A precompiled, replayable transfer program: the DAG of stream ops the
/// interpreted pipeline would issue for one `(pair, size)` transfer,
/// plus the streams, events, and staging ring it runs on — captured once
/// and relaunched with only buffer-pointer patching. See the module docs
/// for the replay cost model.
pub struct TransferGraph {
    id: u64,
    src_device: DeviceId,
    dst_device: DeviceId,
    n: usize,
    src_synthetic: bool,
    streams: Vec<Stream>,
    events: Vec<GpuEvent>,
    staging: Vec<Buffer>,
    nodes: Vec<Node>,
    ends: Vec<GraphPathEnd>,
    /// Exact op count of each stream's materialized program (computed at
    /// capture), so replay allocates each program once.
    program_len: Vec<usize>,
    /// A graph instance cannot overlap itself (single-occupancy staging
    /// ring and events); behind `Arc` so the completion tail — which
    /// outlives the launch call — can clear it.
    in_flight: Arc<AtomicBool>,
    replays: AtomicU64,
}

impl TransferGraph {
    /// Process-unique graph id (appears in labels and waker names).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Message size the graph was compiled for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Storage class the graph was compiled for (`true` = synthetic
    /// payload, synthetic staging).
    pub fn src_synthetic(&self) -> bool {
        self.src_synthetic
    }

    /// Times this graph has been launched.
    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// True while a replay is executing.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Per-path message ranges (parallel to the wakers `launch` returns).
    pub fn ends(&self) -> &[GraphPathEnd] {
        &self.ends
    }

    /// Bytes held by the graph's persistent staging ring.
    pub fn staging_bytes(&self) -> usize {
        self.staging.iter().map(|b| b.len()).sum()
    }

    /// Relaunches the captured program against concrete buffers: rearm
    /// every event, patch `Src`/`Dst` placeholders to
    /// `src[src_off..]`/`dst[dst_off..]`, and enqueue each stream's
    /// program as one batch. Returns one fresh done-waker per path
    /// (parallel to [`TransferGraph::ends`]).
    ///
    /// `first_extra` is charged once per path on its first copy — the
    /// caller-computed per-replay launch cost. `notify` wakers fire when
    /// the *whole* message has landed; `on_complete` (if any) runs in the
    /// engine context at the same instant, before the graph is marked
    /// idle again.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        first_extra: Secs,
        notify: &[Waker],
        on_complete: Option<mpx_sim::EventFn>,
    ) -> Result<Vec<Waker>, GraphLaunchError> {
        if self
            .in_flight
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(GraphLaunchError::Busy);
        }
        if let Err(e) = self.validate(src, src_off, dst, dst_off) {
            self.in_flight.store(false, Ordering::Release);
            return Err(e);
        }
        let replay = self.replays.fetch_add(1, Ordering::Relaxed);
        for ev in &self.events {
            ev.reset();
        }

        // Whole-message tail, shared by every path's end: the last one
        // signals the notify wakers, runs the completion hook, and only
        // then re-opens the graph for the next replay.
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(self.ends.len()));
        let notify: Arc<Vec<Waker>> = Arc::new(notify.to_vec());
        let hook = Arc::new(Mutex::new(on_complete));
        let make_tail = || {
            let remaining = remaining.clone();
            let notify = notify.clone();
            let hook = hook.clone();
            let in_flight = self.in_flight.clone();
            move |ctx: &mut mpx_sim::Ctx<'_>| {
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    for w in notify.iter() {
                        ctx.signal(w);
                    }
                    if let Some(f) = hook.lock().take() {
                        f(ctx);
                    }
                    in_flight.store(false, Ordering::Release);
                }
            }
        };

        // Materialize the program per stream, then append each path's
        // done-signal and tail. Within-stream order is program order;
        // cross-stream order is irrelevant (events serialize it).
        let mut programs: Vec<Vec<Op>> = self
            .program_len
            .iter()
            .map(|&len| Vec::with_capacity(len))
            .collect();
        for node in &self.nodes {
            match node {
                Node::Copy(c) => {
                    let (s, so) = match c.src {
                        GraphBuf::Src => (src.clone(), src_off + c.src_off),
                        GraphBuf::Dst => (dst.clone(), dst_off + c.src_off),
                        GraphBuf::Staging(i) => (self.staging[i].clone(), c.src_off),
                    };
                    let (d, dfo) = match c.dst {
                        GraphBuf::Src => (src.clone(), src_off + c.dst_off),
                        GraphBuf::Dst => (dst.clone(), dst_off + c.dst_off),
                        GraphBuf::Staging(i) => (self.staging[i].clone(), c.dst_off),
                    };
                    programs[c.stream].push(Op::Copy {
                        src: s,
                        src_off: so,
                        dst: d,
                        dst_off: dfo,
                        len: c.len,
                        route: c.route.clone(),
                        extra_latency: c.extra + if c.first { first_extra } else { 0.0 },
                        label: c.label.clone(),
                    });
                }
                Node::Record { stream, event } => {
                    programs[*stream].push(Op::Record(self.events[*event].clone()));
                }
                Node::Wait { stream, event } => {
                    programs[*stream].push(Op::WaitEvent(self.events[*event].clone()));
                }
            }
        }
        let mut wakers = Vec::with_capacity(self.ends.len());
        for end in &self.ends {
            let done = Waker::new(format!("g{}.r{replay}.p{}", self.id, end.path_index));
            programs[end.stream].push(Op::Signal(done.clone()));
            programs[end.stream].push(Op::Callback(Box::new(make_tail())));
            wakers.push(done);
        }
        for (stream, program) in self.streams.iter().zip(programs) {
            if !program.is_empty() {
                stream.enqueue_batch(program);
            }
        }
        Ok(wakers)
    }

    fn validate(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
    ) -> Result<(), GraphLaunchError> {
        if src.device() != self.src_device {
            return Err(GraphLaunchError::Mismatch("source device"));
        }
        if dst.device() != self.dst_device {
            return Err(GraphLaunchError::Mismatch("destination device"));
        }
        if src.len() < src_off + self.n {
            return Err(GraphLaunchError::Mismatch("source buffer too small"));
        }
        if dst.len() < dst_off + self.n {
            return Err(GraphLaunchError::Mismatch("destination buffer too small"));
        }
        // A synthetic-staged graph would silently drop real payload
        // bytes (and vice versa waste real staging): the storage class
        // is part of the graph's identity, like in the interpreter.
        if src.is_synthetic() != self.src_synthetic {
            return Err(GraphLaunchError::Mismatch("payload storage class"));
        }
        Ok(())
    }
}

impl fmt::Debug for TransferGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransferGraph")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("pair", &(self.src_device, self.dst_device))
            .field("streams", &self.streams.len())
            .field("events", &self.events.len())
            .field("ops", &self.nodes.len())
            .field("paths", &self.ends.len())
            .field("replays", &self.replays())
            .field("in_flight", &self.is_in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_sim::Engine;
    use mpx_topo::presets;

    fn runtime() -> GpuRuntime {
        GpuRuntime::new(Engine::new(Arc::new(presets::beluga())))
    }

    fn route(rt: &GpuRuntime, a: DeviceId, b: DeviceId) -> Vec<LinkId> {
        rt.direct_route(a, b).unwrap()
    }

    /// A two-chunk staged program exercising the full capture surface:
    /// ring slot reuse, sync events, and a direct path alongside.
    fn staged_graph(rt: &GpuRuntime, n: usize, synthetic: bool) -> TransferGraph {
        let gpus = rt.engine().topology().gpus();
        let (a, via, b) = (gpus[0], gpus[2], gpus[1]);
        let half = n / 2;
        let mut g = GraphBuilder::new(rt, a, b, n, synthetic);
        // Path 0: direct copy of the first half.
        let s0 = g.stream(a);
        g.copy(
            s0,
            GraphBuf::Src,
            0,
            GraphBuf::Dst,
            0,
            half,
            route(rt, a, b),
            0.0,
            true,
            "t.p0".into(),
        );
        g.end_path(s0, 0, 0, half);
        // Path 1: two chunks staged through `via` on one reused slot.
        let s1 = g.stream(a);
        let s2 = g.stream(via);
        let chunk = n - half;
        let c0 = chunk / 2;
        let c1 = chunk - c0;
        let slot = g.staging(via, c0.max(c1));
        let sync0 = g.event();
        let sync1 = g.event();
        let freed = g.event();
        g.copy(
            s1,
            GraphBuf::Src,
            half,
            slot,
            0,
            c0,
            route(rt, a, via),
            0.0,
            true,
            "t.p1.c0.leg1".into(),
        );
        g.record(s1, sync0);
        g.wait(s2, sync0);
        g.copy(
            s2,
            slot,
            0,
            GraphBuf::Dst,
            half,
            c0,
            route(rt, via, b),
            0.0,
            false,
            "t.p1.c0.leg2".into(),
        );
        g.record(s2, freed);
        g.wait(s1, freed);
        g.copy(
            s1,
            GraphBuf::Src,
            half + c0,
            slot,
            0,
            c1,
            route(rt, a, via),
            0.0,
            false,
            "t.p1.c1.leg1".into(),
        );
        g.record(s1, sync1);
        g.wait(s2, sync1);
        g.copy(
            s2,
            slot,
            0,
            GraphBuf::Dst,
            half + c0,
            c1,
            route(rt, via, b),
            0.0,
            false,
            "t.p1.c1.leg2".into(),
        );
        g.end_path(s2, 1, half, chunk);
        g.finish()
    }

    #[test]
    fn replay_moves_data_repeatedly_with_recycled_events() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 16;
        let g = staged_graph(&rt, n, false);
        for round in 0..3u64 {
            let data: Vec<u8> = (0..n).map(|i| ((i + round as usize) % 251) as u8).collect();
            let src = rt.alloc_bytes(gpus[0], data.clone());
            let dst = rt.alloc_zeroed(gpus[1], n);
            let wakers = g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap();
            assert_eq!(wakers.len(), 2);
            rt.engine().run_until_idle();
            assert!(wakers.iter().all(|w| w.is_signaled()));
            assert!(!g.is_in_flight());
            assert_eq!(dst.to_vec().unwrap(), data, "replay {round} corrupted data");
        }
        assert_eq!(g.replays(), 3);
    }

    #[test]
    fn launch_offsets_patch_into_larger_buffers() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 14;
        let g = staged_graph(&rt, n, false);
        let pad = 4096;
        let mut bytes = vec![0u8; n + 2 * pad];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let src = rt.alloc_bytes(gpus[0], bytes.clone());
        let dst = rt.alloc_zeroed(gpus[1], n + 2 * pad);
        g.launch(&src, pad, &dst, pad, 0.0, &[], None).unwrap();
        rt.engine().run_until_idle();
        let out = dst.to_vec().unwrap();
        assert_eq!(&out[pad..pad + n], &bytes[pad..pad + n]);
        assert!(out[..pad].iter().all(|&b| b == 0), "wrote before dst_off");
        assert!(out[pad + n..].iter().all(|&b| b == 0), "wrote past range");
    }

    #[test]
    fn overlapping_launch_is_refused_not_corrupted() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 16;
        let g = staged_graph(&rt, n, true);
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap();
        assert!(g.is_in_flight());
        assert_eq!(
            g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap_err(),
            GraphLaunchError::Busy
        );
        rt.engine().run_until_idle();
        // Drained: relaunch is accepted again.
        g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap();
        rt.engine().run_until_idle();
        assert_eq!(g.replays(), 2);
    }

    #[test]
    fn mismatched_buffers_are_refused_and_graph_stays_usable() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 16;
        let g = staged_graph(&rt, n, true);
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        // Wrong storage class.
        let real = rt.alloc_zeroed(gpus[0], n);
        assert!(matches!(
            g.launch(&real, 0, &dst, 0, 0.0, &[], None),
            Err(GraphLaunchError::Mismatch(_))
        ));
        // Wrong device.
        let wrong = rt.alloc(gpus[3], n);
        assert!(matches!(
            g.launch(&wrong, 0, &dst, 0, 0.0, &[], None),
            Err(GraphLaunchError::Mismatch(_))
        ));
        // Too small for the offset.
        assert!(matches!(
            g.launch(&src, 1, &dst, 0, 0.0, &[], None),
            Err(GraphLaunchError::Mismatch(_))
        ));
        // A refused launch must not leave the graph marked busy.
        assert!(!g.is_in_flight());
        g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap();
        rt.engine().run_until_idle();
        assert_eq!(g.replays(), 1);
    }

    #[test]
    fn notify_and_completion_hook_fire_once_per_launch() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 16;
        let g = staged_graph(&rt, n, true);
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for i in 0..2 {
            let whole = Waker::new(format!("whole{i}"));
            let fired = fired.clone();
            g.launch(
                &src,
                0,
                &dst,
                0,
                0.0,
                std::slice::from_ref(&whole),
                Some(Box::new(move |_| {
                    fired.fetch_add(1, Ordering::Relaxed);
                })),
            )
            .unwrap();
            rt.engine().run_until_idle();
            assert!(whole.is_signaled());
        }
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn first_extra_is_charged_per_path_not_per_chunk() {
        // Two launches of the same graph with different first_extra: the
        // completion-time delta equals the extra (both paths run
        // concurrently, so one serial extra each shifts the makespan by
        // exactly the extra).
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let n = 1 << 20;
        let g = staged_graph(&rt, n, true);
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        g.launch(&src, 0, &dst, 0, 0.0, &[], None).unwrap();
        rt.engine().run_until_idle();
        let base = rt.engine().now().as_secs();
        let t0 = rt.engine().now();
        let extra = 5e-5;
        g.launch(&src, 0, &dst, 0, extra, &[], None).unwrap();
        rt.engine().run_until_idle();
        let with_extra = rt.engine().now().secs_since(t0);
        assert!(
            (with_extra - base - extra).abs() < 1e-8,
            "expected shift of {extra}, got {}",
            with_extra - base
        );
    }
}
