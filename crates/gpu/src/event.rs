//! GPU events: one-shot cross-stream synchronization points.
//!
//! The multi-path pipeline's chunk protocol is "copy → **record event** on
//! the first-leg stream → **wait event** on the second-leg stream → copy"
//! (paper Section 3.4). We model events as *one-shot*: created unrecorded,
//! completed exactly once, after which waits pass immediately. (CUDA
//! events are reusable; the pipeline engine allocates one per sync point,
//! so the one-shot model is sufficient and simpler to reason about.)

use crate::stream::Stream;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

struct EventState {
    complete: bool,
    waiters: Vec<Stream>,
}

/// A one-shot synchronization point between streams.
#[derive(Clone)]
pub struct GpuEvent {
    name: Arc<String>,
    state: Arc<Mutex<EventState>>,
}

impl GpuEvent {
    /// Creates an unrecorded event.
    pub fn new(name: impl Into<String>) -> GpuEvent {
        GpuEvent {
            name: Arc::new(name.into()),
            state: Arc::new(Mutex::new(EventState {
                complete: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the recorded point has completed.
    pub fn is_complete(&self) -> bool {
        self.state.lock().complete
    }

    /// Marks the event complete and returns the streams parked on it.
    /// (Called by the stream executor when a `Record` op retires.)
    pub(crate) fn complete(&self) -> Vec<Stream> {
        let mut st = self.state.lock();
        st.complete = true;
        std::mem::take(&mut st.waiters)
    }

    /// If already complete returns `true`; otherwise parks `stream` and
    /// returns `false`. Atomic w.r.t. [`GpuEvent::complete`].
    pub(crate) fn park_unless_complete(&self, stream: Stream) -> bool {
        let mut st = self.state.lock();
        if st.complete {
            true
        } else {
            st.waiters.push(stream);
            false
        }
    }
}

impl fmt::Debug for GpuEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuEvent")
            .field("name", &self.name)
            .field("complete", &self.is_complete())
            .finish()
    }
}
