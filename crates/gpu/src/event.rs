//! GPU events: cross-stream synchronization points.
//!
//! The multi-path pipeline's chunk protocol is "copy → **record event** on
//! the first-leg stream → **wait event** on the second-leg stream → copy"
//! (paper Section 3.4). Events fire once per cycle: created unrecorded,
//! completed by a `Record` op, after which waits pass immediately. The
//! *interpreted* pipeline allocates one per sync point and never touches
//! it again; compiled [`crate::TransferGraph`]s instead keep their event
//! set alive across replays and rearm it with [`GpuEvent::reset`] —
//! matching CUDA, where events are reusable and graph replay recycles
//! them rather than allocating fresh ones per launch.

use crate::stream::Stream;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

struct EventState {
    complete: bool,
    waiters: Vec<Stream>,
}

/// A one-shot synchronization point between streams.
#[derive(Clone)]
pub struct GpuEvent {
    name: Arc<String>,
    state: Arc<Mutex<EventState>>,
}

impl GpuEvent {
    /// Creates an unrecorded event.
    pub fn new(name: impl Into<String>) -> GpuEvent {
        GpuEvent {
            name: Arc::new(name.into()),
            state: Arc::new(Mutex::new(EventState {
                complete: false,
                waiters: Vec::new(),
            })),
        }
    }

    /// Debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True once the recorded point has completed.
    pub fn is_complete(&self) -> bool {
        self.state.lock().complete
    }

    /// Marks the event complete and returns the streams parked on it.
    /// (Called by the stream executor when a `Record` op retires.)
    pub(crate) fn complete(&self) -> Vec<Stream> {
        let mut st = self.state.lock();
        st.complete = true;
        std::mem::take(&mut st.waiters)
    }

    /// If already complete returns `true`; otherwise parks `stream` and
    /// returns `false`. Atomic w.r.t. [`GpuEvent::complete`].
    pub(crate) fn park_unless_complete(&self, stream: Stream) -> bool {
        let mut st = self.state.lock();
        if st.complete {
            true
        } else {
            st.waiters.push(stream);
            false
        }
    }

    /// Rearms a completed (or never-recorded) event so the next `Record`
    /// completes it again — the recycling a replayed
    /// [`crate::TransferGraph`] performs instead of allocating a fresh
    /// event per sync point per launch.
    ///
    /// # Panics
    /// Panics if a stream is still parked on the event: resetting under a
    /// live waiter would strand that stream forever, so it is a caller
    /// bug (a graph must be quiescent before relaunch).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        assert!(
            st.waiters.is_empty(),
            "reset of event '{}' with {} stream(s) still parked on it",
            self.name,
            st.waiters.len()
        );
        st.complete = false;
    }
}

impl fmt::Debug for GpuEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuEvent")
            .field("name", &self.name)
            .field("complete", &self.is_complete())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Stream;
    use mpx_sim::Engine;
    use mpx_topo::presets;
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(Arc::new(presets::synthetic_default()))
    }

    #[test]
    fn reset_rearms_a_completed_event() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let ev = GpuEvent::new("recycled");
        // Cycle 1: record completes the event.
        let p = Stream::new(eng.clone(), gpus[0], "p1");
        p.record(&ev);
        eng.run_until_idle();
        assert!(ev.is_complete());
        // Rearm: a fresh waiter must park again instead of passing.
        ev.reset();
        assert!(!ev.is_complete());
        let w = Stream::new(eng.clone(), gpus[1], "w");
        let done = mpx_sim::Waker::new("cycle2");
        w.wait_event(&ev);
        w.signal(&done);
        eng.run_until_idle();
        assert!(
            !done.is_signaled(),
            "waiter passed a reset (unrecorded) event"
        );
        // Cycle 2: a second record releases it.
        let p2 = Stream::new(eng.clone(), gpus[0], "p2");
        p2.record(&ev);
        eng.run_until_idle();
        assert!(done.is_signaled());
    }

    #[test]
    #[should_panic(expected = "still parked")]
    fn reset_with_parked_waiter_panics() {
        let eng = engine();
        let gpus = eng.topology().gpus();
        let ev = GpuEvent::new("live");
        let w = Stream::new(eng.clone(), gpus[0], "w");
        w.wait_event(&ev);
        eng.run_until_idle();
        ev.reset();
    }
}
