//! The device runtime: allocation, stream/event creation, peer copies,
//! and the kernel cost model.

use crate::buffer::Buffer;
use crate::event::GpuEvent;
use crate::ipc::IpcCache;
use crate::memory::{MemTracker, MemoryStats};
use crate::stream::Stream;
use mpx_sim::Engine;
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, LinkId, TopologyError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost model for on-device compute kernels.
///
/// Two rates: element-wise *reductions* read two operands and write one
/// (three memory streams — slow), while local *pack/copy* kernels are
/// two-stream and run near memory bandwidth. The gap is what makes
/// MPI_Allreduce benefit less from faster transport than MPI_Alltoall
/// (paper Observation 3 of Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostModel {
    /// Fixed kernel launch cost.
    pub launch: Secs,
    /// Streaming rate of an element-wise reduction (bytes of *input*
    /// processed per second).
    pub bytes_per_sec: f64,
    /// Streaming rate of a local device copy / pack kernel.
    pub copy_bytes_per_sec: f64,
}

impl KernelCostModel {
    /// V100/A100-ballpark: ~3 µs launch; the element-wise reduction
    /// streams two reads and one write per input element (~400 GB/s of
    /// HBM traffic → ~130 GB/s of *input*), while a plain device copy
    /// runs near memory bandwidth (~1.3 TB/s).
    pub const fn default_gpu() -> Self {
        KernelCostModel {
            launch: 3e-6,
            bytes_per_sec: 130e9,
            copy_bytes_per_sec: 1300e9,
        }
    }

    /// Free compute — for tests that isolate communication time.
    pub const fn zero() -> Self {
        KernelCostModel {
            launch: 0.0,
            bytes_per_sec: f64::INFINITY,
            copy_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Cost of reducing `bytes` of input.
    pub fn cost(&self, bytes: usize) -> Secs {
        self.launch + bytes as f64 / self.bytes_per_sec
    }

    /// Cost of locally copying/packing `bytes`.
    pub fn cost_copy(&self, bytes: usize) -> Secs {
        self.launch + bytes as f64 / self.copy_bytes_per_sec
    }
}

impl Default for KernelCostModel {
    fn default() -> Self {
        Self::default_gpu()
    }
}

struct RuntimeInner {
    engine: Engine,
    kernel_cost: KernelCostModel,
    ipc: IpcCache,
    memory: Arc<MemTracker>,
    next_stream: AtomicU64,
}

/// Handle to the simulated GPU runtime. Cloning shares the runtime.
#[derive(Clone)]
pub struct GpuRuntime {
    inner: Arc<RuntimeInner>,
}

impl GpuRuntime {
    /// Creates a runtime over `engine` with the default kernel cost model.
    pub fn new(engine: Engine) -> GpuRuntime {
        GpuRuntime::with_kernel_cost(engine, KernelCostModel::default())
    }

    /// Creates a runtime with an explicit kernel cost model.
    pub fn with_kernel_cost(engine: Engine, kernel_cost: KernelCostModel) -> GpuRuntime {
        let devices = engine.topology().device_count();
        GpuRuntime {
            inner: Arc::new(RuntimeInner {
                engine,
                kernel_cost,
                ipc: IpcCache::new(),
                memory: MemTracker::new(devices),
                next_stream: AtomicU64::new(0),
            }),
        }
    }

    /// Per-device memory counters (runtime-allocated buffers only).
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.memory.stats()
    }

    /// The underlying simulation engine.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The kernel cost model.
    pub fn kernel_cost(&self) -> &KernelCostModel {
        &self.inner.kernel_cost
    }

    /// The CUDA-IPC handle cache.
    pub fn ipc(&self) -> &IpcCache {
        &self.inner.ipc
    }

    /// Allocates a synthetic buffer (timing-only payload) on `device`.
    pub fn alloc(&self, device: DeviceId, len: usize) -> Buffer {
        Buffer::build(device, len, None, Some(self.inner.memory.clone()))
    }

    /// Allocates a real buffer holding `data` on `device`.
    pub fn alloc_bytes(&self, device: DeviceId, data: Vec<u8>) -> Buffer {
        let len = data.len();
        Buffer::build(device, len, Some(data), Some(self.inner.memory.clone()))
    }

    /// Allocates a zero-filled real buffer on `device`.
    pub fn alloc_zeroed(&self, device: DeviceId, len: usize) -> Buffer {
        Buffer::build(
            device,
            len,
            Some(vec![0; len]),
            Some(self.inner.memory.clone()),
        )
    }

    /// Creates a stream on `device`.
    pub fn stream(&self, device: DeviceId) -> Stream {
        let n = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Stream::new(self.inner.engine.clone(), device, format!("{device}.s{n}"))
    }

    /// Creates a one-shot event.
    pub fn event(&self, name: impl Into<String>) -> GpuEvent {
        GpuEvent::new(name)
    }

    /// The single-link route between two devices, if one exists — the
    /// route of a direct peer copy.
    pub fn direct_route(&self, src: DeviceId, dst: DeviceId) -> Result<Vec<LinkId>, TopologyError> {
        Ok(vec![
            self.inner.engine.topology().link_between(src, dst)?.id,
        ])
    }

    /// Convenience: enqueue a whole-buffer direct peer copy on `stream`,
    /// charging the topology's copy-launch overhead.
    pub fn memcpy_peer_async(
        &self,
        stream: &Stream,
        src: &Buffer,
        dst: &Buffer,
    ) -> Result<(), TopologyError> {
        assert_eq!(src.len(), dst.len(), "peer copy length mismatch");
        let route = self.direct_route(src.device(), dst.device())?;
        let launch = self.inner.engine.topology().overheads.copy_launch;
        stream.copy(src, 0, dst, 0, src.len(), route, launch, "memcpy_peer");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_sim::Waker;
    use mpx_topo::presets;

    fn runtime() -> GpuRuntime {
        GpuRuntime::new(Engine::new(Arc::new(presets::synthetic_default())))
    }

    #[test]
    fn kernel_cost_model_math() {
        let m = KernelCostModel {
            launch: 1e-6,
            bytes_per_sec: 1e9,
            copy_bytes_per_sec: 2e9,
        };
        assert!((m.cost(1_000_000) - 1.001e-3).abs() < 1e-12);
        assert!((m.cost_copy(1_000_000) - 0.501e-3).abs() < 1e-12);
        assert_eq!(KernelCostModel::zero().cost(1 << 30), 0.0);
        assert_eq!(KernelCostModel::zero().cost_copy(1 << 30), 0.0);
    }

    #[test]
    fn memcpy_peer_moves_data_and_time() {
        let rt = runtime();
        let topo = rt.engine().topology().clone();
        let gpus = topo.gpus();
        let src = rt.alloc_bytes(gpus[0], (0u8..=255).collect());
        let dst = rt.alloc_zeroed(gpus[1], 256);
        let s = rt.stream(gpus[0]);
        rt.memcpy_peer_async(&s, &src, &dst).unwrap();
        rt.engine().run_until_idle();
        assert_eq!(dst.to_vec().unwrap(), (0u8..=255).collect::<Vec<_>>());
        // 2 µs link latency dominates 256 bytes at 50 GB/s.
        assert!(rt.engine().now().as_secs() >= 2e-6);
    }

    #[test]
    fn stream_ops_execute_in_order() {
        let rt = runtime();
        let topo = rt.engine().topology().clone();
        let gpus = topo.gpus();
        let a = rt.alloc_bytes(gpus[0], vec![1; 8]);
        let b = rt.alloc_zeroed(gpus[1], 8);
        let c = rt.alloc_zeroed(gpus[2], 8);
        let s = rt.stream(gpus[0]);
        // b <- a, then c <- b. Ordering matters: if the second copy ran
        // first it would move zeros.
        s.copy(
            &a,
            0,
            &b,
            0,
            8,
            rt.direct_route(gpus[0], gpus[1]).unwrap(),
            0.0,
            "c1",
        );
        s.copy(
            &b,
            0,
            &c,
            0,
            8,
            rt.direct_route(gpus[1], gpus[2]).unwrap(),
            0.0,
            "c2",
        );
        rt.engine().run_until_idle();
        assert_eq!(c.to_vec().unwrap(), vec![1; 8]);
    }

    #[test]
    fn cross_stream_event_serializes() {
        let rt = runtime();
        let topo = rt.engine().topology().clone();
        let gpus = topo.gpus();
        let a = rt.alloc_bytes(gpus[0], vec![7; 16]);
        let staging = rt.alloc_zeroed(gpus[2], 16);
        let b = rt.alloc_zeroed(gpus[1], 16);
        let s1 = rt.stream(gpus[0]);
        let s2 = rt.stream(gpus[2]);
        let ev = rt.event("chunk0");
        // Staged copy: s1 moves a -> staging, records; s2 waits, moves
        // staging -> b. Enqueue s2's work *first* to prove the wait holds.
        s2.wait_event(&ev);
        s2.copy(
            &staging,
            0,
            &b,
            0,
            16,
            rt.direct_route(gpus[2], gpus[1]).unwrap(),
            0.0,
            "leg2",
        );
        s1.copy(
            &a,
            0,
            &staging,
            0,
            16,
            rt.direct_route(gpus[0], gpus[2]).unwrap(),
            0.0,
            "leg1",
        );
        s1.record(&ev);
        rt.engine().run_until_idle();
        assert_eq!(b.to_vec().unwrap(), vec![7; 16]);
        assert!(ev.is_complete());
    }

    #[test]
    fn wait_on_completed_event_passes_immediately() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let s1 = rt.stream(gpus[0]);
        let s2 = rt.stream(gpus[1]);
        let ev = rt.event("pre");
        s1.record(&ev);
        rt.engine().run_until_idle();
        assert!(ev.is_complete());
        let w = Waker::new("done");
        s2.wait_event(&ev);
        s2.signal(&w);
        rt.engine().run_until_idle();
        assert!(w.is_signaled());
    }

    #[test]
    fn kernel_charges_time_and_applies_effect() {
        let rt = GpuRuntime::with_kernel_cost(
            Engine::new(Arc::new(presets::synthetic_default())),
            KernelCostModel {
                launch: 1e-6,
                bytes_per_sec: 1e9,
                copy_bytes_per_sec: 2e9,
            },
        );
        let gpus = rt.engine().topology().gpus();
        let buf = rt.alloc_bytes(gpus[0], vec![3; 4]);
        let s = rt.stream(gpus[0]);
        let cost = rt.kernel_cost().cost(1_000_000);
        let b2 = buf.clone();
        s.kernel(
            cost,
            Some(Box::new(move || {
                b2.with_data(|d| d.iter_mut().for_each(|x| *x *= 2));
            })),
            "double",
        );
        rt.engine().run_until_idle();
        assert_eq!(buf.to_vec().unwrap(), vec![6; 4]);
        assert!((rt.engine().now().as_secs() - 1.001e-3).abs() < 1e-9);
    }

    #[test]
    fn synchronize_blocks_simulated_thread() {
        let rt = runtime();
        let topo = rt.engine().topology().clone();
        let gpus = topo.gpus();
        let src = rt.alloc(gpus[0], 50_000_000_000);
        let dst = rt.alloc(gpus[1], 50_000_000_000);
        let t = rt.engine().register_thread("host");
        let rt2 = rt.clone();
        let h = std::thread::spawn(move || {
            let s = rt2.stream(gpus[0]);
            rt2.memcpy_peer_async(&s, &src, &dst).unwrap();
            s.synchronize(&t);
            t.now().as_secs()
        });
        let done = h.join().unwrap();
        assert!((done - 1.0).abs() < 1e-3, "done = {done}");
    }

    #[test]
    fn pending_ops_counts_in_flight_work() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let src = rt.alloc(gpus[0], 1 << 20);
        let dst = rt.alloc(gpus[1], 1 << 20);
        let s = rt.stream(gpus[0]);
        assert_eq!(s.pending_ops(), 0);
        rt.memcpy_peer_async(&s, &src, &dst).unwrap();
        assert_eq!(s.pending_ops(), 1);
        rt.engine().run_until_idle();
        assert_eq!(s.pending_ops(), 0);
    }

    #[test]
    fn direct_route_missing_link_errors() {
        let rt = GpuRuntime::new(Engine::new(Arc::new(presets::pcie_only(2))));
        let gpus = rt.engine().topology().gpus();
        assert!(rt.direct_route(gpus[0], gpus[1]).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn memcpy_peer_length_mismatch_panics() {
        let rt = runtime();
        let gpus = rt.engine().topology().gpus();
        let src = rt.alloc(gpus[0], 8);
        let dst = rt.alloc(gpus[1], 4);
        let s = rt.stream(gpus[0]);
        let _ = rt.memcpy_peer_async(&s, &src, &dst);
    }
}
