//! Device and host buffers.
//!
//! A buffer either carries **real bytes** (correctness tests check that
//! multi-path chunking reassembles messages exactly) or is **synthetic**
//! (benchmarks move hundreds of gigabytes of virtual data without
//! allocating them). Copies between two real buffers move bytes; copies
//! involving a synthetic side only move simulated time.

use crate::memory::MemTracker;
use mpx_topo::DeviceId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(0);

struct BufferInner {
    id: u64,
    device: DeviceId,
    len: usize,
    data: Mutex<Option<Vec<u8>>>,
    tracker: Option<Arc<MemTracker>>,
}

impl Drop for BufferInner {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.release(self.device.index(), self.len as u64);
        }
    }
}

/// A (simulated) memory allocation on a device or in host memory.
/// Cloning shares the allocation.
#[derive(Clone)]
pub struct Buffer {
    inner: Arc<BufferInner>,
}

impl Buffer {
    /// Allocates a synthetic buffer of `len` bytes on `device`.
    pub fn synthetic(device: DeviceId, len: usize) -> Buffer {
        Buffer::build(device, len, None, None)
    }

    /// Allocates a real buffer on `device` holding `data`.
    pub fn from_bytes(device: DeviceId, data: Vec<u8>) -> Buffer {
        let len = data.len();
        Buffer::build(device, len, Some(data), None)
    }

    /// Tracked constructor used by the runtime's allocation methods.
    pub(crate) fn build(
        device: DeviceId,
        len: usize,
        data: Option<Vec<u8>>,
        tracker: Option<Arc<MemTracker>>,
    ) -> Buffer {
        if let Some(t) = &tracker {
            t.acquire(device.index(), len as u64);
        }
        Buffer {
            inner: Arc::new(BufferInner {
                id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
                device,
                len,
                data: Mutex::new(data),
                tracker,
            }),
        }
    }

    /// Allocates a zero-filled real buffer.
    pub fn zeroed(device: DeviceId, len: usize) -> Buffer {
        Buffer::from_bytes(device, vec![0; len])
    }

    /// Globally unique allocation id (used as the IPC handle key).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The device this buffer lives on.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// Allocation size in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// True if this buffer carries no real bytes.
    pub fn is_synthetic(&self) -> bool {
        self.inner.data.lock().is_none()
    }

    /// Reads `len` bytes at `off`; `None` for synthetic buffers.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read(&self, off: usize, len: usize) -> Option<Vec<u8>> {
        assert!(
            off.checked_add(len)
                .is_some_and(|end| end <= self.inner.len),
            "read [{off}, {off}+{len}) out of bounds (len {})",
            self.inner.len
        );
        self.inner
            .data
            .lock()
            .as_ref()
            .map(|d| d[off..off + len].to_vec())
    }

    /// Copies the whole contents out; `None` for synthetic buffers.
    pub fn to_vec(&self) -> Option<Vec<u8>> {
        self.read(0, self.inner.len)
    }

    /// Writes `bytes` at `off`. No-op on synthetic buffers.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn write(&self, off: usize, bytes: &[u8]) {
        assert!(
            off.checked_add(bytes.len())
                .is_some_and(|end| end <= self.inner.len),
            "write [{off}, {off}+{}) out of bounds (len {})",
            bytes.len(),
            self.inner.len
        );
        if let Some(d) = self.inner.data.lock().as_mut() {
            d[off..off + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Applies `f` to the real contents in place; no-op when synthetic.
    pub fn with_data<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> Option<R> {
        self.inner.data.lock().as_mut().map(|d| f(d.as_mut_slice()))
    }

    /// Transfers `len` bytes from `src[src_off..]` to `dst[dst_off..]` if
    /// both sides are real. This is the data effect of a completed copy.
    pub fn transfer(src: &Buffer, src_off: usize, dst: &Buffer, dst_off: usize, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(bytes) = src.read(src_off, len) {
            dst.write(dst_off, &bytes);
        } else {
            // Still bounds-check the destination so synthetic runs catch
            // addressing bugs.
            assert!(
                dst_off.checked_add(len).is_some_and(|end| end <= dst.len()),
                "copy writes [{dst_off}, {dst_off}+{len}) out of bounds (len {})",
                dst.len()
            );
        }
    }
}

impl fmt::Debug for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.inner.id)
            .field("device", &self.inner.device)
            .field("len", &self.inner.len)
            .field("synthetic", &self.is_synthetic())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_buffer_has_no_data() {
        let b = Buffer::synthetic(DeviceId(0), 100);
        assert!(b.is_synthetic());
        assert_eq!(b.read(0, 10), None);
        assert_eq!(b.len(), 100);
        b.write(0, &[1, 2, 3]); // silently ignored
        assert!(b.is_synthetic());
    }

    #[test]
    fn real_buffer_roundtrip() {
        let b = Buffer::from_bytes(DeviceId(1), vec![1, 2, 3, 4]);
        assert!(!b.is_synthetic());
        assert_eq!(b.read(1, 2), Some(vec![2, 3]));
        b.write(2, &[9, 9]);
        assert_eq!(b.to_vec(), Some(vec![1, 2, 9, 9]));
    }

    #[test]
    fn zeroed_is_real_and_zero() {
        let b = Buffer::zeroed(DeviceId(0), 4);
        assert_eq!(b.to_vec(), Some(vec![0; 4]));
    }

    #[test]
    fn clones_alias_storage() {
        let b = Buffer::zeroed(DeviceId(0), 4);
        let c = b.clone();
        c.write(0, &[7]);
        assert_eq!(b.read(0, 1), Some(vec![7]));
        assert_eq!(b.id(), c.id());
    }

    #[test]
    fn ids_are_unique() {
        let a = Buffer::synthetic(DeviceId(0), 1);
        let b = Buffer::synthetic(DeviceId(0), 1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn transfer_moves_bytes_between_real_buffers() {
        let src = Buffer::from_bytes(DeviceId(0), vec![10, 20, 30, 40]);
        let dst = Buffer::zeroed(DeviceId(1), 4);
        Buffer::transfer(&src, 1, &dst, 2, 2);
        assert_eq!(dst.to_vec(), Some(vec![0, 0, 20, 30]));
    }

    #[test]
    fn transfer_with_synthetic_src_is_timing_only() {
        let src = Buffer::synthetic(DeviceId(0), 4);
        let dst = Buffer::zeroed(DeviceId(1), 4);
        Buffer::transfer(&src, 0, &dst, 0, 4);
        assert_eq!(dst.to_vec(), Some(vec![0; 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        Buffer::zeroed(DeviceId(0), 4).read(2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        Buffer::zeroed(DeviceId(0), 4).write(3, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn transfer_to_synthetic_still_bounds_checks() {
        let src = Buffer::synthetic(DeviceId(0), 10);
        let dst = Buffer::synthetic(DeviceId(1), 4);
        Buffer::transfer(&src, 0, &dst, 2, 4);
    }

    #[test]
    fn with_data_mutates_in_place() {
        let b = Buffer::from_bytes(DeviceId(0), vec![1, 2, 3]);
        let sum = b.with_data(|d| {
            d.iter_mut().for_each(|x| *x *= 2);
            d.iter().map(|&x| x as u32).sum::<u32>()
        });
        assert_eq!(sum, Some(12));
        assert_eq!(b.to_vec(), Some(vec![2, 4, 6]));
    }
}
