//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. φ-linearized chunk counts (Eq. 19) vs the exact √-optimal (Eq. 14/15);
//! 2. pipelined vs un-pipelined staged execution;
//! 3. contention-blind (per-transfer Algorithm 1) vs contention-aware
//!    joint planning on loaded patterns (the paper's future work);
//! 4. collective algorithm choices (K-nomial vs ring allreduce, Bruck vs
//!    pairwise alltoall) under single- and multi-path transport;
//! 5. OMB window-size sweep.

use mpx_bench::emit_json;
use mpx_model::{chunk_count, optimal_chunks_exact, time_pipelined, PipelineMode, PlannerConfig};
use mpx_omb::{
    osu_allreduce, osu_alltoall, osu_bw, ring_pairs, run_pattern, AllreduceAlgo, AlltoallAlgo,
    CollectiveConfig, P2pConfig, PatternPlanning,
};
use mpx_topo::params::extract_all;
use mpx_topo::path::{enumerate_paths, PathSelection};
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_ucx::{TuningMode, UcxConfig};
use serde_json::json;
use std::sync::Arc;

fn main() {
    let mut out = Vec::new();
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();

    // ---- 1. φ-linear vs exact chunk counts -----------------------------
    println!("== ablation 1: chunk-count law (staged path, theta = 0.3) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "size", "k_exact", "k_linear", "T(k_ex) us", "T(k_lin) us", "loss"
    );
    let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::TWO_GPUS).unwrap();
    let params = extract_all(&topo, &paths).unwrap();
    let staged = &params[1];
    for n in [2 * MIB, 8 * MIB, 32 * MIB, 128 * MIB, 512 * MIB] {
        let theta = 0.3;
        let k_exact = optimal_chunks_exact(staged, theta, n as f64)
            .round()
            .max(1.0) as u32;
        let k_linear = chunk_count(staged, theta, n as f64, 1 << 20);
        let t_exact = time_pipelined(staged, theta, n as f64, k_exact);
        let t_linear = time_pipelined(staged, theta, n as f64, k_linear);
        let loss = (t_linear - t_exact) / t_exact * 100.0;
        println!(
            "{:>10} {:>10} {:>10} {:>12.1} {:>12.1} {:>7.2}%",
            mpx_topo::units::format_bytes(n),
            k_exact,
            k_linear,
            t_exact * 1e6,
            t_linear * 1e6,
            loss
        );
        out.push(json!({"ablation": "chunk_law", "n": n, "k_exact": k_exact,
                        "k_linear": k_linear, "loss_pct": loss}));
    }

    // ---- 2. pipelined vs un-pipelined -----------------------------------
    println!("\n== ablation 2: pipelining (3_GPUs, dynamic) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "size", "piped GB/s", "unpiped GB/s", "gain"
    );
    for n in [8 * MIB, 64 * MIB, 256 * MIB] {
        let bw_of = |mode: PipelineMode| {
            let cfg = UcxConfig {
                mode: TuningMode::Dynamic,
                selection: PathSelection::THREE_GPUS,
                planner: PlannerConfig {
                    mode,
                    ..PlannerConfig::default()
                },
                ..UcxConfig::default()
            };
            osu_bw(&topo, cfg, n, P2pConfig::default())
        };
        let piped = bw_of(PipelineMode::Pipelined);
        let unpiped = bw_of(PipelineMode::Unpipelined);
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>7.2}x",
            mpx_topo::units::format_bytes(n),
            piped / 1e9,
            unpiped / 1e9,
            piped / unpiped
        );
        out.push(json!({"ablation": "pipelining", "n": n,
                        "piped": piped, "unpiped": unpiped}));
    }

    // ---- 3. contention-blind vs joint planning -------------------------
    println!("\n== ablation 3: loaded-pattern planning (4-GPU ring) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "size", "single GB/s", "blind GB/s", "joint GB/s"
    );
    for n in [16 * MIB, 64 * MIB, 256 * MIB] {
        let pairs = ring_pairs(4);
        let sel = PathSelection::THREE_GPUS;
        let single = run_pattern(&topo, &pairs, n, sel, PatternPlanning::SinglePath);
        let blind = run_pattern(&topo, &pairs, n, sel, PatternPlanning::Blind);
        let joint = run_pattern(&topo, &pairs, n, sel, PatternPlanning::Joint);
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>14.2}",
            mpx_topo::units::format_bytes(n),
            single.aggregate_bandwidth / 1e9,
            blind.aggregate_bandwidth / 1e9,
            joint.aggregate_bandwidth / 1e9
        );
        out.push(json!({"ablation": "contention", "n": n,
                        "single": single.aggregate_bandwidth,
                        "blind": blind.aggregate_bandwidth,
                        "joint": joint.aggregate_bandwidth}));
    }

    // ---- 4. collective algorithms ---------------------------------------
    println!("\n== ablation 4: collective algorithms (64 MB per rank) ==");
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };
    let n = 64 * MIB;
    for mode in [TuningMode::SinglePath, TuningMode::Dynamic] {
        let cfg = UcxConfig {
            mode,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        };
        let knomial = osu_allreduce(&topo, cfg, n, AllreduceAlgo::Rabenseifner, coll);
        let ring = osu_allreduce(&topo, cfg, n, AllreduceAlgo::Ring, coll);
        let bruck = osu_alltoall(&topo, cfg, n / 4, AlltoallAlgo::Bruck, coll);
        let pairwise = osu_alltoall(&topo, cfg, n / 4, AlltoallAlgo::Pairwise, coll);
        println!(
            "{mode:?}: allreduce knomial {:.2} ms / ring {:.2} ms; alltoall bruck {:.2} ms / pairwise {:.2} ms",
            knomial * 1e3,
            ring * 1e3,
            bruck * 1e3,
            pairwise * 1e3
        );
        out.push(
            json!({"ablation": "collective_algos", "mode": format!("{mode:?}"),
                        "allreduce_knomial": knomial, "allreduce_ring": ring,
                        "alltoall_bruck": bruck, "alltoall_pairwise": pairwise}),
        );
    }

    // ---- 5. window sweep -------------------------------------------------
    println!("\n== ablation 5: window sweep (dynamic, 8 MB) ==");
    print!("window:");
    for w in [1usize, 2, 4, 8, 16, 32] {
        let cfg = UcxConfig {
            mode: TuningMode::Dynamic,
            selection: PathSelection::THREE_GPUS,
            ..UcxConfig::default()
        };
        let bw = osu_bw(&topo, cfg, 8 * MIB, P2pConfig::with_window(w));
        print!("  {w}:{:.1}GB/s", bw / 1e9);
        out.push(json!({"ablation": "window", "window": w, "bandwidth": bw}));
    }
    println!();

    // ---- 5b. K-nomial radix (4 GPUs: radix 2 = two rounds of pairs,
    // radix 4 = one round with three concurrent partners) -----------------
    println!("\n== ablation 5b: K-nomial radix (allreduce, 4 ranks) ==");
    {
        use mpx_mpi::{allreduce_knomial, World};
        let run = |radix: usize, mode: TuningMode, n: usize| {
            let world = World::new(
                topo.clone(),
                UcxConfig {
                    mode,
                    selection: PathSelection::THREE_GPUS,
                    ..UcxConfig::default()
                },
            );
            let times = world.run(4, move |r| {
                let buf = r.alloc(n);
                r.barrier();
                let t0 = r.now();
                for _ in 0..2 {
                    allreduce_knomial(&r, &buf, n, mpx_gpu::ReduceOp::Sum, radix);
                }
                r.now().secs_since(t0) / 2.0
            });
            times.into_iter().fold(0.0, f64::max)
        };
        for n in [16 * MIB, 64 * MIB] {
            let r2s = run(2, TuningMode::SinglePath, n);
            let r2d = run(2, TuningMode::Dynamic, n);
            let r4s = run(4, TuningMode::SinglePath, n);
            let r4d = run(4, TuningMode::Dynamic, n);
            println!(
                "{:>6}: radix2 {:.2}/{:.2} ms (x{:.2}) | radix4 {:.2}/{:.2} ms (x{:.2})",
                mpx_topo::units::format_bytes(n),
                r2s * 1e3,
                r2d * 1e3,
                r2s / r2d,
                r4s * 1e3,
                r4d * 1e3,
                r4s / r4d,
            );
            out.push(json!({"ablation": "knomial_radix", "n": n,
                            "radix2_single": r2s, "radix2_dynamic": r2d,
                            "radix4_single": r4s, "radix4_dynamic": r4d}));
        }
    }

    // ---- 6. calibration sensitivity --------------------------------------
    println!("\n== ablation 6: calibration-error regret (Beluga 3_GPUs, 64 MB) ==");
    let paths3 = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS).unwrap();
    let true_params = extract_all(&topo, &paths3).unwrap();
    let to_laws = |params: &[mpx_topo::PathParams]| -> Vec<mpx_model::OmegaDelta> {
        params
            .iter()
            .map(|p| mpx_model::OmegaDelta {
                omega: p.omega_unpipelined(),
                delta: p.delta_unpipelined(),
            })
            .collect()
    };
    let true_laws = to_laws(&true_params);
    print!("second-leg beta error:");
    for delta in [-0.5, -0.25, -0.1, 0.1, 0.25, 0.5] {
        let perturbed =
            mpx_model::perturb(&true_params, mpx_model::Perturb::SecondLegBandwidth, delta);
        let r = mpx_model::regret(&true_laws, &to_laws(&perturbed), (64 * MIB) as f64);
        print!("  {:+.0}%:{:.2}%", delta * 100.0, r * 100.0);
        out.push(json!({"ablation": "sensitivity", "delta": delta, "regret": r}));
    }
    println!();

    // ---- 7. DGX-1 staged-only pair (no direct link) ----------------------
    println!("\n== ablation 7: DGX-1 unlinked pair gpu0 -> gpu5 (staged-only) ==");
    {
        use mpx_gpu::GpuRuntime;
        use mpx_sim::Engine;
        use mpx_ucx::{UcxConfig, UcxContext};
        let dgx = Arc::new(presets::dgx1());
        let gpus = dgx.gpus();
        let n = 128 * MIB;
        print!("paths:");
        for staged in [1usize, 2, 3] {
            let sel = PathSelection {
                max_gpu_staged: staged,
                host_staged: false,
            };
            let ctx = UcxContext::new(
                GpuRuntime::new(Engine::new(dgx.clone())),
                UcxConfig {
                    selection: sel,
                    ..UcxConfig::default()
                },
            );
            let src = ctx.runtime().alloc(gpus[0], n);
            let dst = ctx.runtime().alloc(gpus[5], n);
            ctx.put_async(&src, &dst, n).unwrap();
            ctx.runtime().engine().run_until_idle();
            let t0 = ctx.runtime().engine().now();
            ctx.put_async(&src, &dst, n).unwrap();
            ctx.runtime().engine().run_until_idle();
            let bw = n as f64 / ctx.runtime().engine().now().secs_since(t0);
            print!("  {staged}:{:.1}GB/s", bw / 1e9);
            out.push(json!({"ablation": "dgx_unlinked", "staged_paths": staged, "bandwidth": bw}));
        }
        println!("  (pair has no direct NVLink; every byte is staged)");
    }

    emit_json("ablations", &out);
}
