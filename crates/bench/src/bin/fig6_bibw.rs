//! Figure 6: OMB bidirectional bandwidth on Beluga and Narval — the same
//! 12-panel grid as Figure 5, measured with simultaneous opposing
//! transfers. Host-staged panels show the contention degradation of
//! Observation 5 (the model's 2× prediction ignores the shared DRAM/UPI
//! resources, so its BIBW error is visibly larger).

use mpx_bench::{emit_json, full_run, paper_sizes, print_panel};
use mpx_omb::{mean_relative_error, p2p_panel, P2pKind};
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

fn main() {
    let sizes = paper_sizes();
    let grid = if full_run() { 8 } else { 6 };
    let mut all = Vec::new();
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for (sel_label, sel) in PathSelection::paper_grid() {
            for window in [1usize, 16] {
                let panel = p2p_panel(&topo, P2pKind::Bibw, sel, window, &sizes, grid);
                let title = format!("Fig 6 BIBW {cluster} {sel_label} win={window}");
                print_panel(&title, &panel, 1e9, "GB/s");
                let mut observed = panel[1].clone();
                for (p, d) in observed.points.iter_mut().zip(&panel[2].points) {
                    p.value = p.value.max(d.value);
                }
                let err = mean_relative_error(&observed, &panel[3], 4 << 20);
                println!("   mean prediction error (n > 4MB): {:.1}%", err * 100.0);
                all.push((title, panel));
            }
        }
    }
    emit_json("fig6_bibw", &all);
}
