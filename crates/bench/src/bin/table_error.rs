//! Headline numbers (paper Abstract + Section 5):
//!
//! * mean model-prediction error vs the observed optimum for messages
//!   larger than 4 MB — the paper reports <6% for BW, ~8% for BIBW;
//! * maximum P2P speedup of multi-path over the direct path (paper: up
//!   to 2.9×) and maximum collective speedup (paper: up to 1.4×);
//! * Algorithm-1 runtime overhead relative to the transfer it configures
//!   (paper: <0.1% for large messages).

use mpx_bench::{emit_json, paper_sizes};
use mpx_model::Planner;
use mpx_omb::{
    collective_panel, mean_relative_error, p2p_panel, CollectiveConfig, CollectiveKind, P2pKind,
};
use mpx_topo::{presets, PathSelection};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct HeadlineRow {
    cluster: String,
    selection: String,
    bw_error_pct: f64,
    bibw_error_pct: f64,
    max_p2p_speedup: f64,
}

fn main() {
    let sizes = paper_sizes();
    let mut rows = Vec::new();
    let mut worst_bw_error: f64 = 0.0;
    let mut best_p2p: f64 = 0.0;

    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for (sel_label, sel) in PathSelection::paper_grid() {
            let bw = p2p_panel(&topo, P2pKind::Bw, sel, 1, &sizes, 6);
            let bibw = p2p_panel(&topo, P2pKind::Bibw, sel, 1, &sizes, 6);
            let observed = |panel: &[mpx_omb::Series]| {
                let mut o = panel[1].clone();
                for (p, d) in o.points.iter_mut().zip(&panel[2].points) {
                    p.value = p.value.max(d.value);
                }
                o
            };
            let bw_err = mean_relative_error(&observed(&bw), &bw[3], 4 << 20);
            let bibw_err = mean_relative_error(&observed(&bibw), &bibw[3], 4 << 20);
            let speedup = bw[2]
                .points
                .iter()
                .zip(&bw[0].points)
                .map(|(d, b)| d.value / b.value)
                .fold(0.0f64, f64::max);
            worst_bw_error = worst_bw_error.max(bw_err);
            best_p2p = best_p2p.max(speedup);
            println!(
                "{cluster:>7} {sel_label:>14}: BW err {:>5.1}%  BIBW err {:>5.1}%  max P2P speedup {:.2}x",
                bw_err * 100.0,
                bibw_err * 100.0,
                speedup
            );
            rows.push(HeadlineRow {
                cluster: cluster.into(),
                selection: sel_label.into(),
                bw_error_pct: bw_err * 100.0,
                bibw_error_pct: bibw_err * 100.0,
                max_p2p_speedup: speedup,
            });
        }
    }

    // Collective headline (3_GPUs, both clusters, both collectives).
    let coll_cfg = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };
    let mut best_coll: f64 = 0.0;
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for (label, kind) in [
            ("alltoall", CollectiveKind::Alltoall),
            ("allreduce", CollectiveKind::Allreduce),
        ] {
            let panel = collective_panel(&topo, kind, PathSelection::THREE_GPUS, &sizes, coll_cfg);
            let best = panel[1]
                .points
                .iter()
                .map(|p| p.value)
                .fold(0.0f64, f64::max);
            best_coll = best_coll.max(best);
            println!("{cluster:>7} {label:>10}: max dynamic speedup {best:.2}x");
        }
    }

    // Algorithm-1 overhead: wall-clock cost of an uncached plan vs the
    // virtual duration of the transfer it configures.
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let n = 64 << 20;
    // Vary n to defeat the plan cache: with quantization off (the
    // default here) every distinct size is a miss, so this times the
    // production miss path — pair memo lookup + the Eq. 24 share solve —
    // without re-measuring planner construction each rep.
    let planner = Planner::new(topo.clone());
    let t0 = Instant::now();
    let reps = 1000;
    for i in 0..reps {
        let _ = planner
            .plan(
                gpus[0],
                gpus[1],
                n + i * 4,
                PathSelection::THREE_GPUS_WITH_HOST,
            )
            .unwrap();
    }
    let plan_cost = t0.elapsed().as_secs_f64() / reps as f64;
    let planner = Planner::new(topo.clone());
    let plan = planner
        .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
        .unwrap();
    let overhead_pct = plan_cost / plan.predicted_time * 100.0;

    println!("\n---- headline summary ----");
    println!(
        "worst mean BW prediction error (n>4MB): {:.1}%  (paper: <6%)",
        worst_bw_error * 100.0
    );
    println!("max P2P speedup over direct path:       {best_p2p:.2}x (paper: up to 2.9x)");
    println!("max collective speedup:                 {best_coll:.2}x (paper: up to 1.4x)");
    println!(
        "Algorithm-1 cost per uncached plan:     {:.2} us = {:.4}% of a 64MB transfer (paper: <0.1%)",
        plan_cost * 1e6,
        overhead_pct
    );

    #[derive(Serialize)]
    struct Summary {
        rows: Vec<HeadlineRow>,
        worst_bw_error_pct: f64,
        max_p2p_speedup: f64,
        max_collective_speedup: f64,
        algorithm1_cost_us: f64,
        algorithm1_overhead_pct: f64,
    }
    emit_json(
        "table_error",
        &Summary {
            rows,
            worst_bw_error_pct: worst_bw_error * 100.0,
            max_p2p_speedup: best_p2p,
            max_collective_speedup: best_coll,
            algorithm1_cost_us: plan_cost * 1e6,
            algorithm1_overhead_pct: overhead_pct,
        },
    );
}
