//! Broker saturation bench: open-loop multi-tenant load against the
//! admission-controlled transfer broker.
//!
//! Three phases, each on a fresh fabric:
//!
//! 1. **Unloaded** — the weighted tenant mix at 0.2× the pair's modeled
//!    capacity: the latency baseline.
//! 2. **Saturated** — the same mix at 2× capacity plus a zero-weight
//!    scavenger: the broker must shed (typed reasons, bounded queues),
//!    keep admitted-request p99 within 2× the unloaded p99, and hand
//!    each weighted tenant goodput proportional to its weight.
//! 3. **Burst** — a best-effort tenant flooding loose-deadline requests:
//!    queue occupancy must walk the regime machine into Shedding (and
//!    back), with regime sheds recorded.
//!
//! Usage:
//!   bench_broker                 # full run, writes results/BENCH_broker.json
//!   bench_broker --quick         # short CI smoke: gates only, no artifact
//!
//! Exit code 1 when any gate fails.

use mpx_bench::emit_json;
use mpx_broker::{Broker, BrokerConfig, BrokerStats, DeadlinePolicy, TenantSpec};
use mpx_gpu::GpuRuntime;
use mpx_omb::{run_open_loop, OpenLoopReport, OpenLoopTenant};
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_ucx::{UcxConfig, UcxContext};
use serde_json::json;
use std::sync::Arc;

/// Mean request size of every tenant (bytes); sizes are Pareto around
/// this.
const MEAN_BYTES: usize = 4 << 20;
/// Weighted tenant mix: name and fair-share weight.
const MIX: [(&str, f64); 3] = [("gold", 3.0), ("silver", 2.0), ("bronze", 1.0)];

/// A fresh fabric + broker. `admission_slack` bounds the modeled
/// sojourn of admitted requests as a multiple of the prediction.
fn fresh_broker(admission_slack: f64) -> (Arc<Broker>, Vec<mpx_topo::DeviceId>) {
    let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
    let ctx = UcxContext::new(rt, UcxConfig::default());
    let gpus = ctx.runtime().engine().topology().gpus();
    let mut tenants: Vec<TenantSpec> = MIX.iter().map(|(n, w)| TenantSpec::new(*n, *w)).collect();
    tenants.push(TenantSpec::new("scav", 0.0));
    let cfg = BrokerConfig {
        admission: DeadlinePolicy::new(admission_slack, 1e-6),
        ..BrokerConfig::default()
    };
    (Broker::new(ctx, cfg, tenants), gpus)
}

/// The pair's modeled capacity in requests of the mean size per second:
/// the reciprocal of the predicted completion time (latency terms
/// included), not the asymptotic bandwidth, so load factors mean what
/// they say.
fn capacity_hz(broker: &Broker, src: mpx_topo::DeviceId, dst: mpx_topo::DeviceId) -> f64 {
    let plan = broker
        .context()
        .plan_for(src, dst, MEAN_BYTES)
        .expect("plan for mean size");
    1.0 / plan.predicted_time.max(1e-12)
}

/// Runs the weighted mix at `load` × capacity (split evenly across the
/// weighted tenants), optionally with the scavenger riding along at
/// 0.2× capacity.
fn run_mix(
    load: f64,
    horizon: f64,
    with_scavenger: bool,
    seed: u64,
) -> (Vec<OpenLoopReport>, BrokerStats) {
    let (broker, gpus) = fresh_broker(2.2);
    let cap = capacity_hz(&broker, gpus[0], gpus[1]);
    let mut specs: Vec<OpenLoopTenant> = MIX
        .iter()
        .map(|(name, _)| OpenLoopTenant {
            name: (*name).to_string(),
            rate_hz: load * cap / MIX.len() as f64,
            mean_bytes: MEAN_BYTES,
            deadline: None,
        })
        .collect();
    if with_scavenger {
        specs.push(OpenLoopTenant {
            name: "scav".to_string(),
            rate_hz: 0.2 * cap,
            mean_bytes: MEAN_BYTES,
            deadline: None,
        });
    }
    let reports = run_open_loop(&broker, gpus[0], gpus[1], &specs, horizon, seed);
    (reports, broker.stats())
}

/// Burst phase: a best-effort tenant floods loose-deadline requests at
/// 4× capacity so occupancy, not deadlines, is what pushes back — the
/// regime machine must engage.
fn run_burst(horizon: f64, seed: u64) -> (Vec<OpenLoopReport>, BrokerStats) {
    let (broker, gpus) = fresh_broker(2.2);
    let cap = capacity_hz(&broker, gpus[0], gpus[1]);
    let specs = vec![
        OpenLoopTenant {
            name: "gold".to_string(),
            rate_hz: 0.5 * cap,
            mean_bytes: MEAN_BYTES,
            deadline: None,
        },
        OpenLoopTenant {
            name: "scav".to_string(),
            rate_hz: 4.0 * cap,
            mean_bytes: MEAN_BYTES,
            deadline: Some(1e3), // effectively no deadline: occupancy gates
        },
    ];
    let reports = run_open_loop(&broker, gpus[0], gpus[1], &specs, horizon, seed);
    (reports, broker.stats())
}

/// Pools every completed-request sojourn across reports and returns the
/// `q` quantile.
fn pooled_quantile<'a>(
    reports: impl IntoIterator<Item = &'a OpenLoopReport>,
    q: f64,
) -> Option<f64> {
    let mut all: Vec<f64> = reports
        .into_iter()
        .flat_map(|r| r.latencies.iter().copied())
        .collect();
    if all.is_empty() {
        return None;
    }
    all.sort_by(f64::total_cmp);
    let idx = ((all.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(all[idx])
}

fn report_json(r: &OpenLoopReport) -> serde_json::Value {
    json!({
        "tenant": r.name.clone(),
        "submitted": r.submitted,
        "admitted": r.admitted,
        "shed": r.shed,
        "completed": r.completed,
        "failed": r.failed,
        "completed_bytes": r.completed_bytes,
        "shed_rate": r.shed_rate(),
        "p50_s": r.latency_quantile(0.50),
        "p99_s": r.latency_quantile(0.99),
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let horizon = if quick { 0.03 } else { 0.30 };
    let mut failures: Vec<String> = Vec::new();

    println!("== broker saturation bench (horizon {horizon}s/phase) ==");

    // Phase 1: unloaded baseline.
    let (unloaded, ustats) = run_mix(0.2, horizon, false, 0xb10c);
    let p99_unloaded = pooled_quantile(&unloaded, 0.99).expect("unloaded completions");
    println!(
        "unloaded:  {} completed, p50 {:.1}us p99 {:.1}us",
        ustats.completed,
        pooled_quantile(&unloaded, 0.50).unwrap() * 1e6,
        p99_unloaded * 1e6
    );

    // Phase 2: 2x capacity + scavenger. The latency gates pool the
    // *weighted* tenants: the zero-weight scavenger is best-effort by
    // contract and its sojourn is unbounded by design.
    let (saturated, sstats) = run_mix(2.0, horizon, true, 0x54a7);
    let weighted: Vec<&OpenLoopReport> = saturated.iter().filter(|r| r.name != "scav").collect();
    let p50 = pooled_quantile(weighted.iter().copied(), 0.50).unwrap_or(f64::NAN);
    let p99 = pooled_quantile(weighted.iter().copied(), 0.99).unwrap_or(f64::NAN);
    let p999 = pooled_quantile(weighted.iter().copied(), 0.999).unwrap_or(f64::NAN);
    println!(
        "saturated: {} completed, p50 {:.1}us p99 {:.1}us p999 {:.1}us; shed {} \
         (queue-full {}, deadline {}, regime {})",
        sstats.completed,
        p50 * 1e6,
        p99 * 1e6,
        p999 * 1e6,
        sstats.shed_total(),
        sstats.shed_queue_full,
        sstats.shed_deadline,
        sstats.shed_regime
    );

    // Gate: explicit shedding at 2x capacity, books balanced, queues
    // bounded.
    if sstats.shed_total() == 0 {
        failures.push("no sheds at 2x capacity".to_string());
    }
    for (label, s) in [("unloaded", &ustats), ("saturated", &sstats)] {
        if !s.accounting_ok() {
            failures.push(format!("{label}: submission ledger unbalanced: {s:?}"));
        }
        if !s.drained_ok() {
            failures.push(format!("{label}: tickets left unresolved: {s:?}"));
        }
        if s.queue_peak > 64 {
            failures.push(format!("{label}: queue grew past its bound: {s:?}"));
        }
    }

    // Gate: admitted-request p99 within 2x the unloaded p99.
    let p99_ratio = p99 / p99_unloaded;
    println!("p99 ratio saturated/unloaded: {p99_ratio:.2}x (gate: <= 2.0x)");
    // NaN-safe: a NaN ratio (no samples) must also fail the gate.
    if p99_ratio.is_nan() || p99_ratio > 2.0 {
        failures.push(format!(
            "admitted p99 {:.1}us exceeds 2x unloaded p99 {:.1}us",
            p99 * 1e6,
            p99_unloaded * 1e6
        ));
    }

    // Gate: weighted-tenant goodput tracks configured weights within
    // 10% (relative, on capacity shares). The quick smoke completes
    // only a couple hundred heavy-tailed requests, far too few for the
    // shares to converge that tightly, so it gates at 25% instead —
    // the real bound is asserted by the full run.
    let goodput_tol = if quick { 0.25 } else { 0.10 };
    let weight_sum: f64 = MIX.iter().map(|(_, w)| w).sum();
    let goodput_total: u64 = saturated
        .iter()
        .filter(|r| r.name != "scav")
        .map(|r| r.completed_bytes)
        .sum();
    println!("goodput shares at 2x capacity:");
    for (name, w) in MIX {
        let r = saturated
            .iter()
            .find(|r| r.name == name)
            .expect("tenant report");
        let got = r.completed_bytes as f64 / goodput_total.max(1) as f64;
        let want = w / weight_sum;
        let err = (got - want).abs() / want;
        println!(
            "  {name:>7}: {got:.3} (want {want:.3}, err {:.1}%)",
            err * 100.0
        );
        if err > goodput_tol {
            failures.push(format!(
                "tenant {name} goodput share {got:.3} deviates >{:.0}% from weight share {want:.3}",
                goodput_tol * 100.0
            ));
        }
    }

    // Phase 3: occupancy-driven regimes.
    let (burst, bstats) = run_burst(horizon, 0xbeef);
    println!(
        "burst:     regime changes {}, regime sheds {}, queue peak {}",
        bstats.regime_changes, bstats.shed_regime, bstats.queue_peak
    );
    if bstats.regime_changes < 2 {
        failures.push(format!(
            "burst phase never walked the regime machine: {bstats:?}"
        ));
    }
    if bstats.shed_regime == 0 {
        failures.push("burst phase recorded no regime sheds".to_string());
    }
    if !bstats.accounting_ok() || !bstats.drained_ok() {
        failures.push(format!("burst: accounting violated: {bstats:?}"));
    }

    if quick {
        println!("[--quick: skipping results/BENCH_broker.json]");
    } else {
        let payload = json!({
            "mean_bytes": MEAN_BYTES,
            "horizon_s": horizon,
            "mix": MIX.iter().map(|(n, w)| json!({"tenant": n, "weight": w})).collect::<Vec<_>>(),
            "unloaded": json!({
                "p50_s": pooled_quantile(&unloaded, 0.50),
                "p99_s": p99_unloaded,
                "tenants": unloaded.iter().map(report_json).collect::<Vec<_>>(),
            }),
            "saturated": json!({
                "load_factor": 2.0,
                "p50_s": p50,
                "p99_s": p99,
                "p999_s": p999,
                "p99_ratio_vs_unloaded": p99_ratio,
                "shed": json!({
                    "total": sstats.shed_total(),
                    "queue_full": sstats.shed_queue_full,
                    "deadline": sstats.shed_deadline,
                    "regime": sstats.shed_regime,
                }),
                "dispatches": sstats.dispatches,
                "coalesced": sstats.coalesced,
                "queue_peak": sstats.queue_peak,
                "tenants": saturated.iter().map(report_json).collect::<Vec<_>>(),
            }),
            "burst": json!({
                "regime_changes": bstats.regime_changes,
                "shed_regime": bstats.shed_regime,
                "queue_peak": bstats.queue_peak,
                "tenants": burst.iter().map(report_json).collect::<Vec<_>>(),
            }),
            "gates": json!({
                "shed_at_2x": sstats.shed_total() > 0,
                "p99_within_2x": p99_ratio <= 2.0,
                "goodput_tracks_weights": !failures.iter().any(|f| f.contains("goodput")),
                "regimes_engage": bstats.regime_changes >= 2,
            }),
        });
        emit_json("BENCH_broker", &payload);
    }

    if !failures.is_empty() {
        eprintln!("\nbench_broker FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("bench_broker: all gates passed");
}
