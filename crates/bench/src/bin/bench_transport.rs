//! Transport planning-throughput tracker: plans served per second when N
//! rank threads hammer one shared `UcxContext`, across the workloads the
//! plan cache must survive (steady-state hits, irregular size sweeps,
//! drift-triggered invalidation churn). Writes
//! `results/BENCH_transport.json` so the hot path's perf trajectory is
//! visible PR over PR.
//!
//! Usage:
//!   bench_transport                 # measure, write BENCH_transport.json
//!   bench_transport --quick         # short run + CI gate: fails on a zero
//!                                   # cache-hit rate or on a throughput
//!                                   # regression beyond a generous
//!                                   # threshold vs the committed baseline
//!   MPX_BENCH_SAVE_BASELINE=1 bench_transport
//!                                   # additionally snapshot the numbers as
//!                                   # BENCH_transport_baseline.json
//!
//! If `results/BENCH_transport_baseline.json` exists, its runs are
//! embedded in BENCH_transport.json under `"before"` with per-cell
//! speedups, so a single artifact records the before/after comparison.

use mpx_gpu::GpuRuntime;
use mpx_model::{PlannerConfig, SizeClassConfig};
use mpx_obs::FlightRecorder;
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::DeviceId;
use mpx_ucx::{ParamSource, TuningMode, UcxConfig, UcxContext};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// One benchmark cell.
struct Phase {
    /// Row label, stable across before/after runs.
    name: &'static str,
    params: ParamSource,
    /// Distinct sizes cycled per thread (small set = steady-state hits,
    /// large set = every plan is a new size).
    distinct_sizes: usize,
    /// Invalidate the thread's pair every this many plans (0 = never).
    churn_every: usize,
}

const PHASES: [Phase; 5] = [
    Phase {
        name: "datasheet_hit",
        params: ParamSource::Datasheet,
        distinct_sizes: 8,
        churn_every: 0,
    },
    Phase {
        name: "datasheet_sweep",
        params: ParamSource::Datasheet,
        distinct_sizes: usize::MAX,
        churn_every: 0,
    },
    Phase {
        name: "probed_hit",
        params: ParamSource::Probed,
        distinct_sizes: 8,
        churn_every: 0,
    },
    Phase {
        name: "probed_sweep",
        params: ParamSource::Probed,
        distinct_sizes: usize::MAX,
        churn_every: 0,
    },
    Phase {
        name: "probed_churn",
        params: ParamSource::Probed,
        distinct_sizes: usize::MAX,
        churn_every: 64,
    },
];

/// The cell the CI gate and the headline speedup look at.
const HEADLINE: &str = "datasheet_sweep";

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: usize = if quick { 300 } else { 20_000 };
    // Best-of-N absorbs scheduler noise (the full run feeds the committed
    // speedup table; quick mode is a smoke gate and keeps one rep).
    let reps: usize = if quick { 1 } else { 3 };

    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    // Eight distinct ordered pairs so per-pair state is exercised from
    // every thread without aliasing at 8 threads.
    let pairs: Vec<(DeviceId, DeviceId)> = (0..gpus.len())
        .flat_map(|i| {
            (0..gpus.len())
                .filter(move |&j| j != i)
                .map(move |j| (i, j))
        })
        .map(|(i, j)| (gpus[i], gpus[j]))
        .take(8)
        .collect();

    println!(
        "{:>16} {:>8} {:>10} {:>10} {:>14} {:>9} {:>9} {:>7}",
        "phase", "threads", "plans", "ms", "plans/s", "hits", "misses", "inval"
    );
    let mut runs: Vec<Value> = Vec::new();
    for phase in &PHASES {
        for &threads in &THREAD_COUNTS {
            let r = (0..reps)
                .map(|_| measure(&topo, phase, &pairs, threads, iters))
                .max_by(|a, b| {
                    (a.plans as f64 / a.seconds)
                        .partial_cmp(&(b.plans as f64 / b.seconds))
                        .expect("finite rates")
                })
                .expect("at least one rep");
            println!(
                "{:>16} {:>8} {:>10} {:>10.2} {:>14.0} {:>9} {:>9} {:>7}",
                phase.name,
                threads,
                r.plans,
                r.seconds * 1e3,
                r.plans as f64 / r.seconds,
                r.hits,
                r.misses,
                r.invalidations
            );
            runs.push(json!({
                "phase": phase.name,
                "threads": threads,
                "plans": r.plans,
                "seconds": r.seconds,
                "plans_per_sec": r.plans as f64 / r.seconds,
                "hits": r.hits,
                "misses": r.misses,
                "class_hits": r.class_hits,
                "class_fallbacks": r.class_fallbacks,
                "invalidations": r.invalidations,
            }));
        }
    }

    verify_transfer_integrity(&topo);

    let replay_report = bench_replay(&topo, quick);
    let flight_cell = flight_recorder_overhead_cell(&topo, quick);

    let baseline = read_baseline();
    let report = match &baseline {
        Some(before) => {
            print_speedups(before, &runs);
            json!({ "before": before.clone(), "after": runs, "flight_recorder": flight_cell })
        }
        None => json!({ "after": runs, "flight_recorder": flight_cell }),
    };
    if quick {
        // Smoke mode gates against the committed artifact and must not
        // overwrite it with short-run numbers.
        gate(&report);
        gate_replay(&replay_report);
        gate_flight_recorder(&report["flight_recorder"]);
    } else {
        mpx_bench::emit_json("BENCH_transport", &report);
        mpx_bench::emit_json("BENCH_replay", &replay_report);
        if std::env::var("MPX_BENCH_SAVE_BASELINE").is_ok_and(|v| v == "1") {
            mpx_bench::emit_json("BENCH_transport_baseline", &report["after"]);
        }
    }
}

/// Issue-side PUT throughput of the compiled-graph replay path against
/// the per-transfer interpreted pipeline, on the repeated-same-size
/// workload graphs exist for. Only the `put_*` call is timed — the
/// simulated bytes drain between iterations — so the measured quantity
/// is the CPU cost of standing up one transfer: plan lookup plus either
/// a full interpret (streams, events, staging, chunk-loop wiring) or a
/// pointer-patched replay.
fn bench_replay(topo: &Arc<mpx_topo::Topology>, quick: bool) -> Value {
    let iters: usize = if quick { 200 } else { 2_000 };
    let reps: usize = if quick { 1 } else { 3 };
    let n = 32 * MIB;

    println!(
        "\n{:>16} {:>10} {:>10} {:>14} {:>9} {:>9} {:>9}",
        "replay bench", "puts", "ms", "puts/s", "captures", "replays", "fallback"
    );
    let mut rows: Vec<Value> = Vec::new();
    let mut rates = [0.0f64; 2];
    for (slot, replayed) in [(0, false), (1, true)] {
        let r = (0..reps)
            .map(|_| measure_replay(topo, replayed, n, iters))
            .max_by(|a, b| {
                (a.puts as f64 / a.issue_seconds)
                    .partial_cmp(&(b.puts as f64 / b.issue_seconds))
                    .expect("finite rates")
            })
            .expect("at least one rep");
        let rate = r.puts as f64 / r.issue_seconds;
        rates[slot] = rate;
        let name = if replayed { "replayed" } else { "interpreted" };
        println!(
            "{name:>16} {:>10} {:>10.2} {rate:>14.0} {:>9} {:>9} {:>9}",
            r.puts,
            r.issue_seconds * 1e3,
            r.captures,
            r.replays,
            r.fallbacks
        );
        rows.push(json!({
            "mode": name,
            "bytes": n,
            "puts": r.puts,
            "issue_seconds": r.issue_seconds,
            "puts_per_sec": rate,
            "captures": r.captures,
            "replays": r.replays,
            "fallbacks": r.fallbacks,
        }));
    }
    let speedup = rates[1] / rates[0];
    println!("{:>16} {speedup:>10.2}x", "replay speedup");
    json!({ "runs": rows, "speedup": speedup })
}

/// Always-on overhead cell: the same interpreted-put workload (issue +
/// simulated drain, where every chunk leg, transfer span, and histogram
/// observation lands) with and without a [`FlightRecorder`] ring
/// installed. The quick gate bounds the on/off gap at 5%.
fn flight_recorder_overhead_cell(topo: &Arc<mpx_topo::Topology>, quick: bool) -> Value {
    let iters: usize = if quick { 60 } else { 400 };
    let reps: usize = if quick { 5 } else { 3 };
    let n = 8 * MIB;

    let run_once = |flight: bool| -> f64 {
        let ctx = UcxContext::new(
            GpuRuntime::new(Engine::new(topo.clone())),
            UcxConfig::default(),
        );
        if flight {
            ctx.runtime()
                .engine()
                .set_recorder(FlightRecorder::default().recorder());
        }
        let gpus = ctx.runtime().engine().topology().gpus();
        let data: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
        let src = ctx.runtime().alloc_bytes(gpus[0], data);
        let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
        for _ in 0..2 {
            let h = ctx.put_async(&src, &dst, n).expect("warmup put");
            ctx.runtime().engine().run_until_idle();
            assert!(h.is_complete());
        }
        let start = Instant::now();
        for _ in 0..iters {
            let h = ctx.put_async(&src, &dst, n).expect("put");
            ctx.runtime().engine().run_until_idle();
            std::hint::black_box(&h);
        }
        start.elapsed().as_secs_f64()
    };
    // Interleave the arms rep by rep so a slow scheduling window hits
    // both equally; each arm keeps its best.
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        off = off.min(run_once(false));
        on = on.min(run_once(true));
    }
    let pct = (on - off) / off * 100.0;
    println!(
        "\nflight recorder overhead ({iters} puts x {} MiB): off {:.2} ms, on {:.2} ms ({pct:+.2}%)",
        n / MIB,
        off * 1e3,
        on * 1e3
    );
    json!({
        "puts": iters,
        "bytes": n,
        "recorder_off_secs": off,
        "recorder_on_secs": on,
        "overhead_pct": pct
    })
}

/// CI gate for the overhead cell (`--quick`): always-on must stay ≤ 5%.
fn gate_flight_recorder(cell: &Value) {
    let pct = cell["overhead_pct"].as_f64().expect("overhead pct");
    if pct > 5.0 {
        eprintln!("bench_transport gate: flight recorder costs {pct:.2}% (> 5%)");
        std::process::exit(1);
    }
    println!("bench_transport gate: ok (flight recorder overhead {pct:+.2}%)");
}

struct ReplayResult {
    puts: u64,
    issue_seconds: f64,
    captures: u64,
    replays: u64,
    fallbacks: u64,
}

fn measure_replay(
    topo: &Arc<mpx_topo::Topology>,
    replayed: bool,
    n: usize,
    iters: usize,
) -> ReplayResult {
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: ParamSource::Datasheet,
            ..UcxConfig::default()
        },
    );
    let gpus = ctx.runtime().engine().topology().gpus();
    // Real payload, as production transfers move: the interpreted
    // pipeline then stands up a real staging ring per put, while the
    // graph amortizes its persistent ring across replays.
    let data: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data);
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let put = |ctx: &UcxContext| {
        if replayed {
            ctx.put_replayed(&src, &dst, n).expect("replayed put")
        } else {
            ctx.put_async(&src, &dst, n).expect("interpreted put")
        }
    };
    // Warmup: plan cache, path enumeration, IPC open, and (replay mode)
    // the one-time graph capture all land off the timed path.
    for _ in 0..2 {
        let h = put(&ctx);
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
    }

    let mut issue = std::time::Duration::ZERO;
    for _ in 0..iters {
        let t = Instant::now();
        let h = put(&ctx);
        issue += t.elapsed();
        std::hint::black_box(&h);
        ctx.runtime().engine().run_until_idle();
    }
    let g = ctx.graph_stats();
    ReplayResult {
        puts: iters as u64,
        issue_seconds: issue.as_secs_f64(),
        captures: g.captures,
        replays: g.replays,
        fallbacks: g.fallbacks,
    }
}

/// CI gate for the replay cells (`--quick`): the compiled path must not
/// be slower to issue than the interpreted pipeline it bypasses, and
/// must actually have replayed (capture working, no silent fallback).
fn gate_replay(report: &Value) {
    let speedup = report["speedup"].as_f64().expect("replay speedup");
    let replays = report["runs"]
        .as_array()
        .and_then(|rows| rows.iter().find(|r| r["mode"] == "replayed"))
        .and_then(|r| r["replays"].as_u64())
        .unwrap_or(0);
    if replays == 0 {
        eprintln!("bench_transport gate: replay cell never replayed a graph");
        std::process::exit(1);
    }
    if speedup < 1.0 {
        eprintln!("bench_transport gate: replayed puts slower than interpreted ({speedup:.2}x)");
        std::process::exit(1);
    }
    println!("bench_transport gate: ok (replay speedup {speedup:.2}x)");
}

struct PhaseResult {
    plans: u64,
    seconds: f64,
    hits: u64,
    misses: u64,
    class_hits: u64,
    class_fallbacks: u64,
    invalidations: u64,
}

/// The `i`-th size a thread plans: cycled from a small fixed set for hit
/// phases, or an irregular walk over [4 MiB, 256 MiB) for sweeps. Every
/// size is 4-byte aligned and unique per (thread, iteration) in sweep
/// mode, so a sweep is all-distinct by construction.
fn size_at(thread: usize, i: usize, distinct: usize) -> usize {
    let k = if distinct == usize::MAX {
        i
    } else {
        i % distinct
    };
    let span = 252 * MIB / 4;
    4 * MIB + 4 * ((k * 37987 + thread * 104729) % span)
}

fn measure(
    topo: &Arc<mpx_topo::Topology>,
    phase: &Phase,
    pairs: &[(DeviceId, DeviceId)],
    threads: usize,
    iters: usize,
) -> PhaseResult {
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: phase.params,
            // The configuration under test: size-class plan reuse on
            // (the production default keeps it off for bit-exact figure
            // reproduction; the ε guard bounds the modeling error here).
            planner: PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
            ..UcxConfig::default()
        },
    );
    // Warmup: touch every pair once so path enumeration / probing and
    // (for hit phases) the first-size plan are off the timed path.
    for t in 0..threads {
        let (src, dst) = pairs[t % pairs.len()];
        ctx.plan_for(src, dst, size_at(t, 0, phase.distinct_sizes))
            .expect("warmup plan");
    }

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ctx = ctx.clone();
            let (src, dst) = pairs[t % pairs.len()];
            let churn = phase.churn_every;
            let distinct = phase.distinct_sizes;
            scope.spawn(move || {
                for i in 0..iters {
                    let n = size_at(t, i, distinct);
                    let plan = ctx.plan_for(src, dst, n).expect("plan");
                    std::hint::black_box(&plan);
                    if churn != 0 && i % churn == churn - 1 {
                        // An observation 10x off the prediction always
                        // exceeds the drift tolerance.
                        ctx.record_observation(src, dst, n, plan.predicted_bandwidth * 10.0);
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();

    let stats = ctx.cache_stats();
    PhaseResult {
        plans: (threads * iters) as u64,
        seconds,
        hits: stats.hits,
        misses: stats.misses,
        class_hits: stats.class_hits,
        class_fallbacks: stats.class_fallbacks,
        invalidations: stats.invalidations,
    }
}

/// One end-to-end put through the benched configuration: the cache layer
/// must never change what lands in the destination buffer.
fn verify_transfer_integrity(topo: &Arc<mpx_topo::Topology>) {
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig::default(),
    );
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 8 * MIB + 12345;
    let data: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let h = ctx.put_async(&src, &dst, n).expect("put");
    ctx.runtime().engine().run_until_idle();
    assert!(h.is_complete());
    assert_eq!(dst.to_vec().expect("readback"), data, "transfer corrupted");
    // The replay fast path must land the very same bytes (capture, then
    // a replay of the captured graph).
    for round in 0..2 {
        let dst_r = ctx.runtime().alloc_zeroed(gpus[1], n);
        let h = ctx.put_replayed(&src, &dst_r, n).expect("replayed put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(
            dst_r.to_vec().expect("readback"),
            data,
            "replayed transfer corrupted (round {round})"
        );
    }
    let g = ctx.graph_stats();
    assert_eq!(
        (g.captures, g.replays),
        (1, 2),
        "replay path inactive: {g:?}"
    );
    println!("integrity: {n}-byte put bit-identical (interpreted and replayed)");
}

fn read_baseline() -> Option<Vec<Value>> {
    let path = mpx_bench::results_dir().join("BENCH_transport_baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    v.as_array().cloned()
}

fn cell<'a>(rows: &'a [Value], phase: &str, threads: u64) -> Option<&'a Value> {
    rows.iter()
        .find(|r| r["phase"] == phase && r["threads"].as_u64() == Some(threads))
}

fn print_speedups(before: &[Value], after: &[Value]) {
    println!("\n{:>16} {:>8} {:>10}", "phase", "threads", "speedup");
    for b in before {
        let (Some(phase), Some(threads)) = (b["phase"].as_str(), b["threads"].as_u64()) else {
            continue;
        };
        if let Some(a) = cell(after, phase, threads) {
            if let (Some(rb), Some(ra)) = (b["plans_per_sec"].as_f64(), a["plans_per_sec"].as_f64())
            {
                println!("{phase:>16} {threads:>8} {:>9.2}x", ra / rb);
            }
        }
    }
}

/// CI gate (`--quick`): the current run must show a live cache (nonzero
/// hits in the steady-state phase) and must not regress throughput beyond
/// a generous threshold against the numbers committed in
/// `results/BENCH_transport.json`.
fn gate(report: &Value) {
    let after = report["after"].as_array().expect("after rows");
    let hit8 = cell(after, "datasheet_hit", 8).expect("hit cell");
    if hit8["hits"].as_u64().unwrap_or(0) == 0 {
        eprintln!("bench_transport gate: zero cache-hit rate in datasheet_hit@8");
        std::process::exit(1);
    }
    let now = cell(after, HEADLINE, 8)
        .and_then(|c| c["plans_per_sec"].as_f64())
        .expect("headline cell");

    let path = mpx_bench::results_dir().join("BENCH_transport.json");
    let committed: Option<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    let Some(committed) = committed else {
        println!("bench_transport gate: no committed BENCH_transport.json; skipping comparison");
        return;
    };
    // Generous: machine noise and CI containers vary, so only a large
    // regression (below 30% of the committed post-change throughput, or
    // below the committed pre-change mutex baseline) fails.
    if let Some(c) = committed["after"]
        .as_array()
        .and_then(|rows| cell(rows, HEADLINE, 8))
        .and_then(|c| c["plans_per_sec"].as_f64())
    {
        if now < 0.3 * c {
            eprintln!(
                "bench_transport gate: {HEADLINE}@8 {now:.0} plans/s < 30% of committed {c:.0}"
            );
            std::process::exit(1);
        }
    }
    if let Some(b) = committed["before"]
        .as_array()
        .and_then(|rows| cell(rows, HEADLINE, 8))
        .and_then(|c| c["plans_per_sec"].as_f64())
    {
        if now < b {
            eprintln!(
                "bench_transport gate: {HEADLINE}@8 {now:.0} plans/s below mutex baseline {b:.0}"
            );
            std::process::exit(1);
        }
    }
    println!("bench_transport gate: ok ({HEADLINE}@8 = {now:.0} plans/s)");
}
