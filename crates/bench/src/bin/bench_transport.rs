//! Transport planning-throughput tracker: plans served per second when N
//! rank threads hammer one shared `UcxContext`, across the workloads the
//! plan cache must survive (steady-state hits, irregular size sweeps,
//! drift-triggered invalidation churn). Writes
//! `results/BENCH_transport.json` so the hot path's perf trajectory is
//! visible PR over PR.
//!
//! Usage:
//!   bench_transport                 # measure, write BENCH_transport.json
//!   bench_transport --quick         # short run + CI gate: fails on a zero
//!                                   # cache-hit rate or on a throughput
//!                                   # regression beyond a generous
//!                                   # threshold vs the committed baseline
//!   MPX_BENCH_SAVE_BASELINE=1 bench_transport
//!                                   # additionally snapshot the numbers as
//!                                   # BENCH_transport_baseline.json
//!
//! If `results/BENCH_transport_baseline.json` exists, its runs are
//! embedded in BENCH_transport.json under `"before"` with per-cell
//! speedups, so a single artifact records the before/after comparison.

use mpx_gpu::GpuRuntime;
use mpx_model::{PlannerConfig, SizeClassConfig};
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::DeviceId;
use mpx_ucx::{ParamSource, TuningMode, UcxConfig, UcxContext};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// One benchmark cell.
struct Phase {
    /// Row label, stable across before/after runs.
    name: &'static str,
    params: ParamSource,
    /// Distinct sizes cycled per thread (small set = steady-state hits,
    /// large set = every plan is a new size).
    distinct_sizes: usize,
    /// Invalidate the thread's pair every this many plans (0 = never).
    churn_every: usize,
}

const PHASES: [Phase; 5] = [
    Phase {
        name: "datasheet_hit",
        params: ParamSource::Datasheet,
        distinct_sizes: 8,
        churn_every: 0,
    },
    Phase {
        name: "datasheet_sweep",
        params: ParamSource::Datasheet,
        distinct_sizes: usize::MAX,
        churn_every: 0,
    },
    Phase {
        name: "probed_hit",
        params: ParamSource::Probed,
        distinct_sizes: 8,
        churn_every: 0,
    },
    Phase {
        name: "probed_sweep",
        params: ParamSource::Probed,
        distinct_sizes: usize::MAX,
        churn_every: 0,
    },
    Phase {
        name: "probed_churn",
        params: ParamSource::Probed,
        distinct_sizes: usize::MAX,
        churn_every: 64,
    },
];

/// The cell the CI gate and the headline speedup look at.
const HEADLINE: &str = "datasheet_sweep";

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: usize = if quick { 300 } else { 20_000 };
    // Best-of-N absorbs scheduler noise (the full run feeds the committed
    // speedup table; quick mode is a smoke gate and keeps one rep).
    let reps: usize = if quick { 1 } else { 3 };

    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    // Eight distinct ordered pairs so per-pair state is exercised from
    // every thread without aliasing at 8 threads.
    let pairs: Vec<(DeviceId, DeviceId)> = (0..gpus.len())
        .flat_map(|i| {
            (0..gpus.len())
                .filter(move |&j| j != i)
                .map(move |j| (i, j))
        })
        .map(|(i, j)| (gpus[i], gpus[j]))
        .take(8)
        .collect();

    println!(
        "{:>16} {:>8} {:>10} {:>10} {:>14} {:>9} {:>9} {:>7}",
        "phase", "threads", "plans", "ms", "plans/s", "hits", "misses", "inval"
    );
    let mut runs: Vec<Value> = Vec::new();
    for phase in &PHASES {
        for &threads in &THREAD_COUNTS {
            let r = (0..reps)
                .map(|_| measure(&topo, phase, &pairs, threads, iters))
                .max_by(|a, b| {
                    (a.plans as f64 / a.seconds)
                        .partial_cmp(&(b.plans as f64 / b.seconds))
                        .expect("finite rates")
                })
                .expect("at least one rep");
            println!(
                "{:>16} {:>8} {:>10} {:>10.2} {:>14.0} {:>9} {:>9} {:>7}",
                phase.name,
                threads,
                r.plans,
                r.seconds * 1e3,
                r.plans as f64 / r.seconds,
                r.hits,
                r.misses,
                r.invalidations
            );
            runs.push(json!({
                "phase": phase.name,
                "threads": threads,
                "plans": r.plans,
                "seconds": r.seconds,
                "plans_per_sec": r.plans as f64 / r.seconds,
                "hits": r.hits,
                "misses": r.misses,
                "class_hits": r.class_hits,
                "class_fallbacks": r.class_fallbacks,
                "invalidations": r.invalidations,
            }));
        }
    }

    verify_transfer_integrity(&topo);

    let baseline = read_baseline();
    let report = match &baseline {
        Some(before) => {
            print_speedups(before, &runs);
            json!({ "before": before.clone(), "after": runs })
        }
        None => json!({ "after": runs }),
    };
    if quick {
        // Smoke mode gates against the committed artifact and must not
        // overwrite it with short-run numbers.
        gate(&report);
    } else {
        mpx_bench::emit_json("BENCH_transport", &report);
        if std::env::var("MPX_BENCH_SAVE_BASELINE").is_ok_and(|v| v == "1") {
            mpx_bench::emit_json("BENCH_transport_baseline", &report["after"]);
        }
    }
}

struct PhaseResult {
    plans: u64,
    seconds: f64,
    hits: u64,
    misses: u64,
    class_hits: u64,
    class_fallbacks: u64,
    invalidations: u64,
}

/// The `i`-th size a thread plans: cycled from a small fixed set for hit
/// phases, or an irregular walk over [4 MiB, 256 MiB) for sweeps. Every
/// size is 4-byte aligned and unique per (thread, iteration) in sweep
/// mode, so a sweep is all-distinct by construction.
fn size_at(thread: usize, i: usize, distinct: usize) -> usize {
    let k = if distinct == usize::MAX {
        i
    } else {
        i % distinct
    };
    let span = 252 * MIB / 4;
    4 * MIB + 4 * ((k * 37987 + thread * 104729) % span)
}

fn measure(
    topo: &Arc<mpx_topo::Topology>,
    phase: &Phase,
    pairs: &[(DeviceId, DeviceId)],
    threads: usize,
    iters: usize,
) -> PhaseResult {
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: phase.params,
            // The configuration under test: size-class plan reuse on
            // (the production default keeps it off for bit-exact figure
            // reproduction; the ε guard bounds the modeling error here).
            planner: PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
            ..UcxConfig::default()
        },
    );
    // Warmup: touch every pair once so path enumeration / probing and
    // (for hit phases) the first-size plan are off the timed path.
    for t in 0..threads {
        let (src, dst) = pairs[t % pairs.len()];
        ctx.plan_for(src, dst, size_at(t, 0, phase.distinct_sizes))
            .expect("warmup plan");
    }

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let ctx = ctx.clone();
            let (src, dst) = pairs[t % pairs.len()];
            let churn = phase.churn_every;
            let distinct = phase.distinct_sizes;
            scope.spawn(move || {
                for i in 0..iters {
                    let n = size_at(t, i, distinct);
                    let plan = ctx.plan_for(src, dst, n).expect("plan");
                    std::hint::black_box(&plan);
                    if churn != 0 && i % churn == churn - 1 {
                        // An observation 10x off the prediction always
                        // exceeds the drift tolerance.
                        ctx.record_observation(src, dst, n, plan.predicted_bandwidth * 10.0);
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();

    let stats = ctx.cache_stats();
    PhaseResult {
        plans: (threads * iters) as u64,
        seconds,
        hits: stats.hits,
        misses: stats.misses,
        class_hits: stats.class_hits,
        class_fallbacks: stats.class_fallbacks,
        invalidations: stats.invalidations,
    }
}

/// One end-to-end put through the benched configuration: the cache layer
/// must never change what lands in the destination buffer.
fn verify_transfer_integrity(topo: &Arc<mpx_topo::Topology>) {
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig::default(),
    );
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 8 * MIB + 12345;
    let data: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    let h = ctx.put_async(&src, &dst, n).expect("put");
    ctx.runtime().engine().run_until_idle();
    assert!(h.is_complete());
    assert_eq!(dst.to_vec().expect("readback"), data, "transfer corrupted");
    println!("integrity: {n}-byte put bit-identical");
}

fn read_baseline() -> Option<Vec<Value>> {
    let path = mpx_bench::results_dir().join("BENCH_transport_baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    v.as_array().cloned()
}

fn cell<'a>(rows: &'a [Value], phase: &str, threads: u64) -> Option<&'a Value> {
    rows.iter()
        .find(|r| r["phase"] == phase && r["threads"].as_u64() == Some(threads))
}

fn print_speedups(before: &[Value], after: &[Value]) {
    println!("\n{:>16} {:>8} {:>10}", "phase", "threads", "speedup");
    for b in before {
        let (Some(phase), Some(threads)) = (b["phase"].as_str(), b["threads"].as_u64()) else {
            continue;
        };
        if let Some(a) = cell(after, phase, threads) {
            if let (Some(rb), Some(ra)) = (b["plans_per_sec"].as_f64(), a["plans_per_sec"].as_f64())
            {
                println!("{phase:>16} {threads:>8} {:>9.2}x", ra / rb);
            }
        }
    }
}

/// CI gate (`--quick`): the current run must show a live cache (nonzero
/// hits in the steady-state phase) and must not regress throughput beyond
/// a generous threshold against the numbers committed in
/// `results/BENCH_transport.json`.
fn gate(report: &Value) {
    let after = report["after"].as_array().expect("after rows");
    let hit8 = cell(after, "datasheet_hit", 8).expect("hit cell");
    if hit8["hits"].as_u64().unwrap_or(0) == 0 {
        eprintln!("bench_transport gate: zero cache-hit rate in datasheet_hit@8");
        std::process::exit(1);
    }
    let now = cell(after, HEADLINE, 8)
        .and_then(|c| c["plans_per_sec"].as_f64())
        .expect("headline cell");

    let path = mpx_bench::results_dir().join("BENCH_transport.json");
    let committed: Option<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    let Some(committed) = committed else {
        println!("bench_transport gate: no committed BENCH_transport.json; skipping comparison");
        return;
    };
    // Generous: machine noise and CI containers vary, so only a large
    // regression (below 30% of the committed post-change throughput, or
    // below the committed pre-change mutex baseline) fails.
    if let Some(c) = committed["after"]
        .as_array()
        .and_then(|rows| cell(rows, HEADLINE, 8))
        .and_then(|c| c["plans_per_sec"].as_f64())
    {
        if now < 0.3 * c {
            eprintln!(
                "bench_transport gate: {HEADLINE}@8 {now:.0} plans/s < 30% of committed {c:.0}"
            );
            std::process::exit(1);
        }
    }
    if let Some(b) = committed["before"]
        .as_array()
        .and_then(|rows| cell(rows, HEADLINE, 8))
        .and_then(|c| c["plans_per_sec"].as_f64())
    {
        if now < b {
            eprintln!(
                "bench_transport gate: {HEADLINE}@8 {now:.0} plans/s below mutex baseline {b:.0}"
            );
            std::process::exit(1);
        }
    }
    println!("bench_transport gate: ok ({HEADLINE}@8 = {now:.0} plans/s)");
}
