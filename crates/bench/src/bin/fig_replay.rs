//! Compiled-graph replay panel: OMB window-16 unidirectional bandwidth
//! of the interpreted chunk pipeline vs the capture/replay fast path on
//! Beluga and Narval. Both series run identical model-driven planning;
//! the gap is purely per-PUT issue cost, so it is widest at small
//! message sizes (where launch overhead dominates the wire time) and
//! closes as transfers grow — the replay companion to Figure 5.

use mpx_bench::{emit_json, full_run, print_panel};
use mpx_omb::replay_panel;
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

fn main() {
    // Sweep down into the launch-overhead regime: 16 KiB – 64 MiB
    // (two-point doubling ladder trimmed for quick runs).
    let max_shift = if full_run() { 12 } else { 10 };
    let sizes: Vec<usize> = (0..=max_shift).map(|i| (16 << 10) << i).collect();
    let mut all = Vec::new();
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        let panel = replay_panel(&topo, PathSelection::THREE_GPUS, 16, &sizes);
        let title = format!("Replay BW {cluster} 3_GPUs win=16");
        print_panel(&title, &panel, 1e9, "GB/s");
        let small = sizes[0];
        let large = *sizes.last().expect("non-empty sweep");
        let gain = |n: usize| panel[1].at(n).unwrap() / panel[0].at(n).unwrap();
        println!(
            "   replay gain: {:.2}x at {} -> {:.2}x at {}",
            gain(small),
            mpx_topo::units::format_bytes(small),
            gain(large),
            mpx_topo::units::format_bytes(large),
        );
        all.push((title, panel));
    }
    emit_json("fig_replay", &all);
}
