//! Extension figure: concurrent communication patterns under the three
//! planning regimes — single-path, contention-blind multi-path (what a
//! per-transfer Algorithm 1 deploys), and contention-aware joint
//! planning (the paper's MaxRate future work). Three patterns per
//! cluster: a disjoint pair set, the full ring, and a bidirectional
//! neighbour exchange.

use mpx_bench::{emit_json, paper_sizes, print_panel};
use mpx_omb::{ring_pairs, run_pattern, PatternPlanning, Series};
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

fn pattern_pairs(name: &str) -> Vec<(usize, usize)> {
    match name {
        "disjoint" => vec![(0, 1), (2, 3)],
        "ring" => ring_pairs(4),
        "exchange" => vec![(0, 1), (1, 0), (2, 3), (3, 2)],
        _ => unreachable!(),
    }
}

fn main() {
    let sizes = paper_sizes();
    let sel = PathSelection::THREE_GPUS;
    let mut all = Vec::new();
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for pattern in ["disjoint", "ring", "exchange"] {
            let pairs = pattern_pairs(pattern);
            let mut panel = vec![
                Series::new("SinglePath"),
                Series::new("Blind"),
                Series::new("Joint"),
            ];
            for &n in &sizes {
                for (si, planning) in [
                    PatternPlanning::SinglePath,
                    PatternPlanning::Blind,
                    PatternPlanning::Joint,
                ]
                .into_iter()
                .enumerate()
                {
                    let r = run_pattern(&topo, &pairs, n, sel, planning);
                    panel[si].push(n, r.aggregate_bandwidth);
                }
            }
            let title = format!("Fig 9 {pattern} pattern on {cluster}");
            print_panel(&title, &panel, 1e9, "aggregate GB/s");
            let last = *sizes.last().unwrap();
            println!(
                "   at {}: joint/blind = {:.2}x, joint/single = {:.2}x",
                mpx_topo::units::format_bytes(last),
                panel[2].at(last).unwrap() / panel[1].at(last).unwrap(),
                panel[2].at(last).unwrap() / panel[0].at(last).unwrap()
            );
            all.push((title, panel));
        }
    }
    emit_json("fig9_contention", &all);
}
