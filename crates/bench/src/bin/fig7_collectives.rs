//! Figure 7: latency speedup of MPI_Alltoall and MPI_Allreduce over the
//! default (single-path) MPI+UCC+UCX stack — 8 panels: {Beluga, Narval}
//! × {Alltoall, Allreduce} × {2_GPUs, 3_GPUs}. Host staging is excluded,
//! as in the paper (Section 5.3).

use mpx_bench::{emit_json, paper_sizes, print_panel};
use mpx_gpu::KernelCostModel;
use mpx_model::{predict_allreduce_knomial, predict_alltoall_bruck, Planner};
use mpx_omb::{collective_panel, CollectiveConfig, CollectiveKind, Series};
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

/// The collective-model's predicted speedup (single-path vs `sel`).
fn predicted_speedup(
    planner: &Planner,
    gpus: &[mpx_topo::DeviceId],
    kind: CollectiveKind,
    sel: PathSelection,
    n: usize,
) -> f64 {
    let kernel = KernelCostModel::default_gpu();
    let run = |s: PathSelection| match kind {
        CollectiveKind::Allreduce => {
            let n = (n - n % 16).max(16);
            predict_allreduce_knomial(planner, gpus, n, s, &|b| kernel.cost(b))
                .expect("predict")
                .total
        }
        CollectiveKind::Alltoall => {
            let block = (n / gpus.len()).max(4);
            predict_alltoall_bruck(planner, gpus, block, s, &|b| kernel.cost_copy(b))
                .expect("predict")
                .total
        }
    };
    run(PathSelection::DIRECT_ONLY) / run(sel)
}

fn main() {
    let sizes = paper_sizes();
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 2,
        warmup: 1,
    };
    let mut all = Vec::new();
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for (coll_label, kind) in [
            ("alltoall", CollectiveKind::Alltoall),
            ("allreduce", CollectiveKind::Allreduce),
        ] {
            for (sel_label, sel) in [
                ("2_GPUs", PathSelection::TWO_GPUS),
                ("3_GPUs", PathSelection::THREE_GPUS),
            ] {
                let mut panel = collective_panel(&topo, kind, sel, &sizes, coll);
                // Extension: the collective model's predicted speedup.
                let planner = Planner::new(topo.clone());
                let gpus = topo.gpus();
                let mut predicted = Series::new("Predicted");
                for &n in &sizes {
                    predicted.push(n, predicted_speedup(&planner, &gpus, kind, sel, n));
                }
                panel.push(predicted);
                let title = format!("Fig 7 {coll_label} {cluster} {sel_label}");
                print_panel(&title, &panel, 1.0, "speedup x");
                let best = panel[1]
                    .points
                    .iter()
                    .map(|p| p.value)
                    .fold(0.0f64, f64::max);
                println!("   best dynamic speedup: {best:.2}x");
                all.push((title, panel));
            }
        }
    }
    emit_json("fig7_collectives", &all);
}
