//! Figure 4: distribution of the θ (message-fraction) values across
//! paths for OMB unidirectional bandwidth on Beluga, for the three path
//! selections (a) 2 paths, (b) 3 paths, (c) 4 paths incl. host staging.

use mpx_bench::{emit_json, paper_sizes, print_panel};
use mpx_model::Planner;
use mpx_omb::Series;
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(presets::beluga());
    let planner = Planner::new(topo.clone());
    let gpus = topo.gpus();
    let sizes = paper_sizes();

    let mut all = Vec::new();
    for (label, sel) in PathSelection::paper_grid() {
        let paths_n = sel.max_gpu_staged + 1 + usize::from(sel.host_staged);
        let names = ["Direct", "1st GPU-staged", "2nd GPU-staged", "Host-staged"];
        let mut panel: Vec<Series> = (0..paths_n).map(|i| Series::new(names[i])).collect();
        for &n in &sizes {
            let plan = planner
                .plan(gpus[0], gpus[1], n, sel)
                .expect("plan beluga pair");
            for (i, p) in plan.paths.iter().enumerate() {
                panel[i].push(n, p.theta);
            }
        }
        print_panel(
            &format!("Fig 4 theta distribution, Beluga, {label}"),
            &panel,
            1.0,
            "fraction",
        );
        all.push((label.to_string(), panel));
    }
    emit_json("fig4_theta", &all);
}
