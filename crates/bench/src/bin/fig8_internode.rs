//! Extension figure (not in the paper — its Section-6 future work):
//! inter-node bandwidth vs rail count and message size on two
//! Beluga-class nodes, with the model's prediction alongside.

use mpx_bench::{emit_json, paper_sizes, print_panel};
use mpx_gpu::GpuRuntime;
use mpx_model::Planner;
use mpx_omb::Series;
use mpx_sim::Engine;
use mpx_topo::{presets, PathSelection};
use mpx_ucx::{UcxConfig, UcxContext};
use std::sync::Arc;

fn measure(topo: &Arc<mpx_topo::Topology>, rails: usize, n: usize) -> f64 {
    let sel = PathSelection {
        max_gpu_staged: rails - 1,
        host_staged: false,
    };
    let ctx = UcxContext::new(
        GpuRuntime::new(Engine::new(topo.clone())),
        UcxConfig {
            selection: sel,
            ..UcxConfig::default()
        },
    );
    let gpus = topo.gpus();
    let (src, dst) = (gpus[0], gpus[4]);
    let s = ctx.runtime().alloc(src, n);
    let d = ctx.runtime().alloc(dst, n);
    ctx.put_async(&s, &d, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    let t0 = ctx.runtime().engine().now();
    ctx.put_async(&s, &d, n).unwrap();
    ctx.runtime().engine().run_until_idle();
    n as f64 / ctx.runtime().engine().now().secs_since(t0)
}

fn main() {
    let sizes = paper_sizes();
    let mut panel = Vec::new();
    for rails in [1usize, 2, 4] {
        let topo = Arc::new(presets::two_node_beluga(rails));
        let mut measured = Series::new(format!("{rails}_rails"));
        let mut predicted = Series::new(format!("{rails}_rails_pred"));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let sel = PathSelection {
            max_gpu_staged: rails - 1,
            host_staged: false,
        };
        for &n in &sizes {
            measured.push(n, measure(&topo, rails, n));
            predicted.push(
                n,
                planner
                    .plan(gpus[0], gpus[4], n, sel)
                    .unwrap()
                    .predicted_bandwidth,
            );
        }
        panel.push(measured);
        panel.push(predicted);
    }
    print_panel(
        "Fig 8 (extension): inter-node multi-rail BW, two Beluga nodes",
        &panel,
        1e9,
        "GB/s",
    );
    // Rail scaling at the largest size.
    let largest = *sizes.last().unwrap();
    let one = panel[0].at(largest).unwrap();
    let two = panel[2].at(largest).unwrap();
    let four = panel[4].at(largest).unwrap();
    println!(
        "\nrail scaling at {}: 1x -> {:.2}x -> {:.2}x (ideal 1 -> 2 -> 4)",
        mpx_topo::units::format_bytes(largest),
        two / one,
        four / one
    );
    emit_json("fig8_internode", &panel);
}
