//! Figure 5: OMB unidirectional bandwidth on Beluga and Narval —
//! 12 panels: {cluster} × {2_GPUs, 3_GPUs, 3_GPUs_w_host} × window {1, 16},
//! each with the Direct-Path baseline, Static (exhaustive) tuning,
//! Dynamic (model-driven) tuning, and the model's Prediction.

use mpx_bench::{emit_json, full_run, paper_sizes, print_panel};
use mpx_omb::{mean_relative_error, p2p_panel, P2pKind};
use mpx_topo::{presets, PathSelection};
use std::sync::Arc;

fn main() {
    let sizes = paper_sizes();
    let grid = if full_run() { 8 } else { 6 };
    let mut all = Vec::new();
    for (cluster, topo) in [
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
    ] {
        for (sel_label, sel) in PathSelection::paper_grid() {
            for window in [1usize, 16] {
                let panel = p2p_panel(&topo, P2pKind::Bw, sel, window, &sizes, grid);
                let title = format!("Fig 5 BW {cluster} {sel_label} win={window}");
                print_panel(&title, &panel, 1e9, "GB/s");
                // Prediction error vs the observed optimum (max of static
                // and dynamic), n > 4 MB — the paper's error metric.
                let mut observed = panel[1].clone();
                for (p, d) in observed.points.iter_mut().zip(&panel[2].points) {
                    p.value = p.value.max(d.value);
                }
                let err = mean_relative_error(&observed, &panel[3], 4 << 20);
                println!("   mean prediction error (n > 4MB): {:.1}%", err * 100.0);
                all.push((title, panel));
            }
        }
    }
    emit_json("fig5_bw", &all);
}
