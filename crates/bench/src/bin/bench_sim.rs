//! Engine throughput tracker: events/sec for batches of contending flows
//! on the paper's three machine presets, plus serial-vs-parallel cells
//! for the component-partitioned scenario runner on cluster-scale
//! workloads (25k/100k flows over 32 disconnected nodes). Writes
//! `results/BENCH_sim.json` so the simulator's perf trajectory is
//! visible PR over PR.
//!
//! Usage:
//!   bench_sim                 # measure, write BENCH_sim.json
//!   bench_sim --quick         # CI gate: no artifact write; asserts the
//!                             # parallel engine at 8 workers beats the
//!                             # serial engine on the 100k-flow cell and
//!                             # that a smoke scenario is bit-identical
//!   MPX_BENCH_SAVE_BASELINE=1 bench_sim
//!                             # additionally snapshot the numbers as
//!                             # BENCH_sim_baseline.json ("before")
//!
//! If `results/BENCH_sim_baseline.json` exists, its runs are embedded in
//! BENCH_sim.json under `"before"` with per-cell speedups, so a single
//! artifact records the before/after comparison.

use mpx_obs::FlightRecorder;
use mpx_sim::{equivalence_diff, Engine, FaultPlan, FlowSpec, JitterModel, OnComplete, Scenario};
use mpx_topo::presets;
use mpx_topo::{LinkId, Topology};
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const FLOW_COUNTS: [usize; 3] = [8, 64, 512];
const REPEATS: usize = 3;

/// Cluster shape for the parallel cells: 32 disconnected 4-GPU nodes.
const CLUSTER_NODES: usize = 32;
/// Links per 4-GPU node (6 GPU pairs × 2 + 4 PCIe × 2 + 1 DRAM).
const NODE_LINKS: usize = 21;
/// Flow counts for the serial-vs-parallel cells.
const PARALLEL_FLOW_COUNTS: [usize; 2] = [25_000, 100_000];
/// Worker counts swept in the parallel cells.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_gate();
        return;
    }

    let machines: Vec<(&str, Arc<Topology>)> = vec![
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
        ("dgx1", Arc::new(presets::dgx1())),
    ];

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14}",
        "preset", "flows", "events", "ms", "events/s"
    );
    let mut runs: Vec<Value> = Vec::new();
    for (name, topo) in &machines {
        for &flows in &FLOW_COUNTS {
            let (events, secs) = measure(topo, flows, false, REPEATS);
            let rate = events as f64 / secs;
            println!(
                "{name:>8} {flows:>8} {events:>12} {:>12.2} {rate:>14.0}",
                secs * 1e3
            );
            runs.push(json!({
                "preset": *name,
                "flows": flows,
                "events": events,
                "seconds": secs,
                "events_per_sec": rate
            }));
        }
    }

    let parallel_runs = measure_parallel_cells();
    let flight_cell = flight_recorder_overhead_cell(REPEATS);

    let baseline = read_baseline();
    let report = match &baseline {
        Some(before) => {
            print_speedups(before, &runs);
            json!({
                "flow_counts": FLOW_COUNTS.to_vec(),
                "before": before.clone(),
                "after": runs,
                "parallel": parallel_runs,
                "flight_recorder": flight_cell
            })
        }
        None => json!({
            "flow_counts": FLOW_COUNTS.to_vec(),
            "after": runs,
            "parallel": parallel_runs,
            "flight_recorder": flight_cell
        }),
    };
    mpx_bench::emit_json("BENCH_sim", &report);

    if std::env::var("MPX_BENCH_SAVE_BASELINE").is_ok_and(|v| v == "1") {
        let after = &report["after"];
        mpx_bench::emit_json("BENCH_sim_baseline", after);
    }
}

/// Times one batch of `flows` contending flows, optionally with an
/// always-on flight-recorder ring installed on the engine; returns
/// (events processed, best-of-`reps` wall seconds).
fn measure(topo: &Arc<Topology>, flows: usize, flight: bool, reps: usize) -> (u64, f64) {
    // Spread flows round-robin over every directly linked GPU pair so
    // the fairness core sees real contention, and stagger sizes so each
    // completion triggers a recompute while many flows are still live.
    let gpus = topo.gpus();
    let mut pairs = Vec::new();
    for (i, &a) in gpus.iter().enumerate() {
        for &b in &gpus[i + 1..] {
            if let Ok(l) = topo.link_between(a, b) {
                pairs.push(l.id);
            }
        }
    }
    assert!(!pairs.is_empty(), "preset has no linked GPU pair");

    let mut best = f64::INFINITY;
    let mut events = 0;
    for rep in 0..=reps {
        let eng = Engine::new(topo.clone());
        if flight {
            eng.set_recorder(FlightRecorder::default().recorder());
        }
        for i in 0..flows {
            let link = pairs[i % pairs.len()];
            let bytes = (1 << 20) + 4096 * i;
            eng.start_flow(FlowSpec::new(vec![link], bytes), OnComplete::Nothing);
        }
        let start = Instant::now();
        eng.run_until_idle();
        let secs = start.elapsed().as_secs_f64();
        events = eng.stats().events_processed;
        // First pass is warm-up.
        if rep > 0 && secs < best {
            best = secs;
        }
    }
    (events, best)
}

/// The multi-component scale workload the partitioned runner targets:
/// `flows` transfers spread over a `CLUSTER_NODES`-node cluster, issued
/// in 16-flow waves per node over that node's 12 GPU-pair links (so
/// waves contend pairwise), sizes staggered so completions cascade
/// reschedules. Every node is an isolated component, so partition count
/// equals node count and the serial engine is the only thing serializing
/// them.
fn cluster_scenario(topo: &Arc<Topology>, flows: usize, trace: bool) -> Scenario {
    let mut sc = Scenario::new(topo.clone())
        .with_trace(trace)
        .with_jitter(JitterModel {
            seed: 0x5eed,
            spread: 0.1,
        });
    let per_node = flows / CLUSTER_NODES;
    for node in 0..CLUSTER_NODES {
        for k in 0..per_node {
            // Blocks of 64 flows share one GPU-pair link (offsets 0..12)
            // so every completion recomputes a ~64-flow component and
            // reschedules its peers; waves land all 12 links at once.
            let off = (k / 64 + node) % 12;
            let wave = k / (12 * 64);
            let at = wave as f64 * 400e-6;
            let bytes = (256 << 10) + 4096 * (k % 64) + node;
            let route = vec![LinkId((node * NODE_LINKS + off) as u32)];
            sc = sc.flow_at(at, FlowSpec::new(route, bytes));
        }
    }
    sc
}

/// Serial-vs-parallel cells over the cluster workload. Each cell times
/// the *whole* scenario execution — partitioning, scheduling, event
/// processing, merge — so the comparison charges the parallel path its
/// full overhead.
fn measure_parallel_cells() -> Vec<Value> {
    let topo = Arc::new(presets::cluster(CLUSTER_NODES, 4));
    let mut out = Vec::new();
    println!(
        "\n{:>12} {:>8} {:>8} {:>12} {:>12} {:>14} {:>9}",
        "scenario", "flows", "workers", "events", "ms", "events/s", "speedup"
    );
    for &flows in &PARALLEL_FLOW_COUNTS {
        let sc = cluster_scenario(&topo, flows, false);
        let (serial_events, serial_secs) = best_of(1, || {
            let start = Instant::now();
            let rep = sc.run_serial();
            (rep.stats.events_processed, start.elapsed().as_secs_f64())
        });
        let serial_rate = serial_events as f64 / serial_secs;
        println!(
            "{:>12} {flows:>8} {:>8} {serial_events:>12} {:>12.2} {serial_rate:>14.0} {:>9}",
            "cluster32x4",
            "serial",
            serial_secs * 1e3,
            "1.00x"
        );
        out.push(json!({
            "scenario": "cluster32x4",
            "flows": flows,
            "mode": "serial",
            "events": serial_events,
            "seconds": serial_secs,
            "events_per_sec": serial_rate
        }));
        for &workers in &WORKER_COUNTS {
            let (events, secs) = best_of(1, || {
                let start = Instant::now();
                let rep = sc.run_parallel(workers);
                (rep.stats.events_processed, start.elapsed().as_secs_f64())
            });
            assert_eq!(events, serial_events, "event counts diverged");
            let rate = events as f64 / secs;
            let speedup = rate / serial_rate;
            println!(
                "{:>12} {flows:>8} {workers:>8} {events:>12} {:>12.2} {rate:>14.0} {speedup:>8.2}x",
                "cluster32x4",
                secs * 1e3
            );
            out.push(json!({
                "scenario": "cluster32x4",
                "flows": flows,
                "mode": "parallel",
                "workers": workers,
                "events": events,
                "seconds": secs,
                "events_per_sec": rate,
                "speedup_vs_serial": speedup
            }));
        }
    }
    out
}

/// Recorder-on vs recorder-off on the heaviest single-engine cell: the
/// always-on flight recorder must be cheap enough to leave installed.
/// Returns the committed overhead cell; the quick gate bounds it at 5%.
fn flight_recorder_overhead_cell(reps: usize) -> Value {
    let topo = Arc::new(presets::beluga());
    let flows = *FLOW_COUNTS.last().expect("flow counts");
    // Interleave the arms rep by rep so a slow scheduling window hits
    // both equally, and take each arm's best: the off/on gap then
    // reflects recording cost, not which arm drew the noisy window.
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    let mut events = 0;
    for _ in 0..reps.max(1) {
        let (_, o) = measure(&topo, flows, false, 1);
        off = off.min(o);
        let (e, r) = measure(&topo, flows, true, 1);
        on = on.min(r);
        events = e;
    }
    let pct = (on - off) / off * 100.0;
    println!(
        "\nflight recorder overhead (beluga, {flows} flows): off {:.2} ms, on {:.2} ms ({pct:+.2}%)",
        off * 1e3,
        on * 1e3
    );
    json!({
        "preset": "beluga",
        "flows": flows,
        "events": events,
        "recorder_off_secs": off,
        "recorder_on_secs": on,
        "overhead_pct": pct
    })
}

fn best_of<F: FnMut() -> (u64, f64)>(reps: usize, mut f: F) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for rep in 0..=reps {
        let (e, secs) = f();
        events = e;
        if rep > 0 && secs < best {
            best = secs;
        }
    }
    (events, best)
}

/// CI gate (`--quick`): never writes artifacts. Asserts
///  1. a small cluster scenario with a fault storm is bit-identical
///     between serial and parallel execution, and
///  2. the parallel engine at 8 workers processes events at least as
///     fast as the serial engine on the 100k-flow cell.
fn quick_gate() {
    let topo = Arc::new(presets::cluster(CLUSTER_NODES, 4));

    // Equivalence smoke, faults included.
    let smoke = cluster_scenario(&topo, 2_000, true).with_faults(FaultPlan::random_soak(
        &topo,
        7,
        0.01,
        16,
        &[],
    ));
    let serial = smoke.run_serial();
    let par = smoke.run_parallel(8);
    if let Some(diff) = equivalence_diff(&serial, &par) {
        eprintln!("FAIL: parallel output diverged from serial: {diff}");
        std::process::exit(1);
    }
    println!(
        "equivalence smoke: {} flows, {} partitions, bit-identical",
        serial.stats.flows_completed, serial.stats.partitions
    );

    // Throughput gate on the 100k cell. Single cold runs: the expected
    // gap (see results/BENCH_sim.json) is far larger than warmup noise.
    let sc = cluster_scenario(&topo, 100_000, false);
    let start = Instant::now();
    let events = sc.run_serial().stats.events_processed;
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let pevents = sc.run_parallel(8).stats.events_processed;
    let par_secs = start.elapsed().as_secs_f64();
    assert_eq!(events, pevents, "event counts diverged");
    let serial_rate = events as f64 / serial_secs;
    let par_rate = pevents as f64 / par_secs;
    println!(
        "100k-flow cell: serial {serial_rate:.0} ev/s, parallel@8 {par_rate:.0} ev/s ({:.2}x)",
        par_rate / serial_rate
    );
    if par_rate < serial_rate {
        eprintln!("FAIL: parallel engine slower than serial at 8 workers");
        std::process::exit(1);
    }

    // Always-on gate: ring-recording the heaviest single-engine cell
    // must cost at most 5% wall time vs no recorder. Best-of-5 per arm
    // absorbs scheduler noise on a ~12 ms workload.
    let cell = flight_recorder_overhead_cell(5);
    let pct = cell["overhead_pct"].as_f64().expect("overhead pct");
    if pct > 5.0 {
        eprintln!("FAIL: flight recorder costs {pct:.2}% (> 5%) on the beluga/512 cell");
        std::process::exit(1);
    }
    println!("bench_sim --quick: PASS");
}

fn read_baseline() -> Option<Vec<Value>> {
    let path = mpx_bench::results_dir().join("BENCH_sim_baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    v.as_array().cloned()
}

fn print_speedups(before: &[Value], after: &[Value]) {
    println!("\n{:>8} {:>8} {:>10}", "preset", "flows", "speedup");
    for b in before {
        let matching = after
            .iter()
            .find(|a| a["preset"] == b["preset"] && a["flows"].as_u64() == b["flows"].as_u64());
        if let (Some(a), Some(rb), Some(ra)) = (
            matching,
            b["events_per_sec"].as_f64(),
            matching.and_then(|a| a["events_per_sec"].as_f64()),
        ) {
            let _ = a;
            println!(
                "{:>8} {:>8} {:>9.2}x",
                b["preset"].as_str().unwrap_or("?"),
                b["flows"].as_u64().unwrap_or(0),
                ra / rb
            );
        }
    }
}
