//! Engine throughput tracker: events/sec for batches of contending flows
//! on the paper's three machine presets. Writes `results/BENCH_sim.json`
//! so the simulator's perf trajectory is visible PR over PR.
//!
//! Usage:
//!   bench_sim                 # measure, write BENCH_sim.json
//!   MPX_BENCH_SAVE_BASELINE=1 bench_sim
//!                             # additionally snapshot the numbers as
//!                             # BENCH_sim_baseline.json ("before")
//!
//! If `results/BENCH_sim_baseline.json` exists, its runs are embedded in
//! BENCH_sim.json under `"before"` with per-cell speedups, so a single
//! artifact records the before/after comparison.

use mpx_sim::{Engine, FlowSpec, OnComplete};
use mpx_topo::presets;
use mpx_topo::Topology;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

const FLOW_COUNTS: [usize; 3] = [8, 64, 512];
const REPEATS: usize = 3;

fn main() {
    let machines: Vec<(&str, Arc<Topology>)> = vec![
        ("beluga", Arc::new(presets::beluga())),
        ("narval", Arc::new(presets::narval())),
        ("dgx1", Arc::new(presets::dgx1())),
    ];

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>14}",
        "preset", "flows", "events", "ms", "events/s"
    );
    let mut runs: Vec<Value> = Vec::new();
    for (name, topo) in &machines {
        for &flows in &FLOW_COUNTS {
            let (events, secs) = measure(topo, flows);
            let rate = events as f64 / secs;
            println!(
                "{name:>8} {flows:>8} {events:>12} {:>12.2} {rate:>14.0}",
                secs * 1e3
            );
            runs.push(json!({
                "preset": *name,
                "flows": flows,
                "events": events,
                "seconds": secs,
                "events_per_sec": rate
            }));
        }
    }

    let baseline = read_baseline();
    let report = match &baseline {
        Some(before) => {
            print_speedups(before, &runs);
            json!({
                "flow_counts": FLOW_COUNTS.to_vec(),
                "before": before.clone(),
                "after": runs
            })
        }
        None => json!({
            "flow_counts": FLOW_COUNTS.to_vec(),
            "after": runs
        }),
    };
    mpx_bench::emit_json("BENCH_sim", &report);

    if std::env::var("MPX_BENCH_SAVE_BASELINE").is_ok_and(|v| v == "1") {
        let after = &report["after"];
        mpx_bench::emit_json("BENCH_sim_baseline", after);
    }
}

/// Times one batch of `flows` contending flows; returns
/// (events processed, best-of-`REPEATS` wall seconds).
fn measure(topo: &Arc<Topology>, flows: usize) -> (u64, f64) {
    // Spread flows round-robin over every directly linked GPU pair so
    // the fairness core sees real contention, and stagger sizes so each
    // completion triggers a recompute while many flows are still live.
    let gpus = topo.gpus();
    let mut pairs = Vec::new();
    for (i, &a) in gpus.iter().enumerate() {
        for &b in &gpus[i + 1..] {
            if let Ok(l) = topo.link_between(a, b) {
                pairs.push(l.id);
            }
        }
    }
    assert!(!pairs.is_empty(), "preset has no linked GPU pair");

    let mut best = f64::INFINITY;
    let mut events = 0;
    for rep in 0..=REPEATS {
        let eng = Engine::new(topo.clone());
        for i in 0..flows {
            let link = pairs[i % pairs.len()];
            let bytes = (1 << 20) + 4096 * i;
            eng.start_flow(FlowSpec::new(vec![link], bytes), OnComplete::Nothing);
        }
        let start = Instant::now();
        eng.run_until_idle();
        let secs = start.elapsed().as_secs_f64();
        events = eng.stats().events_processed;
        // First pass is warm-up.
        if rep > 0 && secs < best {
            best = secs;
        }
    }
    (events, best)
}

fn read_baseline() -> Option<Vec<Value>> {
    let path = mpx_bench::results_dir().join("BENCH_sim_baseline.json");
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    v.as_array().cloned()
}

fn print_speedups(before: &[Value], after: &[Value]) {
    println!("\n{:>8} {:>8} {:>10}", "preset", "flows", "speedup");
    for b in before {
        let matching = after
            .iter()
            .find(|a| a["preset"] == b["preset"] && a["flows"].as_u64() == b["flows"].as_u64());
        if let (Some(a), Some(rb), Some(ra)) = (
            matching,
            b["events_per_sec"].as_f64(),
            matching.and_then(|a| a["events_per_sec"].as_f64()),
        ) {
            let _ = a;
            println!(
                "{:>8} {:>8} {:>9.2}x",
                b["preset"].as_str().unwrap_or("?"),
                b["flows"].as_u64().unwrap_or(0),
                ra / rb
            );
        }
    }
}
