//! Chaos soak: seeded random fault storms over concurrent resilient,
//! plain/replayed, and hedged PUTs, asserting the supervision layer's
//! end-to-end guarantees.
//!
//! Per seed, a [`mpx_sim::FaultPlan::random_soak`] storm (degrades,
//! latency spikes, flaps, rationed kills — the drivers' direct links are
//! protected so a route always survives) rains on one engine while three
//! driver threads push transfers through it concurrently:
//!
//! * a **resilient** driver (`put_resilient`: deadlines, retries,
//!   re-plans),
//! * a **plain** driver (`put` with the compiled-graph replay fast path
//!   on; a stuck pipeline surfaces as [`mpx_ucx::TransferError::Stuck`]
//!   and escalates to `put_resilient`),
//! * a **hedged** driver (`put_hedged`: stalled primaries race their
//!   residual on healthy paths),
//! * a **broker** driver (an admission-controlled [`mpx_broker::Broker`]
//!   on the remaining GPU pair): submissions under the storm must keep
//!   the broker's books balanced — every submission accounted as
//!   admitted or shed, every admitted ticket resolved, and a shed never
//!   surfacing as a transfer failure.
//!
//! After every storm the harness asserts: every byte bit-exact, the run
//! bounded in virtual time (no deadlock, no unbounded recovery), the
//! breaker ledger balanced (`trips == resets + breakers_open`), and —
//! from the recorded telemetry — that no compiled-graph replay was
//! served on a pair while one of its breakers was open.
//!
//! The soak also exercises the always-on observability layer: the only
//! recorder is a bounded [`mpx_obs::FlightRecorder`] ring (the harness
//! asserts nothing was overwritten, so the replay-gate audit over its
//! snapshot stays exact), and an [`mpx_obs::AnomalyEngine`] is installed
//! as the context's sink. Every storm must fire at least one black-box
//! dump, every dump's trigger class must be one the storm can actually
//! cause, breaker dumps must carry the pair/path/cause of the fault that
//! tripped them, and a `dead_link=true` cause must only appear when the
//! storm really scheduled a kill. Set `MPX_DUMP_DIR` to also write each
//! dump as `$MPX_DUMP_DIR/seed-<seed>/dump-*.json` (the CI smoke greps
//! these).
//!
//! A separate two-regime phase measures hedged-PUT tail latency: p99
//! over 100 transfers on a healthy fabric vs the same with the direct
//! link degraded to 5% under a one-strike breaker. The acceptance bound
//! is p99(degraded) ≤ 2 × p99(healthy).
//!
//! Usage:
//!   chaos_soak           # full seed set, write results/BENCH_chaos.json
//!   chaos_soak --quick   # CI smoke: two seeds, same invariants, no
//!                        # artifact overwrite; exits nonzero on any
//!                        # violation

use mpx_broker::{Broker, BrokerConfig, Outcome, TenantSpec};
use mpx_gpu::GpuRuntime;
use mpx_obs::{AnomalyConfig, AnomalyEngine, Event, FlightRecorder, Phase, TelemetryRegistry};
use mpx_sim::{Engine, FaultInjector, FaultKind, FaultPlan, SimTime};
use mpx_topo::units::MIB;
use mpx_topo::{presets, DeviceId, LinkId, PathSelection, Topology};
use mpx_ucx::{HealthConfig, HedgeConfig, RecoveryConfig, TransferError, UcxConfig, UcxContext};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Committed seeds: the acceptance runs exactly these.
const STANDARD_SEEDS: [u64; 4] = [11, 23, 47, 92];
const QUICK_SEEDS: [u64; 2] = [11, 23];

/// Longest plausible honest run: three drivers' transfers plus every
/// recovery window. A soak exceeding this virtual time has livelocked.
const MAX_VIRTUAL_SECS: f64 = 60.0;

/// Transfers per driver per seed.
const PUTS_PER_DRIVER: usize = 8;

/// Requests the broker driver submits per seed.
const BROKER_SUBMITS: usize = 12;

/// Per-thread flight-recorder ring capacity for one soak. Sized so a
/// full storm fits without overwrites — the replay-gate audit walks the
/// ring snapshot and is only exact over complete history, which the
/// harness asserts (`overwritten == 0`).
const FLIGHT_CAPACITY: usize = 1 << 15;

/// Trigger classes a `random_soak` storm can legitimately fire through
/// this harness: breaker trips/retrips from kills and stuck puts,
/// stuck-transfer dumps from the plain driver, deadline-miss bursts from
/// the resilient retry loop, residual drift from degraded links, and
/// shed-regime entries when the storm backs the broker's queue up.
const STORM_CLASSES: [&str; 6] = [
    "breaker.trip",
    "breaker.retrip",
    "transfer.stuck",
    "deadline.miss-burst",
    "residual.drift",
    "shed.regime",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: &[u64] = if quick { &QUICK_SEEDS } else { &STANDARD_SEEDS };
    let topo = Arc::new(presets::beluga());

    let mut violations: Vec<String> = Vec::new();
    let mut seed_rows: Vec<Value> = Vec::new();
    println!(
        "{:>6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
        "seed",
        "puts",
        "escalate",
        "trips",
        "resets",
        "open",
        "gated",
        "hedges",
        "dumps",
        "virt_ms",
        "replay_ok"
    );
    for &seed in seeds {
        seed_rows.push(soak_one(&topo, seed, &mut violations));
    }

    let parallel = parallel_engine_phase(seeds, &mut violations);
    let tail = tail_latency_phase(&topo, &mut violations);

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("chaos_soak violation: {v}");
        }
        std::process::exit(1);
    }
    println!("chaos_soak: ok ({} seeds, zero violations)", seeds.len());
    if !quick {
        let report = json!({
            "seeds": seed_rows,
            "parallel_engine": parallel,
            "tail_latency": tail
        });
        mpx_bench::emit_json("BENCH_chaos", &report);
    }
}

/// Storm-under-partitioning phase: the same seeded `random_soak`
/// campaigns, but driven through the component-partitioned scenario
/// runner on a multi-node cluster — per seed, flows on every node plus
/// partition-bridging flows, the storm overlapping the bridges'
/// rebalances. Serial and 8-worker parallel execution must be
/// bit-identical ([`mpx_sim::equivalence_diff`]); any divergence is a
/// violation.
fn parallel_engine_phase(seeds: &[u64], violations: &mut Vec<String>) -> Value {
    use mpx_sim::{equivalence_diff, FlowSpec, JitterModel, Scenario};
    const NODES: usize = 6;
    const NODE_LINKS: usize = 21;
    let topo = Arc::new(presets::cluster(NODES, 4));
    let mut rows = Vec::new();
    for &seed in seeds {
        let storm = FaultPlan::random_soak(&topo, seed, 0.02, 24, &[]);
        let mut sc = Scenario::new(topo.clone())
            .with_tie_seed(seed)
            .with_jitter(JitterModel { seed, spread: 0.2 })
            .with_faults(storm);
        for node in 0..NODES {
            for k in 0..6usize {
                let off = (seed as usize + 5 * k) % 12;
                let route = vec![LinkId((node * NODE_LINKS + off) as u32)];
                let bytes = MIB + (node << 12) + k;
                sc = sc.flow_at(k as f64 * 1e-3, FlowSpec::new(route, bytes));
            }
        }
        // A late bridging flow per adjacent node pair: rebalances land
        // mid-storm.
        for node in 0..NODES - 1 {
            let route = vec![
                LinkId((node * NODE_LINKS) as u32),
                LinkId(((node + 1) * NODE_LINKS) as u32),
            ];
            sc = sc.flow_at(8e-3, FlowSpec::new(route, 2 * MIB));
        }
        let serial = sc.run_serial();
        let par = sc.run_parallel(8);
        if let Some(diff) = equivalence_diff(&serial, &par) {
            violations.push(format!(
                "seed {seed}: parallel engine diverged from serial under storm: {diff}"
            ));
        }
        rows.push(json!({
            "seed": seed,
            "flows_completed": serial.stats.flows_completed,
            "faults_fired": serial.stats.faults_fired,
            "partitions": serial.stats.partitions,
            "rebalances": serial.stats.rebalances,
            "cross_component_events": serial.stats.cross_component_events,
            "bit_identical": true
        }));
    }
    println!(
        "parallel engine: {} storm seeds serial-vs-parallel bit-identical",
        seeds.len()
    );
    json!(rows)
}

/// Data pattern for one (driver, iteration) — distinct across drivers so
/// cross-driver corruption cannot cancel out.
fn pattern(driver: usize, iter: usize, n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| ((i * (13 + 2 * driver) + iter * 101) % 251) as u8)
        .collect()
}

/// Message size walk per driver: 4-byte aligned, 4–24 MiB, irregular so
/// planning, size classes, and graph keying all churn.
fn size_at(driver: usize, iter: usize) -> usize {
    4 * MIB + 4 * (((iter * 37987 + driver * 104729) * 1021) % (20 * MIB / 4))
}

struct DriverOutcome {
    puts: u64,
    escalations: u64,
}

/// One seeded storm over one engine with three concurrent drivers.
/// Appends human-readable violation strings; panics (itself a reportable
/// failure) only on corrupted bytes.
fn soak_one(topo: &Arc<Topology>, seed: u64, violations: &mut Vec<String>) -> Value {
    let engine = Engine::new(topo.clone());
    // Always-on telemetry: the bounded ring is the ONLY recorder in the
    // soak. The anomaly engine snapshots it into every black-box dump,
    // and the replay-gate audit walks the same snapshot (sound because
    // the harness asserts zero overwrites below).
    let flight = FlightRecorder::new(FLIGHT_CAPACITY);
    engine.set_recorder(flight.recorder());
    let ctx = UcxContext::new(
        GpuRuntime::new(engine),
        UcxConfig {
            selection: PathSelection::THREE_GPUS_WITH_HOST,
            graph_replay: true,
            ..UcxConfig::default()
        },
    );
    let anomalies = Arc::new(AnomalyEngine::new(
        flight.clone(),
        AnomalyConfig {
            dump_dir: std::env::var_os("MPX_DUMP_DIR")
                .map(|d| std::path::PathBuf::from(d).join(format!("seed-{seed}"))),
            ..AnomalyConfig::default()
        },
    ));
    {
        // Freeze the live registry and residual report into each dump so
        // it is readable without the process that produced it.
        let metrics_ctx = ctx.clone();
        anomalies.set_metrics_source(move || {
            let reg = TelemetryRegistry::new();
            metrics_ctx.fill_registry(&reg);
            reg.snapshot()
        });
        let residual_ctx = ctx.clone();
        anomalies.set_residual_source(move || residual_ctx.residual_report());
    }
    ctx.set_anomaly_sink(anomalies.clone());
    let gpus = topo.gpus();
    // One pair per driver, disjoint endpoints where the 4-GPU node
    // allows, so per-pair health state is single-writer.
    let pairs: [(DeviceId, DeviceId); 3] =
        [(gpus[0], gpus[1]), (gpus[2], gpus[3]), (gpus[1], gpus[3])];
    // The broker drives the remaining ordered pair.
    let broker_pair = (gpus[3], gpus[0]);
    // Protect each driver pair's direct link from kills and flaps: a
    // usable route always survives, so recovery stays bounded by
    // construction and anything unbounded is a harness bug.
    let protect: Vec<LinkId> = pairs
        .iter()
        .chain(std::iter::once(&broker_pair))
        .filter_map(|&(a, b)| topo.link_between(a, b).ok().map(|l| l.id))
        .collect();
    let storm = FaultPlan::random_soak(topo, seed, 0.01, 24, &protect);
    FaultInjector::install(ctx.runtime().engine(), &storm);

    // Quorum rule: register every driver thread before spawning any.
    let threads: Vec<_> = (0..3)
        .map(|d| ctx.runtime().engine().register_thread(format!("chaos{d}")))
        .collect();
    let broker = Broker::new(
        ctx.clone(),
        BrokerConfig::default(),
        vec![TenantSpec::new("soak", 1.0)],
    );
    broker.set_producers(1);
    let sched_thread = ctx.runtime().engine().register_thread("broker-sched");
    let client_thread = ctx.runtime().engine().register_thread("broker-client");
    let escalations = AtomicU64::new(0);
    let hedge_rounds = AtomicU64::new(0);
    let broker_rejected = AtomicU64::new(0);
    let broker_failed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for (driver, thread) in threads.into_iter().enumerate() {
            let ctx = ctx.clone();
            let (src_dev, dst_dev) = pairs[driver];
            let escalations = &escalations;
            let hedge_rounds = &hedge_rounds;
            scope.spawn(move || {
                let mut out = DriverOutcome {
                    puts: 0,
                    escalations: 0,
                };
                for iter in 0..PUTS_PER_DRIVER {
                    let n = size_at(driver, iter);
                    let data = pattern(driver, iter, n);
                    let src = ctx.runtime().alloc_bytes(src_dev, data.clone());
                    let dst = ctx.runtime().alloc_zeroed(dst_dev, n);
                    let rcfg = RecoveryConfig::default();
                    match driver {
                        // Resilient driver: deadline/retry/re-plan loop.
                        0 => {
                            ctx.put_resilient(&thread, &src, &dst, n, &rcfg)
                                .expect("resilient put must survive the storm");
                        }
                        // Plain driver: replay fast path; a stuck
                        // pipeline escalates instead of panicking.
                        1 => {
                            if let Err(TransferError::Stuck { .. }) =
                                ctx.put(&thread, &src, &dst, n)
                            {
                                out.escalations += 1;
                                ctx.put_resilient(&thread, &src, &dst, n, &rcfg)
                                    .expect("escalated put must survive");
                            }
                        }
                        // Hedged driver: race stalled residuals.
                        _ => {
                            let hcfg = HedgeConfig {
                                min_trigger: 1e-5,
                                max_hedges: 4,
                                ..HedgeConfig::default()
                            };
                            match ctx.put_hedged(&thread, &src, &dst, n, &hcfg) {
                                Ok(r) => {
                                    hedge_rounds.fetch_add(r.hedges, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    out.escalations += 1;
                                    ctx.put_resilient(&thread, &src, &dst, n, &rcfg)
                                        .expect("escalated hedge must survive");
                                }
                            }
                        }
                    }
                    assert_eq!(
                        dst.to_vec().expect("readback"),
                        data,
                        "seed {seed} driver {driver} iter {iter}: bytes corrupted"
                    );
                    out.puts += 1;
                }
                escalations.fetch_add(out.escalations, Ordering::Relaxed);
                out
            });
        }
        {
            let broker = broker.clone();
            scope.spawn(move || broker.run(sched_thread));
        }
        {
            let broker = broker.clone();
            let (bsrc, bdst) = broker_pair;
            let broker_rejected = &broker_rejected;
            let broker_failed = &broker_failed;
            scope.spawn(move || {
                let mut tickets = Vec::new();
                for iter in 0..BROKER_SUBMITS {
                    let n = MIB + 4 * ((iter * 2411) % (7 * MIB / 4));
                    match broker.submit("soak", bsrc, bdst, n) {
                        Ok(t) => tickets.push(t),
                        Err(_) => {
                            broker_rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Space submissions out so the storm overlaps them.
                    client_thread.sleep(2e-4);
                }
                broker.producer_done();
                for t in tickets {
                    if let Outcome::Failed { .. } = t.wait(&client_thread) {
                        broker_failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(client_thread);
            });
        }
    });

    // The broker's books must balance under the storm: every submission
    // admitted or shed with a typed reason, every admitted ticket
    // resolved, and sheds distinct from transfer failures.
    let bs = broker.stats();
    if !bs.accounting_ok() || !bs.drained_ok() {
        violations.push(format!("seed {seed}: broker accounting violated: {bs:?}"));
    }
    if bs.shed_total() != broker_rejected.load(Ordering::Relaxed) {
        violations.push(format!(
            "seed {seed}: {} sheds but {} door rejections — a shed must surface as a typed \
             rejection, never anything else",
            bs.shed_total(),
            broker_rejected.load(Ordering::Relaxed)
        ));
    }
    if bs.failed != broker_failed.load(Ordering::Relaxed) {
        violations.push(format!(
            "seed {seed}: {} failed tickets but {} Failed outcomes observed — a shed must \
             never be double-counted as a transfer failure",
            bs.failed,
            broker_failed.load(Ordering::Relaxed)
        ));
    }

    let virtual_secs = ctx.runtime().engine().stats().now.as_secs();
    if virtual_secs > MAX_VIRTUAL_SECS {
        violations.push(format!(
            "seed {seed}: soak took {virtual_secs:.3}s virtual (> {MAX_VIRTUAL_SECS}s): unbounded recovery"
        ));
    }
    let h = ctx.health_stats();
    if h.trips != h.resets + h.breakers_open {
        violations.push(format!("seed {seed}: breaker ledger unbalanced: {h:?}"));
    }
    // The gate audit below is only exact over complete history: the
    // ring must not have wrapped. (If this ever fires, FLIGHT_CAPACITY
    // is undersized for the storm, not the transport misbehaving.)
    if flight.overwritten() > 0 {
        violations.push(format!(
            "seed {seed}: flight recorder overwrote {} events; raise FLIGHT_CAPACITY",
            flight.overwritten()
        ));
    }
    let gate_violations = replay_gate_violations(&flight.snapshot());
    if gate_violations > 0 {
        violations.push(format!(
            "seed {seed}: {gate_violations} graph replays served on breaker-open pairs"
        ));
    }

    // Black-box dump audit: the storm must leave a usable incident
    // trail, and every dump must be attributable to an injected fault.
    let dumps = anomalies.dumps();
    let storm_kills = storm
        .events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Kill))
        .count();
    if dumps.is_empty() {
        violations.push(format!(
            "seed {seed}: storm fired no black-box dump ({} trips, {} escalations)",
            h.trips,
            escalations.load(Ordering::Relaxed)
        ));
    }
    let pair_labels: Vec<String> = pairs
        .iter()
        .chain(std::iter::once(&broker_pair))
        .map(|&(a, b)| format!("{a}->{b}"))
        .collect();
    for d in &dumps {
        if !STORM_CLASSES.contains(&d.trigger.as_str()) {
            violations.push(format!(
                "seed {seed}: dump #{} has trigger {:?} no storm fault can cause",
                d.seq, d.trigger
            ));
        }
        if d.cause.contains("dead_link=true") && storm_kills == 0 {
            violations.push(format!(
                "seed {seed}: dump #{} blames a dead link but the storm scheduled no kill",
                d.seq
            ));
        }
        if d.trigger.starts_with("breaker.") {
            match (&d.pair, d.path) {
                (Some(pair), Some(_)) if pair_labels.iter().any(|p| p == pair) => {}
                _ => violations.push(format!(
                    "seed {seed}: breaker dump #{} lacks a driver pair/path (pair={:?} path={:?})",
                    d.seq, d.pair, d.path
                )),
            }
            if !d.cause.contains("why=") {
                violations.push(format!(
                    "seed {seed}: breaker dump #{} cause {:?} carries no breaker reason",
                    d.seq, d.cause
                ));
            }
        }
    }
    if h.trips > 0 && !dumps.iter().any(|d| d.trigger.starts_with("breaker.")) {
        violations.push(format!(
            "seed {seed}: {} breaker trips but no breaker dump",
            h.trips
        ));
    }
    println!(
        "{seed:>6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9.2} {:>10}",
        3 * PUTS_PER_DRIVER as u64,
        escalations.load(Ordering::Relaxed),
        h.trips,
        h.resets,
        h.breakers_open,
        h.replays_gated,
        h.hedges,
        dumps.len(),
        virtual_secs * 1e3,
        if gate_violations == 0 {
            "ok"
        } else {
            "VIOLATED"
        },
    );
    json!({
        "seed": seed,
        "puts": 3 * PUTS_PER_DRIVER as u64,
        "escalations": escalations.load(Ordering::Relaxed),
        "trips": h.trips,
        "retrips": h.retrips,
        "resets": h.resets,
        "probes": h.probes,
        "breakers_open": h.breakers_open,
        "replays_gated": h.replays_gated,
        "hedges": h.hedges,
        "hedge_wins": h.hedge_wins,
        "hedge_rounds_observed": hedge_rounds.load(Ordering::Relaxed),
        "virtual_secs": virtual_secs,
        "replay_gate_violations": gate_violations,
        "dumps": dumps.len(),
        "dump_classes": {
            let mut classes: Vec<&str> = dumps.iter().map(|d| d.trigger.as_str()).collect();
            classes.sort_unstable();
            classes.dedup();
            classes
        },
        "ring_events_recorded": flight.events_recorded(),
        "ring_overwritten": flight.overwritten(),
        "broker": json!({
            "submitted": bs.submitted,
            "admitted": bs.admitted,
            "shed": bs.shed_total(),
            "completed": bs.completed,
            "failed": bs.failed,
        }),
    })
}

/// Counts compiled-graph replay spans issued on a pair while one of the
/// pair's breakers was open: from each `breaker.trip`/`breaker.retrip`
/// instant until the matching `breaker.reset` (or forever if the storm
/// ends with the breaker still open), no `graph.replay` span may START
/// on that pair's track. Health instants and replay spans share the
/// `pair:src->dst` track naming and the engine's virtual clock, so the
/// comparison is exact.
fn replay_gate_violations(events: &[Event]) -> u64 {
    // (track, path) -> open intervals [start, end).
    let mut open: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    let mut intervals: std::collections::HashMap<String, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    let path_of = |detail: &str| -> String {
        detail
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("path="))
            .unwrap_or("?")
            .to_string()
    };
    for e in events {
        let Event::Instant(i) = e else { continue };
        if i.phase != Phase::Health {
            continue;
        }
        let key = (i.track.clone(), path_of(&i.detail));
        if i.name.starts_with("breaker.trip") || i.name.starts_with("breaker.retrip") {
            open.entry(key).or_insert(i.at);
        } else if i.name.starts_with("breaker.reset") {
            if let Some(start) = open.remove(&key) {
                intervals.entry(key.0).or_default().push((start, i.at));
            }
        }
    }
    for ((track, _), start) in open {
        intervals.entry(track).or_default().push((start, f64::MAX));
    }
    let mut bad = 0u64;
    for e in events {
        let Event::Span(s) = e else { continue };
        if s.phase != Phase::GraphReplay {
            continue;
        }
        if let Some(windows) = intervals.get(&s.track) {
            if windows.iter().any(|&(a, b)| s.start >= a && s.start < b) {
                bad += 1;
            }
        }
    }
    bad
}

/// Two-regime hedged tail latency. Healthy: 100 hedged PUTs on a clean
/// fabric. Degraded: the direct link drops to 5% *after* parameters were
/// probed (stale plan), under a one-strike breaker with a long open
/// window — the first PUT blows its trigger and hedges, the drift
/// feedback re-probes the pair, and every later PUT plans around the
/// sick path. p99 therefore measures the supervised steady state, and
/// the acceptance bound is p99(degraded) ≤ 2 × p99(healthy).
fn tail_latency_phase(topo: &Arc<Topology>, violations: &mut Vec<String>) -> Value {
    const SAMPLES: usize = 100;
    let n = 16 * MIB;
    let hcfg = HedgeConfig {
        min_trigger: 1e-5,
        ..HedgeConfig::default()
    };

    let run = |degrade: bool| -> (Vec<f64>, u64) {
        let ctx = UcxContext::new(
            GpuRuntime::new(Engine::new(topo.clone())),
            UcxConfig {
                selection: PathSelection::THREE_GPUS_WITH_HOST,
                health: HealthConfig {
                    failure_threshold: 1,
                    open_window: 10.0,
                    ..HealthConfig::default()
                },
                ..UcxConfig::default()
            },
        );
        let gpus = topo.gpus();
        // Probe and plan against the healthy fabric first, so the
        // degradation lands on a *stale* plan — the regime hedging
        // exists for.
        ctx.plan_for(gpus[0], gpus[1], n).expect("warm plan");
        if degrade {
            let link = topo.link_between(gpus[0], gpus[1]).expect("direct").id;
            let fault = FaultPlan::empty().with(0.0, link, FaultKind::Degrade { factor: 0.05 });
            FaultInjector::install(ctx.runtime().engine(), &fault);
            ctx.runtime().engine().run_until(SimTime::from_secs(1e-9));
        }
        let thread = ctx.runtime().engine().register_thread(if degrade {
            "tail-degraded"
        } else {
            "tail-healthy"
        });
        let c = ctx.clone();
        std::thread::spawn(move || {
            let mut elapsed = Vec::with_capacity(SAMPLES);
            let mut hedges = 0u64;
            for iter in 0..SAMPLES {
                let data = pattern(7, iter, n);
                let src = c.runtime().alloc_bytes(gpus[0], data.clone());
                let dst = c.runtime().alloc_zeroed(gpus[1], n);
                let r = c
                    .put_hedged(&thread, &src, &dst, n, &hcfg)
                    .expect("tail-latency put");
                assert_eq!(
                    dst.to_vec().expect("readback"),
                    data,
                    "tail bytes corrupted"
                );
                elapsed.push(r.elapsed);
                hedges += r.hedges;
            }
            (elapsed, hedges)
        })
        .join()
        .expect("tail driver")
    };

    let p99 = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let idx = ((0.99 * samples.len() as f64).ceil() as usize).min(samples.len()) - 1;
        samples[idx]
    };
    let (mut healthy, _) = run(false);
    let (mut degraded, degraded_hedges) = run(true);
    let (h99, d99) = (p99(&mut healthy), p99(&mut degraded));
    let ratio = d99 / h99;
    if degraded_hedges == 0 {
        violations.push("tail latency: degraded regime never hedged".into());
    }
    if ratio > 2.0 {
        violations.push(format!(
            "tail latency: degraded p99 {:.1} us > 2x healthy p99 {:.1} us ({ratio:.2}x)",
            d99 * 1e6,
            h99 * 1e6
        ));
    }
    println!(
        "hedge tail: healthy p99 {:.1} us, degraded p99 {:.1} us ({ratio:.2}x, bound 2.00x), degraded hedges {degraded_hedges}",
        h99 * 1e6,
        d99 * 1e6,
    );
    json!({
        "samples": SAMPLES,
        "bytes": n,
        "healthy_p99_secs": h99,
        "degraded_p99_secs": d99,
        "ratio": ratio,
        "degraded_hedges": degraded_hedges,
    })
}
