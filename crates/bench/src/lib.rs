//! # mpx-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig4_theta` | Fig. 4: θ (message-fraction) distribution across paths vs message size |
//! | `fig5_bw` | Fig. 5: unidirectional BW panels (Beluga/Narval × path sets × window 1/16) |
//! | `fig6_bibw` | Fig. 6: bidirectional BW panels |
//! | `fig7_collectives` | Fig. 7: Alltoall/Allreduce latency speedups (+ model prediction) |
//! | `fig_replay` | extension: interpreted vs compiled-graph replay BW (window 16) |
//! | `fig8_internode` | extension: inter-node multi-rail bandwidth |
//! | `fig9_contention` | extension: loaded patterns under blind vs joint planning |
//! | `table_error` | headline numbers: mean prediction error, max speedups, Algorithm-1 overhead |
//! | `ablations` | chunk law, pipelining, contention, collectives, radix, windows, sensitivity, DGX |
//!
//! Every binary prints aligned text tables and writes machine-readable
//! JSON into `results/` next to the workspace root. Criterion
//! micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mpx_omb::Series;
use std::fs;
use std::path::PathBuf;

/// Where experiment JSON lands (workspace-root `results/`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MPX_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes `value` as JSON under `results/<name>.json`.
pub fn emit_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    fs::write(&path, json).expect("write results");
    println!("[wrote {}]", path.display());
}

/// Pretty-prints one figure panel: sizes as rows, series as columns.
/// `unit` converts raw values for display (e.g. `1e9` for GB/s).
pub fn print_panel(title: &str, panel: &[Series], unit: f64, unit_name: &str) {
    println!("\n== {title} ({unit_name}) ==");
    print!("{:>10}", "size");
    for s in panel {
        print!("{:>14}", s.label);
    }
    println!();
    let sizes: Vec<usize> = panel
        .first()
        .map(|s| s.points.iter().map(|p| p.bytes).collect())
        .unwrap_or_default();
    for n in sizes {
        print!("{:>10}", mpx_topo::units::format_bytes(n));
        for s in panel {
            match s.at(n) {
                Some(v) => print!("{:>14.2}", v / unit),
                None => print!("{:>14}", "-"),
            }
        }
        println!();
    }
}

/// Quick/full switch: figure binaries run a reduced sweep unless
/// `--full` is passed (or `MPX_FULL=1`).
pub fn full_run() -> bool {
    std::env::args().any(|a| a == "--full") || std::env::var("MPX_FULL").is_ok_and(|v| v == "1")
}

/// The paper's message sweep (2 MB – 512 MB), truncated to 2–64 MB for
/// quick runs.
pub fn paper_sizes() -> Vec<usize> {
    use mpx_topo::units::MIB;
    let max = if full_run() { 512 * MIB } else { 64 * MIB };
    mpx_omb::size_ladder(2 * MIB, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_start_at_2mib() {
        assert_eq!(paper_sizes()[0], 2 << 20);
        assert!(paper_sizes().len() >= 6);
    }

    #[test]
    fn results_dir_exists_after_call() {
        assert!(results_dir().is_dir());
    }
}
