//! Pipeline-engine ablations in host time *and* virtual time:
//! pipelined vs un-pipelined staged execution, and the per-selection
//! cost of executing one planned transfer end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpx_gpu::GpuRuntime;
use mpx_model::{PipelineMode, Planner, PlannerConfig};
use mpx_sim::Engine;
use mpx_topo::path::enumerate_paths;
use mpx_topo::{presets, PathSelection};
use mpx_ucx::execute_plan;
use std::hint::black_box;
use std::sync::Arc;

fn bench_transfer(c: &mut Criterion) {
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let n = 64 << 20;
    let mut g = c.benchmark_group("pipeline");

    for (label, sel) in [
        ("direct", PathSelection::DIRECT_ONLY),
        ("2_GPUs", PathSelection::TWO_GPUS),
        ("3_GPUs", PathSelection::THREE_GPUS),
        ("3_GPUs_w_host", PathSelection::THREE_GPUS_WITH_HOST),
    ] {
        let planner = Planner::new(topo.clone());
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        g.bench_with_input(BenchmarkId::new("execute_64M", label), &(), |b, _| {
            b.iter(|| {
                let rt = GpuRuntime::new(Engine::new(topo.clone()));
                let src = rt.alloc(gpus[0], n);
                let dst = rt.alloc(gpus[1], n);
                execute_plan(&rt, &plan, &paths, &src, &dst, 0);
                rt.engine().run_until_idle();
                black_box(rt.engine().now())
            })
        });
    }

    // Ablation: virtual completion time, pipelined vs monolithic legs.
    for (label, mode) in [
        ("pipelined", PipelineMode::Pipelined),
        ("unpipelined", PipelineMode::Unpipelined),
    ] {
        let cfg = PlannerConfig {
            mode,
            ..PlannerConfig::default()
        };
        let planner = Planner::with_config(topo.clone(), cfg);
        let sel = PathSelection::THREE_GPUS;
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        g.bench_with_input(BenchmarkId::new("mode", label), &(), |b, _| {
            b.iter(|| {
                let rt = GpuRuntime::new(Engine::new(topo.clone()));
                let src = rt.alloc(gpus[0], n);
                let dst = rt.alloc(gpus[1], n);
                execute_plan(&rt, &plan, &paths, &src, &dst, 0);
                rt.engine().run_until_idle();
                black_box(rt.engine().now())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
