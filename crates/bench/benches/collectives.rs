//! Collective ablations: K-nomial vs ring allreduce and Bruck vs
//! pairwise alltoall, under single-path and multi-path transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpx_omb::{osu_allreduce, osu_alltoall, AllreduceAlgo, AlltoallAlgo, CollectiveConfig};
use mpx_topo::{presets, PathSelection};
use mpx_ucx::{TuningMode, UcxConfig};
use std::hint::black_box;
use std::sync::Arc;

fn cfg(mode: TuningMode) -> UcxConfig {
    UcxConfig {
        mode,
        selection: PathSelection::THREE_GPUS,
        ..UcxConfig::default()
    }
}

fn bench_collectives(c: &mut Criterion) {
    let topo = Arc::new(presets::beluga());
    let coll = CollectiveConfig {
        ranks: 4,
        iterations: 1,
        warmup: 1,
    };
    let n = 16 << 20;
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);

    for (label, algo) in [
        ("rabenseifner", AllreduceAlgo::Rabenseifner),
        ("ring", AllreduceAlgo::Ring),
    ] {
        for mode in [TuningMode::SinglePath, TuningMode::Dynamic] {
            g.bench_with_input(
                BenchmarkId::new(format!("allreduce_{label}"), format!("{mode:?}")),
                &(),
                |b, _| b.iter(|| black_box(osu_allreduce(&topo, cfg(mode), n, algo, coll))),
            );
        }
    }
    for (label, algo) in [
        ("bruck", AlltoallAlgo::Bruck),
        ("pairwise", AlltoallAlgo::Pairwise),
    ] {
        for mode in [TuningMode::SinglePath, TuningMode::Dynamic] {
            g.bench_with_input(
                BenchmarkId::new(format!("alltoall_{label}"), format!("{mode:?}")),
                &(),
                |b, _| b.iter(|| black_box(osu_alltoall(&topo, cfg(mode), n / 4, algo, coll))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
