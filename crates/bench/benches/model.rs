//! Model micro-costs — substantiates the paper's claim that "the runtime
//! overhead of the model-driven framework is negligible for large
//! message sizes (less than 0.1% of the total execution time)":
//! a 64 MB multi-path transfer takes ~500 µs of node time, so the plan
//! computation must stay in the low microseconds.
//!
//! Also the ablation "closed form (Eq. 24) vs numeric bisection".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpx_model::{optimal_shares, optimal_shares_bisection, OmegaDelta, Planner};
use mpx_topo::{presets, PathSelection};
use std::hint::black_box;
use std::sync::Arc;

fn bench_algorithm1(c: &mut Criterion) {
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let mut g = c.benchmark_group("algorithm1");

    g.bench_function("plan_uncached_4paths_64M", |b| {
        let mut n = 64 << 20;
        b.iter(|| {
            // Vary n to defeat the cache: every call computes.
            n += 4;
            let planner = Planner::new(topo.clone());
            black_box(
                planner
                    .plan(gpus[0], gpus[1], n, PathSelection::THREE_GPUS_WITH_HOST)
                    .unwrap(),
            )
        })
    });

    g.bench_function("plan_cached_4paths_64M", |b| {
        let planner = Planner::new(topo.clone());
        let _ = planner
            .plan(
                gpus[0],
                gpus[1],
                64 << 20,
                PathSelection::THREE_GPUS_WITH_HOST,
            )
            .unwrap();
        b.iter(|| {
            black_box(
                planner
                    .plan(
                        gpus[0],
                        gpus[1],
                        64 << 20,
                        PathSelection::THREE_GPUS_WITH_HOST,
                    )
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let paths: Vec<OmegaDelta> = vec![
        OmegaDelta {
            omega: 1.0 / 48e9,
            delta: 3e-6,
        },
        OmegaDelta {
            omega: 1.05 / 48e9,
            delta: 9e-6,
        },
        OmegaDelta {
            omega: 1.05 / 48e9,
            delta: 9e-6,
        },
        OmegaDelta {
            omega: 1.0 / 6e9,
            delta: 20e-6,
        },
    ];
    let mut g = c.benchmark_group("optimizer");
    for n in [1e6, 64e6, 512e6] {
        g.bench_with_input(BenchmarkId::new("closed_form", n as u64), &n, |b, &n| {
            b.iter(|| black_box(optimal_shares(&paths, n)))
        });
        g.bench_with_input(BenchmarkId::new("bisection", n as u64), &n, |b, &n| {
            b.iter(|| black_box(optimal_shares_bisection(&paths, n)))
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use mpx_model::{plan_concurrent, predict_allreduce_knomial, ConcurrentTransfer};
    use mpx_topo::params::extract_all;
    use mpx_topo::path::enumerate_paths;

    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let planner = Planner::new(topo.clone());
    let mut g = c.benchmark_group("extensions");

    g.bench_function("collective_predict_allreduce_64M", |b| {
        b.iter(|| {
            black_box(
                predict_allreduce_knomial(
                    &planner,
                    &gpus,
                    64 << 20,
                    PathSelection::THREE_GPUS,
                    &|bytes| bytes as f64 / 130e9,
                )
                .unwrap(),
            )
        })
    });

    let pattern: Vec<ConcurrentTransfer> = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)]
        .iter()
        .map(|&(s, d)| {
            let paths =
                enumerate_paths(&topo, gpus[s], gpus[d], PathSelection::THREE_GPUS).unwrap();
            let params = extract_all(&topo, &paths).unwrap();
            ConcurrentTransfer {
                paths,
                params,
                n: 64 << 20,
            }
        })
        .collect();
    g.bench_function("joint_plan_ring4_64M", |b| {
        b.iter(|| black_box(plan_concurrent(&planner, &topo, &pattern, 8)))
    });
    g.finish();
}

criterion_group!(benches, bench_algorithm1, bench_optimizer, bench_extensions);
criterion_main!(benches);
