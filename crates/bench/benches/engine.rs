//! Simulator throughput: how much host time one simulated transfer or a
//! batch of contending flows costs. Keeps the experiment harness honest —
//! the figure sweeps run thousands of these.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpx_sim::{Engine, FlowSpec, OnComplete};
use mpx_topo::presets;
use std::hint::black_box;
use std::sync::Arc;

fn bench_flows(c: &mut Criterion) {
    let topo = Arc::new(presets::beluga());
    let gpus = topo.gpus();
    let mut g = c.benchmark_group("engine");

    for flows in [1usize, 8, 64, 512] {
        g.bench_with_input(
            BenchmarkId::new("contending_flows", flows),
            &flows,
            |b, &flows| {
                b.iter(|| {
                    let eng = Engine::new(topo.clone());
                    let link = topo.link_between(gpus[0], gpus[1]).unwrap().id;
                    for _ in 0..flows {
                        eng.start_flow(FlowSpec::new(vec![link], 1 << 20), OnComplete::Nothing);
                    }
                    eng.run_until_idle();
                    black_box(eng.now())
                })
            },
        );
    }

    g.bench_function("staged_pipeline_32_chunks", |b| {
        let hm = topo.host_memories()[0];
        let down = vec![
            topo.link_between(gpus[0], hm).unwrap().id,
            topo.link_between(hm, hm).unwrap().id,
        ];
        let up = vec![
            topo.link_between(hm, hm).unwrap().id,
            topo.link_between(hm, gpus[1]).unwrap().id,
        ];
        b.iter(|| {
            let eng = Engine::new(topo.clone());
            for c in 0..32 {
                eng.start_flow(
                    FlowSpec::new(down.clone(), 1 << 20).labeled(format!("d{c}")),
                    OnComplete::Nothing,
                );
                eng.start_flow(
                    FlowSpec::new(up.clone(), 1 << 20).labeled(format!("u{c}")),
                    OnComplete::Nothing,
                );
            }
            eng.run_until_idle();
            black_box(eng.stats().events_processed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
