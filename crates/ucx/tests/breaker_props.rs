//! Property tests of the per-path circuit-breaker state machine.
//!
//! The supervision layer's correctness rests on three claims that are
//! easy to state and hard to hand-enumerate: the lifetime counters
//! balance exactly (`trips == resets + breakers_open`, re-trips
//! counted separately), an Open path always re-probes on the first
//! admission after its window (never later, never skipped), and
//! HalfOpen can never livelock — a bounded number of clean completions
//! always closes the breaker. These tests drive a supervisor with
//! arbitrary interleavings of failures, hard trips, successes, and
//! admission sweeps across several pairs and paths, with virtual time
//! advancing by arbitrary steps, and check all three claims at the end
//! of every run.

use mpx_model::PairKey;
use mpx_topo::DeviceId;
use mpx_ucx::{BreakerEvent, BreakerState, HealthConfig, HealthSupervisor};
use proptest::prelude::*;

const PAIRS: usize = 2;
const PATHS: usize = 3;

fn pair(i: usize) -> PairKey {
    (DeviceId(0), DeviceId(1 + i as u32), 3, false)
}

/// One step of the driver: a breaker signal or a time advance. The
/// supervisor itself never reads a clock — callers pass `now` — so the
/// generator owns virtual time and only moves it forward.
#[derive(Debug, Clone, Copy)]
enum Op {
    Failure { pair: usize, path: usize },
    Trip { pair: usize, path: usize },
    Success { pair: usize, path: usize },
    Admissions { pair: usize },
    Advance { millis: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..PAIRS, 0..PATHS).prop_map(|(pair, path)| Op::Failure { pair, path }),
        (0..PAIRS, 0..PATHS).prop_map(|(pair, path)| Op::Trip { pair, path }),
        (0..PAIRS, 0..PATHS).prop_map(|(pair, path)| Op::Success { pair, path }),
        (0..PAIRS).prop_map(|pair| Op::Admissions { pair }),
        (1..400u32).prop_map(|millis| Op::Advance { millis }),
    ]
}

fn config_strategy() -> impl Strategy<Value = HealthConfig> {
    (1..4u32, 1..4u32, 1..10u32).prop_map(|(failure_threshold, half_open_trials, window_tenths)| {
        HealthConfig {
            enabled: true,
            failure_threshold,
            open_window: f64::from(window_tenths) * 0.1,
            half_open_trials,
            ..HealthConfig::default()
        }
    })
}

/// Replays `ops` against a fresh supervisor and returns it with the
/// final virtual time.
fn drive(cfg: HealthConfig, ops: &[Op]) -> (HealthSupervisor, f64) {
    let sup = HealthSupervisor::new(cfg);
    let mut now = 0.0f64;
    for &op in ops {
        match op {
            Op::Failure { pair: p, path } => {
                sup.note_failure(pair(p), path, now);
            }
            Op::Trip { pair: p, path } => {
                sup.trip(pair(p), path, now);
            }
            Op::Success { pair: p, path } => {
                sup.note_success(pair(p), path);
            }
            Op::Admissions { pair: p } => {
                sup.admissions(pair(p), PATHS, now);
            }
            Op::Advance { millis } => now += f64::from(millis) * 1e-3,
        }
    }
    (sup, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `trips == resets + breakers_open` after any signal interleaving:
    /// every Closed→Open transition is still accounted for — either the
    /// breaker closed again (a reset) or it is still non-closed. Re-trips
    /// (HalfOpen→Open) deliberately stay out of the balance, and the
    /// `breakers_open` atomic must agree with a full scan of the map.
    #[test]
    fn trip_and_reset_counters_balance_exactly(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let (sup, _) = drive(cfg, &ops);
        let s = sup.stats();
        prop_assert_eq!(
            s.trips, s.resets + s.breakers_open,
            "unbalanced ledger: {:?}", s
        );
        let scanned = (0..PAIRS)
            .flat_map(|p| (0..PATHS).map(move |i| (p, i)))
            .filter(|&(p, i)| sup.breaker_state(pair(p), i) != BreakerState::Closed)
            .count() as u64;
        prop_assert_eq!(
            s.breakers_open, scanned,
            "breakers_open atomic drifted from the map"
        );
    }

    /// An Open path re-probes on the first admission after its window:
    /// it is excluded while the window runs and flips to HalfOpen
    /// (reported in `probing`) exactly when the window has passed — an
    /// open breaker can delay traffic, never strand it.
    #[test]
    fn open_paths_reprobe_within_one_window(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let (sup, now) = drive(cfg, &ops);
        for p in 0..PAIRS {
            let open: Vec<usize> = (0..PATHS)
                .filter(|&i| sup.breaker_state(pair(p), i) == BreakerState::Open)
                .collect();
            if open.is_empty() {
                continue;
            }
            // Inside the window the path may be excluded, never lost.
            let during = sup.admissions(pair(p), PATHS, now);
            for &i in &open {
                prop_assert!(
                    during.excluded.contains(&i) || during.probing.contains(&i),
                    "open path {i} vanished from admissions"
                );
            }
            // One full window later every still-open path must probe.
            let later = sup.admissions(pair(p), PATHS, now + cfg.open_window);
            for &i in &open {
                if during.excluded.contains(&i) {
                    prop_assert!(
                        later.probing.contains(&i),
                        "open path {i} did not re-probe after its window"
                    );
                    prop_assert_eq!(
                        sup.breaker_state(pair(p), i),
                        BreakerState::HalfOpen
                    );
                }
            }
        }
    }

    /// HalfOpen never livelocks: from any reachable state, at most
    /// `half_open_trials` consecutive clean completions close every
    /// half-open breaker, and exactly one of those completions reports
    /// the Reset event. Afterwards the supervisor can return to quiet —
    /// the fast path is reachable again from every state.
    #[test]
    fn half_open_closes_after_bounded_successes(
        cfg in config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let (sup, now) = drive(cfg, &ops);
        // Force every breaker out of Open first (probe re-admission),
        // then feed clean completions.
        let mut t = now;
        for p in 0..PAIRS {
            t += cfg.open_window;
            sup.admissions(pair(p), PATHS, t);
            for i in 0..PATHS {
                prop_assert_ne!(sup.breaker_state(pair(p), i), BreakerState::Open);
            }
        }
        for p in 0..PAIRS {
            for i in 0..PATHS {
                let mut resets = 0u32;
                for _ in 0..cfg.half_open_trials {
                    if sup.note_success(pair(p), i) == BreakerEvent::Reset {
                        resets += 1;
                    }
                }
                prop_assert_eq!(
                    sup.breaker_state(pair(p), i),
                    BreakerState::Closed,
                    "breaker ({p},{i}) livelocked in HalfOpen"
                );
                prop_assert!(resets <= 1, "breaker ({p},{i}) reset twice");
            }
        }
        let s = sup.stats();
        prop_assert_eq!(s.breakers_open, 0);
        prop_assert_eq!(s.trips, s.resets, "ledger open after full recovery");
    }
}
