//! Data-equivalence guarantees of the compiled-graph replay fast path.
//!
//! Three contracts from DESIGN §4e, verified end to end:
//!
//! 1. A replayed transfer is bit-identical to the interpreted pipeline's
//!    output for the same plan — capture changes CPU cost, never bytes.
//! 2. Drift invalidation evicts compiled graphs: after an invalidate,
//!    the next put re-captures instead of replaying a stale schedule
//!    (and `recalibrate` clears the whole graph cache).
//! 3. The fault-matrix fallback rule: `put_resilient` stays fully
//!    interpreted even with `graph_replay` on, recovered bytes are
//!    intact, and replay resumes cleanly once the fabric is healthy.

use mpx_gpu::GpuRuntime;
use mpx_sim::{Engine, FaultInjector, FaultKind, FaultPlan};
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::PathSelection;
use mpx_ucx::{RecoveryConfig, UcxConfig, UcxContext};
use std::sync::Arc;

fn ctx_with(selection: PathSelection, graph_replay: bool) -> UcxContext {
    let topo = Arc::new(presets::beluga());
    UcxContext::new(
        GpuRuntime::new(Engine::new(topo)),
        UcxConfig {
            selection,
            graph_replay,
            ..UcxConfig::default()
        },
    )
}

/// Interpreted and replayed executions of the same plan land identical
/// bytes — on the 3-path + host-staged selection, the richest graph
/// shape (direct copy plus two chunked staging rings).
#[test]
fn replayed_transfers_match_interpreted_bit_for_bit() {
    let sel = PathSelection::THREE_GPUS_WITH_HOST;
    let interp = ctx_with(sel, false);
    let replay = ctx_with(sel, true);
    let n = 24 * MIB + 20;
    let data: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();

    let gpus = interp.runtime().engine().topology().gpus();
    let src_i = interp.runtime().alloc_bytes(gpus[0], data.clone());
    let dst_i = interp.runtime().alloc_zeroed(gpus[1], n);
    let h = interp
        .put_async(&src_i, &dst_i, n)
        .expect("interpreted put");
    interp.runtime().engine().run_until_idle();
    assert!(h.is_complete());
    let reference = dst_i.to_vec().unwrap();
    assert_eq!(reference, data);
    assert_eq!(interp.graph_stats().replays, 0, "graph path must be off");

    let gpus = replay.runtime().engine().topology().gpus();
    let src_r = replay.runtime().alloc_bytes(gpus[0], data.clone());
    for round in 0..3 {
        let dst_r = replay.runtime().alloc_zeroed(gpus[1], n);
        let h = replay
            .put_replayed(&src_r, &dst_r, n)
            .expect("replayed put");
        replay.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(
            dst_r.to_vec().unwrap(),
            reference,
            "round {round}: replayed bytes diverge from interpreted bytes"
        );
    }
    let g = replay.graph_stats();
    assert_eq!((g.captures, g.replays, g.fallbacks), (1, 3, 0), "{g:?}");
}

/// After a drift invalidation the evicted graph must never replay
/// again: the next put re-captures. `recalibrate` does the same for
/// every pair at once.
#[test]
fn invalidation_forces_recapture_not_stale_replay() {
    let ctx = ctx_with(PathSelection::THREE_GPUS, true);
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 16 * MIB;
    let data: Vec<u8> = (0..n).map(|i| (i * 7 % 253) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);

    let put = |expect: &str| {
        let h = ctx.put_replayed(&src, &dst, n).expect(expect);
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(dst.to_vec().unwrap(), data, "{expect}: bytes corrupted");
    };

    put("capture");
    put("first replay");
    let g = ctx.graph_stats();
    assert_eq!((g.captures, g.replays), (1, 2), "{g:?}");

    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    assert!(
        ctx.record_observation(gpus[0], gpus[1], n, plan.predicted_bandwidth * 10.0),
        "10x drift must purge the pair"
    );
    assert_eq!(ctx.graph_stats().invalidations, 1);

    put("post-invalidate put");
    let g = ctx.graph_stats();
    assert_eq!(
        (g.captures, g.replays),
        (2, 3),
        "put after invalidate must re-capture, not replay stale: {g:?}"
    );

    ctx.recalibrate();
    put("post-recalibrate put");
    let g = ctx.graph_stats();
    assert_eq!(
        g.captures, 3,
        "recalibrate must clear the whole graph cache: {g:?}"
    );
    assert_eq!(g.fallbacks, 0, "{g:?}");
}

/// The fault matrix's fallback rule end to end: warm the graph cache,
/// kill a path mid-`put_resilient` (which is interpreted by design —
/// its re-plans would invalidate any captured schedule), verify the
/// recovered bytes, then flap a link and confirm replay resumes with
/// intact data once the outage passes.
#[test]
fn fault_matrix_fallback_keeps_data_equivalence() {
    let ctx = ctx_with(PathSelection::THREE_GPUS, true);
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 16 * MIB;

    // Warm: compile + replay while the fabric is healthy.
    let warm: Vec<u8> = (0..n).map(|i| (i * 11 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], warm.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    for _ in 0..2 {
        let h = ctx.put_replayed(&src, &dst, n).expect("warm put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
    }
    assert_eq!(dst.to_vec().unwrap(), warm);
    let warm_stats = ctx.graph_stats();
    assert_eq!((warm_stats.captures, warm_stats.replays), (1, 2));

    // Kill the staged path's forwarding leg mid-transfer; recovery must
    // run interpreted and still land every byte.
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    let fault = FaultPlan::empty().with(
        plan.predicted_time * 0.5,
        paths[1].legs[1].route[0],
        FaultKind::Kill,
    );
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let killed: Vec<u8> = (0..n).map(|i| (i * 13 % 251) as u8).collect();
    src.write(0, &killed);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let (s, d) = (src.clone(), dst.clone());
    let report = std::thread::spawn(move || {
        c.put_resilient(&thread, &s, &d, n, &RecoveryConfig::default())
            .expect("recovery must survive a single path failure")
    })
    .join()
    .unwrap();
    assert!(report.replans >= 1, "kill must force a re-plan");
    assert_eq!(
        dst.to_vec().unwrap(),
        killed,
        "recovered bytes diverge from source"
    );
    assert_eq!(
        ctx.graph_stats().replays,
        warm_stats.replays,
        "put_resilient must stay fully interpreted (no graph replay)"
    );
}

/// After a *transient* outage the fabric restores itself, and the
/// replay fast path must resume with intact data: warm → flap →
/// interpreted recovery → replay again. (A permanent kill cannot be
/// re-probed — capacity 0 is unplannable — which is why resumption is
/// proven on a flap.)
#[test]
fn replay_resumes_with_intact_data_after_transient_flap() {
    let ctx = ctx_with(PathSelection::THREE_GPUS, true);
    let gpus = ctx.runtime().engine().topology().gpus();
    let n = 16 * MIB;

    let warm: Vec<u8> = (0..n).map(|i| (i * 23 % 251) as u8).collect();
    let src = ctx.runtime().alloc_bytes(gpus[0], warm.clone());
    let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
    for _ in 0..2 {
        let h = ctx.put_replayed(&src, &dst, n).expect("warm put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
    }
    assert_eq!(dst.to_vec().unwrap(), warm);
    let warm_stats = ctx.graph_stats();

    // Take the staged path's forwarding leg down briefly mid-transfer.
    let plan = ctx.plan_for(gpus[0], gpus[1], n).unwrap();
    let paths = ctx
        .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
        .unwrap();
    let fault = FaultPlan::empty().with(
        plan.predicted_time * 0.5,
        paths[1].legs[1].route[0],
        FaultKind::Flap {
            duration: plan.predicted_time * 2.0,
        },
    );
    FaultInjector::install(ctx.runtime().engine(), &fault);

    let flapped: Vec<u8> = (0..n).map(|i| (i * 29 % 251) as u8).collect();
    src.write(0, &flapped);
    let thread = ctx.runtime().engine().register_thread("driver");
    let c = ctx.clone();
    let (s, d) = (src.clone(), dst.clone());
    std::thread::spawn(move || {
        c.put_resilient(&thread, &s, &d, n, &RecoveryConfig::default())
            .expect("recovery must ride out a transient flap")
    })
    .join()
    .unwrap();
    assert_eq!(
        dst.to_vec().unwrap(),
        flapped,
        "flap recovery corrupted bytes"
    );

    // The link is back at nominal capacity; replay must pick up again
    // (re-capturing first if recovery's drift feedback evicted the
    // graph) and keep landing exact bytes.
    let after: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
    src.write(0, &after);
    for round in 0..2 {
        let h = ctx.put_replayed(&src, &dst, n).expect("post-flap put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete(), "post-flap replay round {round} stuck");
        assert_eq!(
            dst.to_vec().unwrap(),
            after,
            "post-flap replayed bytes corrupted (round {round})"
        );
    }
    let g = ctx.graph_stats();
    assert!(
        g.replays >= warm_stats.replays + 2,
        "replay must resume after the flap: {g:?}"
    );
}
