//! Multi-thread stress of the sharded planning hot path.
//!
//! Eight rank threads hammer one [`UcxContext`] with plan requests while
//! drift observations concurrently invalidate pairs out from under them.
//! The suite asserts the three properties the sharded-cache redesign
//! must preserve: no deadlock (the tests terminate), no lost
//! invalidation (every `record_observation` that reported a purge is
//! visible in [`UcxContext::cache_stats`]), and deterministic data (a
//! transfer issued through the churned context is still bit-identical).

use mpx_gpu::GpuRuntime;
use mpx_model::{PlannerConfig, SizeClassConfig};
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::DeviceId;
use mpx_ucx::{ParamSource, TuningMode, UcxConfig, UcxContext};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: usize = 400;

fn stress_context() -> UcxContext {
    let topo = Arc::new(presets::beluga());
    UcxContext::new(
        GpuRuntime::new(Engine::new(topo)),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: ParamSource::Probed,
            planner: PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
            ..UcxConfig::default()
        },
    )
}

/// Like [`stress_context`], with the compiled-graph replay fast path on
/// — the configuration the graph-eviction stress exercises. The
/// deliberately fabricated 10× drift reports below would trip the
/// health layer's replay gate (three strikes per pair) and skew the
/// exact replay/capture accounting this suite asserts, so drift-based
/// gating is parked out of reach; replay health under real faults is
/// covered by the chaos soak harness.
fn graph_stress_context() -> UcxContext {
    let topo = Arc::new(presets::beluga());
    UcxContext::new(
        GpuRuntime::new(Engine::new(topo)),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: ParamSource::Probed,
            planner: PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
            graph_replay: true,
            health: mpx_ucx::HealthConfig {
                drift_strikes: u32::MAX,
                ..mpx_ucx::HealthConfig::default()
            },
            ..UcxConfig::default()
        },
    )
}

fn ordered_pairs(ctx: &UcxContext) -> Vec<(DeviceId, DeviceId)> {
    let gpus = ctx.runtime().engine().topology().gpus();
    (0..gpus.len())
        .flat_map(|i| {
            (0..gpus.len())
                .filter(move |&j| j != i)
                .map(move |j| (i, j))
        })
        .map(|(i, j)| (gpus[i], gpus[j]))
        .collect()
}

/// An irregular but deterministic 4-byte-aligned size walk spanning the
/// size-class threshold, so every thread exercises exact keys, class
/// realization, and class misses.
fn size_at(thread: usize, i: usize) -> usize {
    let span = 60 * MIB / 4;
    MIB + 4 * ((i * 37987 + thread * 104729) % span)
}

/// Eight rank threads plan concurrently on one context while every
/// thread periodically reports a wildly drifted bandwidth, forcing its
/// pair's plans and probed parameters to be purged mid-flight. The test
/// completing at all proves the per-shard locking is deadlock-free; the
/// final counter check proves no invalidation was lost.
#[test]
fn concurrent_planning_survives_drift_invalidations() {
    let ctx = stress_context();
    let pairs = ordered_pairs(&ctx);
    assert!(pairs.len() >= THREADS);
    let purges = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (t, &(src, dst)) in pairs.iter().enumerate().take(THREADS) {
            let ctx = ctx.clone();
            let purges = &purges;
            scope.spawn(move || {
                for i in 0..ITERS {
                    let n = size_at(t, i);
                    let plan = ctx.plan_for(src, dst, n).expect("plan under churn");
                    assert_eq!(
                        plan.paths.iter().map(|p| p.share_bytes).sum::<usize>(),
                        n,
                        "plan dropped bytes under concurrent invalidation"
                    );
                    if i % 50 == 49
                        && ctx.record_observation(src, dst, n, plan.predicted_bandwidth * 10.0)
                    {
                        purges.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = ctx.cache_stats();
    let purged = purges.load(Ordering::Relaxed);
    assert!(purged > 0, "drift observations never triggered a purge");
    assert_eq!(
        stats.invalidations, purged,
        "lost invalidation: {purged} purges reported, {} recorded",
        stats.invalidations
    );
    // Every plan request resolves to exactly one of hit / class-hit /
    // miss (a guard fallback re-counts as a miss, not a fourth outcome).
    // record_observation issues one internal plan request per call to
    // fetch the prediction it compares against.
    let observations = (THREADS * (ITERS / 50)) as u64;
    assert_eq!(
        stats.hits + stats.misses + stats.class_hits,
        (THREADS * ITERS) as u64 + observations,
        "every plan request must resolve to exactly one counter outcome"
    );
}

/// Plans computed under invalidation churn must still move bytes
/// bit-identically: after the storm, a fresh transfer through the same
/// context (whose caches now hold a mix of surviving, repopulated, and
/// class-realized plans) is verified against the source pattern.
#[test]
fn data_stays_deterministic_after_cache_churn() {
    let ctx = stress_context();
    let pairs = ordered_pairs(&ctx);

    std::thread::scope(|scope| {
        for (t, &(src, dst)) in pairs.iter().enumerate().take(THREADS) {
            let ctx = ctx.clone();
            scope.spawn(move || {
                for i in 0..100 {
                    let n = size_at(t, i);
                    let plan = ctx.plan_for(src, dst, n).expect("plan");
                    if i % 25 == 24 {
                        ctx.record_observation(src, dst, n, plan.predicted_bandwidth * 10.0);
                    }
                }
            });
        }
    });

    for &(a, b) in &pairs[..2] {
        let n = 8 * MIB + 12345;
        let data: Vec<u8> = (0..n).map(|i| (i * 131 % 251) as u8).collect();
        let src = ctx.runtime().alloc_bytes(a, data.clone());
        let dst = ctx.runtime().alloc_zeroed(b, n);
        let h = ctx.put_async(&src, &dst, n).expect("put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(
            dst.to_vec().expect("readback"),
            data,
            "transfer corrupted after cache churn"
        );
    }
}

/// Drift invalidation must evict *compiled graphs*, not just plans,
/// under the full 8-thread harness: eight rank threads replay their own
/// (pair, size) through blocking PUTs while periodically reporting a
/// 10× drifted bandwidth. With per-thread pairs and sequential puts the
/// counters are exactly determined: every put replays a graph, every
/// purge forces exactly one re-capture, and nothing ever falls back to
/// the interpreter — a stale graph surviving an eviction would surface
/// as a missing capture (and wrong bytes if the schedule drifted).
#[test]
fn graph_eviction_is_not_lost_under_concurrent_replay() {
    const GRAPH_ITERS: usize = 60;
    let ctx = graph_stress_context();
    let pairs = ordered_pairs(&ctx);
    let purges = AtomicU64::new(0);

    // Quorum rule: register every rank thread before spawning any.
    let threads: Vec<_> = (0..THREADS)
        .map(|t| ctx.runtime().engine().register_thread(format!("rank{t}")))
        .collect();

    std::thread::scope(|scope| {
        for (t, sim) in threads.into_iter().enumerate() {
            let (src_dev, dst_dev) = pairs[t];
            let ctx = ctx.clone();
            let purges = &purges;
            scope.spawn(move || {
                // Fixed per-thread size (4-aligned, spanning the class
                // threshold across threads) and persistent buffers, so
                // each thread replays one compiled graph repeatedly.
                let n = (2 * MIB + t * 3 * MIB + 4 * t) & !3;
                let data: Vec<u8> = (0..n).map(|i| ((i * 17 + t) % 251) as u8).collect();
                let src = ctx.runtime().alloc_bytes(src_dev, data.clone());
                let dst = ctx.runtime().alloc_zeroed(dst_dev, n);
                for i in 0..GRAPH_ITERS {
                    ctx.put(&sim, &src, &dst, n).expect("replayed put");
                    assert_eq!(
                        dst.to_vec().expect("readback"),
                        data,
                        "thread {t} iter {i}: replayed bytes corrupted"
                    );
                    // Purge points sit mid-run (never on the final
                    // iteration), so every eviction is followed by at
                    // least one put that must re-capture.
                    if i % 20 == 9 {
                        let plan = ctx.plan_for(src_dev, dst_dev, n).expect("plan");
                        if ctx.record_observation(
                            src_dev,
                            dst_dev,
                            n,
                            plan.predicted_bandwidth * 10.0,
                        ) {
                            purges.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let purged = purges.load(Ordering::Relaxed);
    assert!(purged > 0, "drift observations never purged anything");
    let g = ctx.graph_stats();
    assert_eq!(
        g.replays,
        (THREADS * GRAPH_ITERS) as u64,
        "every put must have replayed a compiled graph: {g:?}"
    );
    assert_eq!(
        g.captures,
        THREADS as u64 + purged,
        "each purge must evict the pair's graph and force one re-capture: {g:?}"
    );
    assert_eq!(g.fallbacks, 0, "no interpreted fallback expected: {g:?}");
    assert_eq!(
        g.invalidations, purged,
        "graph-cache invalidations must match reported purges: {g:?}"
    );
}

/// Stats snapshots are served from atomics and must keep flowing while
/// rank threads hold the planning locks hot. A reader thread takes a
/// large fixed number of snapshots concurrently with the planners and
/// must observe monotonically non-decreasing counters throughout.
#[test]
fn stats_reads_do_not_block_planning() {
    let ctx = stress_context();
    let pairs = ordered_pairs(&ctx);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader_ctx = ctx.clone();
        let reader = scope.spawn(|| {
            let ctx = reader_ctx;
            let mut last = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Relaxed) {
                let s = ctx.cache_stats();
                let total = s.hits + s.misses + s.class_hits;
                assert!(total >= last, "counters went backwards");
                last = total;
                snapshots += 1;
            }
            snapshots
        });

        let planners: Vec<_> = (0..THREADS)
            .map(|t| {
                let ctx = ctx.clone();
                let (src, dst) = pairs[t];
                scope.spawn(move || {
                    for i in 0..ITERS {
                        ctx.plan_for(src, dst, size_at(t, i)).expect("plan");
                    }
                })
            })
            .collect();
        // The reader keeps snapshotting for the planners' entire
        // lifetime; it is released only after they all joined, so every
        // snapshot raced live planning.
        for h in planners {
            h.join().expect("planner panicked");
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = reader.join().expect("stats reader panicked");
        assert!(snapshots > 0, "stats reader never ran");
    });
}
