//! Property tests of size-class *boundary* behavior for plan reuse and
//! graph-cache keying.
//!
//! PR-3 quantization buckets message sizes geometrically; this PR keys
//! compiled transfer graphs by the same classes. A transfer whose size
//! lands exactly on a class edge must resolve to one consistent class —
//! the same one every time, on both sides of the key derivation (planner
//! class entries and [`graph_key`]) — or a replayed graph could be
//! patched with a plan from the neighboring class.

use mpx_gpu::GpuRuntime;
use mpx_model::{Planner, PlannerConfig, SizeClassConfig};
use mpx_sim::Engine;
use mpx_topo::presets;
use mpx_topo::units::MIB;
use mpx_topo::PathSelection;
use mpx_ucx::{graph_key, ParamSource, TuningMode, UcxConfig, UcxContext, CLASS_TAG};
use proptest::prelude::*;
use std::sync::Arc;

/// Smallest size (≥ `exact_below`) belonging to the same class as `n`,
/// found against the real `class_of` by binary search — no float
/// reimplementation that could round differently than production code.
fn class_floor(sc: &SizeClassConfig, n: usize) -> usize {
    let c = sc.class_of(n);
    let (mut lo, mut hi) = (sc.exact_below, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if sc.class_of(mid) >= c {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

fn quantized_context() -> UcxContext {
    let topo = Arc::new(presets::beluga());
    UcxContext::new(
        GpuRuntime::new(Engine::new(topo)),
        UcxConfig {
            mode: TuningMode::Dynamic,
            params: ParamSource::Probed,
            planner: PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
            graph_replay: true,
            ..UcxConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `class_of` is monotone in `n`, and the graph key splits exactly
    /// where the class does: the first byte count of a class and its
    /// predecessor get different keys, while every classmate — edge
    /// included — shares one key.
    #[test]
    fn class_edges_split_graph_keys_consistently(
        n in (8 * MIB)..(256 * MIB),
    ) {
        let sc = SizeClassConfig::ENABLED;
        let edge = class_floor(&sc, n);
        prop_assert_eq!(sc.class_of(edge), sc.class_of(n));

        // Monotone: the predecessor is in a strictly earlier class (or
        // below the threshold entirely).
        if edge > sc.exact_below {
            prop_assert!(sc.class_of(edge - 1) < sc.class_of(edge));
        }

        // The edge size keys with its own class, not the neighbor's,
        // and agrees with every other member of the class.
        prop_assert!(graph_key(&sc, edge) & CLASS_TAG != 0);
        prop_assert_eq!(graph_key(&sc, edge), graph_key(&sc, n));
        prop_assert_ne!(graph_key(&sc, edge), graph_key(&sc, edge - 1));

        // Determinism at the edge: repeated derivations never waver.
        for _ in 0..4 {
            prop_assert_eq!(graph_key(&sc, edge), graph_key(&sc, n));
        }
    }

    /// The `exact_below` threshold is itself a boundary: one byte under
    /// it keys by exact size (no class tag), at it the class key takes
    /// over — and the planner's cache behavior matches (sub-threshold
    /// sizes never consult class entries).
    #[test]
    fn exact_threshold_is_a_hard_edge(delta in 1usize..=4096) {
        let sc = SizeClassConfig::ENABLED;
        let under = sc.exact_below - delta;
        prop_assert_eq!(graph_key(&sc, under), under as u64);
        prop_assert_eq!(graph_key(&sc, under) & CLASS_TAG, 0);
        prop_assert!(graph_key(&sc, sc.exact_below) & CLASS_TAG != 0);

        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let planner = Planner::with_config(
            topo.clone(),
            PlannerConfig {
                size_classes: SizeClassConfig::ENABLED,
                ..PlannerConfig::default()
            },
        );
        let under = under & !3;
        planner
            .plan(gpus[0], gpus[1], under, PathSelection::TWO_GPUS)
            .unwrap();
        planner
            .plan(gpus[0], gpus[1], under, PathSelection::TWO_GPUS)
            .unwrap();
        let s = planner.stats();
        prop_assert_eq!(s.class_hits, 0, "sub-threshold size hit a class entry");
        prop_assert_eq!(s.hits, 1, "repeat of an exact size must hit its exact entry");
    }
}

/// Behavioral edge check through the full context: a transfer sized
/// exactly on a class edge reuses one plan-cache entry *and* one
/// compiled graph across repeats, while its immediate predecessor (one
/// step under the edge) compiles into a distinct pool — no
/// cross-contamination in either direction.
#[test]
fn edge_sizes_reuse_one_graph_and_split_from_neighbors() {
    let ctx = quantized_context();
    let sc = SizeClassConfig::ENABLED;
    let gpus = ctx.runtime().engine().topology().gpus();
    let edge = class_floor(&sc, 32 * MIB) & !3;
    assert_eq!(
        sc.class_of(edge),
        sc.class_of(32 * MIB),
        "aligned edge fell out of the class"
    );
    let neighbor = edge - 4;
    assert_ne!(graph_key(&sc, edge), graph_key(&sc, neighbor));

    for (round, &n) in [edge, neighbor, edge, neighbor, edge].iter().enumerate() {
        let data: Vec<u8> = (0..n).map(|i| ((i + round) * 13 % 251) as u8).collect();
        let src = ctx.runtime().alloc_bytes(gpus[0], data.clone());
        let dst = ctx.runtime().alloc_zeroed(gpus[1], n);
        let h = ctx.put_replayed(&src, &dst, n).expect("replayed put");
        ctx.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(dst.to_vec().unwrap(), data, "round {round} corrupted bytes");
    }

    let g = ctx.graph_stats();
    assert_eq!(
        g.captures, 2,
        "edge and neighbor must compile exactly one graph each: {g:?}"
    );
    assert_eq!(g.replays, 5, "every put must have replayed a graph: {g:?}");
    assert_eq!(g.fallbacks, 0, "no interpreted fallback expected: {g:?}");
}
