//! Runtime parameter calibration (the paper's Dynamic Path Distribution
//! "dynamically compute\[s\] the model's parameters").
//!
//! Datasheet extraction (`mpx_topo::params`) reads each leg's bandwidth
//! off its narrowest link *in isolation*. That misses intra-path
//! resource sharing: a pipelined host-staged transfer drives its
//! device-to-host and host-to-device legs **simultaneously**, and both
//! cross the staging domain's DRAM channel — so each leg sustains only a
//! fair share of it. (This is the Narval pathology behind the paper's
//! Observation 3.)
//!
//! The probe measures instead: it injects one saturating flow per leg
//! *concurrently* on a scratch simulation and fits each leg's effective
//! bandwidth from its steady transfer rate. Latencies (`α`) and the sync
//! overhead (`ε`) keep their extracted values — a latency probe would
//! return the same numbers, since tiny messages don't contend.

use mpx_sim::{Engine, FlowSpec, OnComplete};
use mpx_topo::params::{extract_path_params, LegParams, PathParams};
use mpx_topo::path::TransferPath;
use mpx_topo::{Topology, TopologyError};
use std::sync::Arc;

/// Bytes per probe flow. Large enough that latency is negligible against
/// the transfer time on any realistic link.
pub const PROBE_BYTES: usize = 256 << 20;

/// Measures the effective per-leg bandwidths of `path` with all of its
/// legs active at once. Returns datasheet parameters with the probed
/// `β` values substituted in.
pub fn probe_path_params(
    topo: &Arc<Topology>,
    path: &TransferPath,
) -> Result<PathParams, TopologyError> {
    probe_path_params_with(topo, None, path)
}

/// [`probe_path_params`] against explicit (possibly degraded) link
/// capacities.
pub fn probe_path_params_with(
    topo: &Arc<Topology>,
    capacities: Option<&[f64]>,
    path: &TransferPath,
) -> Result<PathParams, TopologyError> {
    let mut params = extract_path_params(topo, path)?;
    let routes: Vec<Vec<mpx_topo::LinkId>> = path.legs.iter().map(|l| l.route.clone()).collect();
    if path.legs.len() < 2 {
        // A direct path has nothing to contend with itself, but its
        // capacity may still have degraded.
        if capacities.is_some() {
            let rates = probe_concurrent_rates_with(topo, capacities, &routes);
            params.first.beta = rates[0];
        }
        return Ok(params);
    }
    let betas = probe_concurrent_rates_with(topo, capacities, &routes);
    params.first.beta = betas[0];
    if let Some(second) = params.second.as_mut() {
        second.beta = betas[1];
    }
    Ok(params)
}

/// Probes every path of a candidate set.
pub fn probe_all(
    topo: &Arc<Topology>,
    paths: &[TransferPath],
) -> Result<Vec<PathParams>, TopologyError> {
    paths.iter().map(|p| probe_path_params(topo, p)).collect()
}

/// [`probe_all`] against explicit (possibly degraded) link capacities.
pub fn probe_all_with(
    topo: &Arc<Topology>,
    capacities: Option<&[f64]>,
    paths: &[TransferPath],
) -> Result<Vec<PathParams>, TopologyError> {
    paths
        .iter()
        .map(|p| probe_path_params_with(topo, capacities, p))
        .collect()
}

/// Injects one `PROBE_BYTES` flow per route simultaneously on a fresh
/// simulation and returns each route's mean achieved rate (bytes/s).
pub fn probe_concurrent_rates(topo: &Arc<Topology>, routes: &[Vec<mpx_topo::LinkId>]) -> Vec<f64> {
    probe_concurrent_rates_with(topo, None, routes)
}

/// [`probe_concurrent_rates`] against explicit link capacities — used to
/// re-calibrate against a *live* engine whose links have degraded from
/// their datasheet values (`Engine::set_link_capacity`).
pub fn probe_concurrent_rates_with(
    topo: &Arc<Topology>,
    capacities: Option<&[f64]>,
    routes: &[Vec<mpx_topo::LinkId>],
) -> Vec<f64> {
    let eng = Engine::with_tracing(topo.clone(), true);
    if let Some(caps) = capacities {
        for (i, &c) in caps.iter().enumerate() {
            eng.set_link_capacity(mpx_topo::LinkId(i as u32), c);
        }
    }
    for (i, route) in routes.iter().enumerate() {
        eng.start_flow(
            FlowSpec::new(route.clone(), PROBE_BYTES).labeled(format!("probe{i}")),
            OnComplete::Nothing,
        );
    }
    eng.run_until_idle();
    let trace = eng.take_trace();
    routes
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let label = format!("probe{i}");
            let rec = trace
                .iter()
                .find(|r| r.label == label)
                .expect("probe flow traced");
            rec.bytes as f64 / rec.completed.secs_since(rec.activated)
        })
        .collect()
}

/// A probed [`LegParams`] for a single route in isolation (used by tests
/// and the calibration example to cross-check `mpx_model::fit_hockney`).
pub fn probe_leg_isolated(topo: &Arc<Topology>, route: Vec<mpx_topo::LinkId>) -> LegParams {
    let rates = probe_concurrent_rates(topo, std::slice::from_ref(&route));
    let mut alpha = topo.overheads.copy_launch;
    for lid in &route {
        alpha += topo.link(*lid).expect("route link").latency;
    }
    LegParams {
        alpha,
        beta: rates[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::path::{enumerate_paths, PathSelection};
    use mpx_topo::presets;
    use mpx_topo::units::gb_per_s;

    #[test]
    fn direct_probe_equals_datasheet() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::DIRECT_ONLY).unwrap();
        let probed = probe_path_params(&topo, &paths[0]).unwrap();
        assert_eq!(probed.first.beta, gb_per_s(48.0));
    }

    #[test]
    fn gpu_staged_legs_are_disjoint_full_rate() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::TWO_GPUS).unwrap();
        let probed = probe_path_params(&topo, &paths[1]).unwrap();
        assert!((probed.first.beta - gb_per_s(48.0)).abs() < 1e6);
        assert!((probed.second.unwrap().beta - gb_per_s(48.0)).abs() < 1e6);
    }

    #[test]
    fn beluga_host_legs_keep_pcie_rate() {
        // DRAM (38 GB/s) comfortably carries two 12 GB/s PCIe legs.
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let paths =
            enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        let host = paths.last().unwrap();
        let probed = probe_path_params(&topo, host).unwrap();
        assert!((probed.first.beta - gb_per_s(12.0)).abs() < 1e8);
        assert!((probed.second.unwrap().beta - gb_per_s(12.0)).abs() < 1e8);
    }

    #[test]
    fn narval_host_legs_halve_on_shared_dram() {
        // The Observation-3 pathology: both legs cross the 19 GB/s DRAM
        // channel, so each sustains ~9.5 GB/s — half the datasheet value.
        let topo = Arc::new(presets::narval());
        let gpus = topo.gpus();
        let paths =
            enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        let host = paths.last().unwrap();
        let datasheet = extract_path_params(&topo, host).unwrap();
        let probed = probe_path_params(&topo, host).unwrap();
        assert!(datasheet.first.beta > gb_per_s(18.0));
        assert!(
            (probed.first.beta - gb_per_s(9.5)).abs() < 1e8,
            "probed {} GB/s",
            probed.first.beta / 1e9
        );
        assert!(probed.second.unwrap().beta < datasheet.second.unwrap().beta);
    }

    #[test]
    fn isolated_leg_probe_matches_bottleneck() {
        let topo = Arc::new(presets::narval());
        let gpus = topo.gpus();
        let hm = topo.local_host_memory(gpus[0]).unwrap();
        let route = vec![
            topo.link_between(gpus[0], hm).unwrap().id,
            topo.link_between(hm, hm).unwrap().id,
        ];
        let leg = probe_leg_isolated(&topo, route);
        // Alone, the leg runs at min(PCIe 24, DRAM 19) = 19 GB/s.
        assert!((leg.beta - gb_per_s(19.0)).abs() < 1e8, "{}", leg.beta);
        assert!(leg.alpha > 0.0);
    }
}
