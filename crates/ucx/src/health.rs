//! Path-health supervision: per-path circuit breakers and hedged
//! transfers (DESIGN §4f).
//!
//! The recovery loop in [`crate::recover`] reacts *after* a deadline
//! miss; this layer remembers. Every deadline miss, dead link, and
//! sustained residual drift charges a per-`(pair, path)` **circuit
//! breaker** — the classic Closed → Open → HalfOpen machine. Open
//! breakers bias planning away from the sick path (the context plans the
//! residual candidate set through `Planner::plan_excluding` semantics),
//! gate compiled-graph replay for the pair (a stale graph would put
//! bytes right back on the sick path), and, after a configurable window,
//! re-admit the path as a *half-open probe* carrying bounded trial
//! traffic: a few clean completions close the breaker, one more failure
//! re-opens it.
//!
//! On top of the breaker sits [`UcxContext::put_hedged`]: a blocking PUT
//! that waits `predicted_time × factor` for the primary attempt, then
//! launches the residual byte ranges on the healthiest paths *not*
//! implicated in the stall and takes the first completion per range.
//! Duplicate writes are byte-identical by construction, so "cancelling
//! the loser" is pure accounting — a stalled loser flow on a dead link
//! never completes and never corrupts.
//!
//! The supervisor itself is deliberately free of context plumbing (no
//! recorder, no engine) so the state machine can be property-tested in
//! isolation; the context glues breaker events to telemetry instants and
//! graph-pool purges.

use crate::context::UcxContext;
use crate::deadline::DeadlinePolicy;
use crate::pipeline::execute_plan_at_obs;
use crate::probe::probe_all_with;
use crate::recover::{coalesce, residuals_of, Range, RecoveryError};
use mpx_gpu::Buffer;
use mpx_model::{PairKey, TransferPlan};
use mpx_obs::Phase;
use mpx_sim::SimThread;
use mpx_topo::path::TransferPath;
use mpx_topo::units::Secs;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tunables of the supervision layer, embedded in
/// [`crate::UcxConfig::health`].
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Master switch. Off, the context behaves exactly as before this
    /// layer existed (and `put` still returns a typed error on a stuck
    /// transfer rather than panicking).
    pub enabled: bool,
    /// Consecutive failures that trip a Closed breaker. Dead links trip
    /// immediately regardless (a down route is definitive, not noise).
    pub failure_threshold: u32,
    /// Virtual-time seconds an Open breaker excludes its path before the
    /// next half-open probe — also the window a replay-gating drift
    /// suspicion lasts.
    pub open_window: Secs,
    /// Clean completions a half-open path must deliver to close.
    pub half_open_trials: u32,
    /// Drift events (plan prediction vs observed bandwidth beyond
    /// [`crate::UcxConfig::drift_tolerance`]) on one pair before graph
    /// replay is gated for it.
    pub drift_strikes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: true,
            failure_threshold: 2,
            open_window: 0.25,
            half_open_trials: 2,
            drift_strikes: 3,
        }
    }
}

/// Externally visible breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy (possibly with unexpired strikes).
    Closed,
    /// Excluded from planning until its window expires.
    Open,
    /// Re-admitted on trial; counting clean completions.
    HalfOpen,
}

/// What a breaker did in response to a signal — the context maps these
/// to `breaker.*` telemetry instants and graph-pool purges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// No transition.
    None,
    /// Closed → Open.
    Tripped,
    /// HalfOpen → Open (a failed trial).
    Retripped,
    /// HalfOpen → Closed (trial quota met).
    Reset,
}

/// Which paths a supervised plan may use right now.
#[derive(Debug, Clone, Default)]
pub struct PathAdmissions {
    /// Candidate indices excluded (breaker Open, window not yet up).
    pub excluded: Vec<usize>,
    /// Candidate indices that just transitioned Open → HalfOpen and are
    /// being re-admitted as probes by this very call.
    pub probing: Vec<usize>,
}

/// Counter snapshot. Invariant (the proptest target): every trip is
/// eventually balanced by a reset or still shows as a non-closed
/// breaker — `trips == resets + breakers_open` (half-open re-trips are
/// counted separately and do not disturb the balance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Closed → Open transitions.
    pub trips: u64,
    /// HalfOpen → Open transitions (failed trials).
    pub retrips: u64,
    /// HalfOpen → Closed transitions.
    pub resets: u64,
    /// Open → HalfOpen re-admissions.
    pub probes: u64,
    /// Breakers currently not Closed (Open or HalfOpen).
    pub breakers_open: u64,
    /// Graph replays skipped because the pair had a non-closed breaker
    /// or an active drift suspicion.
    pub replays_gated: u64,
    /// Hedge rounds launched.
    pub hedges: u64,
    /// Hedge rounds where the hedge (not the primary) finished the
    /// residual.
    pub hedge_wins: u64,
}

#[derive(Debug)]
enum BState {
    Closed { strikes: u32 },
    Open { until: Secs },
    HalfOpen { trials_left: u32 },
}

#[derive(Debug, Clone, Copy)]
struct Drift {
    strikes: u32,
    last_at: Secs,
}

/// The supervision state: one breaker per `(pair, candidate path
/// index)`, one drift suspicion per pair, and lifetime counters.
///
/// Hot-path discipline: a healthy fabric touches only two relaxed atomic
/// loads ([`HealthSupervisor::is_quiet`] / the entry count); the maps
/// are locked only while breakers exist.
pub struct HealthSupervisor {
    cfg: HealthConfig,
    breakers: Mutex<HashMap<(PairKey, usize), BState>>,
    suspects: Mutex<HashMap<PairKey, Drift>>,
    /// Breakers currently not Closed.
    non_closed: AtomicUsize,
    /// Entries in `breakers` (any state, including Closed-with-strikes).
    entries: AtomicUsize,
    /// Pairs whose drift suspicion currently gates replay.
    gated_pairs: AtomicUsize,
    trips: AtomicU64,
    retrips: AtomicU64,
    resets: AtomicU64,
    probes: AtomicU64,
    replays_gated: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
}

impl HealthSupervisor {
    /// A fresh supervisor (all breakers conceptually Closed).
    pub fn new(cfg: HealthConfig) -> HealthSupervisor {
        HealthSupervisor {
            cfg,
            breakers: Mutex::new(HashMap::new()),
            suspects: Mutex::new(HashMap::new()),
            non_closed: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            gated_pairs: AtomicUsize::new(0),
            trips: AtomicU64::new(0),
            retrips: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            replays_gated: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
        }
    }

    /// The configuration the supervisor runs under.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// True when no breaker is Open/HalfOpen and no pair is
    /// replay-gated — the fast-path check every PUT makes.
    pub fn is_quiet(&self) -> bool {
        self.non_closed.load(Ordering::Relaxed) == 0
            && self.gated_pairs.load(Ordering::Relaxed) == 0
    }

    /// Current state of one breaker.
    pub fn breaker_state(&self, pair: PairKey, path: usize) -> BreakerState {
        match self.breakers.lock().get(&(pair, path)) {
            None | Some(BState::Closed { .. }) => BreakerState::Closed,
            Some(BState::Open { .. }) => BreakerState::Open,
            Some(BState::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// Charges one failure (deadline miss, stalled hedge leg). Closed
    /// breakers accumulate strikes up to the threshold; half-open
    /// breakers re-open on the spot; open breakers extend their window
    /// (the sickness is evidently ongoing).
    pub fn note_failure(&self, pair: PairKey, path: usize, now: Secs) -> BreakerEvent {
        let mut map = self.breakers.lock();
        let e = map.entry((pair, path)).or_insert_with(|| {
            self.entries.fetch_add(1, Ordering::Relaxed);
            BState::Closed { strikes: 0 }
        });
        match e {
            BState::Closed { strikes } => {
                *strikes += 1;
                if *strikes >= self.cfg.failure_threshold.max(1) {
                    *e = BState::Open {
                        until: now + self.cfg.open_window,
                    };
                    self.non_closed.fetch_add(1, Ordering::Relaxed);
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    BreakerEvent::Tripped
                } else {
                    BreakerEvent::None
                }
            }
            BState::HalfOpen { .. } => {
                *e = BState::Open {
                    until: now + self.cfg.open_window,
                };
                self.retrips.fetch_add(1, Ordering::Relaxed);
                BreakerEvent::Retripped
            }
            BState::Open { until } => {
                *until = now + self.cfg.open_window;
                BreakerEvent::None
            }
        }
    }

    /// Trips the breaker immediately, bypassing the strike threshold — a
    /// route over a down link is definitive, not noise.
    pub fn trip(&self, pair: PairKey, path: usize, now: Secs) -> BreakerEvent {
        let mut map = self.breakers.lock();
        let e = map.entry((pair, path)).or_insert_with(|| {
            self.entries.fetch_add(1, Ordering::Relaxed);
            BState::Closed { strikes: 0 }
        });
        match e {
            BState::Closed { .. } => {
                *e = BState::Open {
                    until: now + self.cfg.open_window,
                };
                self.non_closed.fetch_add(1, Ordering::Relaxed);
                self.trips.fetch_add(1, Ordering::Relaxed);
                BreakerEvent::Tripped
            }
            BState::HalfOpen { .. } => {
                *e = BState::Open {
                    until: now + self.cfg.open_window,
                };
                self.retrips.fetch_add(1, Ordering::Relaxed);
                BreakerEvent::Retripped
            }
            BState::Open { until } => {
                *until = now + self.cfg.open_window;
                BreakerEvent::None
            }
        }
    }

    /// Credits one clean completion. Closed breakers forgive their
    /// strikes (the entry is dropped); half-open breakers count down
    /// their trial quota and close at zero. A straggler completing on an
    /// Open breaker is ignored — re-admission goes through the probe.
    pub fn note_success(&self, pair: PairKey, path: usize) -> BreakerEvent {
        if self.entries.load(Ordering::Relaxed) == 0 {
            return BreakerEvent::None;
        }
        let mut map = self.breakers.lock();
        match map.get_mut(&(pair, path)) {
            None | Some(BState::Open { .. }) => BreakerEvent::None,
            Some(BState::Closed { .. }) => {
                map.remove(&(pair, path));
                self.entries.fetch_sub(1, Ordering::Relaxed);
                BreakerEvent::None
            }
            Some(BState::HalfOpen { trials_left }) => {
                *trials_left = trials_left.saturating_sub(1);
                if *trials_left == 0 {
                    map.remove(&(pair, path));
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.non_closed.fetch_sub(1, Ordering::Relaxed);
                    self.resets.fetch_add(1, Ordering::Relaxed);
                    BreakerEvent::Reset
                } else {
                    BreakerEvent::None
                }
            }
        }
    }

    /// Resolves which of the pair's `path_count` candidates may carry
    /// traffic at `now`. Open breakers whose window has expired flip to
    /// HalfOpen here and are re-admitted as probes — so an open path
    /// always re-probes on the first plan after its window, never later.
    pub fn admissions(&self, pair: PairKey, path_count: usize, now: Secs) -> PathAdmissions {
        let mut out = PathAdmissions::default();
        if self.non_closed.load(Ordering::Relaxed) == 0 {
            return out;
        }
        let mut map = self.breakers.lock();
        for idx in 0..path_count {
            if let Some(e) = map.get_mut(&(pair, idx)) {
                match e {
                    BState::Open { until } if now < *until => out.excluded.push(idx),
                    BState::Open { .. } => {
                        *e = BState::HalfOpen {
                            trials_left: self.cfg.half_open_trials.max(1),
                        };
                        self.probes.fetch_add(1, Ordering::Relaxed);
                        out.probing.push(idx);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Charges one drift event against the pair. Returns true when this
    /// strike crossed the threshold and replay is now gated.
    pub fn note_drift(&self, pair: PairKey, now: Secs) -> bool {
        let mut map = self.suspects.lock();
        let d = map.entry(pair).or_insert(Drift {
            strikes: 0,
            last_at: now,
        });
        let was_gated = d.strikes >= self.cfg.drift_strikes.max(1);
        d.strikes += 1;
        d.last_at = now;
        let gated = d.strikes >= self.cfg.drift_strikes.max(1);
        if gated && !was_gated {
            self.gated_pairs.fetch_add(1, Ordering::Relaxed);
        }
        gated && !was_gated
    }

    /// Gates replay for the pair on the spot (a replay launch failure is
    /// as definitive as a dead link).
    pub fn suspend_replay(&self, pair: PairKey, now: Secs) {
        let mut map = self.suspects.lock();
        let d = map.entry(pair).or_insert(Drift {
            strikes: 0,
            last_at: now,
        });
        if d.strikes < self.cfg.drift_strikes.max(1) {
            self.gated_pairs.fetch_add(1, Ordering::Relaxed);
        }
        d.strikes = d.strikes.max(self.cfg.drift_strikes.max(1));
        d.last_at = now;
    }

    /// Whether compiled-graph replay may serve the pair at `now`: no
    /// non-closed breaker on any of its paths and no active drift
    /// suspicion. An expired suspicion (quiet for a full window) is
    /// forgiven here.
    pub fn replay_allowed(&self, pair: PairKey, now: Secs) -> bool {
        if self.non_closed.load(Ordering::Relaxed) > 0 {
            let map = self.breakers.lock();
            if map
                .iter()
                .any(|((p, _), s)| *p == pair && !matches!(s, BState::Closed { .. }))
            {
                return false;
            }
        }
        if self.gated_pairs.load(Ordering::Relaxed) > 0 {
            let mut map = self.suspects.lock();
            if let Some(d) = map.get_mut(&pair) {
                if d.strikes >= self.cfg.drift_strikes.max(1) {
                    if now < d.last_at + self.cfg.open_window {
                        return false;
                    }
                    d.strikes = 0;
                    self.gated_pairs.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        true
    }

    /// Counts one gated replay.
    pub fn note_replay_gated(&self) {
        self.replays_gated.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hedge round launched.
    pub fn note_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one hedge round won by the hedge.
    pub fn note_hedge_win(&self) {
        self.hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HealthStats {
        HealthStats {
            trips: self.trips.load(Ordering::Relaxed),
            retrips: self.retrips.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            breakers_open: self.non_closed.load(Ordering::Relaxed) as u64,
            replays_gated: self.replays_gated.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
        }
    }
}

/// Tunables of a hedged PUT.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// Hedge trigger: the primary gets `predicted_time × factor` before
    /// the residual is raced on other paths.
    pub factor: f64,
    /// Hedge rounds allowed after the primary attempt.
    pub max_hedges: u32,
    /// Floor for every wait, so tiny transfers don't hedge on
    /// scheduling noise.
    pub min_trigger: Secs,
    /// Multiplier on each successive hedge round's wait.
    pub backoff: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            factor: 1.5,
            max_hedges: 3,
            min_trigger: 1e-3,
            backoff: 2.0,
        }
    }
}

/// What a hedged PUT went through.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HedgeReport {
    /// Hedge rounds launched (0 = the primary met its trigger).
    pub hedges: u64,
    /// Bytes raced through hedge rounds (double-sent by design).
    pub hedged_bytes: u64,
    /// True when a hedge round, not the primary catching up, finished
    /// the residual.
    pub hedge_won: bool,
    /// End-to-end virtual-time duration.
    pub elapsed: Secs,
}

/// Intersection of two sorted, coalesced range lists — the bytes still
/// missing are exactly those unfinished by *both* the primary and the
/// hedge (first completion wins per range).
fn intersect(a: &[Range], b: &[Range]) -> Vec<Range> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let lo = a[i].offset.max(b[j].offset);
        let hi = (a[i].offset + a[i].bytes).min(b[j].offset + b[j].bytes);
        if lo < hi {
            out.push(Range {
                offset: lo,
                bytes: hi - lo,
            });
        }
        if a[i].offset + a[i].bytes <= b[j].offset + b[j].bytes {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

impl UcxContext {
    /// Blocking PUT with tail-latency hedging: the primary attempt gets
    /// `predicted_time × factor`; past that, the residual ranges are
    /// raced on the healthiest paths not implicated in the stall and the
    /// first completion wins per range. Stalled paths charge their
    /// breakers, so subsequent transfers plan around them before any
    /// deadline fires.
    ///
    /// Duplicate writes are byte-identical, so the losing flow needs no
    /// cancellation beyond accounting; on a dead link it simply never
    /// completes.
    pub fn put_hedged(
        &self,
        thread: &SimThread,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
        hcfg: &HedgeConfig,
    ) -> Result<HedgeReport, RecoveryError> {
        let eng = self.runtime().engine().clone();
        let t0 = thread.now();
        let sel = self.effective_selection();
        let pair = self.pair_key(src.device(), dst.device(), sel);
        let pair_track = format!("pair:{}->{}", src.device(), dst.device());

        let plan = self.plan_for(src.device(), dst.device(), n)?;
        let all_paths = self.paths_for(src.device(), dst.device(), sel)?;
        let obs = self.transfer_obs(src.device(), dst.device());
        let seq = self.next_seq();
        let primary = execute_plan_at_obs(
            self.runtime(),
            &plan,
            &all_paths,
            src,
            0,
            dst,
            0,
            seq,
            &[],
            obs.clone(),
        );
        let policy: DeadlinePolicy = hcfg.trigger_policy();
        let trigger = policy.budget(plan.predicted_time);
        let mut report = HedgeReport::default();
        if primary.wait_deadline(thread, t0.after(trigger)).is_ok() {
            self.health_mark_success(pair, &primary);
            report.elapsed = thread.now().secs_since(t0);
            return Ok(report);
        }

        // The primary blew its budget: charge the stalled paths and race
        // the residual.
        let mut sick: Vec<usize> = Vec::new();
        for s in primary.unfinished() {
            sick.push(s.path_index);
            self.health_path_failure(
                pair,
                s.path_index,
                &all_paths[s.path_index],
                "hedge-trigger",
            );
        }
        let mut pending = coalesce(residuals_of(&primary, 0));
        let mut round = 0u32;
        let mut hedge_finished_last = false;
        while !pending.is_empty() {
            if round >= hcfg.max_hedges {
                return Err(RecoveryError::RetriesExhausted {
                    retries: round as u64,
                    unfinished_bytes: pending.iter().map(|r| r.bytes as u64).sum(),
                });
            }
            round += 1;
            let now = thread.now().as_secs();
            let adm = self.health().admissions(pair, all_paths.len(), now);
            self.health_record_probes(&pair_track, &adm, now);

            // Hedge candidates: up, not implicated in this transfer's
            // stall, and not excluded by an open breaker.
            let mut hedge_paths: Vec<TransferPath> = Vec::new();
            let mut orig_idx: Vec<usize> = Vec::new();
            for (i, p) in all_paths.iter().enumerate() {
                if sick.contains(&i) || adm.excluded.contains(&i) {
                    continue;
                }
                if !p
                    .legs
                    .iter()
                    .all(|leg| leg.route.iter().all(|&l| eng.link_is_up(l)))
                {
                    self.health_path_failure(pair, i, p, "link-down");
                    continue;
                }
                hedge_paths.push(p.clone());
                orig_idx.push(i);
            }

            let wait_scale = hcfg.backoff.max(1.0).powi(round as i32 - 1);
            if hedge_paths.is_empty() {
                // Nothing healthy to race on: give the primary one
                // backed-off window (a flapped link may come back) and
                // re-assess.
                let extra = policy.scaled(wait_scale).budget(plan.predicted_time);
                if primary
                    .wait_deadline(thread, thread.now().after(extra))
                    .is_ok()
                {
                    pending.clear();
                    hedge_finished_last = false;
                    break;
                }
                pending = coalesce(residuals_of(&primary, 0));
                continue;
            }

            // Re-probe the hedge set against current capacities (down
            // links carry a dummy rate; no hedge path routes over them).
            let caps: Vec<f64> =
                eng.with_capacities(|c| c.iter().map(|&v| if v > 0.0 { v } else { 1.0 }).collect());
            let params = probe_all_with(eng.topology(), Some(&caps), &hedge_paths)?;

            let mut handles = Vec::with_capacity(pending.len());
            let mut worst: Secs = 0.0;
            let mut memo: Option<(usize, Arc<TransferPlan>)> = None;
            let round_bytes: u64 = pending.iter().map(|r| r.bytes as u64).sum();
            for r in &pending {
                let hplan = match &memo {
                    Some((bytes, p)) if *bytes == r.bytes => p.clone(),
                    _ => {
                        let p = Arc::new(self.planner().compute_with_params(
                            r.bytes,
                            &hedge_paths,
                            params.clone(),
                        ));
                        memo = Some((r.bytes, p.clone()));
                        p
                    }
                };
                worst = worst.max(hplan.predicted_time);
                let seq = self.next_seq();
                let mut h = execute_plan_at_obs(
                    self.runtime(),
                    &hplan,
                    &hedge_paths,
                    src,
                    r.offset,
                    dst,
                    r.offset,
                    seq,
                    &[],
                    obs.clone(),
                );
                h.remap_path_indices(&orig_idx);
                handles.push((h, r.offset));
            }
            report.hedges += 1;
            report.hedged_bytes += round_bytes;
            self.health().note_hedge();
            if let Some(rec) = self.recorder() {
                rec.instant(
                    Phase::Hedge,
                    pair_track.clone(),
                    format!("hedge.launch round{round}"),
                    thread.now().as_secs(),
                    format!(
                        "bytes={round_bytes} paths={} ranges={}",
                        hedge_paths.len(),
                        pending.len()
                    ),
                );
            }

            let deadline = policy.scaled(wait_scale).deadline(thread.now(), worst);
            let mut hedge_resid: Vec<Range> = Vec::new();
            let mut all_ok = true;
            for (h, base) in &handles {
                if h.wait_deadline(thread, deadline).is_err() {
                    all_ok = false;
                    hedge_resid.extend(residuals_of(h, *base));
                    for s in h.unfinished() {
                        self.health_path_failure(
                            pair,
                            s.path_index,
                            &all_paths[s.path_index],
                            "hedge-stall",
                        );
                    }
                } else {
                    self.health_mark_success(pair, h);
                }
            }
            if all_ok {
                pending.clear();
                hedge_finished_last = true;
            } else {
                // Still missing: only bytes neither the hedge nor the
                // (still running) primary have landed.
                let prim = coalesce(residuals_of(&primary, 0));
                pending = intersect(&coalesce(hedge_resid), &prim);
                // If the message is now whole but the primary alone
                // still has residual, the hedge's bytes were decisive.
                hedge_finished_last = pending.is_empty() && !prim.is_empty();
            }
        }

        report.elapsed = thread.now().secs_since(t0);
        report.hedge_won = report.hedges > 0 && hedge_finished_last;
        if report.hedges > 0 {
            if report.hedge_won {
                self.health().note_hedge_win();
                // The tail the hedge clipped: how far past the plan's
                // prediction the message finally landed.
                self.hedge_win_hist()
                    .observe(report.elapsed - plan.predicted_time);
            }
            if let Some(rec) = self.recorder() {
                rec.instant(
                    Phase::Hedge,
                    pair_track,
                    if report.hedge_won {
                        "hedge.win"
                    } else {
                        "hedge.loss"
                    },
                    thread.now().as_secs(),
                    format!(
                        "rounds={} hedged_bytes={} elapsed_us={:.3}",
                        report.hedges,
                        report.hedged_bytes,
                        report.elapsed * 1e6
                    ),
                );
            }
            // A hedged transfer is by definition far off its prediction;
            // let the drift machinery re-probe the pair.
            if report.elapsed > 0.0 {
                self.record_observation(src.device(), dst.device(), n, n as f64 / report.elapsed);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::DeviceId;

    fn pair() -> PairKey {
        (DeviceId(0), DeviceId(1), 2, true)
    }

    #[test]
    fn breaker_full_lifecycle() {
        let cfg = HealthConfig {
            failure_threshold: 2,
            half_open_trials: 2,
            open_window: 1.0,
            ..HealthConfig::default()
        };
        let sup = HealthSupervisor::new(cfg);
        assert!(sup.is_quiet());
        assert_eq!(sup.note_failure(pair(), 0, 0.0), BreakerEvent::None);
        assert_eq!(sup.note_failure(pair(), 0, 0.1), BreakerEvent::Tripped);
        assert_eq!(sup.breaker_state(pair(), 0), BreakerState::Open);
        assert!(!sup.is_quiet());
        // Within the window: excluded, no probe.
        let adm = sup.admissions(pair(), 3, 0.5);
        assert_eq!(adm.excluded, vec![0]);
        assert!(adm.probing.is_empty());
        // Past the window: re-admitted as a half-open probe.
        let adm = sup.admissions(pair(), 3, 1.2);
        assert!(adm.excluded.is_empty());
        assert_eq!(adm.probing, vec![0]);
        assert_eq!(sup.breaker_state(pair(), 0), BreakerState::HalfOpen);
        // Two clean trials close it.
        assert_eq!(sup.note_success(pair(), 0), BreakerEvent::None);
        assert_eq!(sup.note_success(pair(), 0), BreakerEvent::Reset);
        assert_eq!(sup.breaker_state(pair(), 0), BreakerState::Closed);
        assert!(sup.is_quiet());
        let s = sup.stats();
        assert_eq!(s.trips, 1);
        assert_eq!(s.resets, 1);
        assert_eq!(s.probes, 1);
        assert_eq!(s.breakers_open, 0);
    }

    #[test]
    fn half_open_failure_retrips_without_counting_a_trip() {
        let sup = HealthSupervisor::new(HealthConfig {
            failure_threshold: 1,
            open_window: 1.0,
            ..HealthConfig::default()
        });
        assert_eq!(sup.trip(pair(), 2, 0.0), BreakerEvent::Tripped);
        sup.admissions(pair(), 3, 2.0); // → HalfOpen
        assert_eq!(sup.note_failure(pair(), 2, 2.1), BreakerEvent::Retripped);
        let s = sup.stats();
        assert_eq!((s.trips, s.retrips, s.resets), (1, 1, 0));
        // The invariant holds: the one trip is still an open breaker.
        assert_eq!(s.trips, s.resets + s.breakers_open);
    }

    #[test]
    fn success_on_closed_breaker_forgives_strikes() {
        let sup = HealthSupervisor::new(HealthConfig {
            failure_threshold: 3,
            ..HealthConfig::default()
        });
        sup.note_failure(pair(), 1, 0.0);
        sup.note_failure(pair(), 1, 0.1);
        sup.note_success(pair(), 1);
        // Strikes were forgiven: two more failures still don't trip.
        assert_eq!(sup.note_failure(pair(), 1, 0.2), BreakerEvent::None);
        assert_eq!(sup.note_failure(pair(), 1, 0.3), BreakerEvent::None);
        assert_eq!(sup.note_failure(pair(), 1, 0.4), BreakerEvent::Tripped);
    }

    #[test]
    fn drift_strikes_gate_replay_and_heal_after_the_window() {
        let sup = HealthSupervisor::new(HealthConfig {
            drift_strikes: 2,
            open_window: 1.0,
            ..HealthConfig::default()
        });
        assert!(sup.replay_allowed(pair(), 0.0));
        assert!(!sup.note_drift(pair(), 0.1));
        assert!(sup.note_drift(pair(), 0.2));
        assert!(!sup.replay_allowed(pair(), 0.5));
        assert!(!sup.is_quiet());
        // Quiet for a full window: forgiven.
        assert!(sup.replay_allowed(pair(), 1.5));
        assert!(sup.is_quiet());
    }

    #[test]
    fn suspend_replay_gates_immediately() {
        let sup = HealthSupervisor::new(HealthConfig::default());
        sup.suspend_replay(pair(), 0.0);
        assert!(!sup.replay_allowed(pair(), 0.1));
        // A different pair is unaffected.
        let other = (DeviceId(2), DeviceId(3), 2, true);
        assert!(sup.replay_allowed(other, 0.1));
    }

    #[test]
    fn open_breaker_blocks_replay_for_its_pair_only() {
        let sup = HealthSupervisor::new(HealthConfig {
            failure_threshold: 1,
            ..HealthConfig::default()
        });
        sup.note_failure(pair(), 0, 0.0);
        assert!(!sup.replay_allowed(pair(), 0.1));
        let other = (DeviceId(2), DeviceId(3), 2, true);
        assert!(sup.replay_allowed(other, 0.1));
    }

    #[test]
    fn intersect_is_exact() {
        let a = [
            Range {
                offset: 0,
                bytes: 10,
            },
            Range {
                offset: 20,
                bytes: 10,
            },
        ];
        let b = [Range {
            offset: 5,
            bytes: 20,
        }];
        assert_eq!(
            intersect(&a, &b),
            vec![
                Range {
                    offset: 5,
                    bytes: 5
                },
                Range {
                    offset: 20,
                    bytes: 5
                }
            ]
        );
        assert!(intersect(&a, &[]).is_empty());
    }
}
