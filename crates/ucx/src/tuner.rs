//! Static (offline, exhaustive) path-distribution tuning — the baseline
//! the paper compares its model against (Section 5: "Static Path
//! Distribution ... extracted by exhaustive search, similar to \[35\]").
//!
//! The tuner sweeps share splits over a simplex grid, executes each
//! candidate on a *fresh* simulation of the same topology, and keeps the
//! fastest. Chunk counts per candidate come from the model's chunk
//! formula (validated near-optimal in `mpx-model::pipeline` tests), which
//! keeps the grid one-dimensional per path. The best measured
//! configuration doubles as the **observed optimum** against which
//! model-prediction error is reported (Figures 5/6's error metric).

use crate::pipeline::execute_plan;
use mpx_gpu::GpuRuntime;
use mpx_model::{
    chunk_count, quantize_shares, PipelineMode, PlannedPath, PlannerConfig, TransferPlan,
};
use mpx_sim::Engine;
use mpx_topo::params::extract_all;
use mpx_topo::path::{enumerate_paths_auto, PathSelection, TransferPath};
use mpx_topo::units::Bandwidth;
use mpx_topo::{DeviceId, Topology, TopologyError};
use std::sync::Arc;

/// One evaluated grid candidate: shares, plan, measured bandwidth.
type Candidate = (Vec<f64>, Arc<TransferPlan>, Bandwidth);

/// Builds a [`TransferPlan`] from explicit share fractions (summing to 1)
/// using the model's chunk-count formula. Predicted fields are filled
/// from the un-pipelined bound (they are informational for manual plans).
pub fn manual_plan(
    topo: &Topology,
    paths: &[TransferPath],
    n: usize,
    shares: &[f64],
    cfg: &PlannerConfig,
) -> Result<TransferPlan, TopologyError> {
    if paths.len() != shares.len() {
        return Err(TopologyError::ShareCountMismatch {
            paths: paths.len(),
            shares: shares.len(),
        });
    }
    let sum: f64 = shares.iter().sum();
    if (sum - 1.0).abs() >= 1e-6 {
        return Err(TopologyError::SharesNotNormalized(sum));
    }
    let params = extract_all(topo, paths)?;
    let nf = n as f64;
    let mut bytes = vec![0usize; shares.len()];
    let assigned = quantize_shares(&mut bytes, shares.iter().copied(), n, cfg.alignment);
    bytes[0] += n - assigned;

    let mut planned = Vec::with_capacity(paths.len());
    let mut worst = 0.0f64;
    for (i, ((path, p), share)) in paths.iter().zip(&params).zip(&bytes).enumerate() {
        let theta = *share as f64 / nf;
        let chunks = if *share == 0 || !p.is_staged() || cfg.mode == PipelineMode::Unpipelined {
            1
        } else {
            let by_overhead = chunk_count(p, theta, nf, cfg.max_chunks);
            let by_size = (*share / cfg.min_chunk_bytes.max(1)).max(1) as u32;
            by_overhead.min(by_size)
        };
        let predicted_time = if *share == 0 {
            0.0
        } else {
            p.time_unpipelined(*share as f64)
        };
        worst = worst.max(predicted_time);
        planned.push(PlannedPath {
            index: i,
            kind: path.kind,
            params: *p,
            theta,
            share_bytes: *share,
            chunks,
            predicted_time,
        });
    }
    Ok(TransferPlan {
        n,
        paths: planned,
        predicted_time: worst,
        predicted_bandwidth: nf / worst,
    })
}

/// All share vectors on the `parts`-dimensional simplex with granularity
/// `1/grid`, direct path first. `grid = 8` gives 165 candidates for four
/// paths.
pub fn share_grid(parts: usize, grid: u32) -> Vec<Vec<f64>> {
    assert!(parts >= 1 && grid >= 1);
    let mut out = Vec::new();
    let mut current = vec![0u32; parts];
    fn rec(out: &mut Vec<Vec<f64>>, current: &mut Vec<u32>, idx: usize, left: u32, grid: u32) {
        if idx + 1 == current.len() {
            current[idx] = left;
            out.push(current.iter().map(|&c| c as f64 / grid as f64).collect());
            return;
        }
        for c in 0..=left {
            current[idx] = c;
            rec(out, current, idx + 1, left - c, grid);
        }
    }
    rec(&mut out, &mut current, 0, grid, grid);
    out
}

/// Result of an exhaustive tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The fastest configuration found.
    pub plan: Arc<TransferPlan>,
    /// Its measured single-shot bandwidth (bytes/s).
    pub bandwidth: Bandwidth,
    /// Candidates evaluated.
    pub evaluated: usize,
}

/// Measures one candidate plan: one warmup transfer (absorbing one-time
/// IPC-handle costs, as OMB's warmup iterations do) followed by one timed
/// `src → dst` transfer on a fresh simulation of `topo`. Returns
/// bandwidth in bytes/s.
pub fn measure_plan(
    topo: &Arc<Topology>,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src_dev: DeviceId,
    dst_dev: DeviceId,
) -> Bandwidth {
    let rt = GpuRuntime::new(Engine::new(topo.clone()));
    let src = rt.alloc(src_dev, plan.n);
    let dst = rt.alloc(dst_dev, plan.n);
    execute_plan(&rt, plan, paths, &src, &dst, 0);
    rt.engine().run_until_idle();
    let t0 = rt.engine().now();
    let h = execute_plan(&rt, plan, paths, &src, &dst, 1);
    rt.engine().run_until_idle();
    debug_assert!(h.is_complete());
    plan.n as f64 / rt.engine().now().secs_since(t0)
}

/// Exhaustive offline tuning for an `n`-byte transfer `src → dst` over
/// the paths selected by `sel`.
///
/// Two stages, as practical offline tuners do: a coarse sweep of the
/// whole share simplex at granularity `1/grid`, then local refinement —
/// repeatedly moving small fractions (down to 1/128) between path pairs
/// while it helps. The refined best stands in for the paper's "observed
/// optimal performance".
pub fn tune_exhaustive(
    topo: &Arc<Topology>,
    src: DeviceId,
    dst: DeviceId,
    n: usize,
    sel: PathSelection,
    cfg: &PlannerConfig,
    grid: u32,
) -> Result<TuneResult, TopologyError> {
    let paths = enumerate_paths_auto(topo, src, dst, sel)?;
    let mut evaluated = 0usize;

    // Stage 1: coarse grid — every candidate runs on its own private
    // simulation, so they evaluate in parallel across worker threads.
    let candidates = share_grid(paths.len(), grid);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(candidates.len().max(1));
    let chunk = candidates.len().div_ceil(workers);
    let results: Vec<Result<Candidate, TopologyError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|batch| {
                let paths = &paths;
                scope.spawn(move || {
                    batch
                        .iter()
                        .map(|shares| {
                            let plan = manual_plan(topo, paths, n, shares, cfg)?;
                            let bw = measure_plan(topo, &plan, paths, src, dst);
                            Ok((shares.clone(), Arc::new(plan), bw))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tuner worker panicked"))
            .collect()
    });
    evaluated += candidates.len();
    let mut best_shares = vec![1.0];
    let mut best: Option<(Arc<TransferPlan>, Bandwidth)> = None;
    for r in results {
        let (shares, plan, bw) = r?;
        if best.as_ref().is_none_or(|(_, b)| bw > *b) {
            best = Some((plan, bw));
            best_shares = shares;
        }
    }

    // Stage 2: local refinement — move `delta` between every ordered
    // path pair; restart from the finest step after any improvement.
    let mut eval = |shares: &[f64]| -> Result<(Arc<TransferPlan>, Bandwidth), TopologyError> {
        let plan = manual_plan(topo, &paths, n, shares, cfg)?;
        let bw = measure_plan(topo, &plan, &paths, src, dst);
        evaluated += 1;
        Ok((Arc::new(plan), bw))
    };
    let deltas = [
        1.0 / grid as f64 / 2.0,
        1.0 / grid as f64 / 4.0,
        1.0 / 64.0,
        1.0 / 128.0,
    ];
    let mut rounds = 0;
    'refine: loop {
        rounds += 1;
        if rounds > 64 {
            break; // safety bound; never reached in practice
        }
        for &delta in &deltas {
            for i in 0..paths.len() {
                for j in 0..paths.len() {
                    if i == j || best_shares[i] < delta {
                        continue;
                    }
                    let mut candidate = best_shares.clone();
                    candidate[i] -= delta;
                    candidate[j] += delta;
                    let (plan, bw) = eval(&candidate)?;
                    if bw > best.as_ref().expect("stage 1 ran").1 * (1.0 + 1e-9) {
                        best = Some((plan, bw));
                        best_shares = candidate;
                        continue 'refine;
                    }
                }
            }
        }
        break;
    }

    let (plan, bandwidth) = best.expect("grid is never empty");
    Ok(TuneResult {
        plan,
        bandwidth,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_topo::path::enumerate_paths;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    #[test]
    fn share_grid_covers_simplex() {
        let g = share_grid(3, 4);
        // C(4+2, 2) = 15 compositions.
        assert_eq!(g.len(), 15);
        for shares in &g {
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(g.contains(&vec![1.0, 0.0, 0.0]));
        assert!(g.contains(&vec![0.0, 0.0, 1.0]));
        assert!(g.contains(&vec![0.5, 0.25, 0.25]));
    }

    #[test]
    fn share_grid_single_path() {
        assert_eq!(share_grid(1, 8), vec![vec![1.0]]);
    }

    #[test]
    fn manual_plan_assigns_all_bytes() {
        let topo = presets::beluga();
        let gpus = topo.gpus();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS).unwrap();
        let plan = manual_plan(
            &topo,
            &paths,
            MIB + 5,
            &[0.5, 0.25, 0.25],
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(
            plan.paths.iter().map(|p| p.share_bytes).sum::<usize>(),
            MIB + 5
        );
    }

    #[test]
    fn manual_plan_rejects_bad_shares() {
        let topo = presets::beluga();
        let gpus = topo.gpus();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::TWO_GPUS).unwrap();
        let err = manual_plan(&topo, &paths, MIB, &[0.9, 0.3], &PlannerConfig::default())
            .expect_err("unnormalized shares must be rejected");
        assert!(err.to_string().contains("sum to 1"), "got: {err}");
        let err = manual_plan(&topo, &paths, MIB, &[1.0], &PlannerConfig::default())
            .expect_err("share count mismatch must be rejected");
        assert_eq!(
            err,
            TopologyError::ShareCountMismatch {
                paths: paths.len(),
                shares: 1
            }
        );
    }

    #[test]
    fn exhaustive_tuning_beats_direct_only() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let n = 64 * MIB;
        let cfg = PlannerConfig::default();
        let result = tune_exhaustive(
            &topo,
            gpus[0],
            gpus[1],
            n,
            PathSelection::THREE_GPUS,
            &cfg,
            6,
        )
        .unwrap();
        assert!(result.evaluated >= 28, "coarse stage alone is C(6+2,2)=28"); // + refinement
                                                                              // Direct-only candidate bandwidth:
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], PathSelection::THREE_GPUS).unwrap();
        let direct = manual_plan(&topo, &paths, n, &[1.0, 0.0, 0.0], &cfg).unwrap();
        let direct_bw = measure_plan(&topo, &direct, &paths, gpus[0], gpus[1]);
        assert!(
            result.bandwidth > 2.0 * direct_bw,
            "tuned {} vs direct {}",
            result.bandwidth,
            direct_bw
        );
        // The tuned best spreads load across all three paths.
        assert_eq!(result.plan.active_path_count(), 3);
    }

    #[test]
    fn model_plan_close_to_exhaustive_optimum() {
        // The paper's headline: the model picks a configuration within a
        // few percent of the exhaustively-found optimum for large n.
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let n = 128 * MIB;
        let sel = PathSelection::THREE_GPUS;
        let cfg = PlannerConfig::default();
        let tuned = tune_exhaustive(&topo, gpus[0], gpus[1], n, sel, &cfg, 8).unwrap();
        let planner = mpx_model::Planner::new(topo.clone());
        let model_plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        let model_bw = measure_plan(&topo, &model_plan, &paths, gpus[0], gpus[1]);
        let gap = (tuned.bandwidth - model_bw) / tuned.bandwidth;
        assert!(
            gap < 0.06,
            "model config {:.1} GB/s trails exhaustive {:.1} GB/s by {:.1}%",
            model_bw / 1e9,
            tuned.bandwidth / 1e9,
            gap * 100.0
        );
    }
}
