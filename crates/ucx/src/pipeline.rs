//! The multi-path pipeline engine (paper Section 3.4 + Fig. 2(b), after
//! the engine of reference \[35\]).
//!
//! Given a [`TransferPlan`], the engine executes each path's share
//! concurrently:
//!
//! * the **direct** path is one asynchronous copy on a stream of the
//!   source GPU;
//! * each **staged** path runs the three-step chunk loop on two streams —
//!   leg 1 on the source GPU copies chunk `c` into a staging slot and
//!   records an event; leg 2 on the staging device waits that event and
//!   forwards the chunk. Stream ordering pipelines the chunks; the event
//!   sync cost `ε` and the per-copy launch cost are charged exactly where
//!   the model assumes them.
//!
//! The engine never blocks: it returns a [`TransferHandle`] whose wakers
//! fire as paths drain. Rank threads wait on it; callback-structured
//! tests drain the engine instead.

use mpx_gpu::{Buffer, GpuRuntime};
use mpx_model::TransferPlan;
use mpx_obs::{Phase, QuantileHist, Recorder, ResidualTracker};
use mpx_sim::{SimTime, Waker};
use mpx_topo::path::TransferPath;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Telemetry attached to one transfer by the context: whole-message
/// completion records a `Phase::Transfer` span on the pair's track and
/// feeds the plan's prediction vs the simulated duration to the residual
/// tracker.
#[derive(Clone)]
pub(crate) struct TransferObs {
    pub(crate) rec: Recorder,
    pub(crate) residual: Arc<ResidualTracker>,
    /// Whole-message latency histogram, shared context-wide.
    pub(crate) hist: Arc<QuantileHist>,
    /// Pair label, e.g. `dev0->dev1`.
    pub(crate) pair: String,
}

/// A transfer did not drain all paths before its deadline. Carries the
/// deadline so callers can report how much slack was granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut {
    /// The virtual-time deadline that expired.
    pub deadline: SimTime,
}

impl fmt::Display for TimedOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transfer missed deadline {}", self.deadline)
    }
}

impl std::error::Error for TimedOut {}

/// The message range one active path was responsible for. Offsets are
/// relative to the message (add the caller's `src_off`/`dst_off` to get
/// buffer offsets) — this is exactly what a recovery pass needs to
/// re-send a path's residual bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSlot {
    /// Index into the *candidate path set* the plan was computed from.
    pub path_index: usize,
    /// Start of this path's range within the message.
    pub offset: usize,
    /// Bytes assigned to this path.
    pub bytes: usize,
}

/// In-flight multi-path transfer: one waker per active path.
#[derive(Debug)]
pub struct TransferHandle {
    wakers: Vec<Waker>,
    /// Parallel to `wakers`: which message range each active path owns.
    slots: Vec<PathSlot>,
    /// Parallel to `wakers`: set once the corresponding waker has been
    /// consumed by a successful `wait`/`wait_deadline` (waiting consumes
    /// the signal, so `is_signaled` alone cannot tell "drained").
    drained: Vec<AtomicBool>,
    /// Total bytes of the message.
    pub bytes: usize,
}

impl TransferHandle {
    /// Blocks the simulated thread until every path has drained.
    pub fn wait(&self, thread: &mpx_sim::SimThread) {
        for (w, d) in self.wakers.iter().zip(&self.drained) {
            thread.wait(w);
            d.store(true, Ordering::Release);
        }
    }

    /// Blocks until every path has drained **or** virtual time reaches
    /// `deadline`, whichever comes first. On timeout the handle remembers
    /// which paths did drain; [`TransferHandle::unfinished`] returns the
    /// rest so a recovery pass can re-send their residual ranges.
    pub fn wait_deadline(
        &self,
        thread: &mpx_sim::SimThread,
        deadline: SimTime,
    ) -> Result<(), TimedOut> {
        for (w, d) in self.wakers.iter().zip(&self.drained) {
            if d.load(Ordering::Acquire) {
                continue;
            }
            if !thread.wait_until(w, deadline) {
                // A path may have completed in the same instant the
                // deadline fired, or while we were draining earlier
                // wakers — sweep so `unfinished` is exact.
                for (w2, d2) in self.wakers.iter().zip(&self.drained) {
                    if w2.is_signaled() {
                        d2.store(true, Ordering::Release);
                    }
                }
                if self.drained_count() == self.wakers.len() {
                    return Ok(());
                }
                return Err(TimedOut { deadline });
            }
            d.store(true, Ordering::Release);
        }
        Ok(())
    }

    fn drained_count(&self) -> usize {
        self.drained
            .iter()
            .filter(|d| d.load(Ordering::Acquire))
            .count()
    }

    /// True once every path has signaled or been drained by a wait.
    /// (Non-consuming check for callback-structured drivers.)
    pub fn is_complete(&self) -> bool {
        self.wakers
            .iter()
            .zip(&self.drained)
            .all(|(w, d)| d.load(Ordering::Acquire) || w.is_signaled())
    }

    /// Message ranges of paths that have neither signaled nor been
    /// drained — the residual work after a missed deadline.
    pub fn unfinished(&self) -> Vec<PathSlot> {
        self.slots
            .iter()
            .zip(&self.wakers)
            .zip(&self.drained)
            .filter(|((_, w), d)| !d.load(Ordering::Acquire) && !w.is_signaled())
            .map(|((s, _), _)| *s)
            .collect()
    }

    /// Number of active paths.
    pub fn path_count(&self) -> usize {
        self.wakers.len()
    }

    /// The message range each active path owns (drained or not).
    pub(crate) fn slots(&self) -> &[PathSlot] {
        &self.slots
    }

    /// Rewrites each slot's `path_index` through `orig`, mapping indices
    /// into a filtered survivor set back into the full candidate set —
    /// so breaker attribution always speaks candidate-set indices no
    /// matter which subset a plan executed over.
    pub(crate) fn remap_path_indices(&mut self, orig: &[usize]) {
        for s in &mut self.slots {
            s.path_index = orig[s.path_index];
        }
    }

    /// Assembles a handle from per-path wakers and their message ranges —
    /// how the graph-replay fast path wraps a
    /// [`mpx_gpu::TransferGraph::launch`] so callers see the same handle
    /// either way.
    pub(crate) fn from_parts(
        wakers: Vec<Waker>,
        slots: Vec<PathSlot>,
        bytes: usize,
    ) -> TransferHandle {
        let drained = wakers.iter().map(|_| AtomicBool::new(false)).collect();
        TransferHandle {
            wakers,
            slots,
            drained,
            bytes,
        }
    }
}

/// Executes `plan` moving `src → dst`, returning immediately.
///
/// `paths` must be the candidate set the plan was computed from (same
/// order). `transfer_seq` tags trace labels so overlapping transfers can
/// be told apart.
///
/// # Panics
/// Panics if buffer sizes don't match the plan, or if plan and paths
/// disagree.
pub fn execute_plan(
    rt: &GpuRuntime,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src: &Buffer,
    dst: &Buffer,
    transfer_seq: u64,
) -> TransferHandle {
    execute_plan_at(rt, plan, paths, src, 0, dst, 0, transfer_seq, &[])
}

/// Like [`execute_plan`], additionally firing every waker in `notify`
/// once the *whole* message (all paths) has landed. This is what the MPI
/// layer uses to complete both the send and the receive request of a
/// matched message.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_notify(
    rt: &GpuRuntime,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src: &Buffer,
    dst: &Buffer,
    transfer_seq: u64,
    notify: &[Waker],
) -> TransferHandle {
    execute_plan_at(rt, plan, paths, src, 0, dst, 0, transfer_seq, notify)
}

/// Staging slots available per path: chunk `c`'s first leg cannot start
/// until chunk `c − RING_DEPTH`'s slot has been forwarded and freed,
/// bounding staging memory like the ring buffers of the engine in \[35\].
/// Deep enough that rate-matched legs never stall on it; it only binds
/// when the legs are badly mismatched.
pub const RING_DEPTH: usize = 4;

/// The general form: moves `plan.n` bytes from `src[src_off..]` into
/// `dst[dst_off..]` (sub-range sends are how collectives transmit buffer
/// slices), firing `notify` when the whole message has landed.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_at(
    rt: &GpuRuntime,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src: &Buffer,
    src_off: usize,
    dst: &Buffer,
    dst_off: usize,
    transfer_seq: u64,
    notify: &[Waker],
) -> TransferHandle {
    execute_plan_at_obs(
        rt,
        plan,
        paths,
        src,
        src_off,
        dst,
        dst_off,
        transfer_seq,
        notify,
        None,
    )
}

/// [`execute_plan_at`] with optional per-transfer telemetry (what the
/// context passes when a recorder is installed on the engine).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_plan_at_obs(
    rt: &GpuRuntime,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src: &Buffer,
    src_off: usize,
    dst: &Buffer,
    dst_off: usize,
    transfer_seq: u64,
    notify: &[Waker],
    obs: Option<TransferObs>,
) -> TransferHandle {
    assert_eq!(plan.paths.len(), paths.len(), "plan/path set mismatch");
    assert!(
        src.len() >= src_off + plan.n,
        "source buffer smaller than message"
    );
    assert!(
        dst.len() >= dst_off + plan.n,
        "destination buffer smaller than message"
    );

    let topo = rt.engine().topology().clone();
    let oh = topo.overheads;
    let mut wakers = Vec::new();
    let mut slots = Vec::new();
    let mut offset = 0usize;

    // One-time software costs, charged on the direct path's first copy:
    // rendezvous in the cuda_ipc module plus the IPC handle-open cost for
    // the importing side.
    let ipc_cost = rt.ipc().open_cost(src.device().0, dst.id());
    let mut one_time = oh.rendezvous + ipc_cost;

    let active = plan.active_path_count();
    let remaining = Arc::new(AtomicUsize::new(active));
    // The tail closure fires once per active path; the last one signals
    // the whole-message wakers and (when telemetry is attached) records
    // the transfer span and its model residual.
    let want_tail = !notify.is_empty() || obs.is_some();
    let issue_secs = if want_tail {
        rt.engine().now().as_secs()
    } else {
        0.0
    };
    let tail_obs = Arc::new(obs);
    let predicted = plan.predicted_time;
    let n_total = plan.n;
    let make_tail = |wakers: Vec<Waker>| {
        let remaining = remaining.clone();
        let tail_obs = tail_obs.clone();
        move |ctx: &mut mpx_sim::Ctx<'_>| {
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                for w in &wakers {
                    ctx.signal(w);
                }
                if let Some(o) = tail_obs.as_ref() {
                    let end = ctx.now().as_secs();
                    let measured = end - issue_secs;
                    o.rec.span(
                        Phase::Transfer,
                        format!("pair:{}", o.pair),
                        format!("xfer{transfer_seq} {n_total}B"),
                        issue_secs,
                        end,
                        format!(
                            "predicted_us={:.3} measured_us={:.3}",
                            predicted * 1e6,
                            measured * 1e6
                        ),
                    );
                    o.residual.record(&o.pair, n_total, predicted, measured);
                    o.hist.observe(measured);
                }
            }
        }
    };

    for (pi, (pp, path)) in plan.paths.iter().zip(paths).enumerate() {
        if pp.share_bytes == 0 {
            continue;
        }
        assert_eq!(pp.kind, path.kind, "plan/path kind mismatch at {pi}");
        let share = pp.share_bytes;
        let done = Waker::new(format!("xfer{transfer_seq}.p{pi}"));

        // Sequential initiation: path i's first launch waits behind the
        // launches of the paths before it (Algorithm 1 line 18).
        let initiation = oh.copy_launch * pi as f64 + std::mem::take(&mut one_time);

        match path.legs.len() {
            1 => {
                // Direct: a single copy over the direct route.
                let s = rt.stream(src.device());
                s.copy(
                    src,
                    src_off + offset,
                    dst,
                    dst_off + offset,
                    share,
                    path.legs[0].route.clone(),
                    oh.copy_launch + initiation,
                    format!("xfer{transfer_seq}.p{pi}.direct"),
                );
                s.signal(&done);
                if want_tail {
                    s.callback(Box::new(make_tail(notify.to_vec())));
                }
            }
            _ => {
                let via = path.kind.staging_device().expect("staged path");
                let s1 = rt.stream(src.device());
                let s2 = rt.stream(via);
                let k = pp.chunks.max(1) as usize;
                let base = share / k;
                let rem = share % k;
                let mut chunk_off = offset;
                // A bounded ring of reusable staging slots, each sized
                // for the largest chunk — staging memory is
                // RING_DEPTH × chunk regardless of message size.
                let slot_len = base + usize::from(rem > 0);
                let ring: Vec<Buffer> = (0..RING_DEPTH.min(k))
                    .map(|ri| {
                        if src.is_synthetic() {
                            rt.alloc(via, slot_len)
                        } else {
                            let _ = ri;
                            rt.alloc_zeroed(via, slot_len)
                        }
                    })
                    .collect();
                let mut slot_freed: Vec<mpx_gpu::GpuEvent> = Vec::with_capacity(k);
                for c in 0..k {
                    let len = base + usize::from(c < rem);
                    if len == 0 {
                        continue;
                    }
                    // Slot reuse: wait until its previous occupant was
                    // forwarded off the staging device.
                    if slot_freed.len() >= RING_DEPTH {
                        s1.wait_event(&slot_freed[slot_freed.len() - RING_DEPTH]);
                    }
                    let slot = ring[c % RING_DEPTH.min(k)].clone();
                    let first_extra = if c == 0 { initiation } else { 0.0 };
                    s1.copy(
                        src,
                        src_off + chunk_off,
                        &slot,
                        0,
                        len,
                        path.legs[0].route.clone(),
                        oh.copy_launch + first_extra,
                        format!("xfer{transfer_seq}.p{pi}.c{c}.leg1"),
                    );
                    let ev = rt.event(format!("xfer{transfer_seq}.p{pi}.c{c}"));
                    s1.record(&ev);
                    s2.wait_event(&ev);
                    // The event synchronization cost ε is charged on the
                    // forwarding copy.
                    s2.copy(
                        &slot,
                        0,
                        dst,
                        dst_off + chunk_off,
                        len,
                        path.legs[1].route.clone(),
                        oh.copy_launch + oh.stage_sync,
                        format!("xfer{transfer_seq}.p{pi}.c{c}.leg2"),
                    );
                    let freed = rt.event(format!("xfer{transfer_seq}.p{pi}.c{c}.freed"));
                    s2.record(&freed);
                    slot_freed.push(freed);
                    chunk_off += len;
                }
                s2.signal(&done);
                if want_tail {
                    s2.callback(Box::new(make_tail(notify.to_vec())));
                }
            }
        }
        wakers.push(done);
        slots.push(PathSlot {
            path_index: pi,
            offset,
            bytes: share,
        });
        offset += share;
    }
    assert_eq!(offset, plan.n, "plan shares do not cover the message");
    let drained = wakers.iter().map(|_| AtomicBool::new(false)).collect();
    TransferHandle {
        wakers,
        slots,
        drained,
        bytes: plan.n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_model::{Planner, PlannerConfig};
    use mpx_sim::Engine;
    use mpx_topo::path::{enumerate_paths, PathSelection};
    use mpx_topo::presets;
    use mpx_topo::units::MIB;
    use std::sync::Arc;

    fn setup(topo: mpx_topo::Topology) -> (GpuRuntime, Planner) {
        let topo = Arc::new(topo);
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let planner = Planner::new(topo);
        (rt, planner)
    }

    fn run_transfer(
        topo: mpx_topo::Topology,
        n: usize,
        sel: PathSelection,
        real: bool,
    ) -> (f64, Option<Vec<u8>>) {
        let (rt, planner) = setup(topo);
        let gpus = rt.engine().topology().gpus();
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let (src, dst) = if real {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            (rt.alloc_bytes(gpus[0], data), rt.alloc_zeroed(gpus[1], n))
        } else {
            (rt.alloc(gpus[0], n), rt.alloc(gpus[1], n))
        };
        let h = execute_plan(&rt, &plan, &paths, &src, &dst, 0);
        rt.engine().run_until_idle();
        assert!(h.is_complete());
        (rt.engine().now().as_secs(), dst.to_vec())
    }

    #[test]
    fn direct_transfer_reaches_link_bandwidth() {
        let n = 256 * MIB;
        let (t, _) = run_transfer(presets::beluga(), n, PathSelection::DIRECT_ONLY, false);
        let bw = n as f64 / t;
        assert!(
            bw > 0.95 * 48e9 && bw <= 48e9,
            "direct bandwidth {:.1} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn multi_path_beats_direct_for_large_messages() {
        let n = 256 * MIB;
        let (t_direct, _) = run_transfer(presets::beluga(), n, PathSelection::DIRECT_ONLY, false);
        let (t_multi, _) = run_transfer(
            presets::beluga(),
            n,
            PathSelection::THREE_GPUS_WITH_HOST,
            false,
        );
        let speedup = t_direct / t_multi;
        assert!(
            (2.2..3.6).contains(&speedup),
            "speedup {speedup} out of the paper's band"
        );
    }

    #[test]
    fn data_reassembles_exactly_across_four_paths() {
        let n = 8 * MIB + 13;
        let (_, data) = run_transfer(
            presets::beluga(),
            n,
            PathSelection::THREE_GPUS_WITH_HOST,
            true,
        );
        let expected: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        assert_eq!(data.unwrap(), expected, "multi-path reassembly corrupted");
    }

    #[test]
    fn data_reassembles_with_two_paths_odd_size() {
        let n = MIB + 4093;
        let (_, data) = run_transfer(presets::beluga(), n, PathSelection::TWO_GPUS, true);
        let expected: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        assert_eq!(data.unwrap(), expected);
    }

    #[test]
    fn narval_multi_path_speedup_band() {
        let n = 256 * MIB;
        let (t_direct, _) = run_transfer(presets::narval(), n, PathSelection::DIRECT_ONLY, false);
        let (t_multi, _) = run_transfer(presets::narval(), n, PathSelection::THREE_GPUS, false);
        let speedup = t_direct / t_multi;
        assert!(
            (2.0..3.2).contains(&speedup),
            "narval speedup {speedup} out of band"
        );
    }

    #[test]
    fn simulated_time_close_to_model_prediction_large_n() {
        // The headline accuracy claim in miniature: for n >> 4 MB the
        // simulated multi-path time should be within ~10% of the model's
        // prediction (the paper reports <6% against real hardware).
        let (rt, planner) = setup(presets::beluga());
        let gpus = rt.engine().topology().gpus();
        let sel = PathSelection::THREE_GPUS;
        let n = 128 * MIB;
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        execute_plan(&rt, &plan, &paths, &src, &dst, 0);
        rt.engine().run_until_idle();
        let measured = rt.engine().now().as_secs();
        let rel = (measured - plan.predicted_time).abs() / measured;
        assert!(
            rel < 0.10,
            "model {} vs simulated {} ({}% off)",
            plan.predicted_time,
            measured,
            rel * 100.0
        );
    }

    #[test]
    fn zero_share_paths_are_skipped() {
        // Tiny message: plan collapses to direct; handle has one waker.
        let (rt, planner) = setup(presets::beluga());
        let gpus = rt.engine().topology().gpus();
        let sel = PathSelection::THREE_GPUS_WITH_HOST;
        let n = 8 << 10;
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        let h = execute_plan(&rt, &plan, &paths, &src, &dst, 0);
        assert_eq!(h.path_count(), 1);
        rt.engine().run_until_idle();
        assert!(h.is_complete());
    }

    #[test]
    fn pipelining_outperforms_unpipelined_execution() {
        let topo = Arc::new(presets::beluga());
        let gpus = topo.gpus();
        let sel = PathSelection::THREE_GPUS;
        let n = 256 * MIB;
        let run = |cfg: PlannerConfig| {
            let rt = GpuRuntime::new(Engine::new(topo.clone()));
            let planner = Planner::with_config(topo.clone(), cfg);
            let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
            let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
            let src = rt.alloc(gpus[0], n);
            let dst = rt.alloc(gpus[1], n);
            execute_plan(&rt, &plan, &paths, &src, &dst, 0);
            rt.engine().run_until_idle();
            rt.engine().now().as_secs()
        };
        let piped = run(PlannerConfig::default());
        let unpiped = run(PlannerConfig {
            mode: mpx_model::PipelineMode::Unpipelined,
            ..PlannerConfig::default()
        });
        assert!(
            piped < unpiped,
            "pipelined {piped} should beat unpipelined {unpiped}"
        );
    }

    #[test]
    fn rendezvous_and_ipc_charged_once() {
        let (rt, planner) = setup(presets::beluga());
        let gpus = rt.engine().topology().gpus();
        let n = 4096;
        let sel = PathSelection::DIRECT_ONLY;
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        execute_plan(&rt, &plan, &paths, &src, &dst, 0);
        rt.engine().run_until_idle();
        let first = rt.engine().now().as_secs();
        // Second transfer to the same destination buffer: the IPC handle
        // is cached, so it must finish faster.
        let t0 = rt.engine().now();
        execute_plan(&rt, &plan, &paths, &src, &dst, 1);
        rt.engine().run_until_idle();
        let second = rt.engine().now().secs_since(t0);
        assert!(
            second < first,
            "cached-handle transfer {second} not faster than first {first}"
        );
        assert_eq!(rt.ipc().stats().misses, 1);
        assert_eq!(rt.ipc().stats().hits, 1);
    }

    #[test]
    fn staging_memory_bounded_by_ring_depth() {
        // The point of the slot ring: staging memory must not scale with
        // message size. A 256 MB transfer over a staged path may hold at
        // most RING_DEPTH × chunk bytes on the staging GPU.
        let (rt, planner) = setup(presets::beluga());
        let gpus = rt.engine().topology().gpus();
        let sel = PathSelection::TWO_GPUS;
        let n = 256 * MIB;
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let staged = &plan.paths[1];
        let via = paths[1].kind.staging_device().unwrap();
        let chunk = staged.share_bytes / staged.chunks as usize + 1;
        let src = rt.alloc(gpus[0], n);
        let dst = rt.alloc(gpus[1], n);
        execute_plan(&rt, &plan, &paths, &src, &dst, 0);
        rt.engine().run_until_idle();
        let peak = rt.memory_stats().peak[via.index()] as usize;
        let bound = RING_DEPTH * chunk + 4096;
        assert!(
            peak <= bound,
            "staging peak {peak} exceeds ring bound {bound} (chunk {chunk}, k {})",
            staged.chunks
        );
        assert!(peak > 0, "staging traffic must be tracked");
        // And nothing leaks once the transfer drains.
        assert_eq!(rt.memory_stats().current[via.index()], 0);
    }

    #[test]
    #[should_panic(expected = "smaller than message")]
    fn undersized_destination_panics() {
        let (rt, planner) = setup(presets::beluga());
        let gpus = rt.engine().topology().gpus();
        let sel = PathSelection::DIRECT_ONLY;
        let paths = enumerate_paths(rt.engine().topology(), gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], MIB, sel).unwrap();
        let src = rt.alloc(gpus[0], MIB);
        let dst = rt.alloc(gpus[1], MIB - 1);
        execute_plan(&rt, &plan, &paths, &src, &dst, 0);
    }
}
