//! The one deadline rule of the stack: `predicted × slack`, floored.
//!
//! Three layers used to derive completion deadlines from the model's
//! prediction with their own inline arithmetic: the recovery loop
//! (`predicted × slack` with a `min_deadline` floor), the hedging layer
//! (`predicted × factor` with a `min_trigger` floor), and the plain
//! blocking PUT (`predicted × 1024` with a one-second floor). A
//! [`DeadlinePolicy`] captures that rule once, so every consumer —
//! including the admission-control math in `mpx-broker` — derives
//! budgets from the same two numbers and backs off by scaling the same
//! policy rather than re-deriving the formula.

use mpx_sim::SimTime;
use mpx_topo::units::Secs;

/// A deadline rule: a transfer predicted to take `t` seconds gets a
/// budget of `max(t × slack, floor)` seconds. Backoff is expressed by
/// [`DeadlinePolicy::scaled`], which multiplies the slack and keeps the
/// floor — the shape every retry ladder in the stack follows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Multiplier on the model's predicted completion time. Clamped to
    /// at least 1.0 when applied: a budget below the prediction would
    /// declare every transfer late by construction.
    pub slack: f64,
    /// Minimum budget in seconds, so tiny transfers are not declared
    /// dead on scheduling noise.
    pub floor: Secs,
}

impl DeadlinePolicy {
    /// The plain blocking PUT's stuck detector: three orders of
    /// magnitude of slack with a one-second floor. Anything later than
    /// this is a degraded fabric, not noise.
    pub const STUCK: DeadlinePolicy = DeadlinePolicy {
        slack: 1024.0,
        floor: 1.0,
    };

    /// A policy from its two parameters.
    pub const fn new(slack: f64, floor: Secs) -> DeadlinePolicy {
        DeadlinePolicy { slack, floor }
    }

    /// The budget for a transfer predicted to take `predicted` seconds:
    /// `max(predicted × max(slack, 1), floor)`.
    pub fn budget(&self, predicted: Secs) -> Secs {
        (predicted * self.slack.max(1.0)).max(self.floor)
    }

    /// The absolute deadline for a transfer issued at `now` with the
    /// given prediction.
    pub fn deadline(&self, now: SimTime, predicted: Secs) -> SimTime {
        now.after(self.budget(predicted))
    }

    /// The same rule with the slack scaled by `factor` (floor kept) —
    /// how retry and hedge ladders back off without re-deriving the
    /// formula.
    pub fn scaled(&self, factor: f64) -> DeadlinePolicy {
        DeadlinePolicy {
            slack: self.slack * factor.max(0.0),
            floor: self.floor,
        }
    }

    /// True when a request whose work is predicted to take `predicted`
    /// seconds, behind an estimated `backlog` seconds of queued work,
    /// can still meet this policy's budget — the broker's admission
    /// test.
    pub fn admits(&self, backlog: Secs, predicted: Secs) -> bool {
        backlog + predicted <= self.budget(predicted)
    }
}

impl crate::recover::RecoveryConfig {
    /// This configuration's deadline rule (first attempt; recovery
    /// rounds scale it by the jittered backoff ladder).
    pub fn deadline_policy(&self) -> DeadlinePolicy {
        DeadlinePolicy::new(self.slack, self.min_deadline)
    }
}

impl crate::health::HedgeConfig {
    /// This configuration's hedge-trigger rule (round `k` scales it by
    /// `backoff^(k-1)`).
    pub fn trigger_policy(&self) -> DeadlinePolicy {
        DeadlinePolicy::new(self.factor, self.min_trigger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HedgeConfig;
    use crate::recover::RecoveryConfig;

    #[test]
    fn budget_is_predicted_times_slack_with_floor() {
        let p = DeadlinePolicy::new(4.0, 1e-3);
        assert_eq!(p.budget(1.0), 4.0);
        assert_eq!(p.budget(1e-6), 1e-3, "floor wins for tiny transfers");
    }

    #[test]
    fn slack_below_one_is_clamped() {
        let p = DeadlinePolicy::new(0.5, 0.0);
        assert_eq!(p.budget(2.0), 2.0, "budget never undercuts the prediction");
    }

    #[test]
    fn scaled_multiplies_slack_and_keeps_floor() {
        let p = DeadlinePolicy::new(2.0, 1e-3).scaled(3.0);
        assert_eq!(p.slack, 6.0);
        assert_eq!(p.floor, 1e-3);
        assert_eq!(p.budget(1.0), 6.0);
    }

    #[test]
    fn recovery_policy_matches_the_historic_formula() {
        let rcfg = RecoveryConfig::default();
        let p = rcfg.deadline_policy();
        for predicted in [1e-6, 1e-3, 0.5, 3.0] {
            assert_eq!(
                p.budget(predicted),
                (predicted * rcfg.slack).max(rcfg.min_deadline)
            );
        }
    }

    #[test]
    fn hedge_policy_matches_the_historic_formula() {
        let hcfg = HedgeConfig::default();
        let p = hcfg.trigger_policy();
        for predicted in [1e-6, 1e-3, 0.5] {
            assert_eq!(
                p.budget(predicted),
                (predicted * hcfg.factor.max(1.0)).max(hcfg.min_trigger)
            );
        }
    }

    #[test]
    fn stuck_policy_matches_plain_put() {
        for predicted in [1e-9, 1e-3, 2.0] {
            assert_eq!(
                DeadlinePolicy::STUCK.budget(predicted),
                (predicted * 1024.0).max(1.0)
            );
        }
    }

    #[test]
    fn admission_is_budget_minus_prediction() {
        let p = DeadlinePolicy::new(2.0, 0.0);
        // Budget 2s for a 1s transfer: up to 1s of backlog is fine.
        assert!(p.admits(0.0, 1.0));
        assert!(p.admits(1.0, 1.0));
        assert!(!p.admits(1.0 + 1e-9, 1.0));
    }

    #[test]
    fn absolute_deadline_offsets_from_now() {
        let p = DeadlinePolicy::new(4.0, 1e-3);
        let now = SimTime::from_secs(2.0);
        let d = p.deadline(now, 0.5);
        assert!((d.secs_since(now) - 2.0).abs() < 1e-9);
    }
}
