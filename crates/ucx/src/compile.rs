//! Lowering a [`TransferPlan`] into a compiled [`TransferGraph`], and the
//! context's pool of compiled graphs.
//!
//! [`compile_plan`] replays the exact chunk math of
//! [`crate::pipeline::execute_plan_at_obs`] — per-path shares, the
//! `share/k` chunk split, the `RING_DEPTH`-bounded staging ring, and the
//! record/wait sync pattern — into a [`GraphBuilder`] capture instead of
//! live stream ops. The resulting graph moves bytes bit-identically to
//! the interpreter (same copies, same offsets, same ordering
//! constraints); what changes is the *software* cost model: per-op
//! launch/ε/rendezvous/initiation overheads are stripped, and each
//! path's first copy carries only the per-replay `first_extra` the
//! context computes at launch (one graph-launch cost plus the current
//! IPC handle-open cost). That is the capture → instantiate → replay
//! split of the follow-up CUDA-Graphs paper.
//!
//! [`GraphCache`] pools compiled graphs per `(pair, graph key)`, sharded
//! by pair exactly like the PR-3 plan caches, where the graph key is the
//! exact byte count below [`SizeClassConfig::exact_below`] and the PR-3
//! size class above it. A pool holds several instances because one graph
//! cannot overlap itself (windowed workloads replay the same key
//! concurrently); lookups that find every instance busy capture another,
//! up to [`MAX_GRAPHS_PER_KEY`], then fall back to the interpreter. The
//! same drift signals that purge plans and probed parameters
//! ([`crate::UcxContext::record_observation`], `recalibrate`) evict the
//! pair's compiled graphs, so a stale graph can never outlive the plan
//! it was compiled from.

use crate::pipeline::RING_DEPTH;
use mpx_gpu::{GpuRuntime, GraphBuf, GraphBuilder, TransferGraph};
use mpx_model::{PairKey, ShardedMap, SizeClassConfig, TransferPlan};
use mpx_topo::path::TransferPath;
use mpx_topo::DeviceId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Compiled-graph instances kept per `(pair, graph key)`. Bounds both
/// memory (each instance owns a staging ring) and capture churn under
/// deep transfer windows; beyond it the interpreter takes over.
pub const MAX_GRAPHS_PER_KEY: usize = 16;

/// Bit marking a graph-cache key as a size class rather than an exact
/// byte count (sizes never reach 2^63).
pub const CLASS_TAG: u64 = 1 << 63;

/// The graph-cache key for an `n`-byte transfer: exact bytes below the
/// quantization threshold, the PR-3 size class above it — identical to
/// the plan cache's keying rule, so a plan and its compiled graph always
/// live and die together.
pub fn graph_key(sc: &SizeClassConfig, n: usize) -> u64 {
    if sc.enabled && n >= sc.exact_below {
        CLASS_TAG | u64::from(sc.class_of(n))
    } else {
        n as u64
    }
}

/// Lowers `plan` over `paths` into a replayable graph. Mirrors the
/// interpreted pipeline's structure op for op; see the module docs for
/// what is deliberately *not* carried over (per-op software overheads).
///
/// # Panics
/// Panics on plan/path disagreement, like the interpreter.
pub(crate) fn compile_plan(
    rt: &GpuRuntime,
    plan: &TransferPlan,
    paths: &[TransferPath],
    src_device: DeviceId,
    dst_device: DeviceId,
    src_synthetic: bool,
) -> TransferGraph {
    assert_eq!(plan.paths.len(), paths.len(), "plan/path set mismatch");
    let mut g = GraphBuilder::new(rt, src_device, dst_device, plan.n, src_synthetic);
    let gid = g.id();
    let mut offset = 0usize;
    for (pi, (pp, path)) in plan.paths.iter().zip(paths).enumerate() {
        if pp.share_bytes == 0 {
            continue;
        }
        assert_eq!(pp.kind, path.kind, "plan/path kind mismatch at {pi}");
        let share = pp.share_bytes;
        match path.legs.len() {
            1 => {
                let s = g.stream(src_device);
                g.copy(
                    s,
                    GraphBuf::Src,
                    offset,
                    GraphBuf::Dst,
                    offset,
                    share,
                    path.legs[0].route.clone(),
                    0.0,
                    true,
                    format!("g{gid}.p{pi}.direct"),
                );
                g.end_path(s, pi, offset, share);
            }
            _ => {
                let via = path.kind.staging_device().expect("staged path");
                let s1 = g.stream(src_device);
                let s2 = g.stream(via);
                let k = pp.chunks.max(1) as usize;
                let base = share / k;
                let rem = share % k;
                let slot_len = base + usize::from(rem > 0);
                let depth = RING_DEPTH.min(k);
                let ring: Vec<GraphBuf> = (0..depth).map(|_| g.staging(via, slot_len)).collect();
                let mut slot_freed: Vec<usize> = Vec::with_capacity(k);
                let mut chunk_off = offset;
                for c in 0..k {
                    let len = base + usize::from(c < rem);
                    if len == 0 {
                        continue;
                    }
                    if slot_freed.len() >= RING_DEPTH {
                        g.wait(s1, slot_freed[slot_freed.len() - RING_DEPTH]);
                    }
                    let slot = ring[c % depth];
                    g.copy(
                        s1,
                        GraphBuf::Src,
                        chunk_off,
                        slot,
                        0,
                        len,
                        path.legs[0].route.clone(),
                        0.0,
                        c == 0,
                        format!("g{gid}.p{pi}.c{c}.leg1"),
                    );
                    let sync = g.event();
                    g.record(s1, sync);
                    g.wait(s2, sync);
                    g.copy(
                        s2,
                        slot,
                        0,
                        GraphBuf::Dst,
                        chunk_off,
                        len,
                        path.legs[1].route.clone(),
                        0.0,
                        false,
                        format!("g{gid}.p{pi}.c{c}.leg2"),
                    );
                    let freed = g.event();
                    g.record(s2, freed);
                    slot_freed.push(freed);
                    chunk_off += len;
                }
                g.end_path(s2, pi, offset, share);
            }
        }
        offset += share;
    }
    assert_eq!(offset, plan.n, "plan shares do not cover the message");
    g.finish()
}

/// The compiled instances of one `(pair, graph key)`: all captured for
/// the same byte count and payload storage class.
pub(crate) struct GraphPool {
    pub(crate) n: usize,
    pub(crate) src_synthetic: bool,
    pub(crate) graphs: Mutex<Vec<Arc<TransferGraph>>>,
}

/// Counters of the graph-replay fast path (see
/// [`crate::UcxContext::graph_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Plans compiled into graphs (pool misses and busy-pool growth).
    pub captures: u64,
    /// Transfers executed by graph replay (the first launch after a
    /// capture counts too).
    pub replays: u64,
    /// Replay-eligible transfers that ran interpreted anyway (pool at
    /// capacity with every instance busy, or a shape mismatch).
    pub fallbacks: u64,
    /// Drift/recalibration events that evicted compiled graphs.
    pub invalidations: u64,
}

/// Pool of compiled graphs, sharded by pair like every other planning
/// cache, evicted by the same drift signals.
pub(crate) struct GraphCache {
    pools: ShardedMap<(PairKey, u64), Arc<GraphPool>>,
    pub(crate) captures: AtomicU64,
    pub(crate) replays: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    invalidations: AtomicU64,
}

impl GraphCache {
    pub(crate) fn new() -> GraphCache {
        GraphCache {
            pools: ShardedMap::new(),
            captures: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The pool for `(pair, key)`, created (or replaced, when the cached
    /// pool was captured for a different byte count or storage class —
    /// e.g. a size class revisited at a new realized size) on demand.
    pub(crate) fn pool(
        &self,
        pair: &PairKey,
        key: u64,
        n: usize,
        src_synthetic: bool,
    ) -> Arc<GraphPool> {
        let full_key = (*pair, key);
        if let Some(p) = self.pools.get(pair, &full_key) {
            if p.n == n && p.src_synthetic == src_synthetic {
                return p;
            }
        }
        let fresh = Arc::new(GraphPool {
            n,
            src_synthetic,
            graphs: Mutex::new(Vec::new()),
        });
        self.pools.insert(pair, full_key, fresh.clone());
        fresh
    }

    /// Drops every compiled graph of `pair` — one shard, same locking
    /// discipline as the plan caches' `invalidate_pair`.
    pub(crate) fn invalidate_pair(&self, pair: &PairKey) {
        self.pools.retain_in_shard(pair, |k| k.0 != *pair);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops everything (recalibration).
    pub(crate) fn clear(&self) {
        self.pools.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> GraphStats {
        GraphStats {
            captures: self.captures.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_model::Planner;
    use mpx_sim::Engine;
    use mpx_topo::path::{enumerate_paths, PathSelection};
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    #[test]
    fn compiled_graph_matches_interpreter_bit_for_bit() {
        let topo = Arc::new(presets::beluga());
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let sel = PathSelection::THREE_GPUS_WITH_HOST;
        let n = 8 * MIB + 13;
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let data: Vec<u8> = (0..n).map(|i| (i * 7 % 251) as u8).collect();

        // Interpreted reference.
        let src = rt.alloc_bytes(gpus[0], data.clone());
        let dst_i = rt.alloc_zeroed(gpus[1], n);
        crate::pipeline::execute_plan(&rt, &plan, &paths, &src, &dst_i, 0);
        rt.engine().run_until_idle();

        // Compiled, replayed twice into separate destinations.
        let g = compile_plan(&rt, &plan, &paths, gpus[0], gpus[1], false);
        for _ in 0..2 {
            let dst_g = rt.alloc_zeroed(gpus[1], n);
            let w = g.launch(&src, 0, &dst_g, 0, 0.0, &[], None).unwrap();
            rt.engine().run_until_idle();
            assert!(w.iter().all(|x| x.is_signaled()));
            assert_eq!(
                dst_g.to_vec().unwrap(),
                dst_i.to_vec().unwrap(),
                "replayed bytes differ from interpreted bytes"
            );
            assert_eq!(dst_g.to_vec().unwrap(), data);
        }
        assert_eq!(g.replays(), 2);
    }

    #[test]
    fn graph_staging_is_ring_bounded_like_the_interpreter() {
        let topo = Arc::new(presets::beluga());
        let rt = GpuRuntime::new(Engine::new(topo.clone()));
        let planner = Planner::new(topo.clone());
        let gpus = topo.gpus();
        let sel = PathSelection::TWO_GPUS;
        let n = 64 * MIB;
        let paths = enumerate_paths(&topo, gpus[0], gpus[1], sel).unwrap();
        let plan = planner.plan(gpus[0], gpus[1], n, sel).unwrap();
        let staged = &plan.paths[1];
        let chunk = staged.share_bytes / staged.chunks.max(1) as usize + 1;
        let g = compile_plan(&rt, &plan, &paths, gpus[0], gpus[1], true);
        assert!(
            g.staging_bytes() <= RING_DEPTH * chunk + 4096,
            "graph staging {} exceeds ring bound (chunk {chunk})",
            g.staging_bytes()
        );
        assert!(g.staging_bytes() > 0);
    }

    #[test]
    fn graph_key_is_exact_below_threshold_and_classed_above() {
        let sc = SizeClassConfig::ENABLED;
        let below = sc.exact_below - 4;
        assert_eq!(graph_key(&sc, below), below as u64);
        let at = sc.exact_below;
        assert_eq!(graph_key(&sc, at), CLASS_TAG | u64::from(sc.class_of(at)));
        // Same class ⇒ same key; different exact sizes below ⇒ different.
        assert_eq!(graph_key(&sc, 16 * MIB), graph_key(&sc, 16 * MIB + 4096));
        assert_ne!(graph_key(&sc, below), graph_key(&sc, below - 4));
        // Disabled quantization: always exact.
        let off = SizeClassConfig::default();
        assert_eq!(graph_key(&off, 16 * MIB), (16 * MIB) as u64);
    }

    #[test]
    fn pool_is_replaced_when_shape_changes() {
        let cache = GraphCache::new();
        let pair: PairKey = (DeviceId(0), DeviceId(1), 2, true);
        let a = cache.pool(&pair, 42, 1024, true);
        let b = cache.pool(&pair, 42, 1024, true);
        assert!(Arc::ptr_eq(&a, &b), "same shape must share the pool");
        let c = cache.pool(&pair, 42, 2048, true);
        assert!(!Arc::ptr_eq(&a, &c), "size change must replace the pool");
        let d = cache.pool(&pair, 42, 2048, false);
        assert!(
            !Arc::ptr_eq(&c, &d),
            "storage-class change must replace the pool"
        );
    }
}
