//! # mpx-ucx — UCX-style transport with multi-path pipelining
//!
//! The integration layer of the paper (Section 4): a `cuda_ipc`-like
//! context that, per transfer, resolves a configuration — single-path,
//! model-driven (Algorithm 1), or statically tuned — and executes it on
//! the multi-path chunk pipeline engine over the simulated GPU runtime.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_gpu::GpuRuntime;
//! use mpx_sim::Engine;
//! use mpx_topo::presets;
//! use mpx_ucx::{UcxConfig, UcxContext};
//!
//! let rt = GpuRuntime::new(Engine::new(Arc::new(presets::beluga())));
//! let ctx = UcxContext::new(rt, UcxConfig::default());
//! let gpus = ctx.runtime().engine().topology().gpus();
//! let n = 16 << 20;
//! let src = ctx.runtime().alloc(gpus[0], n);
//! let dst = ctx.runtime().alloc(gpus[1], n);
//! let handle = ctx.put_async(&src, &dst, n).unwrap();
//! ctx.runtime().engine().run_until_idle();
//! assert!(handle.is_complete());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod context;
pub mod deadline;
pub mod health;
pub mod pipeline;
pub mod probe;
pub mod recover;
pub mod tuner;

pub use compile::{graph_key, GraphStats, CLASS_TAG, MAX_GRAPHS_PER_KEY};
pub use context::{CacheStats, ParamSource, TransferError, TuningMode, UcxConfig, UcxContext};
pub use deadline::DeadlinePolicy;
pub use health::{
    BreakerEvent, BreakerState, HealthConfig, HealthStats, HealthSupervisor, HedgeConfig,
    HedgeReport, PathAdmissions,
};
pub use pipeline::{
    execute_plan, execute_plan_at, execute_plan_notify, PathSlot, TimedOut, TransferHandle,
    RING_DEPTH,
};
pub use probe::{
    probe_all, probe_all_with, probe_path_params, probe_path_params_with, PROBE_BYTES,
};
pub use recover::{RecoveryConfig, RecoveryError, RecoveryReport, ResilienceStats};
pub use tuner::{manual_plan, measure_plan, share_grid, tune_exhaustive, TuneResult};
