//! Degradation-aware transfers: deadline, detect, re-plan, retry.
//!
//! [`UcxContext::put_resilient`] wraps a PUT in a recovery loop. The
//! first attempt runs the normal cached plan but waits with a
//! *simulated-time deadline* derived from the plan's own prediction
//! (`predicted_time × slack`). If the deadline expires, the
//! [`crate::pipeline::TransferHandle`] reports exactly which paths
//! drained; the residual byte ranges are re-planned by Algorithm 1 over
//! the *surviving* candidate paths with parameters re-probed against the
//! fabric's current capacities, and re-sent. Slack backs off
//! exponentially so a merely-degraded (not dead) path gets
//! proportionally more time each round; the retry budget is bounded.
//!
//! Re-planning over survivors preserves the paper's optimality argument:
//! Algorithm 1's equal-time condition never referenced the failed path —
//! it equalizes completion over whatever candidate set it is given, so
//! the residual transfer is again optimal for the degraded fabric, down
//! to a single surviving path.

use crate::context::UcxContext;
use crate::deadline::DeadlinePolicy;
use crate::pipeline::{execute_plan_at_obs, TransferHandle};
use crate::probe::probe_all_with;
use mpx_gpu::Buffer;
use mpx_model::TransferPlan;
use mpx_obs::Phase;
use mpx_sim::SimThread;
use mpx_topo::path::TransferPath;
use mpx_topo::units::Secs;
use mpx_topo::TopologyError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tunables of the recovery loop.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Deadline = predicted time × `slack` (first attempt).
    pub slack: f64,
    /// Multiplier applied to `slack` after every missed deadline.
    pub backoff: f64,
    /// Recovery rounds allowed after the initial attempt.
    pub max_retries: u32,
    /// Floor for any deadline, so tiny transfers are not declared dead
    /// on scheduling noise.
    pub min_deadline: Secs,
    /// Decorrelated-jitter width on the backoff: each round's slack is
    /// drawn uniformly from `[slack, slack × backoff × (1 + jitter)]`,
    /// so concurrent tenants recovering from the same flap don't retry
    /// in lockstep. `0.0` restores the deterministic geometric ladder.
    /// The expected growth per round stays ≈ `backoff`.
    pub jitter: f64,
    /// Seed for the jitter draws, mixed with the transfer's sequence
    /// number — deterministic for a fixed seed and issue order, while
    /// distinct transfers still decorrelate.
    pub seed: u64,
    /// Ceiling on the backed-off slack multiplier.
    pub max_slack: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            slack: 4.0,
            backoff: 2.0,
            max_retries: 4,
            min_deadline: 1e-3,
            jitter: 0.5,
            seed: 0x7265_7472,
            max_slack: 256.0,
        }
    }
}

/// One decorrelated-jitter step: the next slack, drawn uniformly from
/// `[prev, prev × backoff × (1 + jitter)]` and capped. The draw comes
/// from a caller-owned xorshift state, so the sequence is a pure
/// function of the seed.
pub(crate) fn jittered_slack(prev: f64, rcfg: &RecoveryConfig, state: &mut u64) -> f64 {
    let step = rcfg.backoff.max(1.0);
    let cap = rcfg.max_slack.max(rcfg.slack.max(1.0));
    if rcfg.jitter <= 0.0 {
        return (prev * step).min(cap);
    }
    // xorshift64* — tiny, seedable, plenty for retry spreading.
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
    let hi = prev * step * (1.0 + rcfg.jitter);
    (prev + u * (hi - prev)).min(cap)
}

/// What a resilient PUT went through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Recovery rounds that ran (0 = clean first attempt).
    pub retries: u64,
    /// Residual-range plans computed across all rounds.
    pub replans: u64,
    /// Bytes re-sent through recovery rounds.
    pub recovered_bytes: u64,
    /// Surviving candidate paths used by the final round (equals the
    /// full candidate count on a clean run).
    pub final_paths: usize,
}

/// A resilient PUT that could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// Planning/topology failure (no candidate paths survive, etc.).
    Topology(TopologyError),
    /// The retry budget ran out with bytes still unfinished.
    RetriesExhausted {
        /// Rounds attempted.
        retries: u64,
        /// Bytes that never landed.
        unfinished_bytes: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Topology(e) => write!(f, "recovery planning failed: {e}"),
            RecoveryError::RetriesExhausted {
                retries,
                unfinished_bytes,
            } => write!(
                f,
                "retry budget exhausted after {retries} rounds, {unfinished_bytes} bytes unfinished"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<TopologyError> for RecoveryError {
    fn from(e: TopologyError) -> RecoveryError {
        RecoveryError::Topology(e)
    }
}

/// Shared counters behind [`UcxContext::resilience_stats`].
#[derive(Debug, Default)]
pub(crate) struct ResilienceCounters {
    pub(crate) retries: AtomicU64,
    pub(crate) replans: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) cache_invalidations: AtomicU64,
}

impl ResilienceCounters {
    pub(crate) fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            retries: self.retries.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of the context's degradation-handling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Recovery rounds run.
    pub retries: u64,
    /// Residual plans computed by recovery rounds.
    pub replans: u64,
    /// Deadlines missed.
    pub timeouts: u64,
    /// Cache entries dropped because observed bandwidth drifted past
    /// [`crate::UcxConfig::drift_tolerance`].
    pub cache_invalidations: u64,
}

/// A contiguous residual byte range of the message, in message-relative
/// offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Range {
    pub(crate) offset: usize,
    pub(crate) bytes: usize,
}

/// Coalesces adjacent/overlapping ranges so each recovery round plans as
/// few residual messages as possible.
pub(crate) fn coalesce(mut ranges: Vec<Range>) -> Vec<Range> {
    ranges.sort_by_key(|r| r.offset);
    let mut out: Vec<Range> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.offset <= last.offset + last.bytes => {
                let end = (r.offset + r.bytes).max(last.offset + last.bytes);
                last.bytes = end - last.offset;
            }
            _ => out.push(r),
        }
    }
    out
}

/// Residual ranges of a timed-out handle, shifted into message-absolute
/// offsets (`base` is where the handle's sub-message started).
pub(crate) fn residuals_of(h: &TransferHandle, base: usize) -> Vec<Range> {
    h.unfinished()
        .into_iter()
        .map(|s| Range {
            offset: base + s.offset,
            bytes: s.bytes,
        })
        .collect()
}

impl UcxContext {
    /// Blocking PUT with detection and recovery: deadlines from the
    /// plan's own prediction, residual re-planning over surviving paths,
    /// exponential slack backoff, bounded retries. See the module docs
    /// for the policy.
    pub fn put_resilient(
        &self,
        thread: &SimThread,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
        rcfg: &RecoveryConfig,
    ) -> Result<RecoveryReport, RecoveryError> {
        let eng = self.runtime().engine().clone();
        let t0 = thread.now();
        let mut slack = rcfg.slack.max(1.0);
        let mut report = RecoveryReport::default();

        // Attempt 0: the normal cached plan over the full candidate set.
        let plan = self.plan_for(src.device(), dst.device(), n)?;
        let pair = self.pair_key(src.device(), dst.device(), self.effective_selection());
        let all_paths = self.paths_for(src.device(), dst.device(), self.effective_selection())?;
        report.final_paths = all_paths.len();
        let seq = self.next_seq();
        // Jitter state: the config seed mixed with this transfer's
        // sequence number, so concurrent transfers decorrelate while a
        // fixed seed and issue order replay the same slack ladder.
        let mut jitter_state = (rcfg.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        let obs = self.transfer_obs(src.device(), dst.device());
        let pair_track = format!("pair:{}->{}", src.device(), dst.device());
        let h = execute_plan_at_obs(
            self.runtime(),
            &plan,
            &all_paths,
            src,
            0,
            dst,
            0,
            seq,
            &[],
            obs.clone(),
        );
        let deadline = DeadlinePolicy::new(slack, rcfg.min_deadline)
            .deadline(thread.now(), plan.predicted_time);
        let mut pending: Vec<Range> = match h.wait_deadline(thread, deadline) {
            Ok(()) => {
                self.health_mark_success(pair, &h);
                Vec::new()
            }
            Err(_) => {
                self.resilience().timeouts.fetch_add(1, Ordering::Relaxed);
                for s in h.unfinished() {
                    self.health_path_failure(
                        pair,
                        s.path_index,
                        &all_paths[s.path_index],
                        "deadline-miss",
                    );
                }
                let residuals = coalesce(residuals_of(&h, 0));
                let unfinished: u64 = residuals.iter().map(|r| r.bytes as u64).sum();
                if let Some(rec) = self.recorder() {
                    rec.instant(
                        Phase::Recovery,
                        pair_track.clone(),
                        format!("deadline-miss xfer{seq}"),
                        thread.now().as_secs(),
                        format!("unfinished_bytes={unfinished} slack={slack:.1}"),
                    );
                }
                self.anomaly_signal(
                    mpx_obs::TriggerClass::DeadlineMissBurst,
                    Some(&format!("{}->{}", src.device(), dst.device())),
                    h.unfinished().first().map(|s| s.path_index),
                    &format!("xfer{seq} unfinished_bytes={unfinished} slack={slack:.1}"),
                );
                residuals
            }
        };

        // Recovery rounds: re-probe, re-plan residuals over survivors,
        // re-send, back off.
        let mut round = 0u32;
        while !pending.is_empty() {
            if round >= rcfg.max_retries {
                let unfinished_bytes = pending.iter().map(|r| r.bytes as u64).sum();
                return Err(RecoveryError::RetriesExhausted {
                    retries: report.retries,
                    unfinished_bytes,
                });
            }
            round += 1;
            slack = jittered_slack(slack, rcfg, &mut jitter_state);
            report.retries += 1;
            self.resilience().retries.fetch_add(1, Ordering::Relaxed);

            // Surviving candidates: every link of every leg still up.
            // The parallel original-index vector keeps breaker
            // attribution in candidate-set space after the filter.
            let mut survivors: Vec<TransferPath> = Vec::new();
            let mut orig_idx: Vec<usize> = Vec::new();
            for (i, p) in all_paths.iter().enumerate() {
                if p.legs
                    .iter()
                    .all(|leg| leg.route.iter().all(|&l| eng.link_is_up(l)))
                {
                    survivors.push(p.clone());
                    orig_idx.push(i);
                } else {
                    self.health_path_failure(pair, i, p, "link-down");
                }
            }
            if survivors.is_empty() {
                return Err(TopologyError::NoUsablePath(src.device(), dst.device()).into());
            }
            report.final_paths = survivors.len();

            // Refresh parameters against the fabric's *current* state.
            // Down links sit at capacity 0 in the engine; the probe
            // asserts positive capacities, so give them a dummy value —
            // survivors never route over them, so it cannot influence
            // the measured rates.
            let caps: Vec<f64> =
                eng.with_capacities(|c| c.iter().map(|&v| if v > 0.0 { v } else { 1.0 }).collect());
            let params = probe_all_with(eng.topology(), Some(&caps), &survivors)?;
            if let Some(rec) = self.recorder() {
                rec.instant(
                    Phase::Recovery,
                    pair_track.clone(),
                    format!("replan round{round}"),
                    thread.now().as_secs(),
                    format!(
                        "survivors={} of {} residual_ranges={}",
                        survivors.len(),
                        all_paths.len(),
                        pending.len()
                    ),
                );
            }

            // One residual plan per *distinct* coalesced-range size, all
            // in flight concurrently, sharing one backed-off deadline.
            // Stalled pipelines shed uniform chunk-sized residuals, so
            // equal-size ranges are the common case — reuse the last
            // solve instead of re-running the share system per range.
            let mut handles: Vec<(TransferHandle, usize)> = Vec::with_capacity(pending.len());
            let mut worst: Secs = 0.0;
            let mut memo: Option<(usize, Arc<TransferPlan>)> = None;
            for r in &pending {
                let plan = match &memo {
                    Some((bytes, plan)) if *bytes == r.bytes => plan.clone(),
                    _ => {
                        let plan = Arc::new(self.planner().compute_with_params(
                            r.bytes,
                            &survivors,
                            params.clone(),
                        ));
                        report.replans += 1;
                        self.resilience().replans.fetch_add(1, Ordering::Relaxed);
                        memo = Some((r.bytes, plan.clone()));
                        plan
                    }
                };
                worst = worst.max(plan.predicted_time);
                report.recovered_bytes += r.bytes as u64;
                let seq = self.next_seq();
                let mut h = execute_plan_at_obs(
                    self.runtime(),
                    &plan,
                    &survivors,
                    src,
                    r.offset,
                    dst,
                    r.offset,
                    seq,
                    &[],
                    obs.clone(),
                );
                h.remap_path_indices(&orig_idx);
                handles.push((h, r.offset));
            }
            let deadline =
                DeadlinePolicy::new(slack, rcfg.min_deadline).deadline(thread.now(), worst);
            let mut next: Vec<Range> = Vec::new();
            for (h, base) in &handles {
                if h.wait_deadline(thread, deadline).is_err() {
                    self.resilience().timeouts.fetch_add(1, Ordering::Relaxed);
                    for s in h.unfinished() {
                        self.health_path_failure(
                            pair,
                            s.path_index,
                            &all_paths[s.path_index],
                            "deadline-miss",
                        );
                    }
                    self.anomaly_signal(
                        mpx_obs::TriggerClass::DeadlineMissBurst,
                        Some(&format!("{}->{}", src.device(), dst.device())),
                        h.unfinished().first().map(|s| s.path_index),
                        &format!("retry round{round} slack={slack:.1}"),
                    );
                    next.extend(residuals_of(h, *base));
                } else {
                    self.health_mark_success(pair, h);
                }
            }
            pending = coalesce(next);
        }

        // Feed the observation back so the cache notices drift (a
        // recovered transfer is by definition far off its prediction).
        let elapsed = thread.now().secs_since(t0);
        if elapsed > 0.0 {
            self.record_observation(src.device(), dst.device(), n, n as f64 / elapsed);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_ladder_is_deterministic_and_bounded() {
        let rcfg = RecoveryConfig::default();
        let run = |seed: u64| -> Vec<f64> {
            let mut state = seed | 1;
            let mut slack = rcfg.slack;
            (0..6)
                .map(|_| {
                    slack = jittered_slack(slack, &rcfg, &mut state);
                    slack
                })
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same ladder");
        let c = run(91);
        assert_ne!(a, c, "different seeds must decorrelate");
        // Every step stays in [prev, prev·backoff·(1+jitter)] ∩ [0, cap].
        let mut prev = rcfg.slack;
        for &s in &a {
            assert!(
                s >= prev.min(rcfg.max_slack),
                "slack regressed: {s} < {prev}"
            );
            assert!(s <= (prev * rcfg.backoff * (1.0 + rcfg.jitter)).min(rcfg.max_slack) + 1e-9);
            prev = s;
        }
    }

    #[test]
    fn zero_jitter_restores_the_geometric_ladder() {
        let rcfg = RecoveryConfig {
            jitter: 0.0,
            ..RecoveryConfig::default()
        };
        let mut state = 7u64;
        let mut slack = rcfg.slack;
        for round in 1..=4 {
            slack = jittered_slack(slack, &rcfg, &mut state);
            let expect = (rcfg.slack * rcfg.backoff.powi(round)).min(rcfg.max_slack);
            assert!((slack - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn jitter_caps_at_max_slack() {
        let rcfg = RecoveryConfig {
            max_slack: 10.0,
            ..RecoveryConfig::default()
        };
        let mut state = 1u64;
        let mut slack = rcfg.slack;
        for _ in 0..20 {
            slack = jittered_slack(slack, &rcfg, &mut state);
        }
        assert!(slack <= 10.0);
    }
}
