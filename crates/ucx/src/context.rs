//! The UCX-style context: the `cuda_ipc` entry point every GPU-to-GPU
//! message goes through (paper Fig. 2(a)).
//!
//! At construction the context loads the performance model over the node
//! topology (Step 2). Each transfer consults the configured tuning mode
//! (Steps 3–4) — single-path baseline, model-driven dynamic planning, or
//! a statically tuned table — and hands the resulting configuration to
//! the pipeline engine (Step 5).

use crate::compile::{compile_plan, graph_key, GraphCache, GraphStats, MAX_GRAPHS_PER_KEY};
use crate::health::{BreakerEvent, HealthConfig, HealthStats, HealthSupervisor, PathAdmissions};
use crate::pipeline::{execute_plan_at_obs, PathSlot, TransferHandle, TransferObs};
use crate::probe::probe_all_with;
use crate::recover::{ResilienceCounters, ResilienceStats};
use crate::tuner::{manual_plan, tune_exhaustive, TuneResult};
use mpx_gpu::{Buffer, GpuRuntime, GraphLaunchError, TransferGraph};
use mpx_model::{PairKey, PlanCache, Planner, PlannerConfig, ShardedMap, TransferPlan};
use mpx_obs::{
    AnomalyEngine, Phase, QuantileHist, Recorder, ResidualReport, ResidualTracker,
    TelemetryRegistry, TriggerClass,
};
use mpx_sim::SimThread;
use mpx_topo::path::{enumerate_paths_auto, PathSelection, TransferPath};
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, TopologyError};
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How transfer configurations are chosen (the three systems compared in
/// Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TuningMode {
    /// Everything on the direct path — the baseline every figure calls
    /// "Direct Path".
    SinglePath,
    /// Model-driven runtime planning (Algorithm 1) — "Dynamic Path
    /// Distribution".
    Dynamic,
    /// Table of offline exhaustively-tuned configurations — "Static Path
    /// Distribution". Missing entries fall back to the model.
    Static,
}

/// Where the model's per-path Hockney parameters come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamSource {
    /// Read off the hardware description (each leg's narrowest link in
    /// isolation). Fast, but blind to intra-path resource sharing.
    Datasheet,
    /// Calibrated once per (pair, selection) by probing all legs of each
    /// path concurrently — the paper's "dynamically compute the model's
    /// parameters". Captures shared-DRAM/UPI effects (Observation 3).
    Probed,
}

/// Context configuration (the paper's environment variables).
#[derive(Debug, Clone, Copy)]
pub struct UcxConfig {
    /// Which candidate paths are considered.
    pub selection: PathSelection,
    /// How configurations are chosen.
    pub mode: TuningMode,
    /// Where model parameters come from in Dynamic mode.
    pub params: ParamSource,
    /// Model tunables.
    pub planner: PlannerConfig,
    /// Simplex granularity for static tuning.
    pub static_grid: u32,
    /// Relative drift between a plan's predicted bandwidth and the
    /// observed bandwidth beyond which the pair's cached parameters and
    /// plans are invalidated (re-probed on next use). The paper's cache
    /// assumes a quiescent fabric; this is the escape hatch when it
    /// isn't.
    pub drift_tolerance: f64,
    /// Compile plans into replayable transfer graphs and serve repeated
    /// `(pair, size-class)` PUTs from the graph cache (capture →
    /// instantiate → replay, after the follow-up CUDA-Graphs paper).
    /// Off by default: the interpreted pipeline reproduces the source
    /// paper's per-transfer overhead model bit for bit; replay strips
    /// the per-op software costs, which is exactly its point. Misses,
    /// busy pools, and recovery traffic fall back to the interpreter —
    /// see [`UcxContext::put_replayed`] and `DESIGN.md` §4e.
    pub graph_replay: bool,
    /// Path-health supervision tunables (circuit breakers, replay
    /// gating, hedging) — see `DESIGN.md` §4f.
    pub health: HealthConfig,
}

impl Default for UcxConfig {
    fn default() -> Self {
        UcxConfig {
            selection: PathSelection::THREE_GPUS_WITH_HOST,
            mode: TuningMode::Dynamic,
            params: ParamSource::Probed,
            planner: PlannerConfig::default(),
            static_grid: 8,
            drift_tolerance: 0.25,
            graph_replay: false,
            health: HealthConfig::default(),
        }
    }
}

/// A plain (non-resilient) PUT that could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferError {
    /// Planning/topology failure.
    Topology(TopologyError),
    /// The transfer wedged: bytes still unfinished long past the plan's
    /// prediction (three orders of magnitude of slack). The fabric is
    /// degraded — escalate to [`UcxContext::put_resilient`] or
    /// [`UcxContext::put_hedged`].
    Stuck {
        /// Bytes that never landed.
        bytes: u64,
        /// Virtual-time seconds spent waiting.
        elapsed: Secs,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::Topology(e) => write!(f, "transfer planning failed: {e}"),
            TransferError::Stuck { bytes, elapsed } => write!(
                f,
                "transfer stuck: {bytes} bytes unfinished after {elapsed:.6}s; \
                 fabric degraded? escalate to put_resilient or put_hedged"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

impl From<TopologyError> for TransferError {
    fn from(e: TopologyError) -> TransferError {
        TransferError::Topology(e)
    }
}

/// Aggregated plan-cache counters across the context's caching layers
/// (the core planner's configuration cache plus the probed-plan cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served straight from cache.
    pub hits: u64,
    /// Plans computed from scratch.
    pub misses: u64,
    /// Plans realized from a cached size-class entry.
    pub class_hits: u64,
    /// Size-class candidates rejected by the ε guard (exact re-solve).
    pub class_fallbacks: u64,
    /// Drift-triggered cache invalidations.
    pub invalidations: u64,
}

/// The transport context. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct UcxContext {
    inner: Arc<ContextInner>,
}

struct ContextInner {
    rt: GpuRuntime,
    planner: Planner,
    cfg: UcxConfig,
    /// Candidate-path enumeration per pair (read-mostly, sharded).
    paths: ShardedMap<PairKey, Arc<Vec<TransferPath>>>,
    /// Probed-parameter plans, driven through the planner's caching
    /// engine so dynamic planning shares its sharding/quantization logic.
    dynamic: PlanCache,
    /// Probe-calibrated per-pair Hockney parameters.
    probed: ShardedMap<PairKey, Arc<Vec<mpx_topo::params::PathParams>>>,
    static_plans: ShardedMap<(PairKey, usize), Arc<TransferPlan>>,
    /// Fixed share distribution applied when the static table has no
    /// exact entry — the env-var-style policy of the engine in [35] that
    /// collectives run under.
    static_shares: RwLock<Option<Vec<f64>>>,
    /// Compiled transfer graphs, pooled per (pair, size-class key) and
    /// evicted by the same drift signals as the plan caches.
    graphs: GraphCache,
    seq: AtomicU64,
    resilience: ResilienceCounters,
    /// Per-path circuit breakers and replay gating (DESIGN §4f).
    health: HealthSupervisor,
    /// Telemetry recorder, cached from the engine at construction.
    /// `None` keeps every instrumentation site to a single branch.
    obs: Option<Recorder>,
    /// Online predicted-vs-measured residual tracker, fed by the
    /// pipeline's whole-message completion tail.
    residual: Arc<ResidualTracker>,
    /// Anomaly sink installed by harnesses after construction; the
    /// context only *signals* — trigger thresholds, rate limits, and
    /// dump assembly all live in the engine. `None` costs one read lock
    /// per failure event (never on the data path).
    anomaly: RwLock<Option<Arc<AnomalyEngine>>>,
    /// Always-on quantile histograms (lock-free observes, bounded
    /// memory): whole-message transfer latency, planning wall cost, and
    /// the hedged tail each transfer class absorbed.
    hist_transfer: Arc<QuantileHist>,
    hist_plan: Arc<QuantileHist>,
    hist_hedge_win: Arc<QuantileHist>,
}

impl UcxContext {
    /// Creates a context over an existing runtime.
    ///
    /// The engine's telemetry recorder (if any) is cached here, so call
    /// [`mpx_sim::Engine::set_recorder`] *before* constructing contexts.
    pub fn new(rt: GpuRuntime, cfg: UcxConfig) -> UcxContext {
        let planner = Planner::with_config(rt.engine().topology().clone(), cfg.planner);
        let obs = rt.engine().recorder();
        UcxContext {
            inner: Arc::new(ContextInner {
                rt,
                planner,
                cfg,
                paths: ShardedMap::new(),
                dynamic: PlanCache::new(),
                probed: ShardedMap::new(),
                static_plans: ShardedMap::new(),
                static_shares: RwLock::new(None),
                graphs: GraphCache::new(),
                seq: AtomicU64::new(0),
                resilience: ResilienceCounters::default(),
                health: HealthSupervisor::new(cfg.health),
                obs,
                residual: Arc::new(ResidualTracker::new()),
                anomaly: RwLock::new(None),
                hist_transfer: Arc::new(QuantileHist::new()),
                hist_plan: Arc::new(QuantileHist::new()),
                hist_hedge_win: Arc::new(QuantileHist::new()),
            }),
        }
    }

    /// The GPU runtime.
    pub fn runtime(&self) -> &GpuRuntime {
        &self.inner.rt
    }

    /// The loaded performance model.
    pub fn planner(&self) -> &Planner {
        &self.inner.planner
    }

    /// Active configuration.
    pub fn config(&self) -> &UcxConfig {
        &self.inner.cfg
    }

    pub(crate) fn pair_key(&self, src: DeviceId, dst: DeviceId, sel: PathSelection) -> PairKey {
        (src, dst, sel.max_gpu_staged, sel.host_staged)
    }

    /// Cached candidate-path enumeration for a pair.
    pub fn paths_for(
        &self,
        src: DeviceId,
        dst: DeviceId,
        sel: PathSelection,
    ) -> Result<Arc<Vec<TransferPath>>, TopologyError> {
        let key = self.pair_key(src, dst, sel);
        if let Some(p) = self.inner.paths.get(&key, &key) {
            return Ok(p);
        }
        let paths = Arc::new(enumerate_paths_auto(
            self.inner.rt.engine().topology(),
            src,
            dst,
            sel,
        )?);
        self.inner.paths.insert(&key, key, paths.clone());
        Ok(paths)
    }

    /// The effective path selection under the current tuning mode.
    pub(crate) fn effective_selection(&self) -> PathSelection {
        match self.inner.cfg.mode {
            TuningMode::SinglePath => PathSelection::DIRECT_ONLY,
            _ => self.inner.cfg.selection,
        }
    }

    /// Resolves the configuration for an `n`-byte transfer (Fig. 2(a)
    /// Steps 3–4).
    ///
    /// When telemetry is attached, every resolution drops a `plan`
    /// instant on the pair's track recording the wall-clock planning
    /// cost and the chosen configuration — cache hits and misses alike,
    /// so planning-time regressions show up in the trace.
    pub fn plan_for(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        // The plan-cost histogram is always on: one clock read and one
        // lock-free observe per resolution, recorder or not.
        let wall = std::time::Instant::now();
        let plan = self.plan_for_inner(src, dst, n)?;
        let wall_secs = wall.elapsed().as_secs_f64();
        self.inner.hist_plan.observe(wall_secs);
        if let Some(rec) = &self.inner.obs {
            rec.instant(
                Phase::Plan,
                format!("pair:{src}->{dst}"),
                format!("plan {n}B"),
                self.inner.rt.engine().now().as_secs(),
                format!(
                    "wall_us={:.1} paths={} predicted_us={:.3}",
                    wall_secs * 1e6,
                    plan.active_path_count(),
                    plan.predicted_time * 1e6
                ),
            );
        }
        Ok(plan)
    }

    fn plan_for_inner(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        let sel = self.effective_selection();
        match self.inner.cfg.mode {
            TuningMode::SinglePath => self.inner.planner.plan(src, dst, n, sel),
            TuningMode::Dynamic => match self.inner.cfg.params {
                ParamSource::Datasheet => self.inner.planner.plan(src, dst, n, sel),
                ParamSource::Probed => self.plan_probed(src, dst, n, sel),
            },
            TuningMode::Static => {
                let pair = self.pair_key(src, dst, sel);
                let key = (pair, n);
                if let Some(p) = self.inner.static_plans.get(&pair, &key) {
                    return Ok(p);
                }
                // No exact entry: apply the fixed share policy if one is
                // installed, else fall back to the model.
                let shares = self.inner.static_shares.read().clone();
                match shares {
                    Some(shares) => {
                        let paths = self.paths_for(src, dst, sel)?;
                        let plan = Arc::new(manual_plan(
                            self.inner.rt.engine().topology(),
                            &paths,
                            n,
                            &shares,
                            &self.inner.cfg.planner,
                        )?);
                        self.inner.static_plans.insert(&pair, key, plan.clone());
                        Ok(plan)
                    }
                    None => self.inner.planner.plan(src, dst, n, sel),
                }
            }
        }
    }

    /// Dynamic planning with probe-calibrated parameters, cached in the
    /// context's own [`PlanCache`] through the planner's caching engine
    /// (sharded exact cache plus, when enabled, size-class reuse). Path
    /// enumeration and probing happen inside the solve closure, so a
    /// cache hit touches neither.
    fn plan_probed(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        sel: PathSelection,
    ) -> Result<Arc<TransferPlan>, TopologyError> {
        let pair = self.pair_key(src, dst, sel);
        let planner = &self.inner.planner;
        planner.plan_in_cache(&self.inner.dynamic, pair, n, || {
            let paths = self.paths_for(src, dst, sel)?;
            let params = match self.inner.probed.get(&pair, &pair) {
                Some(p) => p,
                None => {
                    let eng = self.inner.rt.engine();
                    // Down links report capacity 0, which the probe
                    // engine rejects; give them a dummy rate instead.
                    // Supervised planning keeps dead routes out of the
                    // candidate set, so the dummy never carries a share
                    // worth anything.
                    let p = eng.with_capacities(|caps| {
                        let caps: Vec<f64> = caps
                            .iter()
                            .map(|&v| if v > 0.0 { v } else { 1.0 })
                            .collect();
                        probe_all_with(eng.topology(), Some(&caps), &paths).map(Arc::new)
                    })?;
                    if let Some(rec) = &self.inner.obs {
                        rec.instant(
                            Phase::Probe,
                            format!("pair:{src}->{dst}"),
                            "probe-calibrate",
                            eng.now().as_secs(),
                            format!("paths={}", paths.len()),
                        );
                    }
                    self.inner.probed.insert(&pair, pair, p.clone());
                    p
                }
            };
            Ok(planner.compute_with_params(n, &paths, params.to_vec()))
        })
    }

    /// Runs the exhaustive offline tuner for `(src, dst, n)` and installs
    /// the result in the static table. Returns the tuning result.
    pub fn tune_static(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
    ) -> Result<TuneResult, TopologyError> {
        let sel = self.effective_selection();
        let result = tune_exhaustive(
            self.inner.rt.engine().topology(),
            src,
            dst,
            n,
            sel,
            &self.inner.cfg.planner,
            self.inner.cfg.static_grid,
        )?;
        let pair = self.pair_key(src, dst, sel);
        self.inner
            .static_plans
            .insert(&pair, (pair, n), result.plan.clone());
        if let Some(rec) = &self.inner.obs {
            rec.instant(
                Phase::Tune,
                format!("pair:{src}->{dst}"),
                format!("tune-static {n}B"),
                self.inner.rt.engine().now().as_secs(),
                format!(
                    "grid={} predicted_us={:.3}",
                    self.inner.cfg.static_grid,
                    result.plan.predicted_time * 1e6
                ),
            );
        }
        Ok(result)
    }

    /// Discards all probe-calibrated parameters and dynamically computed
    /// plans; the next transfer re-probes against the fabric's *current*
    /// link capacities. Call after the fabric changed
    /// (`Engine::set_link_capacity`) — this is the runtime adaptivity
    /// that offline static tuning cannot offer.
    pub fn recalibrate(&self) {
        self.inner.probed.clear();
        self.inner.dynamic.clear();
        // Compiled graphs bake in chunk schedules derived from the old
        // parameters; drop them wholesale with the plans.
        self.inner.graphs.clear();
    }

    /// Installs a fixed share distribution (one fraction per candidate
    /// path, direct first, summing to 1) applied to every transfer the
    /// static table has no exact entry for.
    pub fn install_static_shares(&self, shares: Vec<f64>) {
        *self.inner.static_shares.write() = Some(shares);
    }

    /// Tunes the fixed share policy by exhaustive search on `(src, dst)`
    /// at reference size `n`, installs it, and returns the tuned result.
    pub fn tune_static_shares(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
    ) -> Result<TuneResult, TopologyError> {
        let result = self.tune_static(src, dst, n)?;
        let shares: Vec<f64> = result
            .plan
            .paths
            .iter()
            .map(|p| p.share_bytes as f64 / n as f64)
            .collect();
        self.install_static_shares(shares);
        Ok(result)
    }

    /// Installs an externally computed plan in the static table.
    pub fn install_static_plan(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        plan: Arc<TransferPlan>,
    ) {
        let sel = self.effective_selection();
        let pair = self.pair_key(src, dst, sel);
        self.inner.static_plans.insert(&pair, (pair, n), plan);
    }

    /// Starts an asynchronous `n`-byte PUT of `src[..n]` into `dst[..n]`
    /// (both GPU buffers). Returns immediately. When
    /// [`UcxConfig::graph_replay`] is on, repeated transfers are served
    /// by compiled-graph replay transparently.
    pub fn put_async(
        &self,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
    ) -> Result<TransferHandle, TopologyError> {
        self.put_inner(src, 0, dst, 0, n, &[], false)
    }

    /// Like [`UcxContext::put_async`], additionally firing every waker in
    /// `notify` once the whole message has landed — the completion hook
    /// the MPI layer attaches send/receive requests to.
    pub fn put_async_notify(
        &self,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
        notify: &[mpx_sim::Waker],
    ) -> Result<TransferHandle, TopologyError> {
        self.put_inner(src, 0, dst, 0, n, notify, false)
    }

    /// The most general PUT: `n` bytes from `src[src_off..]` into
    /// `dst[dst_off..]` with whole-message completion wakers. Collectives
    /// transmit buffer slices through this.
    #[allow(clippy::too_many_arguments)]
    pub fn put_async_at(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        n: usize,
        notify: &[mpx_sim::Waker],
    ) -> Result<TransferHandle, TopologyError> {
        self.put_inner(src, src_off, dst, dst_off, n, notify, false)
    }

    /// An asynchronous PUT forced through the compiled-graph fast path
    /// regardless of [`UcxConfig::graph_replay`]: the plan is compiled on
    /// first use and replayed afterwards. Falls back to the interpreted
    /// pipeline only when the graph pool is exhausted (every pooled
    /// instance mid-replay at the [`MAX_GRAPHS_PER_KEY`] cap) or the
    /// buffers don't fit the captured shape — the transfer itself never
    /// fails for graph reasons.
    pub fn put_replayed(
        &self,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
    ) -> Result<TransferHandle, TopologyError> {
        self.put_inner(src, 0, dst, 0, n, &[], true)
    }

    /// Every PUT funnels through here: plan (cached), resolve paths,
    /// then either replay a compiled graph or interpret the plan.
    /// The graph path still goes through [`UcxContext::plan_for`], so
    /// plan-cache counters and drift detection see identical traffic
    /// whichever executor runs the bytes.
    #[allow(clippy::too_many_arguments)]
    fn put_inner(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        n: usize,
        notify: &[mpx_sim::Waker],
        force_graph: bool,
    ) -> Result<TransferHandle, TopologyError> {
        // Fast-path guard: on a healthy fabric with every breaker Closed
        // the supervision layer costs two relaxed atomic loads and one
        // lock-free engine flag — nothing else.
        let hcfg = &self.inner.cfg.health;
        let suspect = hcfg.enabled
            && (!self.inner.health.is_quiet() || self.inner.rt.engine().any_link_down());
        if suspect {
            if let Some(h) = self.put_supervised(src, src_off, dst, dst_off, n, notify)? {
                return Ok(h);
            }
            // No exclusions after all (e.g. the down link serves other
            // pairs, or every open breaker just flipped to a half-open
            // probe): fall through to the normal path.
        }
        let plan = self.plan_for(src.device(), dst.device(), n)?;
        let paths = self.paths_for(src.device(), dst.device(), self.effective_selection())?;
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        if self.inner.cfg.graph_replay || force_graph {
            // Breaker-open or drift-gated pairs never serve replays: a
            // compiled graph would put bytes straight back on the sick
            // path. `is_quiet` short-circuits the per-pair scan on a
            // healthy fabric.
            let replay_ok = !hcfg.enabled || self.inner.health.is_quiet() || {
                let pair = self.pair_key(src.device(), dst.device(), self.effective_selection());
                let now = self.inner.rt.engine().now().as_secs();
                let allowed = self.inner.health.replay_allowed(pair, now);
                if !allowed {
                    self.inner.health.note_replay_gated();
                    self.inner.graphs.invalidate_pair(&pair);
                }
                allowed
            };
            if replay_ok {
                if let Some(h) =
                    self.try_replay(&plan, &paths, src, src_off, dst, dst_off, seq, notify)
                {
                    return Ok(h);
                }
                self.inner.graphs.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(execute_plan_at_obs(
            &self.inner.rt,
            &plan,
            &paths,
            src,
            src_off,
            dst,
            dst_off,
            seq,
            notify,
            self.transfer_obs(src.device(), dst.device()),
        ))
    }

    /// The supervised planning path, taken only when a breaker is open
    /// somewhere or a link is down: trips breakers on dead routes,
    /// collects this pair's exclusions, and — when any exist — plans the
    /// transfer over the surviving candidates only (order-preserving, as
    /// `Planner::plan_excluding` guarantees). Returns `Ok(None)` when
    /// the pair has no exclusions and the normal cached path should run.
    #[allow(clippy::too_many_arguments)]
    fn put_supervised(
        &self,
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        n: usize,
        notify: &[mpx_sim::Waker],
    ) -> Result<Option<TransferHandle>, TopologyError> {
        let sel = self.effective_selection();
        let pair = self.pair_key(src.device(), dst.device(), sel);
        let eng = self.inner.rt.engine();
        let paths = self.paths_for(src.device(), dst.device(), sel)?;
        let now = eng.now().as_secs();
        let adm = self.inner.health.admissions(pair, paths.len(), now);
        self.health_record_probes(
            &format!("pair:{}->{}", src.device(), dst.device()),
            &adm,
            now,
        );
        let mut excluded = adm.excluded;
        if eng.any_link_down() {
            for (i, p) in paths.iter().enumerate() {
                if excluded.contains(&i) {
                    continue;
                }
                if p.legs
                    .iter()
                    .any(|leg| leg.route.iter().any(|&l| !eng.link_is_up(l)))
                {
                    self.health_path_failure(pair, i, p, "link-down");
                    excluded.push(i);
                }
            }
        }
        if excluded.is_empty() {
            return Ok(None);
        }
        let mut survivors: Vec<TransferPath> = Vec::new();
        let mut orig_idx: Vec<usize> = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            if !excluded.contains(&i) {
                survivors.push(p.clone());
                orig_idx.push(i);
            }
        }
        if survivors.is_empty() {
            return Err(TopologyError::NoUsablePath(src.device(), dst.device()));
        }
        // Deliberately uncached: the fabric is in flux, and a cached
        // survivor plan would outlive the exclusions that shaped it.
        let plan = self.inner.planner.compute(n, &survivors)?;
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut h = execute_plan_at_obs(
            &self.inner.rt,
            &plan,
            &survivors,
            src,
            src_off,
            dst,
            dst_off,
            seq,
            notify,
            self.transfer_obs(src.device(), dst.device()),
        );
        h.remap_path_indices(&orig_idx);
        Ok(Some(h))
    }

    /// The replay fast path: find (or capture) a compiled graph for the
    /// transfer's (pair, graph key) and launch it. `None` means the
    /// caller should interpret instead — pool exhausted or shape
    /// mismatch; never an error.
    #[allow(clippy::too_many_arguments)]
    fn try_replay(
        &self,
        plan: &TransferPlan,
        paths: &[TransferPath],
        src: &Buffer,
        src_off: usize,
        dst: &Buffer,
        dst_off: usize,
        seq: u64,
        notify: &[mpx_sim::Waker],
    ) -> Option<TransferHandle> {
        let pair = self.pair_key(src.device(), dst.device(), self.effective_selection());
        let gc = &self.inner.graphs;
        let key = graph_key(&self.inner.cfg.planner.size_classes, plan.n);
        let pool = gc.pool(&pair, key, plan.n, src.is_synthetic());

        // Per-replay first-copy cost: one graph launch plus whatever the
        // IPC cache still charges for this destination handle. The per-op
        // launch/ε/rendezvous/initiation costs the interpreter would add
        // were compiled away — that is the point of replay.
        let oh = self.inner.rt.engine().topology().overheads;
        let first_extra = oh.copy_launch + self.inner.rt.ipc().open_cost(src.device().0, dst.id());

        // Telemetry tail, rebuilt per launch attempt (FnOnce).
        let make_hook = || -> Option<mpx_sim::EventFn> {
            self.inner.obs.as_ref().map(|rec| {
                let rec = rec.clone();
                let track = format!("pair:{}->{}", src.device(), dst.device());
                let issue = self.inner.rt.engine().now().as_secs();
                let predicted = plan.predicted_time;
                let n = plan.n;
                Box::new(move |ctx: &mut mpx_sim::Ctx<'_>| {
                    let end = ctx.now().as_secs();
                    rec.span(
                        Phase::GraphReplay,
                        track,
                        format!("replay xfer{seq} {n}B"),
                        issue,
                        end,
                        format!(
                            "predicted_us={:.3} measured_us={:.3}",
                            predicted * 1e6,
                            (end - issue) * 1e6
                        ),
                    );
                }) as mpx_sim::EventFn
            })
        };
        let wrap = |g: &TransferGraph, wakers: Vec<mpx_sim::Waker>| {
            gc.replays.fetch_add(1, Ordering::Relaxed);
            let slots = g
                .ends()
                .iter()
                .map(|e| PathSlot {
                    path_index: e.path_index,
                    offset: e.offset,
                    bytes: e.bytes,
                })
                .collect();
            TransferHandle::from_parts(wakers, slots, plan.n)
        };

        let snapshot: Vec<Arc<TransferGraph>> = pool.graphs.lock().clone();
        for g in &snapshot {
            match g.launch(src, src_off, dst, dst_off, first_extra, notify, make_hook()) {
                Ok(w) => return Some(wrap(g, w)),
                Err(GraphLaunchError::Busy) => continue,
                Err(GraphLaunchError::Mismatch(_)) => return None,
            }
        }
        // Every pooled instance is mid-replay (deep transfer windows) or
        // the pool is empty: capture another, up to the cap.
        if snapshot.len() >= MAX_GRAPHS_PER_KEY {
            return None;
        }
        let wall = std::time::Instant::now();
        let g = Arc::new(compile_plan(
            &self.inner.rt,
            plan,
            paths,
            src.device(),
            dst.device(),
            src.is_synthetic(),
        ));
        gc.captures.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = &self.inner.obs {
            rec.instant(
                Phase::GraphCapture,
                format!("pair:{}->{}", src.device(), dst.device()),
                format!("capture g{} {}B", g.id(), plan.n),
                self.inner.rt.engine().now().as_secs(),
                format!(
                    "wall_us={:.1} pool_size={}",
                    wall.elapsed().as_secs_f64() * 1e6,
                    snapshot.len() + 1
                ),
            );
        }
        match g.launch(src, src_off, dst, dst_off, first_extra, notify, make_hook()) {
            Ok(w) => {
                pool.graphs.lock().push(g.clone());
                Some(wrap(&g, w))
            }
            // A fresh graph can only be refused on a shape race (the
            // buffers changed class under us). Interpret this one — and
            // treat the failed replay as a health signal: gate the
            // pair's replays for a window and drop its pool.
            Err(_) => {
                if self.inner.cfg.health.enabled {
                    let now = self.inner.rt.engine().now().as_secs();
                    self.inner.health.suspend_replay(pair, now);
                    self.inner.graphs.invalidate_pair(&pair);
                    if let Some(rec) = &self.inner.obs {
                        rec.instant(
                            Phase::Health,
                            format!("pair:{}->{}", src.device(), dst.device()),
                            "replay-failure",
                            now,
                            format!("graph=g{} n={}", g.id(), plan.n),
                        );
                    }
                }
                None
            }
        }
    }

    /// Counters of the degradation-aware runtime (retries, re-plans,
    /// deadline misses, drift-triggered cache invalidations).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.inner.resilience.snapshot()
    }

    /// Aggregated plan-cache counters (core planner cache + probed-plan
    /// cache) — the telemetry the CLI surfaces. `invalidations` counts
    /// drift *events* (each may purge several caches), matching
    /// [`ResilienceStats::cache_invalidations`]. Reads atomics only;
    /// never blocks concurrent planning.
    pub fn cache_stats(&self) -> CacheStats {
        let s = self
            .inner
            .planner
            .stats()
            .merged(self.inner.dynamic.stats());
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            class_hits: s.class_hits,
            class_fallbacks: s.class_fallbacks,
            invalidations: self
                .inner
                .resilience
                .cache_invalidations
                .load(Ordering::Relaxed),
        }
    }

    pub(crate) fn resilience(&self) -> &ResilienceCounters {
        &self.inner.resilience
    }

    /// Snapshot of the compiled-graph cache counters: captures, replays,
    /// interpreted fallbacks, and invalidation sweeps.
    pub fn graph_stats(&self) -> GraphStats {
        self.inner.graphs.stats()
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The telemetry recorder cached at construction, if the engine had
    /// one installed. `None` means every instrumentation site in this
    /// context is a single never-taken branch.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.obs.as_ref()
    }

    /// The online predicted-vs-measured residual tracker. Only fed when
    /// telemetry is attached (the pipeline's completion tail records one
    /// sample per whole message).
    pub fn residuals(&self) -> &Arc<ResidualTracker> {
        &self.inner.residual
    }

    /// Installs the anomaly engine this context's failure signals feed
    /// (breaker trips, stuck transfers, deadline misses, residual
    /// drift). Without a sink, signaling is a read lock and a branch.
    pub fn set_anomaly_sink(&self, sink: Arc<AnomalyEngine>) {
        *self.inner.anomaly.write() = Some(sink);
    }

    /// The installed anomaly sink, if any.
    pub fn anomaly_sink(&self) -> Option<Arc<AnomalyEngine>> {
        self.inner.anomaly.read().clone()
    }

    /// Routes one failure signal to the installed anomaly sink (no-op
    /// without one), stamped with the engine's current virtual time.
    pub(crate) fn anomaly_signal(
        &self,
        class: TriggerClass,
        pair: Option<&str>,
        path: Option<usize>,
        cause: &str,
    ) {
        let sink = self.inner.anomaly.read().clone();
        if let Some(sink) = sink {
            let now = self.inner.rt.engine().now().as_secs();
            sink.signal(class, now, pair, path, cause);
        }
    }

    /// The always-on whole-message transfer-latency histogram.
    pub fn transfer_latency_hist(&self) -> &Arc<QuantileHist> {
        &self.inner.hist_transfer
    }

    /// The always-on planning-wall-cost histogram.
    pub fn plan_cost_hist(&self) -> &Arc<QuantileHist> {
        &self.inner.hist_plan
    }

    /// The hedged-tail histogram: seconds past the plan's prediction at
    /// which winning hedged transfers finally completed.
    pub fn hedge_win_hist(&self) -> &Arc<QuantileHist> {
        &self.inner.hist_hedge_win
    }

    /// Renders the residual tracker's per-pair, per-size-class error
    /// table — the online counterpart of the paper's offline error
    /// tables.
    pub fn residual_report(&self) -> ResidualReport {
        self.inner.residual.report()
    }

    /// Publishes the context's counters into a [`TelemetryRegistry`]
    /// under `ucx.cache.*`, `ucx.resilience.*`, and `ucx.residual.*`.
    pub fn fill_registry(&self, reg: &TelemetryRegistry) {
        let c = self.cache_stats();
        reg.set_counter("ucx.cache.hits", c.hits);
        reg.set_counter("ucx.cache.misses", c.misses);
        reg.set_counter("ucx.cache.class_hits", c.class_hits);
        reg.set_counter("ucx.cache.class_fallbacks", c.class_fallbacks);
        reg.set_counter("ucx.cache.invalidations", c.invalidations);
        let r = self.resilience_stats();
        reg.set_counter("ucx.resilience.retries", r.retries);
        reg.set_counter("ucx.resilience.replans", r.replans);
        reg.set_counter("ucx.resilience.timeouts", r.timeouts);
        reg.set_counter("ucx.resilience.cache_invalidations", r.cache_invalidations);
        let g = self.graph_stats();
        reg.set_counter("ucx.graph.captures", g.captures);
        reg.set_counter("ucx.graph.replays", g.replays);
        reg.set_counter("ucx.graph.fallbacks", g.fallbacks);
        reg.set_counter("ucx.graph.invalidations", g.invalidations);
        reg.set_counter("ucx.residual.samples", self.inner.residual.count());
        reg.set_gauge(
            "ucx.residual.mean_abs_error_pct",
            self.inner.residual.mean_abs_error() * 100.0,
        );
        let h = self.inner.health.stats();
        reg.set_counter("health.trips", h.trips);
        reg.set_counter("health.retrips", h.retrips);
        reg.set_counter("health.resets", h.resets);
        reg.set_counter("health.probes", h.probes);
        reg.set_counter("health.breakers_open", h.breakers_open);
        reg.set_counter("health.replays_gated", h.replays_gated);
        reg.set_counter("health.hedges", h.hedges);
        reg.set_counter("health.hedge_wins", h.hedge_wins);
        reg.set_hist("ucx.transfer.latency_secs", &self.inner.hist_transfer);
        reg.set_hist("ucx.plan.cost_secs", &self.inner.hist_plan);
        reg.set_hist("ucx.hedge.win_margin_secs", &self.inner.hist_hedge_win);
    }

    /// Bundles the recorder and residual tracker into the per-transfer
    /// handle the pipeline's completion tail consumes.
    pub(crate) fn transfer_obs(&self, src: DeviceId, dst: DeviceId) -> Option<TransferObs> {
        self.inner.obs.as_ref().map(|rec| TransferObs {
            rec: rec.clone(),
            residual: self.inner.residual.clone(),
            hist: self.inner.hist_transfer.clone(),
            pair: format!("{src}->{dst}"),
        })
    }

    /// Feeds back an observed end-to-end bandwidth for an `n`-byte
    /// `src → dst` transfer. If it drifts from the cached plan's
    /// prediction by more than [`UcxConfig::drift_tolerance`], the pair's
    /// probed parameters and dynamic plans are dropped so the next
    /// transfer re-probes the fabric's *current* state. Returns whether
    /// an invalidation happened.
    pub fn record_observation(
        &self,
        src: DeviceId,
        dst: DeviceId,
        n: usize,
        observed_bw: f64,
    ) -> bool {
        if !(observed_bw > 0.0 && observed_bw.is_finite()) {
            return false;
        }
        let sel = self.effective_selection();
        let pair = self.pair_key(src, dst, sel);
        let predicted = match self.plan_for(src, dst, n) {
            Ok(plan) => plan.predicted_bandwidth,
            Err(_) => return false,
        };
        if !(predicted > 0.0 && predicted.is_finite()) {
            return false;
        }
        let drift = (observed_bw - predicted).abs() / predicted;
        if drift <= self.inner.cfg.drift_tolerance {
            return false;
        }
        // Purge everything derived from the stale parameters, one shard
        // per cache — concurrent planning for other pairs never blocks.
        self.inner.probed.remove(&pair, &pair);
        self.inner.dynamic.invalidate_pair(pair);
        self.inner.planner.invalidate_pair(pair);
        self.inner.graphs.invalidate_pair(&pair);
        self.inner
            .resilience
            .cache_invalidations
            .fetch_add(1, Ordering::Relaxed);
        // Sustained drift is a health signal too: enough strikes within
        // a window and the pair's graph replays are gated until the
        // fabric holds still (heals automatically after a quiet window).
        if self.inner.cfg.health.enabled {
            let now = self.inner.rt.engine().now().as_secs();
            if self.inner.health.note_drift(pair, now) {
                if let Some(rec) = &self.inner.obs {
                    rec.instant(
                        Phase::Health,
                        format!("pair:{src}->{dst}"),
                        "replay-gate",
                        now,
                        format!("drift_strikes={}", self.inner.cfg.health.drift_strikes),
                    );
                }
            }
        }
        if let Some(rec) = &self.inner.obs {
            // Make the invalidation explainable: cite the drift that
            // tripped it and what the residual tracker has seen for the
            // pair so far.
            let pair_label = format!("{src}->{dst}");
            let residual = match self.inner.residual.pair_stats(&pair_label) {
                Some(s) => format!(
                    " residual_p50_pct={:.1} residual_samples={}",
                    s.p50_abs_pct, s.count
                ),
                None => String::new(),
            };
            rec.instant(
                Phase::Recovery,
                format!("pair:{pair_label}"),
                "cache-invalidate",
                self.inner.rt.engine().now().as_secs(),
                format!(
                    "drift_pct={:.1} tolerance_pct={:.1}{residual}",
                    drift * 100.0,
                    self.inner.cfg.drift_tolerance * 100.0
                ),
            );
        }
        self.anomaly_signal(
            TriggerClass::ResidualDrift,
            Some(&format!("{src}->{dst}")),
            None,
            &format!(
                "drift_pct={:.1} tolerance_pct={:.1}",
                drift * 100.0,
                self.inner.cfg.drift_tolerance * 100.0
            ),
        );
        true
    }

    /// Blocking PUT from a simulated rank thread.
    ///
    /// Guarded: waits with a deadline three orders of magnitude beyond
    /// the plan's prediction, then returns [`TransferError::Stuck`] with
    /// the residual byte count instead of hanging the rank thread
    /// forever. A stuck PUT charges the stalled paths' circuit breakers,
    /// so even plain traffic feeds the supervision layer. Callers that
    /// want in-line recovery use [`UcxContext::put_resilient`] or
    /// [`UcxContext::put_hedged`].
    pub fn put(
        &self,
        thread: &SimThread,
        src: &Buffer,
        dst: &Buffer,
        n: usize,
    ) -> Result<(), TransferError> {
        let plan = self.plan_for(src.device(), dst.device(), n)?;
        let pair = self.pair_key(src.device(), dst.device(), self.effective_selection());
        let t0 = thread.now();
        let h = self.put_async(src, dst, n)?;
        let deadline = crate::deadline::DeadlinePolicy::STUCK.deadline(t0, plan.predicted_time);
        match h.wait_deadline(thread, deadline) {
            Ok(()) => {
                self.health_mark_success(pair, &h);
                Ok(())
            }
            Err(_) => {
                let mut bytes = 0u64;
                let paths = self.paths_for(src.device(), dst.device(), self.effective_selection());
                for s in h.unfinished() {
                    bytes += s.bytes as u64;
                    if let Ok(paths) = &paths {
                        self.health_path_failure(
                            pair,
                            s.path_index,
                            &paths[s.path_index],
                            "stuck-put",
                        );
                    }
                }
                let elapsed = thread.now().secs_since(t0);
                self.anomaly_signal(
                    TriggerClass::StuckTransfer,
                    Some(&format!("{}->{}", src.device(), dst.device())),
                    h.unfinished().first().map(|s| s.path_index),
                    &format!("bytes={bytes} elapsed_us={:.3}", elapsed * 1e6),
                );
                Err(TransferError::Stuck { bytes, elapsed })
            }
        }
    }

    /// The path-health supervisor: breaker states, admissions, counter
    /// snapshots.
    pub fn health(&self) -> &HealthSupervisor {
        &self.inner.health
    }

    /// Snapshot of the supervision counters.
    pub fn health_stats(&self) -> HealthStats {
        self.inner.health.stats()
    }

    /// Charges one failure against `(pair, path)`. Routes over a down
    /// link trip immediately; anything else accumulates strikes. Breaker
    /// transitions become `breaker.*` instants, and a trip purges the
    /// pair's compiled-graph pool so no replay revisits the sick path.
    pub(crate) fn health_path_failure(
        &self,
        pair: PairKey,
        path_index: usize,
        path: &TransferPath,
        why: &str,
    ) {
        if !self.inner.cfg.health.enabled {
            return;
        }
        let eng = self.inner.rt.engine();
        let now = eng.now().as_secs();
        let dead = path
            .legs
            .iter()
            .any(|leg| leg.route.iter().any(|&l| !eng.link_is_up(l)));
        let ev = if dead {
            self.inner.health.trip(pair, path_index, now)
        } else {
            self.inner.health.note_failure(pair, path_index, now)
        };
        match ev {
            BreakerEvent::Tripped | BreakerEvent::Retripped => {
                self.inner.graphs.invalidate_pair(&pair);
                let pair_label = format!("{}->{}", pair.0, pair.1);
                if let Some(rec) = &self.inner.obs {
                    rec.instant(
                        Phase::Health,
                        format!("pair:{pair_label}"),
                        if ev == BreakerEvent::Tripped {
                            "breaker.trip"
                        } else {
                            "breaker.retrip"
                        },
                        now,
                        format!("path={path_index} why={why} dead_link={dead}"),
                    );
                }
                self.anomaly_signal(
                    if ev == BreakerEvent::Tripped {
                        TriggerClass::BreakerTrip
                    } else {
                        TriggerClass::BreakerRetrip
                    },
                    Some(&pair_label),
                    Some(path_index),
                    &format!("why={why} dead_link={dead}"),
                );
            }
            BreakerEvent::Reset | BreakerEvent::None => {}
        }
    }

    /// Credits every active path of a cleanly completed handle; a
    /// half-open breaker meeting its trial quota closes here (with a
    /// `breaker.reset` instant).
    pub(crate) fn health_mark_success(&self, pair: PairKey, h: &TransferHandle) {
        if !self.inner.cfg.health.enabled {
            return;
        }
        for s in h.slots() {
            if self.inner.health.note_success(pair, s.path_index) == BreakerEvent::Reset {
                if let Some(rec) = &self.inner.obs {
                    rec.instant(
                        Phase::Health,
                        format!("pair:{}->{}", pair.0, pair.1),
                        "breaker.reset",
                        self.inner.rt.engine().now().as_secs(),
                        format!("path={}", s.path_index),
                    );
                }
            }
        }
    }

    /// Records a `breaker.probe` instant for each Open → HalfOpen
    /// re-admission an admissions query just performed.
    pub(crate) fn health_record_probes(&self, track: &str, adm: &PathAdmissions, now: Secs) {
        if adm.probing.is_empty() {
            return;
        }
        if let Some(rec) = &self.inner.obs {
            for &i in &adm.probing {
                rec.instant(
                    Phase::Health,
                    track.to_string(),
                    "breaker.probe",
                    now,
                    format!("path={i} trials={}", self.inner.cfg.health.half_open_trials),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpx_sim::Engine;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    fn ctx(mode: TuningMode) -> UcxContext {
        let topo = Arc::new(presets::beluga());
        let rt = GpuRuntime::new(Engine::new(topo));
        UcxContext::new(
            rt,
            UcxConfig {
                mode,
                ..UcxConfig::default()
            },
        )
    }

    #[test]
    fn single_path_mode_plans_direct_only() {
        let c = ctx(TuningMode::SinglePath);
        let gpus = c.runtime().engine().topology().gpus();
        let plan = c.plan_for(gpus[0], gpus[1], 64 * MIB).unwrap();
        assert_eq!(plan.paths.len(), 1);
        assert_eq!(plan.paths[0].share_bytes, 64 * MIB);
    }

    #[test]
    fn dynamic_mode_uses_all_paths_for_large_n() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let plan = c.plan_for(gpus[0], gpus[1], 256 * MIB).unwrap();
        assert_eq!(plan.active_path_count(), 4);
    }

    #[test]
    fn static_mode_falls_back_to_model_then_uses_table() {
        let c = ctx(TuningMode::Static);
        let gpus = c.runtime().engine().topology().gpus();
        let fallback = c.plan_for(gpus[0], gpus[1], 4 * MIB).unwrap();
        assert!(fallback.active_path_count() >= 1);
        let tuned = c.tune_static(gpus[0], gpus[1], 4 * MIB).unwrap();
        let from_table = c.plan_for(gpus[0], gpus[1], 4 * MIB).unwrap();
        assert!(Arc::ptr_eq(&tuned.plan, &from_table));
    }

    #[test]
    fn put_moves_data_end_to_end() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let n = 2 * MIB + 9;
        let data: Vec<u8> = (0..n).map(|i| (i * 31 % 256) as u8).collect();
        let src = c.runtime().alloc_bytes(gpus[0], data.clone());
        let dst = c.runtime().alloc_zeroed(gpus[1], n);
        let h = c.put_async(&src, &dst, n).unwrap();
        c.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(dst.to_vec().unwrap(), data);
    }

    #[test]
    fn blocking_put_from_thread() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let n = 32 * MIB;
        let src = c.runtime().alloc(gpus[0], n);
        let dst = c.runtime().alloc(gpus[1], n);
        let t = c.runtime().engine().register_thread("rank0");
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            c2.put(&t, &src, &dst, n).unwrap();
            t.now().as_secs()
        });
        let elapsed = h.join().unwrap();
        assert!(elapsed > 0.0);
        // Multi-path: faster than the direct link alone would allow.
        let direct_floor = n as f64 / 48e9;
        assert!(elapsed < direct_floor, "no multi-path speedup observed");
    }

    #[test]
    fn path_cache_is_reused() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let a = c
            .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
            .unwrap();
        let b = c
            .paths_for(gpus[0], gpus[1], PathSelection::THREE_GPUS)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn telemetry_records_plan_transfer_and_residual() {
        let topo = Arc::new(presets::beluga());
        let eng = Engine::new(topo);
        let rec = mpx_obs::Recorder::new();
        eng.set_recorder(rec.clone());
        let rt = GpuRuntime::new(eng);
        let c = UcxContext::new(rt, UcxConfig::default());
        assert!(c.recorder().is_some());
        let gpus = c.runtime().engine().topology().gpus();
        let n = 8 * MIB;
        let src = c.runtime().alloc(gpus[0], n);
        let dst = c.runtime().alloc(gpus[1], n);
        let h = c.put_async(&src, &dst, n).unwrap();
        c.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        let events = rec.drain();
        for phase in [
            mpx_obs::Phase::Plan,
            mpx_obs::Phase::Probe,
            mpx_obs::Phase::Transfer,
            mpx_obs::Phase::ChunkLeg,
        ] {
            assert!(
                events.iter().any(|e| e.phase() == phase),
                "missing {phase:?} event"
            );
        }
        // The whole-message tail fed the residual tracker exactly once.
        assert_eq!(c.residuals().count(), 1);
        assert_eq!(c.residual_report().rows.len(), 1);
        // The model should be close on a quiescent fabric.
        assert!(c.residuals().mean_abs_error() < 0.5);
    }

    #[test]
    fn without_recorder_no_residuals_are_tracked() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let n = 4 * MIB;
        let src = c.runtime().alloc(gpus[0], n);
        let dst = c.runtime().alloc(gpus[1], n);
        let h = c.put_async(&src, &dst, n).unwrap();
        c.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert!(c.recorder().is_none());
        assert_eq!(c.residuals().count(), 0);
    }

    #[test]
    fn anomaly_sink_receives_breaker_trip_with_pair_and_path() {
        let c = ctx(TuningMode::Dynamic);
        let fr = mpx_obs::FlightRecorder::new(1024);
        let sink = Arc::new(AnomalyEngine::new(fr, mpx_obs::AnomalyConfig::default()));
        c.set_anomaly_sink(sink.clone());
        let gpus = c.runtime().engine().topology().gpus();
        let sel = c.effective_selection();
        let pair = c.pair_key(gpus[0], gpus[1], sel);
        let paths = c.paths_for(gpus[0], gpus[1], sel).unwrap();
        // A dead link trips the breaker immediately, which must fire
        // the sink's breaker.trip trigger with full attribution.
        let link = paths[0].legs[0].route[0];
        c.runtime().engine().set_link_down(link);
        c.health_path_failure(pair, 0, &paths[0], "test-kill");
        assert_eq!(sink.fired(), 1);
        let dumps = sink.dumps();
        assert_eq!(dumps[0].trigger, "breaker.trip");
        assert_eq!(dumps[0].pair.as_deref(), Some("dev0->dev1"));
        assert_eq!(dumps[0].path, Some(0));
        assert!(dumps[0].cause.contains("test-kill"));
    }

    #[test]
    fn latency_and_plan_histograms_fill_and_publish() {
        let topo = Arc::new(presets::beluga());
        let eng = Engine::new(topo);
        eng.set_recorder(mpx_obs::Recorder::new());
        let rt = GpuRuntime::new(eng);
        let c = UcxContext::new(rt, UcxConfig::default());
        let gpus = c.runtime().engine().topology().gpus();
        let n = 8 * MIB;
        let src = c.runtime().alloc(gpus[0], n);
        let dst = c.runtime().alloc(gpus[1], n);
        let h = c.put_async(&src, &dst, n).unwrap();
        c.runtime().engine().run_until_idle();
        assert!(h.is_complete());
        assert_eq!(c.transfer_latency_hist().count(), 1);
        assert!(c.transfer_latency_hist().max() > 0.0);
        assert!(c.plan_cost_hist().count() >= 1);
        let reg = TelemetryRegistry::new();
        c.fill_registry(&reg);
        let snap = reg.snapshot();
        assert!(snap
            .entries
            .iter()
            .any(|e| e.name == "ucx.transfer.latency_secs.p99" && e.value > 0.0));
    }

    #[test]
    fn plan_cost_histogram_fills_without_a_recorder() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        c.plan_for(gpus[0], gpus[1], 4 * MIB).unwrap();
        assert!(c.plan_cost_hist().count() >= 1, "always-on histogram");
    }

    #[test]
    fn puts_between_different_pairs_use_distinct_plans() {
        let c = ctx(TuningMode::Dynamic);
        let gpus = c.runtime().engine().topology().gpus();
        let p01 = c.plan_for(gpus[0], gpus[1], 64 * MIB).unwrap();
        let p23 = c.plan_for(gpus[2], gpus[3], 64 * MIB).unwrap();
        assert!(!Arc::ptr_eq(&p01, &p23));
        // Same structure by symmetry.
        assert_eq!(p01.active_path_count(), p23.active_path_count());
    }
}

#[cfg(test)]
mod probe_mode_tests {
    use super::*;
    use mpx_sim::Engine;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    fn ctx_with(params: ParamSource, topo: mpx_topo::Topology) -> UcxContext {
        let rt = GpuRuntime::new(Engine::new(Arc::new(topo)));
        UcxContext::new(
            rt,
            UcxConfig {
                params,
                ..UcxConfig::default()
            },
        )
    }

    #[test]
    fn probed_plans_are_cached() {
        let c = ctx_with(ParamSource::Probed, presets::narval());
        let gpus = c.runtime().engine().topology().gpus();
        let a = c.plan_for(gpus[0], gpus[1], 32 * MIB).unwrap();
        let b = c.plan_for(gpus[0], gpus[1], 32 * MIB).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "probed plan must be cached");
    }

    #[test]
    fn probed_and_datasheet_differ_on_narval_host_path() {
        // Datasheet extraction misses the shared DRAM channel, so the two
        // sources assign the host path different shares.
        let probed = ctx_with(ParamSource::Probed, presets::narval());
        let sheet = ctx_with(ParamSource::Datasheet, presets::narval());
        let gpus = probed.runtime().engine().topology().gpus();
        let n = 128 * MIB;
        let p = probed.plan_for(gpus[0], gpus[1], n).unwrap();
        let d = sheet.plan_for(gpus[0], gpus[1], n).unwrap();
        let host_p = p.paths.last().unwrap().theta;
        let host_d = d.paths.last().unwrap().theta;
        assert!(
            host_p < host_d,
            "probed host share {host_p} should be below datasheet {host_d}"
        );
    }

    #[test]
    fn probed_equals_datasheet_on_beluga_gpu_paths() {
        // No intra-path sharing on Beluga's GPU-staged paths: both
        // sources agree there.
        let probed = ctx_with(ParamSource::Probed, presets::beluga());
        let sheet = ctx_with(ParamSource::Datasheet, presets::beluga());
        let gpus = probed.runtime().engine().topology().gpus();
        let n = 64 * MIB;
        let p = probed.plan_for(gpus[0], gpus[1], n).unwrap();
        let d = sheet.plan_for(gpus[0], gpus[1], n).unwrap();
        for (x, y) in p.paths.iter().zip(&d.paths).take(3) {
            assert!(
                (x.theta - y.theta).abs() < 1e-3,
                "GPU-path shares should agree: {} vs {}",
                x.theta,
                y.theta
            );
        }
    }

    #[test]
    fn probe_cache_shared_across_sizes() {
        // The probe runs once per (pair, selection); planning a second
        // size must not re-probe (observable through plan distinctness
        // but shared parameter source).
        let c = ctx_with(ParamSource::Probed, presets::narval());
        let gpus = c.runtime().engine().topology().gpus();
        let a = c.plan_for(gpus[0], gpus[1], 16 * MIB).unwrap();
        let b = c.plan_for(gpus[0], gpus[1], 64 * MIB).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        // Same calibrated parameters behind both plans.
        assert_eq!(
            a.paths.last().unwrap().params.second.map(|s| s.beta),
            b.paths.last().unwrap().params.second.map(|s| s.beta),
        );
    }
}
