//! `mpx-obs` — the unified telemetry layer.
//!
//! The paper's artifact is a *predictive model*; its value is how closely
//! predicted transfer times track observed ones. This crate turns every
//! run into a model-validation experiment:
//!
//! * [`Recorder`] — a cheap span/instant sink threaded through the
//!   engine, the UCX context, and the MPI collectives. Phases cover the
//!   whole pipeline: plan → probe → transfer → chunk-leg → recovery →
//!   collective, plus fault and tuner events.
//! * [`export_chrome_trace`] — renders a drained recorder as Chrome
//!   trace-event JSON (Perfetto-loadable): one track per link, path lane,
//!   and rank; faults and re-plans as instant markers.
//! * [`TelemetryRegistry`] / [`MetricsSnapshot`] — one machine-readable
//!   surface unifying the engine's `StatsSnapshot`, the context's
//!   `CacheStats`, and the recovery loop's `ResilienceStats`.
//! * [`ResidualTracker`] — online predicted-vs-measured error histograms
//!   per pair and size class; [`ResidualTracker::report`] reproduces the
//!   paper's error-table shape at runtime and explains drift-based cache
//!   invalidations.
//!
//! The always-on production layer (PR 10) builds on those:
//!
//! * [`FlightRecorder`] — fixed-capacity per-thread ring buffers over
//!   the same span/instant shape: bounded memory forever, an
//!   `overwritten` counter, and non-consuming [`FlightRecorder::snapshot`]
//!   / [`FlightRecorder::snapshot_last`].
//! * [`QuantileHist`] — log-bucketed (HDR-style) quantile histograms,
//!   ~5% relative error, lock-free observation, exact cross-thread
//!   merging; the registry's histogram representation, surfacing
//!   p50/p90/p99/p999.
//! * [`AnomalyEngine`] — declarative triggers over the stack's failure
//!   signals (breaker trips, stuck transfers, deadline-miss bursts,
//!   shed regimes, rebalance storms, residual drift) firing
//!   rate-limited [`BlackBoxDump`]s: ring snapshot + metrics + cause +
//!   residual report, rendered by `mpx report`.
//! * [`render_openmetrics`] — Prometheus/OpenMetrics text exposition of
//!   the registry, histogram buckets included.
//!
//! Everything here is dependency-light (parking_lot + serde/serde_json
//! only) and designed so a stack built *without* a recorder pays one
//! `Option<&Recorder>` branch per operation.

mod anomaly;
mod hist;
mod openmetrics;
mod perfetto;
mod registry;
mod residual;
mod ring;
mod span;

pub use anomaly::{AnomalyConfig, AnomalyEngine, BlackBoxDump, TriggerClass, TriggerStats};
pub use hist::{QuantileHist, MAX_RELATIVE_ERROR, MAX_TRACKED, MIN_TRACKED};
pub use openmetrics::render_openmetrics;
pub use perfetto::{export_chrome_trace, phases_present};
pub use registry::{MetricEntry, MetricsSnapshot, TelemetryRegistry};
pub use residual::{PairResidual, ResidualReport, ResidualRow, ResidualTracker};
pub use ring::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use span::{Event, InstantRecord, Phase, Recorder, SpanRecord};
