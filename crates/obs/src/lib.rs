//! `mpx-obs` — the unified telemetry layer.
//!
//! The paper's artifact is a *predictive model*; its value is how closely
//! predicted transfer times track observed ones. This crate turns every
//! run into a model-validation experiment:
//!
//! * [`Recorder`] — a cheap span/instant sink threaded through the
//!   engine, the UCX context, and the MPI collectives. Phases cover the
//!   whole pipeline: plan → probe → transfer → chunk-leg → recovery →
//!   collective, plus fault and tuner events.
//! * [`export_chrome_trace`] — renders a drained recorder as Chrome
//!   trace-event JSON (Perfetto-loadable): one track per link, path lane,
//!   and rank; faults and re-plans as instant markers.
//! * [`TelemetryRegistry`] / [`MetricsSnapshot`] — one machine-readable
//!   surface unifying the engine's `StatsSnapshot`, the context's
//!   `CacheStats`, and the recovery loop's `ResilienceStats`.
//! * [`ResidualTracker`] — online predicted-vs-measured error histograms
//!   per pair and size class; [`ResidualTracker::report`] reproduces the
//!   paper's error-table shape at runtime and explains drift-based cache
//!   invalidations.
//!
//! Everything here is dependency-light (parking_lot + serde only) and
//! designed so a stack built *without* a recorder pays one
//! `Option<&Recorder>` branch per operation.

mod perfetto;
mod registry;
mod residual;
mod span;

pub use perfetto::{export_chrome_trace, phases_present};
pub use registry::{MetricEntry, MetricsSnapshot, TelemetryRegistry};
pub use residual::{PairResidual, ResidualReport, ResidualRow, ResidualTracker};
pub use span::{Event, InstantRecord, Phase, Recorder, SpanRecord};
