//! Log-bucketed quantile histograms (HDR-style): fixed memory, bounded
//! relative error, lock-free observation, and exact merging across
//! threads.
//!
//! Buckets are geometric with growth factor [`GAMMA`] = 1.1 over
//! `[MIN_TRACKED, MAX_TRACKED)`; a reported quantile is the geometric
//! midpoint of the bucket holding that rank, so it is within
//! `sqrt(GAMMA) - 1 ≈ 4.9%` of the exact order statistic — the
//! documented [`MAX_RELATIVE_ERROR`] bound of 5%. Because every
//! histogram shares one bucket layout, merging per-thread histograms is
//! *exact*: the merged histogram is bit-identical to one histogram that
//! observed the concatenated stream (pinned by a proptest below).

use std::sync::atomic::{AtomicU64, Ordering};

/// Geometric bucket growth factor.
pub const GAMMA: f64 = 1.1;
/// Smallest distinguishable positive value (1 ns, in seconds).
pub const MIN_TRACKED: f64 = 1e-9;
/// Largest distinguishable value; larger observations clamp into the
/// top bucket (their quantile error is then bounded by the clamp, not
/// by [`MAX_RELATIVE_ERROR`]).
pub const MAX_TRACKED: f64 = 1e6;
/// Documented worst-case relative error of a reported quantile for
/// in-range positive values (actual bound: `sqrt(1.1) - 1 ≈ 0.0488`).
pub const MAX_RELATIVE_ERROR: f64 = 0.05;
/// `ceil(ln(MAX_TRACKED / MIN_TRACKED) / ln(GAMMA))`.
const N_BUCKETS: usize = 363;

/// A mergeable quantile histogram with ~5% relative error and
/// `O(N_BUCKETS)` memory. `observe` is lock-free (atomic adds), so one
/// histogram can be shared across recording threads behind an `Arc`.
pub struct QuantileHist {
    /// Observations `<= 0` (quantiles landing here report 0.0).
    zero: AtomicU64,
    /// Geometric buckets; bucket `i` covers
    /// `[MIN_TRACKED·γ^i, MIN_TRACKED·γ^(i+1))`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Exact running sum (f64 bits, CAS-updated).
    sum_bits: AtomicU64,
    /// Exact smallest observation (f64 bits; +inf when empty).
    min_bits: AtomicU64,
    /// Exact largest observation (f64 bits; -inf when empty).
    max_bits: AtomicU64,
}

impl Default for QuantileHist {
    fn default() -> Self {
        QuantileHist::new()
    }
}

impl QuantileHist {
    /// An empty histogram.
    pub fn new() -> QuantileHist {
        QuantileHist {
            zero: AtomicU64::new(0),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. Non-finite values are dropped.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v <= 0.0 {
            self.zero.fetch_add(1, Ordering::Relaxed);
        } else {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Exact smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Exact largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.max_bits.load(Ordering::Relaxed))
        }
    }

    /// The `q`-quantile (`0 < q <= 1`): the geometric midpoint of the
    /// bucket holding rank `ceil(q·n)`, clamped to the exact observed
    /// `[min, max]`. Within [`MAX_RELATIVE_ERROR`] of the exact order
    /// statistic for in-range positive observations; 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == n {
            // The top rank is tracked exactly.
            return self.max();
        }
        let mut cum = self.zero.load(Ordering::Relaxed);
        if cum >= rank {
            return 0.0;
        }
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return representative(i).clamp(self.min().max(0.0), self.max());
            }
        }
        self.max()
    }

    /// Folds `other`'s observations into `self`. Exact: equivalent to
    /// having observed both streams in one histogram.
    pub fn merge_from(&self, other: &QuantileHist) {
        self.zero
            .fetch_add(other.zero.load(Ordering::Relaxed), Ordering::Relaxed);
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, other.sum());
        atomic_f64_min(
            &self.min_bits,
            f64::from_bits(other.min_bits.load(Ordering::Relaxed)),
        );
        atomic_f64_max(
            &self.max_bits,
            f64::from_bits(other.max_bits.load(Ordering::Relaxed)),
        );
    }

    /// Cumulative bucket counts as `(upper_bound, cumulative_count)` for
    /// every bucket whose count is nonzero, in ascending bound order —
    /// the OpenMetrics `_bucket{le=...}` series (the exporter appends
    /// the mandatory `+Inf` bucket itself). The zero bucket reports an
    /// upper bound of [`MIN_TRACKED`].
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = self.zero.load(Ordering::Relaxed);
        if cum > 0 {
            out.push((MIN_TRACKED, cum));
        }
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((upper_bound(i), cum));
            }
        }
        out
    }
}

impl Clone for QuantileHist {
    fn clone(&self) -> QuantileHist {
        let h = QuantileHist::new();
        h.merge_from(self);
        h
    }
}

/// Distributional equality: counts, bucket contents, and the exact
/// min/max. Sums are deliberately excluded — merging re-associates
/// float addition, so two histograms over the same observations can
/// differ in the sum's last ulp while being the same distribution.
impl PartialEq for QuantileHist {
    fn eq(&self, other: &QuantileHist) -> bool {
        self.count() == other.count()
            && self.min_bits.load(Ordering::Relaxed) == other.min_bits.load(Ordering::Relaxed)
            && self.max_bits.load(Ordering::Relaxed) == other.max_bits.load(Ordering::Relaxed)
            && self.zero.load(Ordering::Relaxed) == other.zero.load(Ordering::Relaxed)
            && self
                .buckets
                .iter()
                .zip(&other.buckets)
                .all(|(a, b)| a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for QuantileHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantileHist")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket holding a positive value: `floor(ln(v / MIN) / ln γ)`,
/// clamped into range.
fn bucket_index(v: f64) -> usize {
    let r = (v / MIN_TRACKED).ln() / GAMMA.ln();
    if r < 0.0 {
        0
    } else {
        (r as usize).min(N_BUCKETS - 1)
    }
}

/// Geometric midpoint of bucket `i` — the value quantiles report.
fn representative(i: usize) -> f64 {
    MIN_TRACKED * GAMMA.powf(i as f64 + 0.5)
}

/// Exclusive upper bound of bucket `i`.
fn upper_bound(i: usize) -> f64 {
    MIN_TRACKED * GAMMA.powf(i as f64 + 1.0)
}

fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_min(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= v {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact order statistic with the same rank convention the
    /// histogram uses (`ceil(q·n)`, 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    #[test]
    fn empty_hist_reports_zeros() {
        let h = QuantileHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn exact_moments_and_bounded_quantiles() {
        let h = QuantileHist::new();
        let vals = [1e-6, 2e-6, 3e-6, 4e-6, 100e-6];
        for v in vals {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 110e-6).abs() < 1e-18);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 100e-6);
        // p50 of 5 values = rank 3 = 3e-6, within the error bound.
        let p50 = h.quantile(0.5);
        assert!((p50 - 3e-6).abs() <= MAX_RELATIVE_ERROR * 3e-6, "{p50}");
        // p100 clamps to the exact max.
        assert_eq!(h.quantile(1.0), 100e-6);
    }

    #[test]
    fn zero_and_negative_land_in_zero_bucket() {
        let h = QuantileHist::new();
        h.observe(0.0);
        h.observe(-4.0);
        h.observe(1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), -4.0);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (MIN_TRACKED, 2));
        assert_eq!(buckets.last().unwrap().1, 3);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 3, "non-finite observations are dropped");
    }

    #[test]
    fn out_of_range_values_clamp_into_edge_buckets() {
        let h = QuantileHist::new();
        h.observe(1e-12);
        h.observe(1e9);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1e-12);
        assert_eq!(h.max(), 1e9);
        // The top-bucket representative clamps to the exact max.
        assert_eq!(h.quantile(1.0), 1e9);
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_total() {
        let h = QuantileHist::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-6);
        }
        let buckets = h.cumulative_buckets();
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(buckets.last().unwrap().1, 1000);
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let h = std::sync::Arc::new(QuantileHist::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000 {
                    h.observe(((t * 10_000 + i) as f64 + 1.0) * 1e-9);
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.min(), 1e-9);
        assert_eq!(h.max(), 40_000.0 * 1e-9);
    }

    fn arb_value() -> impl Strategy<Value = f64> {
        // Zeros plus positives spanning the tracked range (log-uniform).
        prop_oneof![Just(0.0), (-9.0f64..6.0).prop_map(|e| 10.0f64.powf(e)),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite: merging per-thread histograms must equal one
        /// histogram observing the concatenated stream — exactly for
        /// counts/sum/min/max, and every reported quantile of the
        /// merged histogram is within MAX_RELATIVE_ERROR of the exact
        /// order statistic of the combined stream.
        #[test]
        fn merge_equals_concatenated_stream(
            streams in proptest::collection::vec(
                proptest::collection::vec(arb_value(), 1..200),
                1..5,
            ),
            q in 0.01f64..1.0,
        ) {
            let merged = QuantileHist::new();
            let oracle = QuantileHist::new();
            let mut all: Vec<f64> = Vec::new();
            for stream in &streams {
                let part = QuantileHist::new();
                for &v in stream {
                    part.observe(v);
                    oracle.observe(v);
                    all.push(v);
                }
                merged.merge_from(&part);
            }
            // Merging is exact on the distribution: identical bucket
            // layout, counts, and min/max; sums agree up to float
            // re-association.
            prop_assert_eq!(&merged, &oracle);
            prop_assert_eq!(merged.count(), all.len() as u64);
            prop_assert_eq!(merged.min(), oracle.min());
            prop_assert_eq!(merged.max(), oracle.max());
            let sum_gap = (merged.sum() - oracle.sum()).abs();
            prop_assert!(sum_gap <= 1e-9 * oracle.sum().abs().max(1.0));
            // And its quantiles obey the documented error bound
            // against the exact combined order statistic.
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for qq in [q, 0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&all, qq);
                let got = merged.quantile(qq);
                if exact == 0.0 {
                    prop_assert_eq!(got, 0.0);
                } else {
                    let rel = (got - exact).abs() / exact;
                    prop_assert!(
                        rel <= MAX_RELATIVE_ERROR,
                        "q={} exact={} got={} rel={}",
                        qq, exact, got, rel
                    );
                }
            }
        }
    }
}
