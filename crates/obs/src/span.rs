//! The recording core: phases, span/instant records, and the [`Recorder`].
//!
//! A [`Recorder`] is a cheap clonable handle shared by every layer of the
//! stack (engine, UCX context, MPI ranks). Each recording thread appends
//! to its own buffer — registered with the recorder on first use — so the
//! hot path takes one uncontended lock and pushes one record; nothing is
//! serialized until [`Recorder::drain`]. Timestamps are **virtual-time
//! seconds** from the simulation clock, so spans line up exactly with the
//! engine's flow trace.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle phase a telemetry event belongs to. Phases become the `cat`
/// field of the exported Chrome trace, so a Perfetto query can filter one
/// stage of the plan → probe → transfer pipeline. The derived ordering
/// follows pipeline (declaration) order and is part of the canonical
/// event sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Planner invocation (Algorithm 1 / Eq. 24 share solve).
    Plan,
    /// Capacity probe ahead of a dynamic plan.
    Probe,
    /// A whole multi-path transfer, issue to last-byte.
    Transfer,
    /// One chunk leg (or direct-path flow) inside a transfer.
    ChunkLeg,
    /// Recovery activity: deadline timeouts and re-plans.
    Recovery,
    /// A collective operation on one rank.
    Collective,
    /// A fault-injection event firing.
    Fault,
    /// Static tuner activity.
    Tune,
    /// Compiling a plan into a replayable transfer graph.
    GraphCapture,
    /// Launching a compiled transfer graph (replay fast path).
    GraphReplay,
    /// Path-health supervision: breaker trips, resets, half-open probes.
    Health,
    /// Hedged-transfer activity: hedge launches, wins, and losses.
    Hedge,
    /// Transfer-broker activity: admissions, sheds, dispatch batches,
    /// and load-regime transitions.
    Broker,
    /// Parallel simulation partitioning: per-partition lanes and
    /// rebalance (partition-merge) instants.
    Partition,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 14] = [
        Phase::Plan,
        Phase::Probe,
        Phase::Transfer,
        Phase::ChunkLeg,
        Phase::Recovery,
        Phase::Collective,
        Phase::Fault,
        Phase::Tune,
        Phase::GraphCapture,
        Phase::GraphReplay,
        Phase::Health,
        Phase::Hedge,
        Phase::Broker,
        Phase::Partition,
    ];

    /// Stable lower-case label (the trace `cat` field).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Probe => "probe",
            Phase::Transfer => "transfer",
            Phase::ChunkLeg => "chunk-leg",
            Phase::Recovery => "recovery",
            Phase::Collective => "collective",
            Phase::Fault => "fault",
            Phase::Tune => "tune",
            Phase::GraphCapture => "graph.capture",
            Phase::GraphReplay => "graph.replay",
            Phase::Health => "health",
            Phase::Hedge => "hedge",
            Phase::Broker => "broker",
            Phase::Partition => "partition",
        }
    }
}

/// A duration event: something that started and finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Human-readable event name (e.g. the flow label).
    pub name: String,
    /// Track (Perfetto row) the span renders on, e.g. `link:gpu0->gpu1`
    /// or `rank0`.
    pub track: String,
    /// Pipeline phase.
    pub phase: Phase,
    /// Start, virtual-time seconds.
    pub start: f64,
    /// End, virtual-time seconds (`end >= start`).
    pub end: f64,
    /// Free-form detail string carried into the trace `args`.
    pub detail: String,
}

/// A point-in-time event (fault fired, re-plan decided, cache
/// invalidated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantRecord {
    /// Event name.
    pub name: String,
    /// Track the marker renders on.
    pub track: String,
    /// Pipeline phase.
    pub phase: Phase,
    /// When, virtual-time seconds.
    pub at: f64,
    /// Free-form detail string.
    pub detail: String,
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Duration event.
    Span(SpanRecord),
    /// Point event.
    Instant(InstantRecord),
}

impl Event {
    /// The event's timestamp (span start, instant time).
    pub fn at(&self) -> f64 {
        match self {
            Event::Span(s) => s.start,
            Event::Instant(i) => i.at,
        }
    }

    /// The track the event renders on.
    pub fn track(&self) -> &str {
        match self {
            Event::Span(s) => &s.track,
            Event::Instant(i) => &i.track,
        }
    }

    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            Event::Span(s) => &s.name,
            Event::Instant(i) => &i.name,
        }
    }

    /// The event's phase.
    pub fn phase(&self) -> Phase {
        match self {
            Event::Span(s) => s.phase,
            Event::Instant(i) => i.phase,
        }
    }
}

/// Process-unique recorder ids, so a thread-local buffer cached for one
/// recorder is never mistaken for another's.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's event buffer. In unbounded mode `head` stays 0 and
/// `events` grows; in ring mode (a recorder built with
/// [`Recorder::with_capacity`]) `events` is capped and `head` is the
/// oldest slot — the next one overwritten.
struct RingBuf {
    events: Vec<Event>,
    head: usize,
}

impl RingBuf {
    /// The buffered events, oldest first, leaving the buffer empty.
    fn take(&mut self) -> Vec<Event> {
        let mut out = std::mem::take(&mut self.events);
        out.rotate_left(self.head);
        self.head = 0;
        out
    }

    /// Clones the buffered events, oldest first, without consuming.
    fn peek(&self) -> Vec<Event> {
        let mut out = self.events.clone();
        out.rotate_left(self.head);
        out
    }
}

/// One thread's event buffer, shared with the owning recorder.
type SharedBuffer = Arc<Mutex<RingBuf>>;

thread_local! {
    /// Per-thread buffer cache: `(recorder id, buffer)` pairs. A thread
    /// typically talks to one recorder per run, so linear search wins.
    static LOCAL_BUFFERS: RefCell<Vec<(u64, SharedBuffer)>> =
        const { RefCell::new(Vec::new()) };
}

struct RecorderInner {
    id: u64,
    /// Per-thread ring capacity; `None` = unbounded (drain-style use).
    capacity: Option<usize>,
    /// All per-thread buffers ever registered; drained in order.
    buffers: Mutex<Vec<SharedBuffer>>,
    recorded: AtomicU64,
    /// Events lost to ring overwrites (always 0 in unbounded mode).
    overwritten: AtomicU64,
}

/// Shared telemetry sink. Clone freely; clones record into the same
/// buffers. Recording appends to the calling thread's own buffer (an
/// uncontended lock outside of drains), so instrumented hot paths stay
/// cheap; a disabled stack simply carries no recorder
/// (`Option<Recorder>` checked once per operation).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, empty, unbounded recorder.
    pub fn new() -> Recorder {
        Recorder::build(None)
    }

    /// A ring-mode recorder: each recording thread keeps at most
    /// `capacity_per_thread` events, overwriting the oldest once full
    /// (counted in [`Recorder::overwritten`]). This is the always-on
    /// flight-recorder mode — memory is bounded no matter how long the
    /// process runs.
    ///
    /// # Panics
    /// Panics on a zero capacity.
    pub fn with_capacity(capacity_per_thread: usize) -> Recorder {
        assert!(capacity_per_thread > 0, "ring capacity must be positive");
        Recorder::build(Some(capacity_per_thread))
    }

    fn build(capacity: Option<usize>) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                capacity,
                buffers: Mutex::new(Vec::new()),
                recorded: AtomicU64::new(0),
                overwritten: AtomicU64::new(0),
            }),
        }
    }

    /// Records a duration event.
    pub fn span(
        &self,
        phase: Phase,
        track: impl Into<String>,
        name: impl Into<String>,
        start: f64,
        end: f64,
        detail: impl Into<String>,
    ) {
        self.push(Event::Span(SpanRecord {
            name: name.into(),
            track: track.into(),
            phase,
            start,
            end: end.max(start),
            detail: detail.into(),
        }));
    }

    /// Records a point event.
    pub fn instant(
        &self,
        phase: Phase,
        track: impl Into<String>,
        name: impl Into<String>,
        at: f64,
        detail: impl Into<String>,
    ) {
        self.push(Event::Instant(InstantRecord {
            name: name.into(),
            track: track.into(),
            phase,
            at,
            detail: detail.into(),
        }));
    }

    /// Total events recorded so far (all threads), overwritten ones
    /// included.
    pub fn events_recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrites (0 for unbounded recorders). A
    /// nonzero value means [`Recorder::drain`]/[`Recorder::snapshot`]
    /// see only the newest `capacity_per_thread` events per thread.
    pub fn overwritten(&self) -> u64 {
        self.inner.overwritten.load(Ordering::Relaxed)
    }

    /// The ring capacity per thread (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Collects every buffered event in canonical order — sorted by
    /// `(timestamp, phase, name)`, so equal-timestamp events order
    /// deterministically regardless of which thread recorded them —
    /// leaving the buffers empty. Safe to call while other threads keep
    /// recording (their new events land in the next drain).
    pub fn drain(&self) -> Vec<Event> {
        let buffers = self.inner.buffers.lock();
        let mut out = Vec::new();
        for buf in buffers.iter() {
            out.extend(buf.lock().take());
        }
        drop(buffers);
        sort_events_canonical(&mut out);
        out
    }

    /// Clones every buffered event in canonical order *without*
    /// draining: recording continues uninterrupted and the same events
    /// remain visible to later snapshots or a final drain. This is how
    /// an anomaly dump captures the flight-recorder ring mid-run.
    pub fn snapshot(&self) -> Vec<Event> {
        let buffers = self.inner.buffers.lock();
        let mut out = Vec::new();
        for buf in buffers.iter() {
            out.extend(buf.lock().peek());
        }
        drop(buffers);
        sort_events_canonical(&mut out);
        out
    }

    fn push(&self, ev: Event) {
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        LOCAL_BUFFERS.with(|cache| {
            let mut cache = cache.borrow_mut();
            let buf = match cache.iter().position(|(id, _)| *id == self.inner.id) {
                Some(i) => &cache[i].1,
                None => {
                    let buf = Arc::new(Mutex::new(RingBuf {
                        events: Vec::new(),
                        head: 0,
                    }));
                    self.inner.buffers.lock().push(buf.clone());
                    cache.push((self.inner.id, buf));
                    &cache.last().expect("just pushed").1
                }
            };
            let mut b = buf.lock();
            match self.inner.capacity {
                Some(cap) if b.events.len() >= cap => {
                    let head = b.head;
                    b.events[head] = ev;
                    b.head = (head + 1) % cap;
                    self.inner.overwritten.fetch_add(1, Ordering::Relaxed);
                }
                _ => b.events.push(ev),
            }
        });
    }
}

/// The canonical event order: `(timestamp, phase, name)`. Ties on equal
/// timestamps are broken by phase (pipeline order) then name, so the
/// order is independent of buffer (thread) registration order.
pub(crate) fn sort_events_canonical(events: &mut [Event]) {
    events.sort_by(|a, b| {
        a.at()
            .partial_cmp(&b.at())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.phase().cmp(&b.phase()))
            .then_with(|| a.name().cmp(b.name()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains_in_time_order() {
        let r = Recorder::new();
        r.instant(Phase::Fault, "fabric", "kill", 2.0, "");
        r.span(Phase::Transfer, "xfer", "put", 0.5, 1.5, "64M");
        r.span(Phase::Plan, "planner", "plan", 0.0, 0.0, "");
        assert_eq!(r.events_recorded(), 3);
        let evs = r.drain();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].phase(), Phase::Plan);
        assert_eq!(evs[1].phase(), Phase::Transfer);
        assert_eq!(evs[2].phase(), Phase::Fault);
        // Drained: a second drain is empty.
        assert!(r.drain().is_empty());
        // The counter keeps the lifetime total.
        assert_eq!(r.events_recorded(), 3);
    }

    #[test]
    fn span_end_clamped_to_start() {
        let r = Recorder::new();
        r.span(Phase::Probe, "t", "backwards", 5.0, 4.0, "");
        let evs = r.drain();
        match &evs[0] {
            Event::Span(s) => assert_eq!(s.end, 5.0),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn multi_thread_recording_lands_in_one_drain() {
        let r = Recorder::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    r.span(
                        Phase::ChunkLeg,
                        format!("track{t}"),
                        format!("ev{i}"),
                        i as f64,
                        i as f64 + 0.5,
                        "",
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let evs = r.drain();
        assert_eq!(evs.len(), 400);
        assert_eq!(r.events_recorded(), 400);
        // Sorted by timestamp.
        for w in evs.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn distinct_recorders_do_not_cross_talk() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.instant(Phase::Plan, "t", "a-only", 0.0, "");
        b.instant(Phase::Plan, "t", "b-only", 0.0, "");
        let ea = a.drain();
        let eb = b.drain();
        assert_eq!(ea.len(), 1);
        assert_eq!(eb.len(), 1);
        match (&ea[0], &eb[0]) {
            (Event::Instant(x), Event::Instant(y)) => {
                assert_eq!(x.name, "a-only");
                assert_eq!(y.name, "b-only");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equal_timestamps_drain_in_phase_then_name_order() {
        // Same-timestamp events recorded from different threads must
        // drain in one deterministic order: (ts, phase, name).
        let r = Recorder::new();
        let mut handles = Vec::new();
        for (phase, name) in [
            (Phase::Fault, "z-fault"),
            (Phase::Plan, "b-plan"),
            (Phase::Plan, "a-plan"),
            (Phase::Transfer, "m-xfer"),
        ] {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                r.instant(phase, "t", name, 1.0, "");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let names: Vec<String> = r.drain().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(names, ["a-plan", "b-plan", "m-xfer", "z-fault"]);
    }

    #[test]
    fn ring_mode_overwrites_oldest_and_counts() {
        let r = Recorder::with_capacity(4);
        for i in 0..10 {
            r.instant(Phase::Plan, "t", format!("ev{i}"), i as f64, "");
        }
        assert_eq!(r.events_recorded(), 10);
        assert_eq!(r.overwritten(), 6);
        assert_eq!(r.capacity(), Some(4));
        let names: Vec<String> = r.drain().iter().map(|e| e.name().to_string()).collect();
        // Only the newest 4 survive, oldest-first.
        assert_eq!(names, ["ev6", "ev7", "ev8", "ev9"]);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Recorder::with_capacity(8);
        r.instant(Phase::Health, "t", "trip", 1.0, "");
        r.instant(Phase::Health, "t", "reset", 2.0, "");
        let snap1 = r.snapshot();
        assert_eq!(snap1.len(), 2);
        // Recording continues and earlier events stay visible.
        r.instant(Phase::Hedge, "t", "win", 3.0, "");
        let snap2 = r.snapshot();
        assert_eq!(snap2.len(), 3);
        assert_eq!(snap2[0].name(), "trip");
        // A drain still sees everything once.
        assert_eq!(r.drain().len(), 3);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn unbounded_recorder_never_overwrites() {
        let r = Recorder::new();
        for i in 0..1000 {
            r.instant(Phase::Plan, "t", "e", i as f64, "");
        }
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.capacity(), None);
        assert_eq!(r.drain().len(), 1000);
    }

    #[test]
    fn event_serde_round_trip() {
        let r = Recorder::new();
        r.span(Phase::Transfer, "xfer", "put", 0.5, 1.5, "64M");
        r.instant(Phase::Fault, "fabric", "kill", 2.0, "link 3");
        let evs = r.drain();
        let json = serde_json::to_string(&evs).unwrap();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn phase_labels_are_stable() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "plan",
                "probe",
                "transfer",
                "chunk-leg",
                "recovery",
                "collective",
                "fault",
                "tune",
                "graph.capture",
                "graph.replay",
                "health",
                "hedge",
                "broker",
                "partition"
            ]
        );
    }
}
