//! OpenMetrics / Prometheus text exposition of a [`TelemetryRegistry`].
//!
//! Naming convention: dotted registry names are mangled to the
//! Prometheus charset (`.` and any other invalid character become `_`;
//! a leading digit gains a `_` prefix). Counters are suffixed `_total`
//! as the format requires; quantile histograms expose their log buckets
//! as a cumulative `_bucket{le="..."}` series (sparse — only buckets
//! with observations — plus the mandatory `+Inf`), with `_sum` and
//! `_count`. The exposition ends with the `# EOF` terminator.

use crate::registry::{Metric, TelemetryRegistry};

/// Mangles a dotted metric name into the Prometheus name charset
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a sample value: integral values print without an exponent or
/// trailing zeros, everything else uses Rust's shortest round-trip form.
fn num(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the registry in the OpenMetrics text format (Prometheus
/// exposition compatible), metric families sorted by name, terminated
/// by `# EOF`.
pub fn render_openmetrics(reg: &TelemetryRegistry) -> String {
    let mut metrics = reg.export();
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (raw, metric) in &metrics {
        let name = mangle(raw);
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n"));
                out.push_str(&format!("{name}_total {v}\n"));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                out.push_str(&format!("{name} {}\n", num(*v)));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                for (le, cum) in h.cumulative_buckets() {
                    out.push_str(&format!("{name}_bucket{{le=\"{le:e}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                out.push_str(&format!("{name}_sum {}\n", num(h.sum())));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangles_names_into_prometheus_charset() {
        assert_eq!(mangle("sim.flows_completed"), "sim_flows_completed");
        assert_eq!(mangle("tenant.bulk-7.shed"), "tenant_bulk_7_shed");
        assert_eq!(mangle("9lives"), "_9lives");
        assert_eq!(mangle(""), "_");
    }

    #[test]
    fn counters_gauges_histograms_render() {
        let reg = TelemetryRegistry::new();
        reg.set_counter("sim.flows_completed", 42);
        reg.set_gauge("broker.regime", 1.0);
        reg.observe("ucx.transfer.latency_secs", 1e-3);
        reg.observe("ucx.transfer.latency_secs", 2e-3);
        let text = render_openmetrics(&reg);
        assert!(text.contains("# TYPE sim_flows_completed counter\n"));
        assert!(text.contains("sim_flows_completed_total 42\n"));
        assert!(text.contains("# TYPE broker_regime gauge\n"));
        assert!(text.contains("broker_regime 1\n"));
        assert!(text.contains("# TYPE ucx_transfer_latency_secs histogram\n"));
        assert!(text.contains("ucx_transfer_latency_secs_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("ucx_transfer_latency_secs_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn every_line_matches_the_exposition_grammar() {
        let reg = TelemetryRegistry::new();
        reg.set_counter("a.counter", 7);
        reg.set_gauge("b.gauge", -0.25);
        for i in 0..100 {
            reg.observe("c.hist", i as f64 * 1e-5);
        }
        let text = render_openmetrics(&reg);
        let name = r"[a-zA-Z_][a-zA-Z0-9_]*";
        for line in text.lines() {
            let is_type = line.starts_with("# TYPE ")
                && (line.ends_with(" counter")
                    || line.ends_with(" gauge")
                    || line.ends_with(" histogram"));
            let is_eof = line == "# EOF";
            let is_sample = {
                // <name>[{le="..."}] <number>
                let mut parts = line.splitn(2, ' ');
                let (id, val) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                let name_ok = {
                    let bare = id.split('{').next().unwrap_or("");
                    !bare.is_empty()
                        && bare.chars().next().unwrap().is_ascii_alphabetic()
                        && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                        && (!id.contains('{') || (id.contains("{le=\"") && id.ends_with("\"}")))
                };
                name_ok && !val.is_empty() && val.parse::<f64>().is_ok()
            };
            assert!(
                is_type || is_eof || is_sample,
                "bad line: {line:?} ({name})"
            );
        }
        // Cumulative buckets are monotone and end at the count.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("c_hist_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bucket_counts.last().unwrap(), 100);
    }
}
