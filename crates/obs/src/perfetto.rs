//! Chrome trace-event export: renders drained [`Event`]s as the JSON
//! array flavour loadable in `chrome://tracing` or Perfetto. Every
//! distinct track (link, path lane, rank, fabric) becomes one `tid` with
//! a `thread_name` metadata record; spans are complete events
//! (`ph: "X"`), instants are `ph: "i"` markers; the phase is the `cat`
//! field so one pipeline stage can be filtered in the UI.

use crate::span::{Event, Phase};

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes telemetry events to Chrome trace-event JSON. Virtual-time
/// seconds become microsecond `ts`/`dur` fields; tracks are assigned
/// `tid`s in order of first appearance.
pub fn export_chrome_trace(events: &[Event]) -> String {
    fn tid_of(tracks: &mut Vec<String>, track: &str) -> usize {
        match tracks.iter().position(|t| t == track) {
            Some(i) => i,
            None => {
                tracks.push(track.to_string());
                tracks.len() - 1
            }
        }
    }
    let mut tracks: Vec<String> = Vec::new();
    let mut out = String::from("[\n");
    for ev in events {
        let tid = tid_of(&mut tracks, ev.track());
        match ev {
            Event::Span(s) => {
                out.push_str(&format!(
                    "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \
                     \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \
                     \"args\": {{\"detail\": \"{}\"}}}},\n",
                    esc(&s.name),
                    s.phase.label(),
                    tid,
                    s.start * 1e6,
                    (s.end - s.start) * 1e6,
                    esc(&s.detail)
                ));
            }
            Event::Instant(i) => {
                out.push_str(&format!(
                    "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \
                     \"args\": {{\"detail\": \"{}\"}}}},\n",
                    esc(&i.name),
                    i.phase.label(),
                    tid,
                    i.at * 1e6,
                    esc(&i.detail)
                ));
            }
        }
    }
    // Process metadata first, then one thread_name record per track, so
    // Perfetto labels the process row and every track row correctly.
    if !tracks.is_empty() {
        out.push_str(
            "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {\"name\": \"mpx\"}},\n",
        );
    }
    for (i, t) in tracks.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {i}, \
             \"args\": {{\"name\": \"{}\"}}}},\n",
            esc(t)
        ));
    }
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push(']');
    out
}

/// Phases with at least one event present — the trace-export smoke's
/// coverage check.
pub fn phases_present(events: &[Event]) -> Vec<Phase> {
    Phase::ALL
        .into_iter()
        .filter(|p| events.iter().any(|e| e.phase() == *p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    #[test]
    fn export_is_valid_json_with_tracks_and_instants() {
        let r = Recorder::new();
        r.span(Phase::Transfer, "xfer0", "put 64M", 0.0, 1.0e-3, "3 paths");
        r.span(
            Phase::ChunkLeg,
            "link:gpu0->gpu2",
            "xfer0.p1.c0.leg1",
            0.0,
            5.0e-4,
            "",
        );
        r.instant(Phase::Fault, "fabric", "kill link 3", 4.0e-4, "kill");
        let events = r.drain();
        let json = export_chrome_trace(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        // 3 events + 1 process + 3 track metadata records.
        assert_eq!(arr.len(), 7, "{json}");
        let names: Vec<&str> = arr
            .iter()
            .filter(|e| e["ph"] == "M")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(names.contains(&"mpx"), "process_name record present");
        assert!(
            arr.iter()
                .any(|e| e["ph"] == "M" && e["name"] == "process_name"),
            "process metadata record"
        );
        assert!(names.contains(&"xfer0"));
        assert!(names.contains(&"link:gpu0->gpu2"));
        assert!(names.contains(&"fabric"));
        let instant = arr.iter().find(|e| e["ph"] == "i").expect("instant event");
        assert_eq!(instant["cat"], "fault");
        assert!((instant["ts"].as_f64().unwrap() - 400.0).abs() < 1e-6);
        let span = arr.iter().find(|e| e["cat"] == "transfer").unwrap();
        assert!((span["dur"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn export_escapes_quotes_and_newlines() {
        let r = Recorder::new();
        r.instant(Phase::Plan, "t", "odd \"name\"\n", 0.0, "a\\b");
        let json = export_chrome_trace(&r.drain());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let ev = &parsed.as_array().unwrap()[0];
        assert_eq!(ev["name"].as_str().unwrap(), "odd \"name\"\n");
        assert_eq!(ev["args"]["detail"].as_str().unwrap(), "a\\b");
    }

    #[test]
    fn hostile_detail_strings_stay_valid_json() {
        // Every JSON metacharacter and control byte an adversarial
        // detail string could carry must survive a parse round-trip.
        let hostile = "\"},{\"pwn\":1}\n\r\t\\ \u{0001}\u{001f} end\"";
        let r = Recorder::new();
        r.span(Phase::Transfer, hostile, hostile, 0.0, 1e-6, hostile);
        r.instant(Phase::Broker, "t\"r\\ack", hostile, 2e-6, hostile);
        let json = export_chrome_trace(&r.drain());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        // 2 events + process + 2 tracks; the injection attempt did not
        // add records.
        assert_eq!(arr.len(), 5, "{json}");
        let span = arr.iter().find(|e| e["ph"] == "X").unwrap();
        assert_eq!(span["name"].as_str().unwrap(), hostile);
        assert_eq!(span["args"]["detail"].as_str().unwrap(), hostile);
        let meta: Vec<&str> = arr
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(meta.contains(&hostile));
        assert!(meta.contains(&"t\"r\\ack"));
    }

    #[test]
    fn empty_event_list_exports_empty_array() {
        let json = export_chrome_trace(&[]);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }

    #[test]
    fn phases_present_reports_coverage() {
        let r = Recorder::new();
        r.span(Phase::Plan, "t", "p", 0.0, 0.0, "");
        r.instant(Phase::Fault, "t", "f", 0.0, "");
        let evs = r.drain();
        let phases = phases_present(&evs);
        assert!(phases.contains(&Phase::Plan));
        assert!(phases.contains(&Phase::Fault));
        assert!(!phases.contains(&Phase::Probe));
    }
}
