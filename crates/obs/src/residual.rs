//! The online model-residual tracker: every completed transfer feeds the
//! predicted time from its (possibly cached) plan and the time the
//! simulated fabric actually took. Residuals are bucketed per
//! communication pair and per power-of-two size class, reproducing the
//! paper's model-error table at runtime — and giving the drift
//! invalidation hook an explainable basis ("invalidated because the p50
//! residual exceeded the tolerance").

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cap on retained per-cell samples; beyond it percentiles are computed
/// over the first `SAMPLE_CAP` observations (runs here are far smaller).
const SAMPLE_CAP: usize = 4096;

#[derive(Debug, Default, Clone)]
struct Cell {
    count: u64,
    /// Sum of signed relative errors, `(predicted − measured)/measured`.
    sum_rel: f64,
    /// Sum of |relative error|.
    sum_abs: f64,
    max_abs: f64,
    sum_predicted: f64,
    sum_measured: f64,
    /// |relative error| samples for percentiles, capped at [`SAMPLE_CAP`].
    samples: Vec<f64>,
}

impl Cell {
    fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let idx = ((s.len() - 1) as f64 * q).round() as usize;
        s[idx]
    }
}

/// Tracks predicted-vs-measured transfer times, bucketed by pair and
/// size class. Thread-safe behind one mutex; recording is a map insert
/// plus a handful of adds, far off any hot path (once per *transfer*,
/// not per chunk).
#[derive(Default)]
pub struct ResidualTracker {
    cells: Mutex<BTreeMap<(String, u32), Cell>>,
}

/// Per-pair summary used to explain drift invalidations.
#[derive(Debug, Clone, PartialEq)]
pub struct PairResidual {
    /// Observations across all size classes of the pair.
    pub count: u64,
    /// Mean |relative error|, percent.
    pub mean_abs_pct: f64,
    /// Median |relative error|, percent.
    pub p50_abs_pct: f64,
}

impl ResidualTracker {
    /// An empty tracker.
    pub fn new() -> ResidualTracker {
        ResidualTracker::default()
    }

    /// Records one completed transfer. `pair` is a stable label such as
    /// `gpu0->gpu1`; times are seconds. Non-positive measurements are
    /// ignored (a zero-duration transfer has no meaningful residual).
    pub fn record(&self, pair: &str, bytes: usize, predicted: f64, measured: f64) {
        if measured <= 0.0 || !measured.is_finite() || !predicted.is_finite() {
            return;
        }
        let rel = (predicted - measured) / measured;
        let class = size_class(bytes);
        let mut cells = self.cells.lock();
        let cell = cells.entry((pair.to_string(), class)).or_default();
        cell.count += 1;
        cell.sum_rel += rel;
        cell.sum_abs += rel.abs();
        cell.max_abs = cell.max_abs.max(rel.abs());
        cell.sum_predicted += predicted;
        cell.sum_measured += measured;
        if cell.samples.len() < SAMPLE_CAP {
            cell.samples.push(rel.abs());
        }
    }

    /// Total transfers recorded.
    pub fn count(&self) -> u64 {
        self.cells.lock().values().map(|c| c.count).sum()
    }

    /// Mean |relative error| over every recorded transfer (fraction, not
    /// percent) — the tracker's headline number, comparable to the
    /// offline benches' `mean_relative_error`.
    pub fn mean_abs_error(&self) -> f64 {
        let cells = self.cells.lock();
        let (n, sum) = cells
            .values()
            .fold((0u64, 0.0), |(n, s), c| (n + c.count, s + c.sum_abs));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Residual summary for one pair (all size classes pooled), if it has
    /// been observed.
    pub fn pair_stats(&self, pair: &str) -> Option<PairResidual> {
        let cells = self.cells.lock();
        let mut count = 0u64;
        let mut sum_abs = 0.0;
        let mut samples: Vec<f64> = Vec::new();
        for ((p, _), c) in cells.iter() {
            if p == pair {
                count += c.count;
                sum_abs += c.sum_abs;
                samples.extend_from_slice(&c.samples);
            }
        }
        if count == 0 {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let p50 = samples[(samples.len() - 1) / 2];
        Some(PairResidual {
            count,
            mean_abs_pct: sum_abs / count as f64 * 100.0,
            p50_abs_pct: p50 * 100.0,
        })
    }

    /// The error table: one row per (pair, size class), sorted.
    pub fn report(&self) -> ResidualReport {
        let cells = self.cells.lock();
        let rows = cells
            .iter()
            .map(|((pair, class), c)| {
                let n = c.count as f64;
                ResidualRow {
                    pair: pair.clone(),
                    size_class: class_label(*class),
                    count: c.count,
                    mean_rel_err_pct: c.sum_rel / n * 100.0,
                    mean_abs_err_pct: c.sum_abs / n * 100.0,
                    p50_abs_err_pct: c.percentile(0.5) * 100.0,
                    p95_abs_err_pct: c.percentile(0.95) * 100.0,
                    max_abs_err_pct: c.max_abs * 100.0,
                    mean_predicted_us: c.sum_predicted / n * 1e6,
                    mean_measured_us: c.sum_measured / n * 1e6,
                }
            })
            .collect();
        ResidualReport { rows }
    }
}

/// One row of the runtime error table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualRow {
    /// Communication pair, e.g. `gpu0->gpu1`.
    pub pair: String,
    /// Human-readable size-class bucket, e.g. `[64MiB,128MiB)`.
    pub size_class: String,
    /// Transfers in the bucket.
    pub count: u64,
    /// Mean signed relative error, percent (positive = model optimistic
    /// about nothing — predicted > measured).
    pub mean_rel_err_pct: f64,
    /// Mean |relative error|, percent.
    pub mean_abs_err_pct: f64,
    /// Median |relative error|, percent.
    pub p50_abs_err_pct: f64,
    /// 95th-percentile |relative error|, percent.
    pub p95_abs_err_pct: f64,
    /// Worst |relative error|, percent.
    pub max_abs_err_pct: f64,
    /// Mean predicted transfer time, microseconds.
    pub mean_predicted_us: f64,
    /// Mean measured (simulated) transfer time, microseconds.
    pub mean_measured_us: f64,
}

/// The full runtime error table, shaped like the paper's model-error
/// table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualReport {
    /// One row per (pair, size-class) bucket, sorted by pair then size.
    pub rows: Vec<ResidualRow>,
}

impl ResidualReport {
    /// Renders the table as aligned text for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>16} {:>5} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}\n",
            "pair", "size class", "n", "mean%", "|mean|%", "p50%", "p95%", "pred us", "meas us"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>16} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>11.1} {:>11.1}\n",
                r.pair,
                r.size_class,
                r.count,
                r.mean_rel_err_pct,
                r.mean_abs_err_pct,
                r.p50_abs_err_pct,
                r.p95_abs_err_pct,
                r.mean_predicted_us,
                r.mean_measured_us
            ));
        }
        out
    }
}

/// Size-class index: floor(log2(bytes)); zero-byte transfers get class 0.
fn size_class(bytes: usize) -> u32 {
    if bytes <= 1 {
        0
    } else {
        usize::BITS - 1 - bytes.leading_zeros()
    }
}

fn humanize(bytes: u128) -> String {
    const UNITS: [(&str, u128); 4] = [
        ("GiB", 1 << 30),
        ("MiB", 1 << 20),
        ("KiB", 1 << 10),
        ("B", 1),
    ];
    for (unit, scale) in UNITS {
        if bytes >= scale && bytes.is_multiple_of(scale) {
            return format!("{}{}", bytes / scale, unit);
        }
    }
    format!("{bytes}B")
}

fn class_label(class: u32) -> String {
    let lo = 1u128 << class;
    let hi = 1u128 << (class + 1);
    format!("[{},{})", humanize(lo), humanize(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_bucket_by_pair_and_size() {
        let t = ResidualTracker::new();
        // 10% optimistic on a 64 MiB transfer, exact on a 4 MiB one.
        t.record("gpu0->gpu1", 64 << 20, 1.1e-3, 1.0e-3);
        t.record("gpu0->gpu1", 4 << 20, 5.0e-4, 5.0e-4);
        t.record("gpu2->gpu3", 64 << 20, 0.9e-3, 1.0e-3);
        let report = t.report();
        assert_eq!(report.rows.len(), 3);
        let big01 = report
            .rows
            .iter()
            .find(|r| r.pair == "gpu0->gpu1" && r.size_class == "[64MiB,128MiB)")
            .expect("bucket exists");
        assert_eq!(big01.count, 1);
        assert!((big01.mean_rel_err_pct - 10.0).abs() < 1e-6);
        assert!((big01.mean_abs_err_pct - 10.0).abs() < 1e-6);
        let small01 = report
            .rows
            .iter()
            .find(|r| r.pair == "gpu0->gpu1" && r.size_class == "[4MiB,8MiB)")
            .expect("bucket exists");
        assert_eq!(small01.mean_abs_err_pct, 0.0);
        // Overall mean |error| = (10% + 0% + 10%) / 3.
        assert!((t.mean_abs_error() - 0.1 * 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.count(), 3);
    }

    #[test]
    fn pair_stats_pool_size_classes() {
        let t = ResidualTracker::new();
        t.record("a->b", 1 << 20, 1.05, 1.0);
        t.record("a->b", 1 << 24, 1.15, 1.0);
        t.record("a->b", 1 << 26, 1.10, 1.0);
        let s = t.pair_stats("a->b").expect("observed pair");
        assert_eq!(s.count, 3);
        assert!((s.mean_abs_pct - 10.0).abs() < 1e-6);
        assert!((s.p50_abs_pct - 10.0).abs() < 1e-6);
        assert!(t.pair_stats("c->d").is_none());
    }

    #[test]
    fn degenerate_measurements_ignored() {
        let t = ResidualTracker::new();
        t.record("a->b", 100, 1.0, 0.0);
        t.record("a->b", 100, f64::NAN, 1.0);
        t.record("a->b", 100, 1.0, f64::INFINITY);
        assert_eq!(t.count(), 0);
        assert!(t.report().rows.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let t = ResidualTracker::new();
        t.record("gpu0->gpu1", 8 << 20, 2.0e-3, 2.1e-3);
        let report = t.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: ResidualReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn size_class_labels() {
        assert_eq!(class_label(size_class(4 << 20)), "[4MiB,8MiB)");
        assert_eq!(class_label(size_class((4 << 20) + 1)), "[4MiB,8MiB)");
        assert_eq!(class_label(size_class(1024)), "[1KiB,2KiB)");
        assert_eq!(class_label(size_class(0)), "[1B,2B)");
        assert_eq!(class_label(size_class(3)), "[2B,4B)");
    }

    #[test]
    fn render_contains_header_and_rows() {
        let t = ResidualTracker::new();
        t.record("gpu0->gpu1", 64 << 20, 1.0e-3, 1.0e-3);
        let text = t.report().render();
        assert!(text.contains("pair"));
        assert!(text.contains("gpu0->gpu1"));
        assert!(text.contains("[64MiB,128MiB)"));
    }
}
