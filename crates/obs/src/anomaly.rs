//! The anomaly engine: declarative triggers over the stack's existing
//! failure signals, each firing a self-contained **black-box dump** —
//! flight-recorder ring snapshot + metrics snapshot + trigger cause +
//! residual report — rate-limited per trigger class.
//!
//! Producers stay dumb: the UCX context, broker, and parallel scenario
//! runner call [`AnomalyEngine::signal`] at the places they already
//! detect trouble (a breaker transition, a `TransferError::Stuck`, a
//! deadline miss, a shed-regime entry, a partition rebalance, a drift
//! invalidation). The engine decides whether the signal crosses a
//! trigger threshold (burst classes accumulate over a sliding
//! virtual-time window), applies the per-class rate limit, and on
//! firing freezes everything an incident review needs into a
//! [`BlackBoxDump`] — retained in memory and, when a dump directory is
//! configured, written as JSON (`mpx report` renders these).

use crate::registry::MetricsSnapshot;
use crate::residual::ResidualReport;
use crate::ring::FlightRecorder;
use crate::span::Event;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The trigger classes the stack feeds. Burst classes
/// ([`TriggerClass::DeadlineMissBurst`], [`TriggerClass::RebalanceStorm`])
/// fire only when enough signals land inside a sliding window; the rest
/// fire on every (rate-limit-permitting) signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TriggerClass {
    /// A path circuit breaker tripped Closed → Open.
    BreakerTrip,
    /// A breaker re-tripped out of HalfOpen (the probe failed).
    BreakerRetrip,
    /// A transfer returned `TransferError::Stuck`.
    StuckTransfer,
    /// Recovery deadline misses clustered inside the burst window.
    DeadlineMissBurst,
    /// The broker entered the Shedding (or Drain) load regime.
    ShedRegime,
    /// Partition rebalances clustered inside the storm window.
    RebalanceStorm,
    /// A residual-drift cache invalidation (model no longer tracks the
    /// fabric).
    ResidualDrift,
}

impl TriggerClass {
    /// Every class, in severity-agnostic declaration order.
    pub const ALL: [TriggerClass; 7] = [
        TriggerClass::BreakerTrip,
        TriggerClass::BreakerRetrip,
        TriggerClass::StuckTransfer,
        TriggerClass::DeadlineMissBurst,
        TriggerClass::ShedRegime,
        TriggerClass::RebalanceStorm,
        TriggerClass::ResidualDrift,
    ];

    /// Stable label — the `trigger` field of a dump and the string CI
    /// greps for.
    pub fn label(self) -> &'static str {
        match self {
            TriggerClass::BreakerTrip => "breaker.trip",
            TriggerClass::BreakerRetrip => "breaker.retrip",
            TriggerClass::StuckTransfer => "transfer.stuck",
            TriggerClass::DeadlineMissBurst => "deadline.miss-burst",
            TriggerClass::ShedRegime => "shed.regime",
            TriggerClass::RebalanceStorm => "partition.rebalance-storm",
            TriggerClass::ResidualDrift => "residual.drift",
        }
    }

    fn index(self) -> usize {
        TriggerClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL")
    }
}

/// Trigger thresholds, rate limits, and dump sizing. Times are virtual
/// seconds — the same clock every recorded event carries.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Minimum virtual time between two dumps of the same class;
    /// signals inside the window are counted as suppressed.
    pub min_interval_secs: f64,
    /// Deadline misses needed within `deadline_window_secs` to fire.
    pub deadline_burst: u32,
    /// Sliding window for the deadline-miss burst.
    pub deadline_window_secs: f64,
    /// Rebalances needed within `storm_window_secs` to fire.
    pub rebalance_storm: u32,
    /// Sliding window for the rebalance storm.
    pub storm_window_secs: f64,
    /// How much trailing ring history a dump embeds, virtual seconds.
    pub ring_window_secs: f64,
    /// Hard cap on events embedded per dump (newest kept).
    pub max_dump_events: usize,
    /// When set, every dump is also written as
    /// `<dir>/dump-<seq>-<class>.json`.
    pub dump_dir: Option<PathBuf>,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            min_interval_secs: 1.0,
            deadline_burst: 3,
            deadline_window_secs: 0.5,
            rebalance_storm: 8,
            storm_window_secs: 1.0,
            ring_window_secs: 5.0,
            max_dump_events: 4096,
            dump_dir: None,
        }
    }
}

/// A self-contained incident record: everything needed to understand
/// one anomaly without the process that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackBoxDump {
    /// Dump sequence number within this engine (0-based).
    pub seq: u64,
    /// Trigger class label (see [`TriggerClass::label`]).
    pub trigger: String,
    /// Virtual time the trigger fired.
    pub at: f64,
    /// Communication pair involved, when the signal carried one.
    pub pair: Option<String>,
    /// Path index involved, when the signal carried one.
    pub path: Option<usize>,
    /// The producer's cause string (e.g. the breaker's `why`).
    pub cause: String,
    /// Ring overwrite count at dump time (how much history was lost).
    pub overwritten: u64,
    /// Flight-recorder snapshot: the last `ring_window_secs` of events.
    pub events: Vec<Event>,
    /// Metrics registry snapshot at dump time.
    pub metrics: MetricsSnapshot,
    /// Residual (predicted-vs-measured) report at dump time.
    pub residuals: ResidualReport,
}

impl BlackBoxDump {
    /// Renders the dump as a human-readable incident timeline — what
    /// tripped, on which pair/path, what the model predicted vs.
    /// measured, and the events leading up to it.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== black-box dump #{}: {} @ {:.6}s ==\n",
            self.seq, self.trigger, self.at
        ));
        match (&self.pair, self.path) {
            (Some(p), Some(i)) => out.push_str(&format!("pair:  {p} (path {i})\n")),
            (Some(p), None) => out.push_str(&format!("pair:  {p}\n")),
            _ => {}
        }
        out.push_str(&format!("cause: {}\n", self.cause));
        if self.overwritten > 0 {
            out.push_str(&format!(
                "note:  ring overwrote {} older events before this dump\n",
                self.overwritten
            ));
        }
        out.push_str(&format!("\ntimeline ({} events):\n", self.events.len()));
        for ev in &self.events {
            let (shape, dur) = match ev {
                Event::Span(s) => ("span", format!(" dur={:.1}us", (s.end - s.start) * 1e6)),
                Event::Instant(_) => ("inst", String::new()),
            };
            let detail = match ev {
                Event::Span(s) => &s.detail,
                Event::Instant(i) => &i.detail,
            };
            out.push_str(&format!(
                "  [{:>12.6}s] {shape} {:<13} {:<20} {}{}{}\n",
                ev.at(),
                ev.phase().label(),
                ev.track(),
                ev.name(),
                if detail.is_empty() { "" } else { " — " },
                if detail.is_empty() {
                    String::new()
                } else {
                    format!("{detail}{dur}")
                },
            ));
        }
        out.push_str(&format!(
            "\nmetrics ({} rows):\n",
            self.metrics.entries.len()
        ));
        for e in &self.metrics.entries {
            out.push_str(&format!("  {:<44} {}\n", e.name, e.value));
        }
        if !self.residuals.rows.is_empty() {
            out.push_str("\npredicted vs measured (residual table):\n");
            out.push_str(&self.residuals.render());
        }
        out
    }
}

/// Per-class trigger bookkeeping.
#[derive(Default)]
struct ClassState {
    last_fire: Option<f64>,
    /// Signal timestamps inside the sliding window (burst classes).
    window: Vec<f64>,
    fired: u64,
    suppressed: u64,
}

/// Snapshot of one class's counters (see [`AnomalyEngine::class_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerStats {
    /// The class.
    pub class: TriggerClass,
    /// Dumps fired.
    pub fired: u64,
    /// Signals swallowed by the rate limit.
    pub suppressed: u64,
}

type SnapshotFn<T> = Box<dyn Fn() -> T + Send + Sync>;

/// The always-on anomaly engine. Shared behind an `Arc` by every
/// producer that can detect trouble.
pub struct AnomalyEngine {
    cfg: AnomalyConfig,
    recorder: FlightRecorder,
    metrics_source: Mutex<Option<SnapshotFn<MetricsSnapshot>>>,
    residual_source: Mutex<Option<SnapshotFn<ResidualReport>>>,
    state: Mutex<Vec<ClassState>>,
    dumps: Mutex<Vec<BlackBoxDump>>,
    write_failures: AtomicU64,
}

impl AnomalyEngine {
    /// An engine snapshotting `recorder` on every dump.
    pub fn new(recorder: FlightRecorder, cfg: AnomalyConfig) -> AnomalyEngine {
        AnomalyEngine {
            cfg,
            recorder,
            metrics_source: Mutex::new(None),
            residual_source: Mutex::new(None),
            state: Mutex::new(
                TriggerClass::ALL
                    .iter()
                    .map(|_| ClassState::default())
                    .collect(),
            ),
            dumps: Mutex::new(Vec::new()),
            write_failures: AtomicU64::new(0),
        }
    }

    /// Installs the callback that freezes a metrics snapshot into each
    /// dump (typically a closure running the stack's `fill_registry`
    /// mirrors against a private registry).
    pub fn set_metrics_source(&self, f: impl Fn() -> MetricsSnapshot + Send + Sync + 'static) {
        *self.metrics_source.lock() = Some(Box::new(f));
    }

    /// Installs the callback that freezes the residual report into each
    /// dump.
    pub fn set_residual_source(&self, f: impl Fn() -> ResidualReport + Send + Sync + 'static) {
        *self.residual_source.lock() = Some(Box::new(f));
    }

    /// The flight recorder this engine snapshots.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Feeds one signal. `at` is virtual seconds; `pair`/`path`
    /// identify the blamed endpoint when the producer knows it; `cause`
    /// is the producer's own diagnostic string. Returns the dump
    /// sequence number when the signal fired a dump.
    pub fn signal(
        &self,
        class: TriggerClass,
        at: f64,
        pair: Option<&str>,
        path: Option<usize>,
        cause: &str,
    ) -> Option<u64> {
        let fire = {
            let mut state = self.state.lock();
            let st = &mut state[class.index()];
            let crossed = match class {
                TriggerClass::DeadlineMissBurst => burst_crossed(
                    st,
                    at,
                    self.cfg.deadline_burst,
                    self.cfg.deadline_window_secs,
                ),
                TriggerClass::RebalanceStorm => {
                    burst_crossed(st, at, self.cfg.rebalance_storm, self.cfg.storm_window_secs)
                }
                _ => true,
            };
            if !crossed {
                return None;
            }
            // Rate limit per class, in virtual time.
            if let Some(last) = st.last_fire {
                if at - last < self.cfg.min_interval_secs {
                    st.suppressed += 1;
                    return None;
                }
            }
            st.last_fire = Some(at);
            st.fired += 1;
            true
        };
        debug_assert!(fire);
        Some(self.fire(class, at, pair, path, cause))
    }

    fn fire(
        &self,
        class: TriggerClass,
        at: f64,
        pair: Option<&str>,
        path: Option<usize>,
        cause: &str,
    ) -> u64 {
        let mut events = self.recorder.snapshot_last(self.cfg.ring_window_secs);
        if events.len() > self.cfg.max_dump_events {
            let drop = events.len() - self.cfg.max_dump_events;
            events.drain(..drop);
        }
        let metrics = match &*self.metrics_source.lock() {
            Some(f) => f(),
            None => MetricsSnapshot {
                entries: Vec::new(),
            },
        };
        let residuals = match &*self.residual_source.lock() {
            Some(f) => f(),
            None => ResidualReport { rows: Vec::new() },
        };
        let mut dumps = self.dumps.lock();
        let seq = dumps.len() as u64;
        let dump = BlackBoxDump {
            seq,
            trigger: class.label().to_string(),
            at,
            pair: pair.map(str::to_string),
            path,
            cause: cause.to_string(),
            overwritten: self.recorder.overwritten(),
            events,
            metrics,
            residuals,
        };
        if let Some(dir) = &self.cfg.dump_dir {
            let file = dir.join(format!(
                "dump-{seq:04}-{}.json",
                class.label().replace('.', "_")
            ));
            let ok = std::fs::create_dir_all(dir).is_ok()
                && serde_json::to_string_pretty(&dump)
                    .ok()
                    .and_then(|json| std::fs::write(&file, json).ok())
                    .is_some();
            if !ok {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        dumps.push(dump);
        seq
    }

    /// Every dump fired so far, in firing order.
    pub fn dumps(&self) -> Vec<BlackBoxDump> {
        self.dumps.lock().clone()
    }

    /// Total dumps fired.
    pub fn fired(&self) -> u64 {
        self.dumps.lock().len() as u64
    }

    /// Per-class fired/suppressed counters.
    pub fn class_stats(&self) -> Vec<TriggerStats> {
        let state = self.state.lock();
        TriggerClass::ALL
            .iter()
            .map(|&class| {
                let st = &state[class.index()];
                TriggerStats {
                    class,
                    fired: st.fired,
                    suppressed: st.suppressed,
                }
            })
            .collect()
    }

    /// Dump files that failed to write (permission/disk trouble never
    /// propagates into the instrumented workload).
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }
}

/// Sliding-window burst detection: records the signal, evicts entries
/// older than `window`, and reports whether the threshold is met (the
/// window is cleared on a crossing so one burst fires once).
fn burst_crossed(st: &mut ClassState, at: f64, threshold: u32, window: f64) -> bool {
    st.window.push(at);
    st.window.retain(|&t| at - t <= window);
    if st.window.len() >= threshold as usize {
        st.window.clear();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;
    use crate::TelemetryRegistry;

    fn engine(cfg: AnomalyConfig) -> AnomalyEngine {
        AnomalyEngine::new(FlightRecorder::new(128), cfg)
    }

    #[test]
    fn immediate_classes_fire_and_rate_limit() {
        let eng = engine(AnomalyConfig::default());
        assert_eq!(
            eng.signal(
                TriggerClass::BreakerTrip,
                1.0,
                Some("gpu0->gpu1"),
                Some(2),
                "kill"
            ),
            Some(0)
        );
        // Inside the 1s rate-limit window: suppressed.
        assert_eq!(
            eng.signal(
                TriggerClass::BreakerTrip,
                1.5,
                Some("gpu0->gpu1"),
                Some(2),
                "kill"
            ),
            None
        );
        // A different class has its own limiter.
        assert_eq!(
            eng.signal(TriggerClass::StuckTransfer, 1.5, None, None, "stuck"),
            Some(1)
        );
        // Past the window: fires again.
        assert_eq!(
            eng.signal(TriggerClass::BreakerTrip, 2.1, None, None, "kill"),
            Some(2)
        );
        let stats = eng.class_stats();
        let trip = stats
            .iter()
            .find(|s| s.class == TriggerClass::BreakerTrip)
            .unwrap();
        assert_eq!((trip.fired, trip.suppressed), (2, 1));
        assert_eq!(eng.fired(), 3);
    }

    #[test]
    fn burst_classes_need_a_cluster() {
        let cfg = AnomalyConfig {
            deadline_burst: 3,
            deadline_window_secs: 0.5,
            ..AnomalyConfig::default()
        };
        let eng = engine(cfg);
        let sig = |at| eng.signal(TriggerClass::DeadlineMissBurst, at, None, None, "miss");
        assert_eq!(sig(0.0), None);
        assert_eq!(sig(0.2), None);
        // Third miss inside the window: fires.
        assert_eq!(sig(0.4), Some(0));
        // Window cleared; sparse misses never re-fire.
        assert_eq!(sig(3.0), None);
        assert_eq!(sig(4.0), None);
        assert_eq!(sig(5.0), None);
        assert_eq!(eng.fired(), 1);
    }

    #[test]
    fn dump_embeds_ring_metrics_and_residuals() {
        let eng = engine(AnomalyConfig::default());
        let rec = eng.flight_recorder().recorder();
        rec.instant(Phase::Health, "pair:a->b", "breaker.trip", 0.9, "path=1");
        rec.instant(Phase::Fault, "fabric", "kill", 0.95, "link 3");

        let reg = TelemetryRegistry::new();
        reg.set_counter("health.trips", 1);
        eng.set_metrics_source(move || reg.snapshot());
        let residuals = std::sync::Arc::new(crate::ResidualTracker::new());
        residuals.record("a->b", 1 << 20, 1.0e-3, 1.2e-3);
        let rsrc = residuals.clone();
        eng.set_residual_source(move || rsrc.report());

        eng.signal(
            TriggerClass::BreakerTrip,
            1.0,
            Some("a->b"),
            Some(1),
            "why=kill",
        );
        let dumps = eng.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.trigger, "breaker.trip");
        assert_eq!(d.pair.as_deref(), Some("a->b"));
        assert_eq!(d.path, Some(1));
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.metrics.get("health.trips"), Some(1.0));
        assert_eq!(d.residuals.rows.len(), 1);
        // Timeline renders every section.
        let text = d.render_timeline();
        assert!(text.contains("breaker.trip"));
        assert!(text.contains("pair:  a->b (path 1)"));
        assert!(text.contains("health.trips"));
        assert!(text.contains("a->b"));
        // And the dump round-trips through JSON (the on-disk format).
        let json = serde_json::to_string(d).unwrap();
        let back: BlackBoxDump = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, d);
    }

    #[test]
    fn dumps_write_to_the_configured_directory() {
        let dir = std::env::temp_dir().join(format!("mpx-anomaly-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = AnomalyConfig {
            dump_dir: Some(dir.clone()),
            ..AnomalyConfig::default()
        };
        let eng = engine(cfg);
        eng.signal(TriggerClass::ShedRegime, 0.5, None, None, "occupancy=0.97");
        assert_eq!(eng.write_failures(), 0);
        let file = dir.join("dump-0000-shed_regime.json");
        let text = std::fs::read_to_string(&file).expect("dump written");
        let back: BlackBoxDump = serde_json::from_str(&text).expect("dump parses");
        assert_eq!(back.trigger, "shed.regime");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_window_bounds_dump_size() {
        let cfg = AnomalyConfig {
            ring_window_secs: 1.0,
            max_dump_events: 3,
            ..AnomalyConfig::default()
        };
        let eng = engine(cfg);
        let rec = eng.flight_recorder().recorder();
        for i in 0..20 {
            rec.instant(Phase::Broker, "broker", format!("e{i}"), i as f64 * 0.1, "");
        }
        eng.signal(TriggerClass::ShedRegime, 1.9, None, None, "x");
        let d = &eng.dumps()[0];
        // Window keeps ts >= 0.9 (11 events), cap keeps the newest 3.
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.events[0].name(), "e17");
    }
}
