//! The always-on flight recorder: a [`Recorder`] in ring mode plus the
//! snapshot API anomaly dumps and incident reports consume.
//!
//! A [`FlightRecorder`] wraps a fixed-capacity-per-thread [`Recorder`]
//! (see [`Recorder::with_capacity`]), so it installs anywhere a plain
//! recorder does — `Engine::set_recorder`, `UcxContext`, the broker —
//! while guaranteeing bounded memory no matter how long the process
//! runs: once a thread's ring fills, the oldest event is overwritten
//! and counted. [`FlightRecorder::snapshot`] clones the rings without
//! stopping recording; [`FlightRecorder::snapshot_last`] trims that to
//! the trailing window of virtual time — "the last N seconds before
//! the anomaly".

use crate::span::{Event, Recorder};

/// Default per-thread ring capacity: generous enough to hold several
/// seconds of the busiest instrumented workloads, small enough
/// (~hundreds of KB per thread) to leave always-on.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// An always-on, bounded-memory telemetry recorder.
#[derive(Clone)]
pub struct FlightRecorder {
    rec: Recorder,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// A flight recorder keeping the newest `capacity_per_thread`
    /// events per recording thread.
    ///
    /// # Panics
    /// Panics on a zero capacity.
    pub fn new(capacity_per_thread: usize) -> FlightRecorder {
        FlightRecorder {
            rec: Recorder::with_capacity(capacity_per_thread),
        }
    }

    /// The underlying recorder handle — install this into engines,
    /// contexts, and brokers exactly like a drain-style recorder.
    pub fn recorder(&self) -> Recorder {
        self.rec.clone()
    }

    /// Events lost to ring overwrites so far.
    pub fn overwritten(&self) -> u64 {
        self.rec.overwritten()
    }

    /// Total events recorded (overwritten ones included).
    pub fn events_recorded(&self) -> u64 {
        self.rec.events_recorded()
    }

    /// The surviving ring contents in canonical `(ts, phase, name)`
    /// order, without stopping or consuming anything.
    pub fn snapshot(&self) -> Vec<Event> {
        self.rec.snapshot()
    }

    /// The surviving events from the trailing `window_secs` of virtual
    /// time (measured back from the newest buffered timestamp), without
    /// stopping or consuming anything.
    pub fn snapshot_last(&self, window_secs: f64) -> Vec<Event> {
        let events = self.rec.snapshot();
        let Some(latest) = events.last().map(|e| e.at()) else {
            return events;
        };
        let cutoff = latest - window_secs.max(0.0);
        events.into_iter().filter(|e| e.at() >= cutoff).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    #[test]
    fn installs_like_a_plain_recorder_and_bounds_memory() {
        let fr = FlightRecorder::new(16);
        let rec = fr.recorder();
        for i in 0..100 {
            rec.instant(Phase::Plan, "t", format!("p{i}"), i as f64, "");
        }
        assert_eq!(fr.events_recorded(), 100);
        assert_eq!(fr.overwritten(), 84);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 16);
        assert_eq!(snap.first().unwrap().name(), "p84");
        assert_eq!(snap.last().unwrap().name(), "p99");
        // Snapshots do not consume: the ring still holds everything.
        assert_eq!(fr.snapshot().len(), 16);
    }

    #[test]
    fn snapshot_last_trims_to_the_trailing_window() {
        let fr = FlightRecorder::new(64);
        let rec = fr.recorder();
        for i in 0..10 {
            rec.instant(Phase::Transfer, "t", format!("e{i}"), i as f64, "");
        }
        let last3 = fr.snapshot_last(3.0);
        let names: Vec<&str> = last3.iter().map(|e| e.name()).collect();
        // Window is inclusive of the cutoff: ts in [6.0, 9.0].
        assert_eq!(names, ["e6", "e7", "e8", "e9"]);
        assert!(fr.snapshot_last(f64::INFINITY).len() == 10);
        assert!(FlightRecorder::default().snapshot_last(1.0).is_empty());
    }
}
