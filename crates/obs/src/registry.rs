//! A unified metrics registry: the single machine-readable surface behind
//! `SimStats`, `ResilienceStats`, and `CacheStats`, which grew as
//! disjoint ad-hoc snapshots. Producers write named counters, gauges, and
//! histograms; [`TelemetryRegistry::snapshot`] flattens everything into a
//! serializable [`MetricsSnapshot`] (the payload of `mpx metrics` and the
//! `--json` CLI flags).

use crate::hist::QuantileHist;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(QuantileHist),
}

/// Named-metric registry. Cheap to share behind an `Arc`; every method
/// takes `&self`.
#[derive(Default)]
pub struct TelemetryRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> TelemetryRegistry {
        TelemetryRegistry::default()
    }

    /// Sets a counter to an absolute value (the common case here:
    /// mirroring an already-aggregated stats snapshot).
    pub fn set_counter(&self, name: impl Into<String>, value: u64) {
        self.metrics
            .lock()
            .insert(name.into(), Metric::Counter(value));
    }

    /// Adds to a counter (creates it at zero first).
    pub fn inc_counter(&self, name: impl Into<String>, delta: u64) {
        let mut m = self.metrics.lock();
        match m.entry(name.into()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => *other = Metric::Counter(delta),
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: impl Into<String>, value: f64) {
        self.metrics
            .lock()
            .insert(name.into(), Metric::Gauge(value));
    }

    /// Adds one observation to a quantile histogram (creates it when
    /// absent). Histograms are log-bucketed ([`QuantileHist`]): ~5%
    /// relative-error quantiles at fixed memory, regardless of how many
    /// observations a long-running process feeds in.
    pub fn observe(&self, name: impl Into<String>, value: f64) {
        let mut m = self.metrics.lock();
        let h = match m
            .entry(name.into())
            .or_insert_with(|| Metric::Histogram(QuantileHist::new()))
        {
            Metric::Histogram(h) => h,
            other => {
                *other = Metric::Histogram(QuantileHist::new());
                match other {
                    Metric::Histogram(h) => h,
                    _ => unreachable!(),
                }
            }
        };
        h.observe(value);
    }

    /// Publishes a snapshot of an externally maintained histogram under
    /// `name`, replacing any previous value — the histogram analogue of
    /// [`TelemetryRegistry::set_counter`], used by `fill_registry`-style
    /// mirrors whose source histograms live on hot paths.
    pub fn set_hist(&self, name: impl Into<String>, hist: &QuantileHist) {
        self.metrics
            .lock()
            .insert(name.into(), Metric::Histogram(hist.clone()));
    }

    /// Flattens the registry into a serializable snapshot with entries
    /// sorted by name. Counters and gauges become one entry each; a
    /// histogram expands into `name.count` / `name.sum` / `name.mean` /
    /// `name.min` / `name.max` plus the quantile rows `name.p50` /
    /// `name.p90` / `name.p99` / `name.p999`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        let mut entries = Vec::with_capacity(m.len());
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(v) => entries.push(MetricEntry {
                    name: name.clone(),
                    kind: "counter".into(),
                    value: *v as f64,
                }),
                Metric::Gauge(v) => entries.push(MetricEntry {
                    name: name.clone(),
                    kind: "gauge".into(),
                    value: *v,
                }),
                Metric::Histogram(h) => {
                    for (suffix, v) in [
                        ("count", h.count() as f64),
                        ("sum", h.sum()),
                        ("mean", h.mean()),
                        ("min", h.min()),
                        ("max", h.max()),
                        ("p50", h.quantile(0.5)),
                        ("p90", h.quantile(0.9)),
                        ("p99", h.quantile(0.99)),
                        ("p999", h.quantile(0.999)),
                    ] {
                        entries.push(MetricEntry {
                            name: format!("{name}.{suffix}"),
                            kind: "histogram".into(),
                            value: v,
                        });
                    }
                }
            }
        }
        // Deterministic row order: histogram expansion would otherwise
        // interleave suffixes out of lexicographic order, making
        // snapshot diffs (and the OpenMetrics text) unstable.
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }

    /// A point-in-time clone of every metric, for the OpenMetrics
    /// exporter (which needs raw bucket data, not the flattened rows).
    pub(crate) fn export(&self) -> Vec<(String, Metric)> {
        self.metrics
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// One flattened metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    /// Dotted metric name, e.g. `sim.flows_completed`.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// The value (counters widen to f64).
    pub value: f64,
}

/// A flat, serializable view of a [`TelemetryRegistry`] — the schema
/// shared by `mpx metrics`, `mpx trace --metrics-out`, and the `--json`
/// flags on `plan`/`resilient`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_flatten() {
        let reg = TelemetryRegistry::new();
        reg.set_counter("sim.flows_completed", 42);
        reg.inc_counter("ucx.replans", 1);
        reg.inc_counter("ucx.replans", 2);
        reg.set_gauge("sim.now_secs", 1.25);
        reg.observe("residual.abs_pct", 4.0);
        reg.observe("residual.abs_pct", 8.0);
        let snap = reg.snapshot();
        assert_eq!(snap.get("sim.flows_completed"), Some(42.0));
        assert_eq!(snap.get("ucx.replans"), Some(3.0));
        assert_eq!(snap.get("sim.now_secs"), Some(1.25));
        assert_eq!(snap.get("residual.abs_pct.count"), Some(2.0));
        assert_eq!(snap.get("residual.abs_pct.mean"), Some(6.0));
        assert_eq!(snap.get("residual.abs_pct.min"), Some(4.0));
        assert_eq!(snap.get("residual.abs_pct.max"), Some(8.0));
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn snapshot_entries_sorted_by_name() {
        let reg = TelemetryRegistry::new();
        reg.set_counter("z.last", 1);
        reg.set_counter("a.first", 1);
        // Histogram expansion must not break lexicographic order (its
        // suffix rows interleave with neighbouring keys).
        reg.observe("m.latency", 1.0);
        reg.set_counter("m.latency.aaa", 7);
        reg.set_counter("m.latency.zzz", 8);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn histograms_surface_quantiles() {
        let reg = TelemetryRegistry::new();
        for i in 1..=1000 {
            reg.observe("xfer.latency", i as f64 * 1e-6);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.get("xfer.latency.count"), Some(1000.0));
        for (q, expect) in [
            ("p50", 500e-6),
            ("p90", 900e-6),
            ("p99", 990e-6),
            ("p999", 999e-6),
        ] {
            let got = snap.get(&format!("xfer.latency.{q}")).expect(q);
            assert!(
                (got - expect).abs() <= 0.05 * expect,
                "{q}: got {got}, want ~{expect}"
            );
        }
    }

    #[test]
    fn set_hist_publishes_external_histograms() {
        let reg = TelemetryRegistry::new();
        let h = crate::hist::QuantileHist::new();
        h.observe(2.0);
        h.observe(4.0);
        reg.set_hist("broker.sojourn", &h);
        let snap = reg.snapshot();
        assert_eq!(snap.get("broker.sojourn.count"), Some(2.0));
        assert_eq!(snap.get("broker.sojourn.sum"), Some(6.0));
        // Replacement, not accumulation.
        reg.set_hist("broker.sojourn", &h);
        assert_eq!(reg.snapshot().get("broker.sojourn.count"), Some(2.0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = TelemetryRegistry::new();
        reg.set_counter("c", 7);
        reg.set_gauge("g", 0.5);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
