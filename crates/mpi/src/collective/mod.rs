//! UCC-style collective operations built from non-blocking P2P steps,
//! exactly as the paper's evaluation stack does (Section 5.3): every
//! transfer inside a collective goes through the UCX context, so enabling
//! multi-path transport accelerates the collectives with no algorithm
//! changes.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod knomial;
pub mod reduce;
pub mod selector;

pub use allgather::{allgather_recursive_doubling, allgather_ring};
pub use allreduce::{allreduce_rabenseifner, allreduce_ring};
pub use alltoall::{alltoall_bruck, alltoall_pairwise};
pub use bcast::{bcast_binomial, gather_linear, scatter_linear, scatter_linear_inplace};
pub use knomial::{allreduce_knomial, bcast_scatter_allgather};
pub use reduce::{reduce_binomial, reduce_scatter_ring};
pub use selector::{
    allreduce, alltoall, bcast, select_allreduce, select_alltoall, select_bcast, AllreduceChoice,
    AlltoallChoice, BcastChoice,
};
