//! Rooted reduction (MPI_Reduce, binomial tree) and reduce-scatter
//! (MPI_Reduce_scatter_block, ring) — the remaining reduction-family
//! collectives.

use crate::world::Rank;
use mpx_gpu::{Buffer, ReduceOp};

const TAG: u64 = 1 << 58;

/// Binomial-tree reduce of `buf[..n]` toward `root`. On exit `root`'s
/// buffer holds the element-wise reduction of every rank's input; other
/// ranks' buffers hold partial sums (as in MPI, their contents are
/// unspecified).
pub fn reduce_binomial(r: &Rank, buf: &Buffer, n: usize, op: ReduceOp, root: usize) {
    let p = r.size;
    if p == 1 {
        return;
    }
    assert!(root < p, "root {root} out of range");
    let vrank = (r.rank + p - root) % p;
    let tmp = r.scratch(n, !buf.is_synthetic(), 0);
    // Children send up the tree; parents absorb with a reduction kernel.
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let parent = ((vrank & !mask) + root) % p;
            r.send(buf, n, parent, TAG + mask as u64);
            return;
        }
        let child_v = vrank | mask;
        if child_v < p {
            let child = (child_v + root) % p;
            r.recv(&tmp, n, Some(child), Some(TAG + mask as u64));
            r.reduce_local(op, &tmp, 0, buf, 0, n);
        }
        mask <<= 1;
    }
}

/// Ring reduce-scatter: every rank contributes `size` blocks of `block`
/// bytes in `buf`; on exit rank `i` owns the fully reduced block `i`
/// (at offset `i·block`), matching MPI_Reduce_scatter_block semantics.
pub fn reduce_scatter_ring(r: &Rank, buf: &Buffer, block: usize, op: ReduceOp) {
    let p = r.size;
    if p == 1 {
        return;
    }
    assert!(buf.len() >= p * block, "buffer smaller than size*block");
    assert_eq!(block % 4, 0, "f32 blocks need 4-byte alignment");
    let tmp = r.scratch(block, !buf.is_synthetic(), 0);
    let right = (r.rank + 1) % p;
    let left = (r.rank + p - 1) % p;
    // Standard ring: after p−1 steps rank owns block (rank+1) mod p…
    for s in 0..p - 1 {
        let send_block = (r.rank + p - s) % p;
        let recv_block = (r.rank + p - s - 1) % p;
        r.sendrecv(
            buf,
            send_block * block,
            block,
            right,
            &tmp,
            0,
            block,
            left,
            TAG + (1 << 12) + s as u64,
        );
        r.reduce_local(op, &tmp, 0, buf, recv_block * block, block);
    }
    // …then one rotation step moves it home: block (rank+1) belongs to
    // the right neighbour, and my own block arrives from the left.
    let owned = (r.rank + 1) % p;
    r.sendrecv(
        buf,
        owned * block,
        block,
        right,
        buf,
        r.rank * block,
        block,
        left,
        TAG + (1 << 13),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_gpu::reduce::{bytes_f32, f32_bytes};
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    fn world() -> World {
        World::new(Arc::new(presets::beluga()), UcxConfig::default())
    }

    #[test]
    fn reduce_collects_sum_at_root() {
        for root in 0..4 {
            let w = world();
            let out = w.run(4, move |r| {
                let vals = vec![(r.rank + 1) as f32; 64];
                let buf = r.alloc_bytes(f32_bytes(&vals));
                reduce_binomial(&r, &buf, 256, ReduceOp::Sum, root);
                (r.rank, bytes_f32(&buf.to_vec().unwrap()))
            });
            let (_, root_vals) = out.iter().find(|(rk, _)| *rk == root).unwrap();
            assert!(
                root_vals.iter().all(|&v| v == 10.0),
                "root {root}: {:?}",
                &root_vals[..4]
            );
        }
    }

    #[test]
    fn reduce_three_ranks() {
        let w = world();
        let out = w.run(3, |r| {
            let buf = r.alloc_bytes(f32_bytes(&[r.rank as f32 + 1.0; 8]));
            reduce_binomial(&r, &buf, 32, ReduceOp::Sum, 0);
            bytes_f32(&buf.to_vec().unwrap())
        });
        assert!(out[0].iter().all(|&v| v == 6.0), "{:?}", out[0]);
    }

    #[test]
    fn reduce_max_at_root() {
        let w = world();
        let out = w.run(4, |r| {
            let buf = r.alloc_bytes(f32_bytes(&[r.rank as f32, -(r.rank as f32)]));
            reduce_binomial(&r, &buf, 8, ReduceOp::Max, 0);
            bytes_f32(&buf.to_vec().unwrap())
        });
        assert_eq!(out[0], vec![3.0, 0.0]);
    }

    #[test]
    fn reduce_scatter_owns_correct_blocks() {
        let w = world();
        let block = 1 << 10;
        let out = w.run(4, move |r| {
            // Block j holds the value (rank+1)·(j+1) in every element.
            let data: Vec<f32> = (0..4)
                .flat_map(|j| vec![(r.rank + 1) as f32 * (j + 1) as f32; block / 4])
                .collect();
            let buf = r.alloc_bytes(f32_bytes(&data));
            reduce_scatter_ring(&r, &buf, block, ReduceOp::Sum);
            let mine = bytes_f32(&buf.read(r.rank * block, block).unwrap());
            (r.rank, mine)
        });
        // Sum over ranks of (rank+1)·(j+1) = 10·(j+1) for block j.
        for (rank, mine) in &out {
            let want = 10.0 * (*rank as f32 + 1.0);
            assert!(
                mine.iter().all(|&v| v == want),
                "rank {rank}: got {:?} want {want}",
                &mine[..2]
            );
        }
    }

    #[test]
    fn reduce_scatter_matches_allreduce_prefix() {
        // reduce_scatter of blocks == the corresponding slice of a full
        // allreduce.
        let block = 512usize;
        let w1 = world();
        let rs = w1.run(4, move |r| {
            let vals: Vec<f32> = (0..block).map(|i| (r.rank * block + i) as f32).collect();
            let buf = r.alloc_bytes(f32_bytes(&vals));
            reduce_scatter_ring(&r, &buf, block, ReduceOp::Sum);
            bytes_f32(&buf.read(r.rank * block, block).unwrap())
        });
        let w2 = world();
        let ar = w2.run(4, move |r| {
            let vals: Vec<f32> = (0..block).map(|i| (r.rank * block + i) as f32).collect();
            let buf = r.alloc_bytes(f32_bytes(&vals));
            crate::collective::allreduce_rabenseifner(&r, &buf, block * 4, ReduceOp::Sum);
            bytes_f32(&buf.to_vec().unwrap())
        });
        for rank in 0..4 {
            let slice = &ar[rank][rank * block / 4..(rank + 1) * block / 4];
            assert_eq!(&rs[rank][..], slice, "rank {rank}");
        }
    }
}
