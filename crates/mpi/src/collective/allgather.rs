//! Allgather algorithms: recursive doubling (the K-nomial allgather phase
//! of UCP's large-message allreduce) and a ring baseline.

use crate::world::Rank;

/// Recursive-doubling allgather over a power-of-two world.
///
/// `buf` holds `size` blocks of `block` bytes; on entry block `rank` is
/// this rank's contribution, on exit all blocks are filled.
///
/// # Panics
/// Panics if the world size is not a power of two (use
/// [`allgather_ring`] there).
pub fn allgather_recursive_doubling(r: &Rank, buf: &mpx_gpu::Buffer, block: usize) {
    let p = r.size;
    assert!(p.is_power_of_two(), "recursive doubling needs 2^k ranks");
    assert!(buf.len() >= p * block, "buffer smaller than size*block");
    const TAG: u64 = 1 << 50;
    // After step s, each rank holds the 2^(s+1)-block group containing it.
    let mut group = 1usize; // blocks currently held, starting at own block
    let mut mask = 1usize;
    let mut round = 0u64;
    while mask < p {
        let partner = r.rank ^ mask;
        // The group of blocks I hold starts at my group-aligned base.
        let my_base = (r.rank / group) * group;
        let partner_base = (partner / group) * group;
        r.sendrecv(
            buf,
            my_base * block,
            group * block,
            partner,
            buf,
            partner_base * block,
            group * block,
            partner,
            TAG + round,
        );
        group *= 2;
        mask <<= 1;
        round += 1;
    }
}

/// Ring allgather: `size − 1` steps, each forwarding one block to the
/// right neighbour. Works for any world size.
pub fn allgather_ring(r: &Rank, buf: &mpx_gpu::Buffer, block: usize) {
    let p = r.size;
    assert!(buf.len() >= p * block, "buffer smaller than size*block");
    const TAG: u64 = (1 << 50) + (1 << 20);
    let right = (r.rank + 1) % p;
    let left = (r.rank + p - 1) % p;
    for s in 0..p.saturating_sub(1) {
        // In step s I forward the block that originated at rank - s and
        // receive the block that originated at rank - s - 1.
        let send_block = (r.rank + p - s) % p;
        let recv_block = (r.rank + p - s - 1) % p;
        r.sendrecv(
            buf,
            send_block * block,
            block,
            right,
            buf,
            recv_block * block,
            block,
            left,
            TAG + s as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    fn pattern(rank: usize, block: usize) -> Vec<u8> {
        vec![(rank + 1) as u8 * 10; block]
    }

    fn expected(p: usize, block: usize) -> Vec<u8> {
        (0..p).flat_map(|r| pattern(r, block)).collect()
    }

    fn run_allgather(f: fn(&Rank, &mpx_gpu::Buffer, usize)) -> Vec<Vec<u8>> {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let block = 64 << 10;
        w.run(4, move |r| {
            let buf = r.alloc_zeroed(4 * block);
            buf.write(r.rank * block, &pattern(r.rank, block));
            f(&r, &buf, block);
            buf.to_vec().unwrap()
        })
    }

    #[test]
    fn recursive_doubling_gathers_all_blocks() {
        let out = run_allgather(allgather_recursive_doubling);
        let want = expected(4, 64 << 10);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i} result wrong");
        }
    }

    #[test]
    fn ring_gathers_all_blocks() {
        let out = run_allgather(allgather_ring);
        let want = expected(4, 64 << 10);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i} result wrong");
        }
    }

    #[test]
    fn ring_works_for_non_power_of_two() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let block = 16 << 10;
        let out = w.run(3, move |r| {
            let buf = r.alloc_zeroed(3 * block);
            buf.write(r.rank * block, &pattern(r.rank, block));
            allgather_ring(&r, &buf, block);
            buf.to_vec().unwrap()
        });
        let want = expected(3, block);
        for got in &out {
            assert_eq!(got, &want);
        }
    }
}
