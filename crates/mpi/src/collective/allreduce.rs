//! Allreduce: recursive-halving scatter-reduce followed by a
//! recursive-doubling allgather — the "recursive K-nomial scatter-reduce
//! followed by K-nomial allgather" UCP uses for large messages (paper
//! Section 5.3), at radix 2. A ring variant is provided as an ablation
//! baseline.
//!
//! Every receive lands in a temporary buffer and is combined with a
//! reduction kernel on the rank's GPU, so the compute overhead the paper's
//! Observation 3 attributes to MPI_Allreduce is charged faithfully.

use crate::collective::allgather::allgather_recursive_doubling;
use crate::world::Rank;
use mpx_gpu::{Buffer, ReduceOp};

const TAG: u64 = 1 << 52;

/// In-place allreduce over `buf[..n]` (power-of-two world sizes).
///
/// `n` must be divisible by `4·size` so f32 block boundaries stay
/// aligned.
pub fn allreduce_rabenseifner(r: &Rank, buf: &Buffer, n: usize, op: ReduceOp) {
    let p = r.size;
    assert!(
        p.is_power_of_two(),
        "scatter-reduce allreduce needs 2^k ranks"
    );
    if p == 1 {
        return;
    }
    assert_eq!(n % (4 * p), 0, "n must be a multiple of 4*size");
    let tmp = scratch_like(r, buf, n / 2);

    // Phase 1: recursive halving scatter-reduce. After the loop each rank
    // owns the fully reduced block `[rank*block, (rank+1)*block)`.
    let mut lo = 0usize;
    let mut hi = n;
    let mut mask = p / 2;
    let mut round = 0u64;
    while mask >= 1 {
        let partner = r.rank ^ mask;
        let mid = lo + (hi - lo) / 2;
        // The half containing my final block stays; the other half goes to
        // the partner (who keeps that side).
        let keep_low = r.rank & mask == 0;
        let (keep, send) = if keep_low {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let len = keep.1 - keep.0;
        r.sendrecv(
            buf,
            send.0,
            send.1 - send.0,
            partner,
            &tmp,
            0,
            len,
            partner,
            TAG + round,
        );
        r.reduce_local(op, &tmp, 0, buf, keep.0, len);
        lo = keep.0;
        hi = keep.1;
        mask >>= 1;
        round += 1;
    }
    debug_assert_eq!(hi - lo, n / p);
    debug_assert_eq!(lo, r.rank * (n / p));

    // Phase 2: recursive-doubling allgather of the reduced blocks.
    allgather_recursive_doubling(r, buf, n / p);
}

/// Ring allreduce (reduce-scatter ring + allgather ring) — the classic
/// bandwidth-optimal alternative; works for any world size. Ablation
/// baseline for the K-nomial algorithm above.
pub fn allreduce_ring(r: &Rank, buf: &Buffer, n: usize, op: ReduceOp) {
    let p = r.size;
    if p == 1 {
        return;
    }
    assert_eq!(n % (4 * p), 0, "n must be a multiple of 4*size");
    let block = n / p;
    let tmp = scratch_like(r, buf, block);
    let right = (r.rank + 1) % p;
    let left = (r.rank + p - 1) % p;

    // Reduce-scatter ring: after p-1 steps, rank owns block (rank+1) % p
    // fully reduced.
    for s in 0..p - 1 {
        let send_block = (r.rank + p - s) % p;
        let recv_block = (r.rank + p - s - 1) % p;
        r.sendrecv(
            buf,
            send_block * block,
            block,
            right,
            &tmp,
            0,
            block,
            left,
            TAG + (1 << 10) + s as u64,
        );
        r.reduce_local(op, &tmp, 0, buf, recv_block * block, block);
    }
    // Allgather ring over the reduced blocks.
    for s in 0..p - 1 {
        let send_block = (r.rank + 1 + p - s) % p;
        let recv_block = (r.rank + p - s) % p;
        r.sendrecv(
            buf,
            send_block * block,
            block,
            right,
            buf,
            recv_block * block,
            block,
            left,
            TAG + (1 << 11) + s as u64,
        );
    }
}

fn scratch_like(r: &Rank, like: &Buffer, n: usize) -> Buffer {
    r.scratch(n, !like.is_synthetic(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_gpu::reduce::{bytes_f32, f32_bytes};
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    fn run_allreduce(
        f: fn(&Rank, &Buffer, usize, ReduceOp),
        ranks: usize,
        elems: usize,
    ) -> Vec<Vec<f32>> {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        w.run(ranks, move |r| {
            let vals: Vec<f32> = (0..elems)
                .map(|i| (r.rank + 1) as f32 * (i + 1) as f32)
                .collect();
            let buf = r.alloc_bytes(f32_bytes(&vals));
            f(&r, &buf, elems * 4, ReduceOp::Sum);
            bytes_f32(&buf.to_vec().unwrap())
        })
    }

    fn expected_sum(ranks: usize, elems: usize) -> Vec<f32> {
        let factor: f32 = (1..=ranks).map(|x| x as f32).sum();
        (0..elems).map(|i| factor * (i + 1) as f32).collect()
    }

    #[test]
    fn rabenseifner_sums_across_four_ranks() {
        let out = run_allreduce(allreduce_rabenseifner, 4, 256);
        let want = expected_sum(4, 256);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i} result wrong");
        }
    }

    #[test]
    fn rabenseifner_two_ranks() {
        let out = run_allreduce(allreduce_rabenseifner, 2, 64);
        let want = expected_sum(2, 64);
        for got in &out {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn ring_matches_rabenseifner() {
        let a = run_allreduce(allreduce_ring, 4, 128);
        let b = run_allreduce(allreduce_rabenseifner, 4, 128);
        assert_eq!(a, b);
    }

    #[test]
    fn max_reduction() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let out = w.run(4, |r| {
            let vals = vec![
                r.rank as f32,
                10.0 - r.rank as f32,
                -(r.rank as f32),
                r.rank as f32 * 2.0,
            ];
            let buf = r.alloc_bytes(f32_bytes(&vals));
            allreduce_rabenseifner(&r, &buf, 16, ReduceOp::Max);
            bytes_f32(&buf.to_vec().unwrap())
        });
        for got in &out {
            assert_eq!(got, &vec![3.0, 10.0, 0.0, 6.0]);
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let out = run_allreduce(allreduce_rabenseifner, 1, 16);
        assert_eq!(out[0], expected_sum(1, 16));
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn non_power_of_two_rejected() {
        run_allreduce(allreduce_rabenseifner, 3, 12);
    }
}
