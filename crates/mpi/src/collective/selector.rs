//! UCC-style algorithm selection: pick the collective algorithm from the
//! message size and world size, the way UCC's CL/TL scoring does (paper
//! Section 5.3 pins the large-message choices this table reproduces:
//! K-nomial scatter-reduce + allgather for Allreduce, Bruck for
//! Alltoall).

use crate::collective::{
    allreduce_rabenseifner, allreduce_ring, alltoall_bruck, alltoall_pairwise, bcast_binomial,
    bcast_scatter_allgather,
};
use crate::world::Rank;
use mpx_gpu::{Buffer, ReduceOp};
use mpx_obs::Phase;

/// Runs `f` as a `collective` span on this rank's telemetry track
/// (`rank{i}`) when a recorder is attached; otherwise just runs it.
fn with_span<R>(r: &Rank, name: &str, detail: String, f: impl FnOnce() -> R) -> R {
    match r.context().recorder().cloned() {
        None => f(),
        Some(rec) => {
            let t0 = r.now().as_secs();
            let out = f();
            rec.span(
                Phase::Collective,
                format!("rank{}", r.rank),
                name,
                t0,
                r.now().as_secs(),
                detail,
            );
            out
        }
    }
}

/// Allreduce algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceChoice {
    /// Recursive halving/doubling (K-nomial radix 2).
    Rabenseifner,
    /// Ring (bandwidth-optimal, higher latency; also the fallback for
    /// non-power-of-two worlds).
    Ring,
}

/// Alltoall algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlltoallChoice {
    /// Bruck: ⌈log₂ p⌉ rounds, extra pack traffic — wins for small
    /// blocks where per-message latency dominates.
    Bruck,
    /// Pairwise exchange: p−1 rounds, minimal volume — wins for large
    /// blocks.
    Pairwise,
}

/// Block-size threshold between Bruck and pairwise alltoall. Bruck moves
/// each block ~log₂(p)/2 extra times, so once a block is large enough
/// that bandwidth dominates latency, pairwise wins. 256 KiB matches the
/// crossovers measured by `benches/collectives.rs`.
pub const ALLTOALL_BRUCK_MAX_BLOCK: usize = 256 << 10;

/// Selects the allreduce algorithm for an `n`-byte buffer on `ranks`
/// ranks.
pub fn select_allreduce(ranks: usize, _n: usize) -> AllreduceChoice {
    if ranks.is_power_of_two() {
        // UCP's large-message default (the paper's configuration).
        AllreduceChoice::Rabenseifner
    } else {
        AllreduceChoice::Ring
    }
}

/// Selects the alltoall algorithm for `block`-byte per-destination
/// blocks on `ranks` ranks.
pub fn select_alltoall(ranks: usize, block: usize) -> AlltoallChoice {
    if ranks <= 2 || block <= ALLTOALL_BRUCK_MAX_BLOCK {
        AlltoallChoice::Bruck
    } else {
        AlltoallChoice::Pairwise
    }
}

/// Broadcast algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastChoice {
    /// Binomial tree: ⌈log₂ p⌉ rounds each moving the whole buffer —
    /// latency-optimal, wins for small messages.
    Binomial,
    /// Van de Geijn scatter + ring allgather: every byte crosses the
    /// wire ~2(p−1)/p times total — bandwidth-optimal, wins for large
    /// messages.
    ScatterAllgather,
}

/// Size threshold between the binomial and van de Geijn broadcasts. The
/// binomial tree ships `log₂(p)·n` total; scatter-allgather ships
/// `~2n` — the crossover sits where per-message latency stops mattering.
pub const BCAST_BINOMIAL_MAX: usize = 1 << 20;

/// Selects the broadcast algorithm for an `n`-byte buffer on `ranks`
/// ranks.
pub fn select_bcast(ranks: usize, n: usize) -> BcastChoice {
    if ranks <= 2 || n <= BCAST_BINOMIAL_MAX || !n.is_multiple_of(ranks) {
        BcastChoice::Binomial
    } else {
        BcastChoice::ScatterAllgather
    }
}

/// MPI_Bcast with automatic algorithm selection.
pub fn bcast(r: &Rank, buf: &Buffer, n: usize, root: usize) {
    let choice = select_bcast(r.size, n);
    with_span(
        r,
        "bcast",
        format!("{choice:?} n={n} root={root}"),
        || match choice {
            BcastChoice::Binomial => bcast_binomial(r, buf, n, root),
            BcastChoice::ScatterAllgather => bcast_scatter_allgather(r, buf, n, root),
        },
    )
}

/// MPI_Allreduce with automatic algorithm selection.
pub fn allreduce(r: &Rank, buf: &Buffer, n: usize, op: ReduceOp) {
    let choice = select_allreduce(r.size, n);
    with_span(
        r,
        "allreduce",
        format!("{choice:?} n={n}"),
        || match choice {
            AllreduceChoice::Rabenseifner => allreduce_rabenseifner(r, buf, n, op),
            AllreduceChoice::Ring => allreduce_ring(r, buf, n, op),
        },
    )
}

/// MPI_Alltoall with automatic algorithm selection.
pub fn alltoall(r: &Rank, send: &Buffer, recv: &Buffer, block: usize) {
    let choice = select_alltoall(r.size, block);
    with_span(
        r,
        "alltoall",
        format!("{choice:?} block={block}"),
        || match choice {
            AlltoallChoice::Bruck => alltoall_bruck(r, send, recv, block),
            AlltoallChoice::Pairwise => alltoall_pairwise(r, send, recv, block),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_gpu::reduce::{bytes_f32, f32_bytes};
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    #[test]
    fn allreduce_selection_honours_world_shape() {
        assert_eq!(select_allreduce(4, 1 << 20), AllreduceChoice::Rabenseifner);
        assert_eq!(select_allreduce(2, 1 << 10), AllreduceChoice::Rabenseifner);
        assert_eq!(select_allreduce(3, 1 << 20), AllreduceChoice::Ring);
    }

    #[test]
    fn alltoall_selection_crosses_over_on_block_size() {
        assert_eq!(select_alltoall(4, 64 << 10), AlltoallChoice::Bruck);
        assert_eq!(select_alltoall(4, 4 << 20), AlltoallChoice::Pairwise);
        // Two ranks: Bruck degenerates to one exchange; always fine.
        assert_eq!(select_alltoall(2, 64 << 20), AlltoallChoice::Bruck);
    }

    #[test]
    fn bcast_selection_by_size() {
        assert_eq!(select_bcast(4, 64 << 10), BcastChoice::Binomial);
        assert_eq!(select_bcast(4, 64 << 20), BcastChoice::ScatterAllgather);
        assert_eq!(select_bcast(2, 64 << 20), BcastChoice::Binomial);
        // Non-divisible sizes fall back to binomial (vdG needs n % p == 0).
        assert_eq!(select_bcast(4, (64 << 20) + 3), BcastChoice::Binomial);
    }

    #[test]
    fn auto_bcast_correct_in_both_regimes() {
        for n in [64 << 10, 16 << 20] {
            let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
            let out = w.run(4, move |r| {
                let buf = if r.rank == 1 {
                    r.alloc_bytes((0..n).map(|i| (i % 249) as u8).collect())
                } else {
                    r.alloc_zeroed(n)
                };
                bcast(&r, &buf, n, 1);
                buf.to_vec().unwrap()
            });
            let want: Vec<u8> = (0..n).map(|i| (i % 249) as u8).collect();
            for (rank, got) in out.iter().enumerate() {
                assert_eq!(got, &want, "n={n} rank {rank}");
            }
        }
    }

    #[test]
    fn vdg_beats_binomial_for_large_messages() {
        let time_bcast = |n: usize, choice: BcastChoice| {
            let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
            let times = w.run(4, move |r| {
                let buf = r.alloc(n);
                r.barrier();
                let t0 = r.now();
                match choice {
                    BcastChoice::Binomial => crate::collective::bcast_binomial(&r, &buf, n, 0),
                    BcastChoice::ScatterAllgather => {
                        crate::collective::bcast_scatter_allgather(&r, &buf, n, 0)
                    }
                }
                r.now().secs_since(t0)
            });
            times.into_iter().fold(0.0f64, f64::max)
        };
        let n = 64 << 20;
        let binomial = time_bcast(n, BcastChoice::Binomial);
        let vdg = time_bcast(n, BcastChoice::ScatterAllgather);
        assert!(
            vdg < binomial * 0.75,
            "vdG {vdg} should clearly beat binomial {binomial} at 64 MB"
        );
    }

    #[test]
    fn auto_allreduce_works_for_non_power_of_two() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let out = w.run(3, |r| {
            let buf = r.alloc_bytes(f32_bytes(&[(r.rank + 1) as f32; 12]));
            allreduce(&r, &buf, 48, ReduceOp::Sum);
            bytes_f32(&buf.to_vec().unwrap())
        });
        for got in &out {
            assert!(got.iter().all(|&v| v == 6.0), "{got:?}");
        }
    }

    #[test]
    fn collectives_record_spans_on_rank_tracks() {
        use mpx_gpu::GpuRuntime;
        use mpx_sim::Engine;

        let eng = Engine::new(Arc::new(presets::beluga()));
        let rec = mpx_obs::Recorder::new();
        eng.set_recorder(rec.clone());
        let w = World::over(GpuRuntime::new(eng), UcxConfig::default());
        let n = 1 << 20;
        w.run(4, move |r| {
            let buf = r.alloc(n);
            allreduce(&r, &buf, n, ReduceOp::Sum);
        });
        let events = rec.drain();
        let collective_tracks: Vec<&str> = events
            .iter()
            .filter(|e| e.phase() == mpx_obs::Phase::Collective)
            .map(|e| e.track())
            .collect();
        for i in 0..4 {
            let track = format!("rank{i}");
            assert!(
                collective_tracks.contains(&track.as_str()),
                "no collective span on {track}: {collective_tracks:?}"
            );
        }
    }

    #[test]
    fn auto_alltoall_matches_fixed_algorithms() {
        let run = |block: usize| {
            let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
            w.run(4, move |r| {
                let sdata: Vec<u8> = (0..4)
                    .flat_map(|d| vec![(r.rank * 4 + d + 1) as u8; block])
                    .collect();
                let send = r.alloc_bytes(sdata);
                let recv = r.alloc_zeroed(4 * block);
                alltoall(&r, &send, &recv, block);
                recv.to_vec().unwrap()
            })
        };
        // Small block (Bruck regime) and large block (pairwise regime)
        // must both deliver correct placement.
        for block in [16 << 10, 1 << 20] {
            let out = run(block);
            for (rank, got) in out.iter().enumerate() {
                let want: Vec<u8> = (0..4)
                    .flat_map(|src| vec![(src * 4 + rank + 1) as u8; block])
                    .collect();
                assert_eq!(got, &want, "rank {rank}, block {block}");
            }
        }
    }
}
