//! Rooted collectives: binomial-tree broadcast, scatter, and gather.
//!
//! Not part of the paper's evaluation, but part of any credible MPI
//! surface — and additional multi-path beneficiaries, since every edge
//! of the binomial tree is a P2P transfer through the transport under
//! test.

use crate::world::Rank;
use mpx_gpu::Buffer;

const TAG: u64 = 1 << 56;

/// Binomial-tree broadcast of `buf[..n]` from `root` (any world size).
pub fn bcast_binomial(r: &Rank, buf: &Buffer, n: usize, root: usize) {
    let p = r.size;
    if p == 1 {
        return;
    }
    assert!(root < p, "root {root} out of range");
    // Work in a rotated rank space where the root is 0.
    let vrank = (r.rank + p - root) % p;
    // Receive once from the parent…
    if vrank != 0 {
        let parent_v = vrank & (vrank - 1); // clear lowest set bit
        let parent = (parent_v + root) % p;
        r.recv(buf, n, Some(parent), Some(TAG + vrank as u64));
    }
    // …then forward to children: vrank | 2^k for 2^k above vrank's
    // lowest set bit (descending order maximizes pipeline overlap).
    let lowest = if vrank == 0 {
        usize::BITS
    } else {
        vrank.trailing_zeros()
    };
    let mut k = (usize::BITS - 1 - p.leading_zeros()) as i64;
    while k >= 0 {
        let bit = 1usize << k;
        if (k as u32) < lowest && vrank | bit != vrank {
            let child_v = vrank | bit;
            if child_v < p {
                let child = (child_v + root) % p;
                r.send(buf, n, child, TAG + child_v as u64);
            }
        }
        k -= 1;
    }
}

/// Linear scatter: the root sends block `i` of `sendbuf` to rank `i`'s
/// `recvbuf`. Root's own block is a local device copy.
pub fn scatter_linear(r: &Rank, sendbuf: &Buffer, recvbuf: &Buffer, block: usize, root: usize) {
    let p = r.size;
    assert!(root < p, "root {root} out of range");
    if r.rank == root {
        assert!(sendbuf.len() >= p * block, "scatter sendbuf too small");
        let mut reqs = Vec::with_capacity(p - 1);
        for dst in 0..p {
            if dst == root {
                r.local_copy(sendbuf, root * block, recvbuf, 0, block);
            } else {
                reqs.push(r.isend_at(
                    sendbuf,
                    dst * block,
                    block,
                    dst,
                    TAG + (1 << 8) + dst as u64,
                ));
            }
        }
        crate::p2p::waitall(r.thread(), &reqs);
    } else {
        r.recv(
            recvbuf,
            block,
            Some(root),
            Some(TAG + (1 << 8) + r.rank as u64),
        );
    }
}

/// In-place linear scatter over a full-size buffer: the root owns all
/// `size` blocks of `buf`; afterwards rank `i` holds block `i` at offset
/// `i·block` of its own same-size buffer (the first phase of the van de
/// Geijn broadcast).
pub fn scatter_linear_inplace(r: &Rank, buf: &Buffer, block: usize, root: usize) {
    let p = r.size;
    assert!(root < p, "root {root} out of range");
    assert!(buf.len() >= p * block, "buffer smaller than size*block");
    const STAG: u64 = (1 << 56) + (1 << 10);
    if r.rank == root {
        let mut reqs = Vec::with_capacity(p - 1);
        for dst in 0..p {
            if dst != root {
                reqs.push(r.isend_at(buf, dst * block, block, dst, STAG + dst as u64));
            }
        }
        crate::p2p::waitall(r.thread(), &reqs);
    } else {
        r.irecv_at(
            buf,
            r.rank * block,
            block,
            Some(root),
            Some(STAG + r.rank as u64),
        )
        .wait(r.thread());
    }
}

/// Linear gather: rank `i`'s `sendbuf` lands in block `i` of the root's
/// `recvbuf`.
pub fn gather_linear(r: &Rank, sendbuf: &Buffer, recvbuf: &Buffer, block: usize, root: usize) {
    let p = r.size;
    assert!(root < p, "root {root} out of range");
    if r.rank == root {
        assert!(recvbuf.len() >= p * block, "gather recvbuf too small");
        let mut reqs = Vec::with_capacity(p - 1);
        for src in 0..p {
            if src == root {
                r.local_copy(sendbuf, 0, recvbuf, root * block, block);
            } else {
                reqs.push(r.irecv_at(
                    recvbuf,
                    src * block,
                    block,
                    Some(src),
                    Some(TAG + (1 << 9) + src as u64),
                ));
            }
        }
        crate::p2p::waitall(r.thread(), &reqs);
    } else {
        r.send(sendbuf, block, root, TAG + (1 << 9) + r.rank as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    fn world() -> World {
        World::new(Arc::new(presets::beluga()), UcxConfig::default())
    }

    #[test]
    fn bcast_reaches_every_rank_from_every_root() {
        for root in 0..4 {
            let w = world();
            let out = w.run(4, move |r| {
                let n = 256 << 10;
                let buf = if r.rank == root {
                    r.alloc_bytes(vec![0xC3; n])
                } else {
                    r.alloc_zeroed(n)
                };
                bcast_binomial(&r, &buf, n, root);
                buf.to_vec().unwrap()
            });
            for (rank, data) in out.iter().enumerate() {
                assert!(
                    data.iter().all(|&b| b == 0xC3),
                    "root {root}, rank {rank} incomplete"
                );
            }
        }
    }

    #[test]
    fn bcast_three_ranks_non_power_of_two() {
        let w = world();
        let out = w.run(3, |r| {
            let n = 4096;
            let buf = if r.rank == 1 {
                r.alloc_bytes(vec![7; n])
            } else {
                r.alloc_zeroed(n)
            };
            bcast_binomial(&r, &buf, n, 1);
            buf.to_vec().unwrap()
        });
        for data in &out {
            assert!(data.iter().all(|&b| b == 7));
        }
    }

    #[test]
    fn scatter_distributes_blocks() {
        let w = world();
        let block = 64 << 10;
        let out = w.run(4, move |r| {
            let send = if r.rank == 0 {
                let data: Vec<u8> = (0..4).flat_map(|i| vec![(i + 1) as u8; block]).collect();
                r.alloc_bytes(data)
            } else {
                r.alloc(0)
            };
            let recv = r.alloc_zeroed(block);
            scatter_linear(&r, &send, &recv, block, 0);
            recv.to_vec().unwrap()
        });
        for (rank, data) in out.iter().enumerate() {
            assert!(
                data.iter().all(|&b| b == (rank + 1) as u8),
                "rank {rank} got wrong block"
            );
        }
    }

    #[test]
    fn gather_collects_blocks() {
        let w = world();
        let block = 64 << 10;
        let out = w.run(4, move |r| {
            let send = r.alloc_bytes(vec![(r.rank + 10) as u8; block]);
            let recv = if r.rank == 2 {
                r.alloc_zeroed(4 * block)
            } else {
                r.alloc(0)
            };
            gather_linear(&r, &send, &recv, block, 2);
            recv.to_vec()
        });
        let root_data = out[2].as_ref().unwrap();
        for rank in 0..4 {
            assert!(
                root_data[rank * block..(rank + 1) * block]
                    .iter()
                    .all(|&b| b == (rank + 10) as u8),
                "block {rank} wrong at root"
            );
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let w = world();
        let block = 16 << 10;
        let out = w.run(4, move |r| {
            let original: Vec<u8> = (0..4 * block).map(|i| (i % 255) as u8).collect();
            let send = if r.rank == 0 {
                r.alloc_bytes(original.clone())
            } else {
                r.alloc(0)
            };
            let mine = r.alloc_zeroed(block);
            scatter_linear(&r, &send, &mine, block, 0);
            let back = if r.rank == 0 {
                r.alloc_zeroed(4 * block)
            } else {
                r.alloc(0)
            };
            gather_linear(&r, &mine, &back, block, 0);
            if r.rank == 0 {
                assert_eq!(back.to_vec().unwrap(), original);
            }
        });
        drop(out);
    }
}
