//! Alltoall: the Bruck algorithm (what UCP uses under MPI_Alltoall per
//! paper Section 5.3) plus a pairwise-exchange baseline.
//!
//! Bruck runs in ⌈log₂ p⌉ communication rounds. Each round packs the
//! blocks whose (rotated) index has bit `j` set into a contiguous staging
//! buffer — a GPU pack kernel, charged through the kernel cost model —
//! and ships them `2^j` ranks away. Two local rotations bracket the
//! rounds.

use crate::world::Rank;
use mpx_gpu::Buffer;

const TAG: u64 = 1 << 54;

/// Pairwise-exchange alltoall: `p − 1` rounds of sendrecv, plus the local
/// self-block copy. Simple, correct for any `p`; the large-message
/// baseline.
///
/// `send`/`recv` each hold `size` blocks of `block` bytes; block `i` of
/// `send` goes to rank `i`.
pub fn alltoall_pairwise(r: &Rank, send: &Buffer, recv: &Buffer, block: usize) {
    let p = r.size;
    assert!(send.len() >= p * block && recv.len() >= p * block);
    // Self block: a local device copy.
    r.local_copy(send, r.rank * block, recv, r.rank * block, block);
    for s in 1..p {
        let to = (r.rank + s) % p;
        let from = (r.rank + p - s) % p;
        r.sendrecv(
            send,
            to * block,
            block,
            to,
            recv,
            from * block,
            block,
            from,
            TAG + s as u64,
        );
    }
}

/// Bruck alltoall (radix 2) for any world size.
pub fn alltoall_bruck(r: &Rank, send: &Buffer, recv: &Buffer, block: usize) {
    let p = r.size;
    assert!(send.len() >= p * block && recv.len() >= p * block);
    if p == 1 {
        r.local_copy(send, 0, recv, 0, block);
        return;
    }

    // Logical coordinates: index i holds the block destined to rank
    // (rank + i) mod p, i.e. originally send[(rank + i) mod p]. In round
    // j every block whose index has bit j set ships to rank + 2^j and is
    // received from rank − 2^j at the *same* index, so a block starting
    // at index i accumulates exactly i hops — it arrives at its
    // destination during the round of its highest set bit.
    //
    // Both classical rotations are fused into the pack/unpack index
    // computation (as production implementations do): a block is packed
    // straight from `send` on its first hop (lowest set bit), unpacked
    // straight into `recv` on its last hop (highest set bit), and only
    // multi-hop blocks ever touch the intermediate `work` buffer.
    let work = scratch(r, send, p * block, 0);
    // Own block (index 0) never ships.
    r.local_copy(send, r.rank * block, recv, r.rank * block, block);

    let pack_max = p.div_ceil(2);
    let staging_out = scratch(r, send, pack_max * block, 1);
    let staging_in = scratch(r, send, pack_max * block, 2);
    let mut j = 0u32;
    while (1usize << j) < p {
        let dist = 1usize << j;
        let to = (r.rank + dist) % p;
        let from = (r.rank + p - dist) % p;
        let idx: Vec<usize> = (0..p).filter(|i| i & dist != 0).collect();
        for (slot, &i) in idx.iter().enumerate() {
            let first_hop = i & (dist - 1) == 0; // bit j is i's lowest set bit
            if first_hop {
                let src_block = (r.rank + i) % p;
                r.local_copy(send, src_block * block, &staging_out, slot * block, block);
            } else {
                r.local_copy(&work, i * block, &staging_out, slot * block, block);
            }
        }
        let bytes = idx.len() * block;
        r.sendrecv(
            &staging_out,
            0,
            bytes,
            to,
            &staging_in,
            0,
            bytes,
            from,
            TAG + (1 << 8) + j as u64,
        );
        for (slot, &i) in idx.iter().enumerate() {
            let last_hop = i >> (j + 1) == 0; // no set bits above j
            if last_hop {
                // The block came i hops from rank − i: its final slot.
                let origin = (r.rank + p - i) % p;
                r.local_copy(&staging_in, slot * block, recv, origin * block, block);
            } else {
                r.local_copy(&staging_in, slot * block, &work, i * block, block);
            }
        }
        j += 1;
    }
}

fn scratch(r: &Rank, like: &Buffer, n: usize, slot: usize) -> Buffer {
    r.scratch(n, !like.is_synthetic(), slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    /// Block content: one byte identifying (source, destination).
    fn block_byte(src: usize, dst: usize) -> u8 {
        (src * 16 + dst + 1) as u8
    }

    fn run_alltoall(
        f: fn(&Rank, &Buffer, &Buffer, usize),
        ranks: usize,
        block: usize,
    ) -> Vec<Vec<u8>> {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        w.run(ranks, move |r| {
            let sdata: Vec<u8> = (0..ranks)
                .flat_map(|dst| vec![block_byte(r.rank, dst); block])
                .collect();
            let send = r.alloc_bytes(sdata);
            let recv = r.alloc_zeroed(ranks * block);
            f(&r, &send, &recv, block);
            recv.to_vec().unwrap()
        })
    }

    fn expected(rank: usize, ranks: usize, block: usize) -> Vec<u8> {
        (0..ranks)
            .flat_map(|src| vec![block_byte(src, rank); block])
            .collect()
    }

    #[test]
    fn pairwise_exchanges_all_blocks() {
        let out = run_alltoall(alltoall_pairwise, 4, 4 << 10);
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got, &expected(rank, 4, 4 << 10), "rank {rank}");
        }
    }

    #[test]
    fn bruck_matches_pairwise_power_of_two() {
        let a = run_alltoall(alltoall_bruck, 4, 4 << 10);
        for (rank, got) in a.iter().enumerate() {
            assert_eq!(got, &expected(rank, 4, 4 << 10), "rank {rank}");
        }
    }

    #[test]
    fn bruck_handles_non_power_of_two() {
        let out = run_alltoall(alltoall_bruck, 3, 1 << 10);
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got, &expected(rank, 3, 1 << 10), "rank {rank}");
        }
    }

    #[test]
    fn bruck_two_ranks() {
        let out = run_alltoall(alltoall_bruck, 2, 8 << 10);
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got, &expected(rank, 2, 8 << 10), "rank {rank}");
        }
    }

    #[test]
    fn single_rank_alltoall_is_local_copy() {
        let out = run_alltoall(alltoall_bruck, 1, 1 << 10);
        assert_eq!(out[0], expected(0, 1, 1 << 10));
    }
}
