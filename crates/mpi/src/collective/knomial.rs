//! Radix-`k` K-nomial collectives — the general form of the paper's
//! "recursive K-nomial scatter-reduce followed by K-nomial allgather"
//! (Section 5.3). Radix 2 reproduces `allreduce_rabenseifner`; higher
//! radixes trade fewer rounds for more concurrent partners per round,
//! which loads more paths at once — an interesting regime for multi-path
//! transport (ablation: radix 2 vs 4).
//!
//! Requires `size == k^m`. Within every round, the buffer's active
//! region is split into `k` sub-blocks; each rank keeps the sub-block
//! indexed by its own digit (base-`k`, digit `m−1−round`) and exchanges
//! the other `k−1` sub-blocks with its digit-group peers, reducing what
//! it receives. The allgather phase runs the same exchanges in reverse.

use crate::p2p::waitall;
use crate::world::Rank;
use mpx_gpu::{Buffer, ReduceOp};

const TAG: u64 = 1 << 59;

/// Returns `m` with `k^m == p`, or `None`.
fn log_base(p: usize, k: usize) -> Option<u32> {
    if k < 2 {
        return None;
    }
    let mut v = 1usize;
    let mut m = 0u32;
    while v < p {
        v = v.checked_mul(k)?;
        m += 1;
    }
    (v == p).then_some(m)
}

/// In-place radix-`k` K-nomial allreduce over `buf[..n]`.
///
/// # Panics
/// Panics unless `size == k^m` and `n` is divisible by `4·size`.
pub fn allreduce_knomial(r: &Rank, buf: &Buffer, n: usize, op: ReduceOp, k: usize) {
    let p = r.size;
    if p == 1 {
        return;
    }
    let m = log_base(p, k).unwrap_or_else(|| panic!("world size {p} is not a power of radix {k}"));
    assert_eq!(n % (4 * p), 0, "n must be a multiple of 4*size");

    // Scratch: one receive slot per peer (k−1 of them), each up to n/k.
    let peers_max = k - 1;
    let tmps: Vec<Buffer> = (0..peers_max)
        .map(|slot| r.scratch(n / k, !buf.is_synthetic(), 16 + slot))
        .collect();

    // --- Phase 1: K-nomial scatter-reduce --------------------------------
    // Track the active region; digits from most significant down.
    let mut lo = 0usize;
    let mut len = n;
    let mut group = p; // size of the current digit group
    for round in 0..m {
        let sub = len / k;
        let digit_stride = group / k;
        let my_digit = (r.rank / digit_stride) % k;
        // Peers: same position within the digit group, other digits.
        let base = r.rank - my_digit * digit_stride;
        let keep_lo = lo + my_digit * sub;

        // Post receives for my sub-block from every peer, send each peer
        // its sub-block.
        let mut reqs = Vec::with_capacity(2 * (k - 1));
        let mut slot = 0;
        for d in 0..k {
            if d == my_digit {
                continue;
            }
            let peer = base + d * digit_stride;
            reqs.push(r.irecv_at(
                &tmps[slot],
                0,
                sub,
                Some(peer),
                Some(TAG + (round as u64) * 64 + d as u64),
            ));
            reqs.push(r.isend_at(
                buf,
                lo + d * sub,
                sub,
                peer,
                TAG + (round as u64) * 64 + my_digit as u64,
            ));
            slot += 1;
        }
        waitall(r.thread(), &reqs);
        for t in tmps.iter().take(k - 1) {
            r.reduce_local(op, t, 0, buf, keep_lo, sub);
        }
        lo = keep_lo;
        len = sub;
        group = digit_stride;
    }
    debug_assert_eq!(len, n / p);
    debug_assert_eq!(lo, r.rank * (n / p));

    // --- Phase 2: K-nomial allgather (reverse digit order) ---------------
    let mut group = k; // digit group grows back
    let mut len = n / p;
    let mut lo = r.rank * (n / p);
    for round in 0..m {
        let digit_stride = group / k;
        let my_digit = (r.rank / digit_stride) % k;
        let base = r.rank - my_digit * digit_stride;
        let region_lo = lo - my_digit * len; // parent region start

        let mut reqs = Vec::with_capacity(2 * (k - 1));
        for d in 0..k {
            if d == my_digit {
                continue;
            }
            let peer = base + d * digit_stride;
            // Receive the peer's block straight into its final place.
            reqs.push(r.irecv_at(
                buf,
                region_lo + d * len,
                len,
                Some(peer),
                Some(TAG + (1 << 10) + (round as u64) * 64 + d as u64),
            ));
            reqs.push(r.isend_at(
                buf,
                lo,
                len,
                peer,
                TAG + (1 << 10) + (round as u64) * 64 + my_digit as u64,
            ));
        }
        waitall(r.thread(), &reqs);
        lo = region_lo;
        len *= k;
        group *= k;
    }
    debug_assert_eq!(len, n);
    debug_assert_eq!(lo, 0);
}

/// Van de Geijn large-message broadcast: scatter from the root (binomial
/// over blocks) then ring allgather — bandwidth-optimal for big buffers
/// and another multi-path beneficiary.
pub fn bcast_scatter_allgather(r: &Rank, buf: &Buffer, n: usize, root: usize) {
    let p = r.size;
    if p == 1 {
        return;
    }
    assert_eq!(n % p, 0, "n must be a multiple of size");
    let block = n / p;
    // Scatter: root sends block i to rank i (linear; the binomial variant
    // changes latency, not volume).
    crate::collective::scatter_linear_inplace(r, buf, block, root);
    // Allgather ring completes the broadcast.
    crate::collective::allgather_ring(r, buf, block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_gpu::reduce::{bytes_f32, f32_bytes};
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    fn run_knomial(ranks: usize, elems: usize, k: usize) -> Vec<Vec<f32>> {
        let topo: mpx_topo::Topology = if ranks > 4 {
            presets::dgx1()
        } else {
            presets::beluga()
        };
        let w = World::new(Arc::new(topo), UcxConfig::default());
        w.run(ranks, move |r| {
            let vals: Vec<f32> = (0..elems)
                .map(|i| (r.rank + 1) as f32 * (i + 1) as f32)
                .collect();
            let buf = r.alloc_bytes(f32_bytes(&vals));
            allreduce_knomial(&r, &buf, elems * 4, ReduceOp::Sum, k);
            bytes_f32(&buf.to_vec().unwrap())
        })
    }

    fn expected_sum(ranks: usize, elems: usize) -> Vec<f32> {
        let factor: f32 = (1..=ranks).map(|x| x as f32).sum();
        (0..elems).map(|i| factor * (i + 1) as f32).collect()
    }

    #[test]
    fn log_base_math() {
        assert_eq!(log_base(8, 2), Some(3));
        assert_eq!(log_base(4, 4), Some(1));
        assert_eq!(log_base(16, 4), Some(2));
        assert_eq!(log_base(6, 2), None);
        assert_eq!(log_base(4, 1), None);
    }

    #[test]
    fn radix2_matches_rabenseifner_results() {
        let a = run_knomial(4, 64, 2);
        let want = expected_sum(4, 64);
        for got in &a {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn radix4_single_round_on_four_ranks() {
        let out = run_knomial(4, 128, 4);
        let want = expected_sum(4, 128);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i}");
        }
    }

    #[test]
    fn radix2_on_eight_ranks() {
        let out = run_knomial(8, 64, 2);
        let want = expected_sum(8, 64);
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i}");
        }
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn mismatched_radix_rejected() {
        run_knomial(4, 16, 3);
    }

    #[test]
    fn vdg_bcast_reaches_everyone() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let n = 1 << 20;
        let out = w.run(4, move |r| {
            let buf = if r.rank == 2 {
                r.alloc_bytes((0..n).map(|i| (i % 251) as u8).collect())
            } else {
                r.alloc_zeroed(n)
            };
            bcast_scatter_allgather(&r, &buf, n, 2);
            buf.to_vec().unwrap()
        });
        let want: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        for (i, got) in out.iter().enumerate() {
            assert_eq!(got, &want, "rank {i}");
        }
    }
}
