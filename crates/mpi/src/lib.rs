//! # mpx-mpi — a miniature MPI over the simulated fabric
//!
//! Thread-per-rank message passing with MPI semantics: non-blocking
//! send/receive with tag matching and wildcards, waitall, barriers, and
//! the collective algorithms the paper's UCC configuration uses
//! (recursive K-nomial scatter-reduce + allgather for MPI_Allreduce,
//! Bruck for MPI_Alltoall). Every byte moves through `mpx-ucx`, so the
//! transport's single-path/static/dynamic tuning modes apply to
//! collectives unchanged.
//!
//! ```
//! use std::sync::Arc;
//! use mpx_mpi::World;
//! use mpx_topo::presets;
//! use mpx_ucx::UcxConfig;
//!
//! let world = World::new(Arc::new(presets::beluga()), UcxConfig::default());
//! let times = world.run(2, |rank| {
//!     let buf = rank.alloc(1 << 20);
//!     if rank.rank == 0 {
//!         rank.send(&buf, 1 << 20, 1, 0);
//!     } else {
//!         rank.recv(&buf, 1 << 20, Some(0), Some(0));
//!     }
//!     rank.now().as_secs()
//! });
//! assert!(times[1] > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collective;
pub mod p2p;
pub mod subcomm;
pub mod world;

pub use collective::{
    allgather_recursive_doubling, allgather_ring, allreduce, allreduce_knomial,
    allreduce_rabenseifner, allreduce_ring, alltoall, alltoall_bruck, alltoall_pairwise, bcast,
    bcast_binomial, bcast_scatter_allgather, gather_linear, reduce_binomial, reduce_scatter_ring,
    scatter_linear, scatter_linear_inplace,
};
pub use p2p::{
    waitall, waitall_deadline, MessageStatus, Request, ANY_SOURCE, ANY_TAG, MAX_APP_TAG,
};
pub use subcomm::SubComm;
pub use world::{Rank, World};
