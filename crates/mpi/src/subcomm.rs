//! Sub-communicators (MPI_Comm_split): partition a world's ranks into
//! independent groups with their own rank numbering and isolated tag
//! space. The enabling primitive for the "multiple jobs share one node"
//! scenario the paper's Section 3 discusses — two tenants each running
//! their own collectives over the same fabric.

use crate::p2p::Request;
use crate::world::Rank;
use mpx_gpu::{Buffer, ReduceOp};

/// A communicator over a subset of a world's ranks.
///
/// Holds a reference to the underlying world [`Rank`]; all traffic still
/// flows through the same matching engine, but tags are salted with the
/// group's color so groups cannot intercept each other's messages, and
/// rank indices are local to the group.
pub struct SubComm<'a> {
    world: &'a Rank,
    /// Global ranks of the members, sorted; defines local numbering.
    members: Vec<usize>,
    /// This rank's index within `members`.
    local_rank: usize,
    /// Tag salt derived from the split color.
    salt: u64,
}

impl<'a> SubComm<'a> {
    /// Splits by `color`: every world rank calling with the same color
    /// lands in the same group. All world ranks must call `split`
    /// (collectively, as in MPI) with `colors[world_rank]` consistent
    /// across callers — the color table is passed explicitly so no
    /// communication round is needed.
    ///
    /// # Panics
    /// Panics if the table is inconsistent with the world size or the
    /// caller's color is missing.
    pub fn split(world: &'a Rank, colors: &[u32]) -> SubComm<'a> {
        assert_eq!(colors.len(), world.size, "one color per world rank");
        let my_color = colors[world.rank];
        let members: Vec<usize> = (0..world.size).filter(|&r| colors[r] == my_color).collect();
        let local_rank = members
            .iter()
            .position(|&r| r == world.rank)
            .expect("caller is a member of its own color group");
        SubComm {
            world,
            members,
            local_rank,
            salt: ((my_color as u64) + 1) << 44,
        }
    }

    /// Local rank within the group.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The underlying world rank handle.
    pub fn world(&self) -> &Rank {
        self.world
    }

    fn global(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Non-blocking send to a *local* rank.
    pub fn isend_at(&self, buf: &Buffer, off: usize, n: usize, to: usize, tag: u64) -> Request {
        self.world
            .isend_at(buf, off, n, self.global(to), self.salt | tag)
    }

    /// Non-blocking receive from a *local* rank (no wildcards across
    /// groups: the salt pins the group).
    pub fn irecv_at(
        &self,
        buf: &Buffer,
        off: usize,
        n: usize,
        from: Option<usize>,
        tag: Option<u64>,
    ) -> Request {
        self.world.irecv_at(
            buf,
            off,
            n,
            from.map(|f| self.global(f)),
            tag.map(|t| self.salt | t),
        )
    }

    /// Blocking sendrecv within the group (local ranks).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        sbuf: &Buffer,
        soff: usize,
        sn: usize,
        to: usize,
        rbuf: &Buffer,
        roff: usize,
        rn: usize,
        from: usize,
        tag: u64,
    ) {
        let r = self.irecv_at(rbuf, roff, rn, Some(from), Some(tag));
        let s = self.isend_at(sbuf, soff, sn, to, tag);
        r.wait(self.world.thread());
        s.wait(self.world.thread());
    }

    /// Ring allreduce within the group (works for any group size).
    pub fn allreduce_ring(&self, buf: &Buffer, n: usize, op: ReduceOp) {
        let p = self.size();
        if p == 1 {
            return;
        }
        assert_eq!(n % (4 * p), 0, "n must be a multiple of 4*group size");
        let block = n / p;
        let tmp = self.world.scratch(block, !buf.is_synthetic(), 32);
        let right = (self.local_rank + 1) % p;
        let left = (self.local_rank + p - 1) % p;
        const TAG: u64 = 1 << 30;
        for s in 0..p - 1 {
            let send_block = (self.local_rank + p - s) % p;
            let recv_block = (self.local_rank + p - s - 1) % p;
            self.sendrecv(
                buf,
                send_block * block,
                block,
                right,
                &tmp,
                0,
                block,
                left,
                TAG + s as u64,
            );
            self.world
                .reduce_local(op, &tmp, 0, buf, recv_block * block, block);
        }
        for s in 0..p - 1 {
            let send_block = (self.local_rank + 1 + p - s) % p;
            let recv_block = (self.local_rank + p - s) % p;
            self.sendrecv(
                buf,
                send_block * block,
                block,
                right,
                buf,
                recv_block * block,
                block,
                left,
                TAG + (1 << 10) + s as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use mpx_gpu::reduce::{bytes_f32, f32_bytes};
    use mpx_topo::presets;
    use mpx_ucx::UcxConfig;
    use std::sync::Arc;

    #[test]
    fn split_assigns_local_ranks() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let out = w.run(4, |r| {
            let colors = [0u32, 1, 0, 1];
            let sub = SubComm::split(&r, &colors);
            (r.rank, sub.rank(), sub.size())
        });
        assert_eq!(out, vec![(0, 0, 2), (1, 0, 2), (2, 1, 2), (3, 1, 2)]);
    }

    #[test]
    fn groups_exchange_independently() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let out = w.run(4, |r| {
            let colors = [0u32, 1, 0, 1];
            let sub = SubComm::split(&r, &colors);
            let peer = 1 - sub.rank();
            // Both groups use THE SAME tag; the salt keeps them apart.
            let sbuf = r.alloc_bytes(vec![(r.rank * 10 + 1) as u8; 8]);
            let rbuf = r.alloc_zeroed(8);
            sub.sendrecv(&sbuf, 0, 8, peer, &rbuf, 0, 8, peer, 7);
            rbuf.to_vec().unwrap()[0]
        });
        // Group 0 = {0, 2}: world rank 0 hears from 2 (21), rank 2 from 0 (1).
        // Group 1 = {1, 3}: world rank 1 hears from 3 (31), rank 3 from 1 (11).
        assert_eq!(out, vec![21, 31, 1, 11]);
    }

    #[test]
    fn two_groups_run_allreduce_concurrently() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        let elems = 64usize;
        let out = w.run(4, move |r| {
            let colors = [0u32, 0, 1, 1];
            let sub = SubComm::split(&r, &colors);
            let vals = vec![(sub.rank() + 1) as f32; elems];
            let buf = r.alloc_bytes(f32_bytes(&vals));
            sub.allreduce_ring(&buf, elems * 4, ReduceOp::Sum);
            bytes_f32(&buf.to_vec().unwrap())
        });
        // Each 2-rank group sums 1 + 2 = 3 in every element.
        for (rank, got) in out.iter().enumerate() {
            assert!(
                got.iter().all(|&v| v == 3.0),
                "rank {rank}: {:?}",
                &got[..2]
            );
        }
    }

    #[test]
    fn tenant_groups_contend_but_complete() {
        // The shared-node scenario: two tenants, each allreducing its own
        // gradients over its own GPU pair, simultaneously.
        let w = World::new(
            Arc::new(presets::beluga()),
            UcxConfig {
                selection: mpx_topo::PathSelection::THREE_GPUS,
                ..UcxConfig::default()
            },
        );
        let n = 8 << 20;
        let times = w.run(4, move |r| {
            let colors = [0u32, 0, 1, 1];
            let sub = SubComm::split(&r, &colors);
            let buf = r.alloc(n);
            r.barrier();
            let t0 = r.now();
            for _ in 0..3 {
                sub.allreduce_ring(&buf, n, ReduceOp::Sum);
            }
            r.now().secs_since(t0) / 3.0
        });
        // Both tenants make progress in comparable time (fair fabric).
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.25, "tenant imbalance: {times:?}");
    }

    // The assert fires inside a rank thread; World::run rethrows as
    // "rank N panicked".
    #[test]
    #[should_panic(expected = "panicked")]
    fn wrong_color_table_rejected() {
        let w = World::new(Arc::new(presets::beluga()), UcxConfig::default());
        w.run(2, |r| {
            let _ = SubComm::split(&r, &[0u32; 5]);
        });
    }
}
