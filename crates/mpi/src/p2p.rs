//! Point-to-point messaging: non-blocking requests and tag matching.
//!
//! The matching engine implements MPI semantics: a receive posted at rank
//! `d` matches the oldest send targeting `d` whose source and tag satisfy
//! the receive's (possibly wildcard) source/tag. Whichever side arrives
//! second triggers the actual data movement through the UCX context's
//! multi-path PUT; both requests complete when the whole message has
//! landed (one-sided cuda_ipc style, paper Section 2.1).

use mpx_gpu::Buffer;
use mpx_sim::{SimThread, Waker};
use mpx_ucx::UcxContext;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Wildcard source for receives (MPI_ANY_SOURCE).
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag for receives (MPI_ANY_TAG).
pub const ANY_TAG: Option<u64> = None;

/// The tag space reserved for library internals. Application tags
/// should stay **below** this bound; bits 44 and above are used by the
/// collectives (bits 50–60), sub-communicator salts (bits 44+), and
/// internal barriers (bit 60). Matching is exact, so a collision would
/// only occur if an application deliberately crafted tags in this
/// range.
pub const MAX_APP_TAG: u64 = 1 << 44;

/// A non-blocking communication request.
#[derive(Debug, Clone)]
pub struct Request {
    done: Waker,
    status: Arc<OnceLock<MessageStatus>>,
}

/// What a completed receive matched (MPI_Status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageStatus {
    /// The sending rank.
    pub source: usize,
    /// The matched tag.
    pub tag: u64,
    /// Bytes transferred.
    pub len: usize,
}

impl Request {
    pub(crate) fn new(name: String) -> Request {
        Request {
            done: Waker::new(name),
            status: Arc::new(OnceLock::new()),
        }
    }

    pub(crate) fn waker(&self) -> &Waker {
        &self.done
    }

    pub(crate) fn status_cell(&self) -> Arc<OnceLock<MessageStatus>> {
        self.status.clone()
    }

    /// Blocks the simulated thread until the request completes.
    pub fn wait(&self, thread: &SimThread) {
        thread.wait(&self.done);
    }

    /// Blocks until completion **or** virtual time `deadline`, whichever
    /// comes first. A peer stalled on a dead link then surfaces as an
    /// `Err` instead of hanging the rank thread (and the test run)
    /// forever.
    pub fn wait_deadline(
        &self,
        thread: &SimThread,
        deadline: mpx_sim::SimTime,
    ) -> Result<(), mpx_ucx::TimedOut> {
        if thread.wait_until(&self.done, deadline) {
            Ok(())
        } else {
            Err(mpx_ucx::TimedOut { deadline })
        }
    }

    /// Blocks until completion and returns the matched status
    /// (meaningful for receives — this is `MPI_Wait` with a status).
    pub fn wait_status(&self, thread: &SimThread) -> MessageStatus {
        self.wait(thread);
        *self
            .status
            .get()
            .expect("completed request has a recorded status")
    }

    /// The matched status, if the request has been matched yet.
    pub fn status(&self) -> Option<MessageStatus> {
        self.status.get().copied()
    }

    /// Non-consuming completion check (MPI_Test-like; callback drivers).
    pub fn is_complete(&self) -> bool {
        self.done.is_signaled()
    }
}

/// Waits for every request (MPI_Waitall).
pub fn waitall(thread: &SimThread, requests: &[Request]) {
    for r in requests {
        r.wait(thread);
    }
}

/// [`waitall`] with a virtual-time deadline shared by all requests.
/// Stops at the first request still pending at the deadline.
pub fn waitall_deadline(
    thread: &SimThread,
    requests: &[Request],
    deadline: mpx_sim::SimTime,
) -> Result<(), mpx_ucx::TimedOut> {
    for r in requests {
        r.wait_deadline(thread, deadline)?;
    }
    Ok(())
}

pub(crate) struct PostedSend {
    pub from: usize,
    pub to: usize,
    pub tag: u64,
    pub buf: Buffer,
    pub off: usize,
    pub n: usize,
    pub done: Waker,
    pub status: Arc<OnceLock<MessageStatus>>,
}

pub(crate) struct PostedRecv {
    pub at: usize,
    pub src: Option<usize>,
    pub tag: Option<u64>,
    pub buf: Buffer,
    pub off: usize,
    pub n: usize,
    pub done: Waker,
    pub status: Arc<OnceLock<MessageStatus>>,
}

impl PostedRecv {
    fn matches(&self, s: &PostedSend) -> bool {
        self.at == s.to
            && self.src.is_none_or(|src| src == s.from)
            && self.tag.is_none_or(|tag| tag == s.tag)
    }
}

/// Shared matching state for one communicator.
pub(crate) struct Matching {
    state: Mutex<MatchState>,
}

#[derive(Default)]
struct MatchState {
    sends: VecDeque<PostedSend>,
    recvs: VecDeque<PostedRecv>,
}

impl Matching {
    pub fn new() -> Matching {
        Matching {
            state: Mutex::new(MatchState::default()),
        }
    }

    /// Number of unmatched entries (diagnostics / leak tests).
    pub fn pending(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.sends.len(), st.recvs.len())
    }

    pub fn post_send(&self, ctx: &UcxContext, send: PostedSend) {
        let matched = {
            let mut st = self.state.lock();
            match st.recvs.iter().position(|r| r.matches(&send)) {
                Some(i) => Some(st.recvs.remove(i).expect("index valid")),
                None => {
                    st.sends.push_back(send);
                    return;
                }
            }
        };
        // Lock released: start the transfer outside the matching lock.
        let recv = matched.expect("checked above");
        start_transfer(ctx, &send, &recv);
    }

    pub fn post_recv(&self, ctx: &UcxContext, recv: PostedRecv) {
        let matched = {
            let mut st = self.state.lock();
            match st.sends.iter().position(|s| recv.matches(s)) {
                Some(i) => Some(st.sends.remove(i).expect("index valid")),
                None => {
                    st.recvs.push_back(recv);
                    return;
                }
            }
        };
        let send = matched.expect("checked above");
        start_transfer(ctx, &send, &recv);
    }
}

fn start_transfer(ctx: &UcxContext, send: &PostedSend, recv: &PostedRecv) {
    let status = MessageStatus {
        source: send.from,
        tag: send.tag,
        len: send.n,
    };
    let _ = send.status.set(status);
    let _ = recv.status.set(status);
    assert!(
        recv.n >= send.n,
        "receive buffer ({} bytes) smaller than message ({} bytes) \
         [send {}→{} tag {}]",
        recv.n,
        send.n,
        send.from,
        send.to,
        send.tag
    );
    let notify = [send.done.clone(), recv.done.clone()];
    if send.n == 0 {
        // Zero-byte messages synchronize without moving data; charge one
        // rendezvous.
        let rendezvous = ctx.runtime().engine().topology().overheads.rendezvous;
        for w in &notify {
            let w = w.clone();
            ctx.runtime()
                .engine()
                .schedule_in(rendezvous, mpx_sim::OnComplete::Signal(w));
        }
        return;
    }
    ctx.put_async_at(&send.buf, send.off, &recv.buf, recv.off, send.n, &notify)
        .unwrap_or_else(|e| {
            panic!(
                "transfer {}→{} tag {} failed: {e}",
                send.from, send.to, send.tag
            )
        });
}
