//! The communicator: thread-per-rank execution over the simulated node.
//!
//! [`World::run`] registers every rank with the virtual clock *before*
//! spawning any of them (the quorum rule of `mpx-sim`), runs the closure
//! on one OS thread per rank, and joins. Each rank owns one GPU, in id
//! order — the standard one-process-per-GPU MPI launch.

use crate::p2p::{Matching, PostedRecv, PostedSend, Request};
use mpx_gpu::{Buffer, GpuRuntime, ReduceOp};
use mpx_sim::{Engine, SimThread, SimTime};
use mpx_topo::units::Secs;
use mpx_topo::{DeviceId, Topology};
use mpx_ucx::{UcxConfig, UcxContext};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A simulated MPI world over one multi-GPU node.
pub struct World {
    ctx: UcxContext,
    matching: Arc<Matching>,
}

impl World {
    /// Builds a world over `topo` with the given transport configuration.
    pub fn new(topo: Arc<Topology>, cfg: UcxConfig) -> World {
        let rt = GpuRuntime::new(Engine::new(topo));
        World::over(rt, cfg)
    }

    /// Builds a world over an existing runtime (sharing its virtual
    /// clock and counters).
    pub fn over(rt: GpuRuntime, cfg: UcxConfig) -> World {
        World {
            ctx: UcxContext::new(rt, cfg),
            matching: Arc::new(Matching::new()),
        }
    }

    /// The transport context.
    pub fn context(&self) -> &UcxContext {
        &self.ctx
    }

    /// The simulation engine.
    pub fn engine(&self) -> &Engine {
        self.ctx.runtime().engine()
    }

    /// Unmatched (sends, recvs) — nonzero after a run indicates a leak.
    pub fn pending_messages(&self) -> (usize, usize) {
        self.matching.pending()
    }

    /// Runs `f` on `nranks` rank threads; returns their results in rank
    /// order. Rank `i` owns GPU `i`.
    ///
    /// # Panics
    /// Panics if `nranks` exceeds the GPU count, or if a rank panics
    /// (e.g. a simulated deadlock).
    pub fn run<R, F>(&self, nranks: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Rank) -> R + Send + Sync + 'static,
    {
        let gpus = self.engine().topology().gpus();
        assert!(
            nranks <= gpus.len(),
            "{nranks} ranks but only {} GPUs",
            gpus.len()
        );
        // Register every rank before any thread starts (quorum rule).
        let ranks: Vec<Rank> = (0..nranks)
            .map(|i| Rank {
                rank: i,
                size: nranks,
                device: gpus[i],
                thread: self.engine().register_thread(format!("rank{i}")),
                ctx: self.ctx.clone(),
                matching: self.matching.clone(),
                scratch: Mutex::new(HashMap::new()),
            })
            .collect();
        let f = Arc::new(f);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|r| {
                let f = f.clone();
                std::thread::Builder::new()
                    .name(format!("mpx-rank{}", r.rank))
                    .spawn(move || f(r))
                    .expect("spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| h.join().unwrap_or_else(|_| panic!("rank {i} panicked")))
            .collect()
    }
}

/// A rank's handle: its identity, its GPU, and the blocking communication
/// API. Lives on the rank's own OS thread.
pub struct Rank {
    /// This rank's index.
    pub rank: usize,
    /// World size.
    pub size: usize,
    /// The GPU this rank owns.
    pub device: DeviceId,
    thread: SimThread,
    ctx: UcxContext,
    matching: Arc<Matching>,
    scratch: Mutex<HashMap<(usize, bool, usize), Buffer>>,
}

impl Rank {
    /// The simulated-thread handle (for waiting on custom wakers).
    pub fn thread(&self) -> &SimThread {
        &self.thread
    }

    /// The transport context.
    pub fn context(&self) -> &UcxContext {
        &self.ctx
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.thread.now()
    }

    /// Allocates a synthetic buffer on this rank's GPU.
    pub fn alloc(&self, n: usize) -> Buffer {
        self.ctx.runtime().alloc(self.device, n)
    }

    /// Allocates a real buffer holding `data` on this rank's GPU.
    pub fn alloc_bytes(&self, data: Vec<u8>) -> Buffer {
        self.ctx.runtime().alloc_bytes(self.device, data)
    }

    /// Allocates a zero-filled real buffer on this rank's GPU.
    pub fn alloc_zeroed(&self, n: usize) -> Buffer {
        self.ctx.runtime().alloc_zeroed(self.device, n)
    }

    /// A reusable scratch buffer of `n` bytes (real iff `real`), cached
    /// per rank like a registered temporary pool — repeated collective
    /// calls reuse it, so its IPC handle stays warm instead of paying
    /// the open cost on every invocation. `slot` distinguishes buffers
    /// that must coexist (e.g. a pack and an unpack staging area of the
    /// same size).
    pub fn scratch(&self, n: usize, real: bool, slot: usize) -> Buffer {
        self.scratch
            .lock()
            .entry((n, real, slot))
            .or_insert_with(|| {
                if real {
                    self.alloc_zeroed(n)
                } else {
                    self.alloc(n)
                }
            })
            .clone()
    }

    // --- point-to-point ---------------------------------------------------

    /// Non-blocking send of `buf[off..off+n]` to `to` with `tag`.
    pub fn isend_at(&self, buf: &Buffer, off: usize, n: usize, to: usize, tag: u64) -> Request {
        assert!(to < self.size, "send to rank {to} of {}", self.size);
        let req = Request::new(format!("send r{}->r{to} t{tag}", self.rank));
        self.matching.post_send(
            &self.ctx,
            PostedSend {
                from: self.rank,
                to,
                tag,
                buf: buf.clone(),
                off,
                n,
                done: req.waker().clone(),
                status: req.status_cell(),
            },
        );
        req
    }

    /// Non-blocking whole-buffer-prefix send.
    pub fn isend(&self, buf: &Buffer, n: usize, to: usize, tag: u64) -> Request {
        self.isend_at(buf, 0, n, to, tag)
    }

    /// Non-blocking receive into `buf[off..off+n]`. `from`/`tag` may be
    /// wildcards ([`crate::p2p::ANY_SOURCE`], [`crate::p2p::ANY_TAG`]).
    pub fn irecv_at(
        &self,
        buf: &Buffer,
        off: usize,
        n: usize,
        from: Option<usize>,
        tag: Option<u64>,
    ) -> Request {
        let req = Request::new(format!("recv r{}<-{from:?} t{tag:?}", self.rank));
        self.matching.post_recv(
            &self.ctx,
            PostedRecv {
                at: self.rank,
                src: from,
                tag,
                buf: buf.clone(),
                off,
                n,
                done: req.waker().clone(),
                status: req.status_cell(),
            },
        );
        req
    }

    /// Non-blocking whole-buffer-prefix receive.
    pub fn irecv(&self, buf: &Buffer, n: usize, from: Option<usize>, tag: Option<u64>) -> Request {
        self.irecv_at(buf, 0, n, from, tag)
    }

    /// Blocking send.
    pub fn send(&self, buf: &Buffer, n: usize, to: usize, tag: u64) {
        self.isend(buf, n, to, tag).wait(&self.thread);
    }

    /// Blocking receive.
    pub fn recv(&self, buf: &Buffer, n: usize, from: Option<usize>, tag: Option<u64>) {
        self.irecv(buf, n, from, tag).wait(&self.thread);
    }

    /// Deadlock-free combined send+receive (MPI_Sendrecv).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        sbuf: &Buffer,
        soff: usize,
        sn: usize,
        to: usize,
        rbuf: &Buffer,
        roff: usize,
        rn: usize,
        from: usize,
        tag: u64,
    ) {
        let r = self.irecv_at(rbuf, roff, rn, Some(from), Some(tag));
        let s = self.isend_at(sbuf, soff, sn, to, tag);
        r.wait(&self.thread);
        s.wait(&self.thread);
    }

    /// Dissemination barrier (zero-byte message rounds).
    pub fn barrier(&self) {
        const BARRIER_TAG_BASE: u64 = 1 << 60;
        let dummy = self.alloc(0);
        let mut k = 1usize;
        let mut round = 0u64;
        while k < self.size {
            let to = (self.rank + k) % self.size;
            let from = (self.rank + self.size - k) % self.size;
            let tag = BARRIER_TAG_BASE + round;
            let r = self.irecv(&dummy, 0, Some(from), Some(tag));
            let s = self.isend(&dummy, 0, to, tag);
            r.wait(&self.thread);
            s.wait(&self.thread);
            k <<= 1;
            round += 1;
        }
    }

    /// Runs a reduction kernel `dst[doff..doff+n] op= src[soff..]` on this
    /// rank's GPU, charging the kernel cost model, and waits for it.
    pub fn reduce_local(
        &self,
        op: ReduceOp,
        src: &Buffer,
        soff: usize,
        dst: &Buffer,
        doff: usize,
        n: usize,
    ) {
        let cost = self.ctx.runtime().kernel_cost().cost(n);
        let s = self.ctx.runtime().stream(self.device);
        let (src, dst) = (src.clone(), dst.clone());
        s.kernel(
            cost,
            Some(Box::new(move || {
                mpx_gpu::reduce::apply(op, &src, soff, &dst, doff, n);
            })),
            format!("reduce r{}", self.rank),
        );
        s.synchronize(&self.thread);
    }

    /// Runs a local device-to-device pack/copy (e.g. Bruck rotations),
    /// charging kernel cost for the bytes touched, and waits for it.
    pub fn local_copy(&self, src: &Buffer, soff: usize, dst: &Buffer, doff: usize, n: usize) {
        let cost = self.ctx.runtime().kernel_cost().cost_copy(n);
        let s = self.ctx.runtime().stream(self.device);
        let (src, dst) = (src.clone(), dst.clone());
        s.kernel(
            cost,
            Some(Box::new(move || {
                Buffer::transfer(&src, soff, &dst, doff, n);
            })),
            format!("pack r{}", self.rank),
        );
        s.synchronize(&self.thread);
    }

    /// Sleeps in virtual time (compute phases in app-level examples).
    pub fn compute(&self, d: Secs) {
        self.thread.sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2p::waitall;
    use mpx_topo::presets;
    use mpx_topo::units::MIB;

    fn world() -> World {
        World::new(Arc::new(presets::beluga()), UcxConfig::default())
    }

    #[test]
    fn two_rank_send_recv_moves_data() {
        let w = world();
        let results = w.run(2, |r| {
            let n = MIB;
            if r.rank == 0 {
                let data: Vec<u8> = (0..n).map(|i| (i % 256) as u8).collect();
                let buf = r.alloc_bytes(data);
                r.send(&buf, n, 1, 7);
                None
            } else {
                let buf = r.alloc_zeroed(n);
                r.recv(&buf, n, Some(0), Some(7));
                buf.to_vec()
            }
        });
        let received = results[1].as_ref().unwrap();
        assert_eq!(received.len(), MIB);
        assert!(received
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (i % 256) as u8));
        assert_eq!(w.pending_messages(), (0, 0));
    }

    #[test]
    fn recv_before_send_matches() {
        let w = world();
        let times = w.run(2, |r| {
            if r.rank == 1 {
                let buf = r.alloc_zeroed(4);
                // Receiver posts first (it has nothing else to do).
                r.recv(&buf, 4, Some(0), Some(1));
            } else {
                // Sender dawdles, then sends.
                r.compute(1e-3);
                let buf = r.alloc_bytes(vec![9, 9, 9, 9]);
                r.send(&buf, 4, 1, 1);
            }
            r.now().as_secs()
        });
        // The receiver cannot finish before the sender started sending.
        assert!(times[1] >= 1e-3);
    }

    #[test]
    fn wildcard_receive_matches_any_source_and_tag() {
        let w = world();
        let results = w.run(3, |r| {
            if r.rank == 0 {
                let a = r.alloc_zeroed(4);
                let b = r.alloc_zeroed(4);
                r.recv(&a, 4, crate::p2p::ANY_SOURCE, crate::p2p::ANY_TAG);
                r.recv(&b, 4, crate::p2p::ANY_SOURCE, crate::p2p::ANY_TAG);
                let mut got = vec![a.to_vec().unwrap()[0], b.to_vec().unwrap()[0]];
                got.sort_unstable();
                Some(got)
            } else {
                let buf = r.alloc_bytes(vec![r.rank as u8; 4]);
                r.send(&buf, 4, 0, 100 + r.rank as u64);
                None
            }
        });
        assert_eq!(results[0].as_ref().unwrap(), &vec![1, 2]);
    }

    #[test]
    fn tag_matching_keeps_streams_separate() {
        let w = world();
        let results = w.run(2, |r| {
            if r.rank == 0 {
                let a = r.alloc_bytes(vec![1; 4]);
                let b = r.alloc_bytes(vec![2; 4]);
                // Send tag 2 first, then tag 1.
                let s1 = r.isend(&b, 4, 1, 2);
                let s2 = r.isend(&a, 4, 1, 1);
                waitall(r.thread(), &[s1, s2]);
                None
            } else {
                let want1 = r.alloc_zeroed(4);
                let want2 = r.alloc_zeroed(4);
                r.recv(&want1, 4, Some(0), Some(1));
                r.recv(&want2, 4, Some(0), Some(2));
                Some((want1.to_vec().unwrap()[0], want2.to_vec().unwrap()[0]))
            }
        });
        assert_eq!(results[1], Some((1, 2)));
    }

    #[test]
    fn wildcard_receive_reports_matched_status() {
        let w = world();
        let results = w.run(3, |r| {
            if r.rank == 0 {
                let buf = r.alloc_zeroed(8);
                let req = r.irecv(&buf, 8, crate::p2p::ANY_SOURCE, crate::p2p::ANY_TAG);
                let status = req.wait_status(r.thread());
                Some(status)
            } else {
                // Only rank 2 sends.
                if r.rank == 2 {
                    let buf = r.alloc_bytes(vec![5; 8]);
                    r.send(&buf, 8, 0, 77);
                }
                None
            }
        });
        let status = results[0].unwrap();
        assert_eq!(status.source, 2);
        assert_eq!(status.tag, 77);
        assert_eq!(status.len, 8);
    }

    #[test]
    fn status_absent_before_match() {
        let w = world();
        w.run(2, |r| {
            if r.rank == 0 {
                let buf = r.alloc_zeroed(4);
                let req = r.irecv(&buf, 4, Some(1), Some(1));
                assert!(req.status().is_none(), "unmatched recv has no status");
                r.compute(1e-4); // give the sender time
                req.wait(r.thread());
                assert!(req.status().is_some());
            } else {
                r.compute(5e-5);
                let buf = r.alloc(4);
                r.send(&buf, 4, 0, 1);
            }
        });
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let w = world();
        let results = w.run(2, |r| {
            let peer = 1 - r.rank;
            let sbuf = r.alloc_bytes(vec![r.rank as u8 + 10; 8]);
            let rbuf = r.alloc_zeroed(8);
            r.sendrecv(&sbuf, 0, 8, peer, &rbuf, 0, 8, peer, 5);
            rbuf.to_vec().unwrap()[0]
        });
        assert_eq!(results, vec![11, 10]);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let w = world();
        let times = w.run(4, |r| {
            // Rank i computes i milliseconds, then everyone barriers.
            r.compute(r.rank as f64 * 1e-3);
            r.barrier();
            r.now().as_secs()
        });
        // All ranks leave the barrier at (or after) the slowest arrival.
        for t in &times {
            assert!(*t >= 3e-3, "barrier exited early: {times:?}");
        }
    }

    #[test]
    fn window_of_nonblocking_sends_completes() {
        let w = world();
        let n = 4 * MIB;
        let window = 8;
        let bw = w.run(2, move |r| {
            if r.rank == 0 {
                let bufs: Vec<_> = (0..window).map(|_| r.alloc(n)).collect();
                let t0 = r.now();
                let reqs: Vec<_> = (0..window)
                    .map(|i| r.isend(&bufs[i], n, 1, i as u64))
                    .collect();
                waitall(r.thread(), &reqs);
                let dt = r.now().secs_since(t0);
                Some((window * n) as f64 / dt)
            } else {
                let bufs: Vec<_> = (0..window).map(|_| r.alloc(n)).collect();
                let reqs: Vec<_> = (0..window)
                    .map(|i| r.irecv(&bufs[i], n, Some(0), Some(i as u64)))
                    .collect();
                waitall(r.thread(), &reqs);
                None
            }
        });
        let bw = bw[0].unwrap();
        // Multi-path on Beluga: comfortably above the 48 GB/s direct link.
        assert!(bw > 60e9, "windowed bandwidth {:.1} GB/s", bw / 1e9);
    }

    #[test]
    fn zero_byte_message_synchronizes() {
        let w = world();
        w.run(2, |r| {
            let buf = r.alloc(0);
            if r.rank == 0 {
                r.send(&buf, 0, 1, 9);
            } else {
                r.recv(&buf, 0, Some(0), Some(9));
            }
        });
        assert_eq!(w.pending_messages(), (0, 0));
    }

    #[test]
    fn reduce_local_charges_time_and_computes() {
        let w = world();
        let out = w.run(1, |r| {
            let a = r.alloc_bytes(mpx_gpu::reduce::f32_bytes(&[1.0, 2.0]));
            let b = r.alloc_bytes(mpx_gpu::reduce::f32_bytes(&[10.0, 20.0]));
            let t0 = r.now();
            r.reduce_local(ReduceOp::Sum, &a, 0, &b, 0, 8);
            let dt = r.now().secs_since(t0);
            (mpx_gpu::reduce::bytes_f32(&b.to_vec().unwrap()), dt)
        });
        let (vals, dt) = &out[0];
        assert_eq!(vals, &vec![11.0, 22.0]);
        assert!(*dt > 0.0, "kernel time must be charged");
    }

    #[test]
    #[should_panic(expected = "ranks but only")]
    fn too_many_ranks_panics() {
        let w = world();
        w.run(5, |_| ());
    }

    // The assert fires inside a rank thread; World::run rethrows as
    // "rank N panicked".
    #[test]
    #[should_panic(expected = "panicked")]
    fn oversized_send_into_small_recv_panics() {
        let w = world();
        w.run(2, |r| {
            if r.rank == 0 {
                let buf = r.alloc(8);
                r.send(&buf, 8, 1, 0);
            } else {
                let buf = r.alloc(4);
                r.recv(&buf, 4, Some(0), Some(0));
            }
        });
    }
}
