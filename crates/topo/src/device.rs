//! Devices: GPUs, host memory domains, and their NUMA placement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a device within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the raw index, usable to address per-device tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// NUMA domain a device belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NumaNode(pub u16);

impl fmt::Display for NumaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "numa{}", self.0)
    }
}

/// GPU generation, used by presets and reporting. The model itself only
/// consumes link parameters, so adding a model here never changes results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA V100 (Beluga nodes, NVLink-V2).
    V100,
    /// NVIDIA A100 (Narval nodes, NVLink-V3).
    A100,
    /// A device whose characteristics come purely from its links.
    Generic,
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuModel::V100 => write!(f, "V100"),
            GpuModel::A100 => write!(f, "A100"),
            GpuModel::Generic => write!(f, "GPU"),
        }
    }
}

/// What a device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A GPU accelerator able to source, sink, and stage transfers.
    Gpu(GpuModel),
    /// A host memory domain (one per NUMA node); staging target for
    /// host-staged paths.
    HostMemory,
    /// A network interface (IB HCA / RDMA NIC); endpoint of inter-node
    /// rails. RDMA reads/writes flow *through* NICs without staging.
    Nic,
}

impl DeviceKind {
    /// True for GPU devices.
    #[inline]
    pub fn is_gpu(self) -> bool {
        matches!(self, DeviceKind::Gpu(_))
    }

    /// True for host memory domains.
    #[inline]
    pub fn is_host(self) -> bool {
        matches!(self, DeviceKind::HostMemory)
    }

    /// True for network interfaces.
    #[inline]
    pub fn is_nic(self) -> bool {
        matches!(self, DeviceKind::Nic)
    }
}

/// A device node in the topology graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Identifier (index into [`crate::Topology::devices`]).
    pub id: DeviceId,
    /// GPU, host memory, or NIC.
    pub kind: DeviceKind,
    /// NUMA domain the device lives in.
    pub numa: NumaNode,
    /// Which physical node (machine) the device belongs to; 0 for
    /// single-node topologies.
    #[serde(default)]
    pub node: u16,
    /// Human-readable name (`gpu0`, `host-mem0`, ...).
    pub name: String,
}

impl Device {
    /// True if the device is a GPU.
    #[inline]
    pub fn is_gpu(&self) -> bool {
        self.kind.is_gpu()
    }

    /// True if the device is a host memory domain.
    #[inline]
    pub fn is_host(&self) -> bool {
        self.kind.is_host()
    }

    /// True if the device is a NIC.
    #[inline]
    pub fn is_nic(&self) -> bool {
        self.kind.is_nic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_display_and_index() {
        let id = DeviceId(3);
        assert_eq!(id.to_string(), "dev3");
        assert_eq!(id.index(), 3);
    }

    #[test]
    fn kind_predicates() {
        assert!(DeviceKind::Gpu(GpuModel::V100).is_gpu());
        assert!(!DeviceKind::Gpu(GpuModel::A100).is_host());
        assert!(DeviceKind::HostMemory.is_host());
        assert!(!DeviceKind::HostMemory.is_gpu());
    }

    #[test]
    fn device_predicates_follow_kind() {
        let gpu = Device {
            id: DeviceId(0),
            kind: DeviceKind::Gpu(GpuModel::Generic),
            numa: NumaNode(0),
            node: 0,
            name: "gpu0".into(),
        };
        assert!(gpu.is_gpu());
        assert!(!gpu.is_host());
    }

    #[test]
    fn gpu_model_display() {
        assert_eq!(GpuModel::V100.to_string(), "V100");
        assert_eq!(GpuModel::A100.to_string(), "A100");
        assert_eq!(GpuModel::Generic.to_string(), "GPU");
    }

    #[test]
    fn serde_roundtrip() {
        let dev = Device {
            id: DeviceId(7),
            kind: DeviceKind::HostMemory,
            numa: NumaNode(2),
            node: 1,
            name: "host-mem2".into(),
        };
        let json = serde_json::to_string(&dev).unwrap();
        let back: Device = serde_json::from_str(&json).unwrap();
        assert_eq!(dev, back);
    }
}
