//! # mpx-topo — intra-node multi-GPU topology
//!
//! This crate describes the *hardware substrate* the performance model and
//! the simulator operate on: GPUs, host (NUMA) memory domains, and the
//! heterogeneous links between them (NVLink, PCIe, UPI, DRAM channels).
//!
//! It provides:
//!
//! * [`Topology`] — a directed multigraph of [`Device`]s and [`Link`]s,
//!   built through [`TopologyBuilder`];
//! * [`presets`] — the two clusters evaluated in the paper (Beluga with
//!   4×V100/NVLink-V2 and Narval with 4×A100/NVLink-V3) plus auxiliary
//!   configurations used by tests and ablations;
//! * [`path`] — enumeration of the candidate transfer paths between two
//!   GPUs: **direct**, **GPU-staged** and **host-staged** (Section 3.1 of
//!   the paper);
//! * [`params`] — extraction of the per-path Hockney parameters
//!   `(αᵢ, βᵢ, α′ᵢ, β′ᵢ, εᵢ)` consumed by the analytical model.
//!
//! Everything here is plain data: no simulation state, no interior
//! mutability, `Send + Sync` throughout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod dot;
pub mod internode;
pub mod link;
pub mod overhead;
pub mod params;
pub mod path;
pub mod presets;
pub mod topology;
pub mod units;
pub mod validate;

pub use device::{Device, DeviceId, DeviceKind, GpuModel, NumaNode};
pub use dot::to_dot;
pub use internode::enumerate_rails;
pub use link::{Link, LinkId, LinkKind};
pub use overhead::OverheadModel;
pub use params::{LegParams, PathParams};
pub use path::{enumerate_paths_auto, Leg, PathKind, PathSelection, TransferPath};
pub use topology::{Topology, TopologyBuilder, TopologyError};
pub use units::{Bandwidth, Secs};
pub use validate::{validate, ValidationIssue};
