//! Links: directed, capacity-limited channels between devices.
//!
//! A physical full-duplex interconnect (e.g. an NVLink brick) is modelled
//! as **two directed links**, one per direction, each with the full
//! per-direction bandwidth. Contention between transfers flowing the same
//! direction over the same physical channel is then handled uniformly by
//! the simulator's max-min fair sharing; opposite directions do not
//! interfere, matching NVLink/PCIe full-duplex behaviour.
//!
//! Shared host resources (a NUMA domain's DRAM channel, the inter-socket
//! UPI) are also links: a flow's route simply traverses them, and the same
//! fairness machinery yields the host-side contention the paper observes
//! in bidirectional host-staged transfers (Observation 5).

use crate::device::DeviceId;
use crate::units::{Bandwidth, Secs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the raw index, usable to address per-link tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// The physical technology behind a link. Only used for reporting and
/// preset construction; the model and simulator consume `(bandwidth,
/// latency)` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// NVLink 2.0 (V100 era); ~25 GB/s per direction per sub-link.
    NvLinkV2,
    /// NVLink 3.0 (A100 era); ~25 GB/s per direction per sub-link.
    NvLinkV3,
    /// PCI Express (host ↔ GPU).
    Pcie,
    /// Inter-socket / inter-NUMA interconnect (UPI, xGMI, ...).
    Upi,
    /// A NUMA domain's DRAM channel; shared by all host-staged traffic
    /// that stages in this domain.
    HostDram,
    /// Anything else (tests, synthetic topologies).
    Custom,
}

impl LinkKind {
    /// True for direct GPU↔GPU interconnect generations.
    #[inline]
    pub fn is_nvlink(self) -> bool {
        matches!(self, LinkKind::NvLinkV2 | LinkKind::NvLinkV3)
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::NvLinkV2 => "NVLink-V2",
            LinkKind::NvLinkV3 => "NVLink-V3",
            LinkKind::Pcie => "PCIe",
            LinkKind::Upi => "UPI",
            LinkKind::HostDram => "DRAM",
            LinkKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A directed channel `src → dst`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (index into [`crate::Topology::links`]).
    pub id: LinkId,
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// Technology, for reporting.
    pub kind: LinkKind,
    /// Aggregate bandwidth in bytes/second for this direction. For multi
    /// sub-link interconnects this is `sub_links × per-sub-link bandwidth`.
    pub bandwidth: Bandwidth,
    /// Propagation + protocol latency of the channel in seconds.
    pub latency: Secs,
    /// Number of physical sub-links aggregated into this logical link
    /// (2 NVLink bricks per V100 pair on Beluga, 4 per A100 pair on
    /// Narval). Informational.
    pub sub_links: u32,
}

impl Link {
    /// Time for `bytes` to cross this link alone (Hockney on one link).
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> Secs {
        self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gb_per_s;

    fn sample() -> Link {
        Link {
            id: LinkId(0),
            src: DeviceId(0),
            dst: DeviceId(1),
            kind: LinkKind::NvLinkV2,
            bandwidth: gb_per_s(50.0),
            latency: 2e-6,
            sub_links: 2,
        }
    }

    #[test]
    fn transfer_time_is_hockney() {
        let l = sample();
        let t = l.transfer_time(50_000_000_000);
        // 50 GB over 50 GB/s = 1s, plus 2 µs latency.
        assert!((t - 1.000002).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn transfer_time_zero_bytes_is_latency() {
        let l = sample();
        assert!((l.transfer_time(0) - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn link_kind_nvlink_predicate() {
        assert!(LinkKind::NvLinkV2.is_nvlink());
        assert!(LinkKind::NvLinkV3.is_nvlink());
        assert!(!LinkKind::Pcie.is_nvlink());
        assert!(!LinkKind::HostDram.is_nvlink());
    }

    #[test]
    fn display_names() {
        assert_eq!(LinkKind::NvLinkV3.to_string(), "NVLink-V3");
        assert_eq!(LinkKind::Upi.to_string(), "UPI");
        assert_eq!(LinkId(4).to_string(), "link4");
    }
}
