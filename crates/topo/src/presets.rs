//! Cluster presets: the two systems evaluated in the paper plus synthetic
//! topologies used by tests and ablations.
//!
//! Bandwidths are *effective* per-direction figures (what a saturating
//! copy achieves), not marketing peaks; since we validate shapes and
//! ratios rather than absolute GB/s (see DESIGN.md §2), only their
//! relative magnitudes matter.

use crate::device::{GpuModel, NumaNode};
use crate::link::LinkKind;
use crate::overhead::OverheadModel;
use crate::topology::{Topology, TopologyBuilder};
use crate::units::{gb_per_s, micros, Bandwidth, Secs};

/// Beluga GPU node (paper Fig. 1a): four V100s in a single NUMA domain,
/// full NVLink-V2 mesh with **two sub-links per GPU pair** (~24 GB/s per
/// sub-link effective → 48 GB/s per pair per direction), PCIe Gen3 x16 to
/// host (~12 GB/s), one shared DRAM domain.
pub fn beluga() -> Topology {
    let mut b = TopologyBuilder::new("beluga");
    let numa = NumaNode(0);
    let gpus: Vec<_> = (0..4).map(|_| b.gpu(GpuModel::V100, numa)).collect();
    let hm = b.host_memory(numa);

    // NVLink-V2 full mesh, 2 sub-links per pair.
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.duplex_link(
                gpus[i],
                gpus[j],
                LinkKind::NvLinkV2,
                gb_per_s(48.0),
                micros(1.8),
                2,
            )
            .expect("beluga nvlink");
        }
    }
    // PCIe Gen3 x16 per GPU.
    for &g in &gpus {
        b.duplex_link(g, hm, LinkKind::Pcie, gb_per_s(12.0), micros(4.0), 1)
            .expect("beluga pcie");
    }
    // The NUMA domain's DRAM channel, shared by all host-staged traffic.
    b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(38.0), micros(0.1), 1)
        .expect("beluga dram");
    b.build()
}

/// Narval GPU node (paper Fig. 3): four A100s, full NVLink-V3 mesh with
/// **four sub-links per pair** (~96 GB/s per pair per direction), PCIe
/// Gen4 x16 (~24 GB/s), and *eight* NUMA domains — each GPU sits in its
/// own domain with a single memory channel, so host-staged transfers cross
/// an inter-socket (UPI-equivalent) link that both directions share.
pub fn narval() -> Topology {
    let mut b = TopologyBuilder::new("narval");
    let gpus: Vec<_> = (0..4)
        .map(|i| b.gpu(GpuModel::A100, NumaNode(i as u16)))
        .collect();
    let hms: Vec<_> = (0..4).map(|i| b.host_memory(NumaNode(i as u16))).collect();

    // NVLink-V3 full mesh, 4 sub-links per pair.
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.duplex_link(
                gpus[i],
                gpus[j],
                LinkKind::NvLinkV3,
                gb_per_s(96.0),
                micros(1.5),
                4,
            )
            .expect("narval nvlink");
        }
    }
    // PCIe Gen4 x16 per GPU, to the GPU's local NUMA domain.
    for i in 0..4 {
        b.duplex_link(
            gpus[i],
            hms[i],
            LinkKind::Pcie,
            gb_per_s(24.0),
            micros(4.0),
            1,
        )
        .expect("narval pcie");
    }
    // One memory channel per NUMA domain (paper: "a single memory
    // channel"), shared by everything staging there.
    for &hm in &hms {
        b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(19.0), micros(0.1), 1)
            .expect("narval dram");
    }
    // Inter-NUMA interconnect: shared capacity (coherent traffic contends
    // regardless of direction), the "extra transfer through UPI or
    // equivalent" of Observation 3. Tight enough that bidirectional
    // host-staged traffic (two H2D legs sharing one pool) throttles below
    // what a unidirectional probe measures — the Observation 5 effect.
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.shared_link(
                hms[i],
                hms[j],
                LinkKind::Upi,
                gb_per_s(16.0),
                micros(1.0),
                1,
            )
            .expect("narval upi");
        }
    }
    b.build()
}

/// A DGX-1V-like node: eight V100s in the hybrid cube-mesh. Each GPU has
/// six NVLink-V2 bricks; some pairs get two bricks (50 GB/s), some one
/// (25 GB/s), and cross-quad pairs like 0↔5 have **no direct link** and
/// must communicate purely through staged paths. Two NUMA domains (one
/// per quad) joined by a shared inter-socket link.
///
/// This preset exercises what the paper lists as future work: partial
/// meshes with heterogeneous per-pair bandwidth.
pub fn dgx1() -> Topology {
    let mut b = TopologyBuilder::new("dgx1");
    let gpus: Vec<_> = (0..8)
        .map(|i| b.gpu(GpuModel::V100, NumaNode((i / 4) as u16)))
        .collect();
    let hms: Vec<_> = (0..2).map(|i| b.host_memory(NumaNode(i as u16))).collect();

    // Hybrid cube-mesh brick assignment (DGX-1V):
    let double = [
        (0, 3),
        (1, 2),
        (4, 7),
        (5, 6),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    let single = [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 3),
        (4, 5),
        (4, 6),
        (5, 7),
        (6, 7),
    ];
    for &(i, j) in &double {
        b.duplex_link(
            gpus[i],
            gpus[j],
            LinkKind::NvLinkV2,
            gb_per_s(48.0),
            micros(1.8),
            2,
        )
        .expect("dgx1 double nvlink");
    }
    for &(i, j) in &single {
        b.duplex_link(
            gpus[i],
            gpus[j],
            LinkKind::NvLinkV2,
            gb_per_s(24.0),
            micros(1.8),
            1,
        )
        .expect("dgx1 single nvlink");
    }
    for (i, &g) in gpus.iter().enumerate() {
        b.duplex_link(
            g,
            hms[i / 4],
            LinkKind::Pcie,
            gb_per_s(12.0),
            micros(4.0),
            1,
        )
        .expect("dgx1 pcie");
    }
    for &hm in &hms {
        b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(38.0), micros(0.1), 1)
            .expect("dgx1 dram");
    }
    b.shared_link(
        hms[0],
        hms[1],
        LinkKind::Upi,
        gb_per_s(15.0),
        micros(1.0),
        1,
    )
    .expect("dgx1 qpi");
    b.build()
}

/// Two Beluga-style nodes joined by `rails` InfiniBand rails
/// (HDR-200-class: ~24 GB/s per direction, ~1.3 µs wire latency). Every
/// GPU can reach every local NIC over PCIe (GPUDirect RDMA); NIC `i` of
/// node 0 is wired to NIC `i` of node 1. The inter-node playground for
/// multi-rail transfers — the paper's future-work direction.
pub fn two_node_beluga(rails: usize) -> Topology {
    assert!(rails >= 1, "need at least one rail");
    let mut b = TopologyBuilder::new("two-node-beluga");
    let mut all_gpus = Vec::new();
    let mut all_nics: Vec<Vec<crate::DeviceId>> = Vec::new();
    for node in 0..2u16 {
        b.on_node(node);
        let numa = NumaNode(node);
        let gpus: Vec<_> = (0..4).map(|_| b.gpu(GpuModel::V100, numa)).collect();
        let hm = b.host_memory(numa);
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.duplex_link(
                    gpus[i],
                    gpus[j],
                    LinkKind::NvLinkV2,
                    gb_per_s(48.0),
                    micros(1.8),
                    2,
                )
                .expect("nvlink");
            }
        }
        for &g in &gpus {
            b.duplex_link(g, hm, LinkKind::Pcie, gb_per_s(12.0), micros(4.0), 1)
                .expect("pcie");
        }
        b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(38.0), micros(0.1), 1)
            .expect("dram");
        // NICs: each GPU reaches each local NIC over the PCIe fabric.
        let nics: Vec<_> = (0..rails).map(|_| b.nic(numa)).collect();
        for &g in &gpus {
            for &nic in &nics {
                b.duplex_link(g, nic, LinkKind::Pcie, gb_per_s(12.0), micros(2.0), 1)
                    .expect("gpu-nic pcie");
            }
        }
        all_gpus.extend(gpus);
        all_nics.push(nics);
    }
    // Wires: NIC i of node 0 <-> NIC i of node 1.
    for (&a, &b_nic) in all_nics[0].iter().zip(&all_nics[1]) {
        b.duplex_link(a, b_nic, LinkKind::Custom, gb_per_s(24.0), micros(1.3), 1)
            .expect("ib wire");
    }
    b.build()
}

/// A PCIe-only node: `n` GPUs hanging off one host domain with **no**
/// direct GPU links. Direct-path enumeration fails here, which exercises
/// the single-path fallback logic of the transport layer.
pub fn pcie_only(n: usize) -> Topology {
    let mut b = TopologyBuilder::new("pcie-only");
    let numa = NumaNode(0);
    let gpus: Vec<_> = (0..n).map(|_| b.gpu(GpuModel::Generic, numa)).collect();
    let hm = b.host_memory(numa);
    for &g in &gpus {
        b.duplex_link(g, hm, LinkKind::Pcie, gb_per_s(12.0), micros(4.0), 1)
            .expect("pcie");
    }
    b.shared_link(hm, hm, LinkKind::HostDram, gb_per_s(38.0), micros(0.1), 1)
        .expect("dram");
    b.build()
}

/// Parameters for [`synthetic`] topologies used in unit tests.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of GPUs (≥ 2; GPUs beyond the first two act as staging
    /// devices).
    pub gpus: usize,
    /// GPU↔GPU link bandwidth.
    pub nvlink_bw: Bandwidth,
    /// GPU↔GPU link latency.
    pub nvlink_lat: Secs,
    /// GPU↔host bandwidth.
    pub pcie_bw: Bandwidth,
    /// GPU↔host latency.
    pub pcie_lat: Secs,
    /// DRAM channel bandwidth.
    pub dram_bw: Bandwidth,
    /// Software overheads.
    pub overheads: OverheadModel,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            gpus: 4,
            nvlink_bw: gb_per_s(50.0),
            nvlink_lat: micros(2.0),
            pcie_bw: gb_per_s(10.0),
            pcie_lat: micros(5.0),
            dram_bw: gb_per_s(40.0),
            overheads: OverheadModel::zero(),
        }
    }
}

/// Builds a fully-connected synthetic node from `spec`. With
/// `OverheadModel::zero()` and round-number bandwidths, analytic
/// expectations in tests are exact.
pub fn synthetic(spec: SyntheticSpec) -> Topology {
    assert!(spec.gpus >= 2, "synthetic topology needs at least 2 GPUs");
    let mut b = TopologyBuilder::new("synthetic").overheads(spec.overheads);
    let numa = NumaNode(0);
    let gpus: Vec<_> = (0..spec.gpus)
        .map(|_| b.gpu(GpuModel::Generic, numa))
        .collect();
    let hm = b.host_memory(numa);
    for i in 0..spec.gpus {
        for j in (i + 1)..spec.gpus {
            b.duplex_link(
                gpus[i],
                gpus[j],
                LinkKind::Custom,
                spec.nvlink_bw,
                spec.nvlink_lat,
                1,
            )
            .expect("synthetic gpu link");
        }
    }
    for &g in &gpus {
        b.duplex_link(g, hm, LinkKind::Pcie, spec.pcie_bw, spec.pcie_lat, 1)
            .expect("synthetic pcie");
    }
    b.shared_link(hm, hm, LinkKind::HostDram, spec.dram_bw, 0.0, 1)
        .expect("synthetic dram");
    b.build()
}

/// Shorthand for `synthetic(SyntheticSpec::default())`: 4 GPUs, equal
/// 50 GB/s GPU links, zero software overheads.
pub fn synthetic_default() -> Topology {
    synthetic(SyntheticSpec::default())
}

/// A cluster of `nodes` mutually-disconnected synthetic nodes, each a
/// fully-connected `gpus_per_node`-GPU node with its own host domain.
/// There are deliberately **no** inter-node links: each node is an
/// isolated connected component, which is the workload shape the
/// partitioned scenario runner (`mpx_sim::parallel`) scales on — see
/// DESIGN §4h. Device ids and link ids are assigned node by node, so
/// node `k`'s devices/links form one contiguous block.
pub fn cluster(nodes: usize, gpus_per_node: usize) -> Topology {
    assert!(nodes >= 1, "cluster needs at least one node");
    assert!(gpus_per_node >= 2, "cluster nodes need at least 2 GPUs");
    let spec = SyntheticSpec::default();
    let mut b = TopologyBuilder::new("cluster").overheads(spec.overheads);
    for node in 0..nodes {
        b.on_node(node as u16);
        let numa = NumaNode(node as u16);
        let gpus: Vec<_> = (0..gpus_per_node)
            .map(|_| b.gpu(GpuModel::Generic, numa))
            .collect();
        let hm = b.host_memory(numa);
        for i in 0..gpus_per_node {
            for j in (i + 1)..gpus_per_node {
                b.duplex_link(
                    gpus[i],
                    gpus[j],
                    LinkKind::Custom,
                    spec.nvlink_bw,
                    spec.nvlink_lat,
                    1,
                )
                .expect("cluster gpu link");
            }
        }
        for &g in &gpus {
            b.duplex_link(g, hm, LinkKind::Pcie, spec.pcie_bw, spec.pcie_lat, 1)
                .expect("cluster pcie");
        }
        b.shared_link(hm, hm, LinkKind::HostDram, spec.dram_bw, 0.0, 1)
            .expect("cluster dram");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{enumerate_paths, PathSelection};

    #[test]
    fn beluga_has_four_gpus_one_host() {
        let t = beluga();
        assert_eq!(t.gpus().len(), 4);
        assert_eq!(t.host_memories().len(), 1);
        // 6 pairs * 2 directions + 4 PCIe * 2 + 1 DRAM = 12 + 8 + 1.
        assert_eq!(t.link_count(), 21);
    }

    #[test]
    fn beluga_nvlink_is_double_pcie_times_four() {
        let t = beluga();
        let gpus = t.gpus();
        let nv = t.link_between(gpus[0], gpus[1]).unwrap();
        let hm = t.host_memories()[0];
        let pcie = t.link_between(gpus[0], hm).unwrap();
        assert_eq!(nv.bandwidth, gb_per_s(48.0));
        assert_eq!(pcie.bandwidth, gb_per_s(12.0));
        assert_eq!(nv.sub_links, 2);
    }

    #[test]
    fn narval_has_private_numa_domains() {
        let t = narval();
        assert_eq!(t.gpus().len(), 4);
        assert_eq!(t.host_memories().len(), 4);
        let gpus = t.gpus();
        for (i, &g) in gpus.iter().enumerate() {
            let hm = t.local_host_memory(g).unwrap();
            assert_eq!(
                t.device(hm).unwrap().numa,
                t.device(g).unwrap().numa,
                "gpu {i}"
            );
        }
    }

    #[test]
    fn narval_nvlink_four_sublinks() {
        let t = narval();
        let gpus = t.gpus();
        let nv = t.link_between(gpus[2], gpus[3]).unwrap();
        assert_eq!(nv.sub_links, 4);
        assert_eq!(nv.bandwidth, gb_per_s(96.0));
    }

    #[test]
    fn narval_upi_is_shared_both_directions() {
        let t = narval();
        let hms = t.host_memories();
        let fwd = t.link_between(hms[0], hms[1]).unwrap().id;
        let bwd = t.link_between(hms[1], hms[0]).unwrap().id;
        assert_eq!(fwd, bwd, "UPI must be one shared capacity pool");
    }

    #[test]
    fn both_paper_presets_enumerate_four_paths() {
        for t in [beluga(), narval()] {
            let gpus = t.gpus();
            let p =
                enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
            assert_eq!(p.len(), 4, "topology {}", t.name);
        }
    }

    #[test]
    fn pcie_only_has_no_direct_path() {
        let t = pcie_only(2);
        let gpus = t.gpus();
        assert!(enumerate_paths(&t, gpus[0], gpus[1], PathSelection::DIRECT_ONLY).is_err());
    }

    #[test]
    fn pcie_only_communicates_through_host() {
        let t = pcie_only(2);
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        assert_eq!(p.len(), 1);
        assert!(matches!(
            p[0].kind,
            crate::path::PathKind::HostStaged { .. }
        ));
    }

    #[test]
    fn dgx1_brick_budget_is_six_per_gpu() {
        let t = dgx1();
        for g in t.gpus() {
            let bricks: u32 = t
                .links
                .iter()
                .filter(|l| l.src == g && l.kind.is_nvlink())
                .map(|l| l.sub_links)
                .sum();
            assert_eq!(bricks, 6, "gpu {g} brick budget");
        }
    }

    #[test]
    fn dgx1_has_heterogeneous_pair_bandwidths() {
        let t = dgx1();
        let g = t.gpus();
        assert_eq!(
            t.link_between(g[0], g[3]).unwrap().bandwidth,
            gb_per_s(48.0)
        );
        assert_eq!(
            t.link_between(g[0], g[1]).unwrap().bandwidth,
            gb_per_s(24.0)
        );
        assert!(t.link_between(g[0], g[5]).is_err(), "0-5 must be unlinked");
    }

    #[test]
    fn dgx1_unlinked_pair_gets_staged_paths_only() {
        let t = dgx1();
        let g = t.gpus();
        let p = enumerate_paths(&t, g[0], g[5], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        assert!(!p.is_empty());
        assert!(p.iter().all(|path| !path.kind.is_direct()));
        // GPUs 1 and 4 neighbor both endpoints.
        let vias: Vec<_> = p
            .iter()
            .filter_map(|path| path.kind.staging_device())
            .collect();
        assert!(vias.contains(&g[1]) || vias.contains(&g[4]));
    }

    #[test]
    fn dgx1_direct_only_on_unlinked_pair_is_error() {
        let t = dgx1();
        let g = t.gpus();
        assert!(enumerate_paths(&t, g[0], g[5], PathSelection::DIRECT_ONLY).is_err());
    }

    #[test]
    fn synthetic_default_is_zero_overhead() {
        let t = synthetic_default();
        assert_eq!(t.overheads, OverheadModel::zero());
        assert_eq!(t.gpus().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 GPUs")]
    fn synthetic_rejects_single_gpu() {
        synthetic(SyntheticSpec {
            gpus: 1,
            ..SyntheticSpec::default()
        });
    }

    #[test]
    fn cluster_nodes_are_disconnected_islands() {
        let t = cluster(3, 4);
        assert_eq!(t.gpus().len(), 12);
        // Per node: 6 GPU pairs * 2 + 4 PCIe * 2 + 1 DRAM = 21 links.
        assert_eq!(t.link_count(), 63);
        let g = t.gpus();
        // Intra-node pairs are linked; inter-node pairs are not.
        assert!(t.link_between(g[0], g[3]).is_ok());
        assert!(t.link_between(g[4], g[7]).is_ok());
        assert!(t.link_between(g[0], g[4]).is_err());
        assert!(t.link_between(g[3], g[8]).is_err());
        // Link ids come in per-node blocks of 21.
        let first = t.link_between(g[4], g[5]).unwrap().id.index();
        assert!((21..42).contains(&first));
    }
}
