//! Candidate transfer paths between two GPUs (paper Section 3.1).
//!
//! A path is a sequence of **legs**; each leg is a route over directed
//! links that a single asynchronous copy traverses:
//!
//! * **direct** — one leg over the GPU↔GPU link;
//! * **GPU-staged** — two legs, `src → via` and `via → dst`;
//! * **host-staged** — two legs through host memory. The device-to-host
//!   leg lands in the *source* GPU's local NUMA domain; the host-to-device
//!   leg then reads from that domain, crossing the DRAM channel and (on
//!   multi-NUMA nodes like Narval) the inter-socket link — the extra hop
//!   behind the paper's Observation 3.

use crate::device::DeviceId;
use crate::link::LinkId;
use crate::topology::{Topology, TopologyError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which class of path this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathKind {
    /// Direct GPU-to-GPU transfer.
    Direct,
    /// Staged through an intermediate GPU.
    GpuStaged {
        /// The staging GPU.
        via: DeviceId,
    },
    /// Staged through host memory.
    HostStaged {
        /// The host memory domain used for staging.
        via: DeviceId,
    },
    /// An inter-node GPUDirect-RDMA rail: zero-copy through a NIC pair.
    /// Like the direct path, rails have a single leg (no staging point).
    Rail {
        /// The NIC on the source's node.
        src_nic: DeviceId,
        /// The NIC on the destination's node.
        dst_nic: DeviceId,
    },
}

impl PathKind {
    /// The staging device, if any. Rails have none: RDMA flows through
    /// the NICs without landing.
    pub fn staging_device(self) -> Option<DeviceId> {
        match self {
            PathKind::Direct | PathKind::Rail { .. } => None,
            PathKind::GpuStaged { via } | PathKind::HostStaged { via } => Some(via),
        }
    }

    /// True for the direct path.
    pub fn is_direct(self) -> bool {
        matches!(self, PathKind::Direct)
    }
}

impl fmt::Display for PathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathKind::Direct => write!(f, "direct"),
            PathKind::GpuStaged { via } => write!(f, "gpu-staged({via})"),
            PathKind::HostStaged { via } => write!(f, "host-staged({via})"),
            PathKind::Rail { src_nic, dst_nic } => write!(f, "rail({src_nic}->{dst_nic})"),
        }
    }
}

/// One asynchronous copy's route: the ordered links it occupies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Leg {
    /// Directed links traversed, in order.
    pub route: Vec<LinkId>,
}

impl Leg {
    /// Creates a leg over the given route.
    pub fn new(route: Vec<LinkId>) -> Self {
        Leg { route }
    }
}

/// A candidate path between a source and destination GPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferPath {
    /// Path class.
    pub kind: PathKind,
    /// Source GPU.
    pub src: DeviceId,
    /// Destination GPU.
    pub dst: DeviceId,
    /// One leg for direct paths, two for staged paths.
    pub legs: Vec<Leg>,
}

impl TransferPath {
    /// True if this path stages through another device.
    pub fn is_staged(&self) -> bool {
        self.legs.len() > 1
    }
}

/// Which candidate paths to enumerate. Mirrors the paper's environment
/// variables that "selectively include or exclude paths" (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSelection {
    /// Maximum number of GPU-staged paths (0 disables them). The paper's
    /// `2_GPUs` label corresponds to 1, `3_GPUs` to 2.
    pub max_gpu_staged: usize,
    /// Include the host-staged path (`3_GPUs_w_host` when combined with
    /// two GPU-staged paths).
    pub host_staged: bool,
}

impl PathSelection {
    /// Only the direct path — the single-path baseline.
    pub const DIRECT_ONLY: PathSelection = PathSelection {
        max_gpu_staged: 0,
        host_staged: false,
    };

    /// Direct + 1 GPU-staged path (paper label `2_GPUs`).
    pub const TWO_GPUS: PathSelection = PathSelection {
        max_gpu_staged: 1,
        host_staged: false,
    };

    /// Direct + 2 GPU-staged paths (paper label `3_GPUs`).
    pub const THREE_GPUS: PathSelection = PathSelection {
        max_gpu_staged: 2,
        host_staged: false,
    };

    /// Direct + 2 GPU-staged + host-staged (paper label `3_GPUs_w_host`).
    pub const THREE_GPUS_WITH_HOST: PathSelection = PathSelection {
        max_gpu_staged: 2,
        host_staged: true,
    };

    /// All selections evaluated in the paper's figures, with their labels.
    pub fn paper_grid() -> Vec<(&'static str, PathSelection)> {
        vec![
            ("2_GPUs", Self::TWO_GPUS),
            ("3_GPUs", Self::THREE_GPUS),
            ("3_GPUs_w_host", Self::THREE_GPUS_WITH_HOST),
        ]
    }

    /// Paper-style label for this selection.
    pub fn label(&self) -> String {
        match (self.max_gpu_staged, self.host_staged) {
            (0, false) => "direct".into(),
            (g, false) => format!("{}_GPUs", g + 1),
            (g, true) => format!("{}_GPUs_w_host", g + 1),
        }
    }
}

impl Default for PathSelection {
    fn default() -> Self {
        Self::THREE_GPUS_WITH_HOST
    }
}

/// Enumerates candidate paths from `src` to `dst` under `sel`.
///
/// The direct path always comes first (Algorithm 1 gives leftovers to the
/// direct path, and sequential initiation order matters for the model's
/// accumulated-`α` correction). GPU-staged paths follow in staging-GPU id
/// order; the host-staged path, if enabled, comes last.
/// Enumerates candidate paths, dispatching on node placement: intra-node
/// pairs get the direct/staged candidates of [`enumerate_paths`],
/// inter-node pairs get RDMA rails (`max_gpu_staged + 1` of them, so the
/// paper's path-count labels carry over).
pub fn enumerate_paths_auto(
    topo: &Topology,
    src: DeviceId,
    dst: DeviceId,
    sel: PathSelection,
) -> Result<Vec<TransferPath>, TopologyError> {
    if topo.same_node(src, dst)? {
        enumerate_paths(topo, src, dst, sel)
    } else {
        crate::internode::enumerate_rails(topo, src, dst, sel.max_gpu_staged + 1)
    }
}

/// Enumerates *intra-node* candidate paths from `src` to `dst` under
/// `sel`.
///
/// The direct path comes first when it exists (Algorithm 1 gives
/// leftovers to the first path, and sequential initiation order matters
/// for the model's accumulated-`α` correction). GPU-staged paths follow
/// in staging-GPU id order; the host-staged path, if enabled, comes
/// last. Use [`enumerate_paths_auto`] to also handle inter-node pairs.
pub fn enumerate_paths(
    topo: &Topology,
    src: DeviceId,
    dst: DeviceId,
    sel: PathSelection,
) -> Result<Vec<TransferPath>, TopologyError> {
    let sdev = topo.device(src)?;
    let ddev = topo.device(dst)?;
    if !sdev.is_gpu() {
        return Err(TopologyError::NotAGpu(src));
    }
    if !ddev.is_gpu() {
        return Err(TopologyError::NotAGpu(dst));
    }

    let mut paths = Vec::new();

    // Direct leg — optional: PCIe-only boxes and partial meshes (DGX-1
    // style) have GPU pairs with no direct link; they communicate through
    // staged paths only.
    if let Ok(direct) = topo.link_between(src, dst) {
        paths.push(TransferPath {
            kind: PathKind::Direct,
            src,
            dst,
            legs: vec![Leg::new(vec![direct.id])],
        });
    }

    // GPU-staged legs: any other GPU connected to both endpoints.
    let mut staged = 0usize;
    for via in topo.gpus() {
        if staged >= sel.max_gpu_staged {
            break;
        }
        if via == src || via == dst {
            continue;
        }
        let (Ok(l1), Ok(l2)) = (topo.link_between(src, via), topo.link_between(via, dst)) else {
            continue;
        };
        paths.push(TransferPath {
            kind: PathKind::GpuStaged { via },
            src,
            dst,
            legs: vec![Leg::new(vec![l1.id]), Leg::new(vec![l2.id])],
        });
        staged += 1;
    }

    // Host-staged leg: stage in the source GPU's local NUMA domain.
    if sel.host_staged {
        let hm = topo.local_host_memory(src)?;
        // The device-to-host leg writes the staging buffer: PCIe down plus
        // the staging domain's DRAM channel (a self-loop link on `hm`).
        let mut down_route = vec![topo.link_between(src, hm)?.id];
        if let Ok(dram) = topo.link_between(hm, hm) {
            down_route.push(dram.id);
        }
        // The host-to-device leg reads the staged buffer: it crosses the
        // staging domain's DRAM channel, any inter-NUMA link toward the
        // destination's domain, and finally the destination GPU's PCIe.
        let mut up_route = Vec::new();
        if let Ok(dram) = topo.link_between(hm, hm) {
            up_route.push(dram.id);
        }
        let dst_hm = topo.local_host_memory(dst)?;
        if dst_hm != hm {
            if let Ok(cross) = topo.link_between(hm, dst_hm) {
                up_route.push(cross.id);
            }
            up_route.push(topo.link_between(dst_hm, dst)?.id);
        } else {
            up_route.push(topo.link_between(hm, dst)?.id);
        }
        paths.push(TransferPath {
            kind: PathKind::HostStaged { via: hm },
            src,
            dst,
            legs: vec![Leg::new(down_route), Leg::new(up_route)],
        });
    }

    if paths.is_empty() {
        return Err(TopologyError::NoLink(src, dst));
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn selection_labels_match_paper() {
        assert_eq!(PathSelection::DIRECT_ONLY.label(), "direct");
        assert_eq!(PathSelection::TWO_GPUS.label(), "2_GPUs");
        assert_eq!(PathSelection::THREE_GPUS.label(), "3_GPUs");
        assert_eq!(PathSelection::THREE_GPUS_WITH_HOST.label(), "3_GPUs_w_host");
    }

    #[test]
    fn paper_grid_has_three_configs() {
        let grid = PathSelection::paper_grid();
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0].0, "2_GPUs");
    }

    #[test]
    fn beluga_direct_only() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::DIRECT_ONLY).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].kind, PathKind::Direct);
        assert_eq!(p[0].legs.len(), 1);
        assert_eq!(p[0].legs[0].route.len(), 1);
    }

    #[test]
    fn beluga_full_selection_yields_four_paths() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        assert_eq!(p.len(), 4);
        assert!(p[0].kind.is_direct());
        assert!(matches!(p[1].kind, PathKind::GpuStaged { .. }));
        assert!(matches!(p[2].kind, PathKind::GpuStaged { .. }));
        assert!(matches!(p[3].kind, PathKind::HostStaged { .. }));
    }

    #[test]
    fn staged_paths_avoid_endpoints() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS).unwrap();
        for path in &p[1..] {
            let via = path.kind.staging_device().unwrap();
            assert_ne!(via, gpus[0]);
            assert_ne!(via, gpus[1]);
        }
    }

    #[test]
    fn gpu_staged_cap_respected() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::TWO_GPUS).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn narval_host_leg_crosses_numa() {
        let t = presets::narval();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        let host = p.last().unwrap();
        assert!(matches!(host.kind, PathKind::HostStaged { .. }));
        // On Narval each GPU has its own NUMA domain, so the host-to-device
        // leg must traverse more than one link (DRAM + inter-NUMA + PCIe).
        assert!(
            host.legs[1].route.len() >= 2,
            "expected multi-hop host leg, got {:?}",
            host.legs[1]
        );
    }

    #[test]
    fn beluga_host_leg_stays_local() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let p = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        let host = p.last().unwrap();
        // Single NUMA domain: DRAM channel + destination PCIe.
        assert_eq!(host.legs[1].route.len(), 2);
    }

    #[test]
    fn non_gpu_endpoint_rejected() {
        let t = presets::beluga();
        let hm = t.host_memories()[0];
        let g0 = t.gpus()[0];
        assert!(matches!(
            enumerate_paths(&t, hm, g0, PathSelection::DIRECT_ONLY),
            Err(TopologyError::NotAGpu(_))
        ));
        assert!(matches!(
            enumerate_paths(&t, g0, hm, PathSelection::DIRECT_ONLY),
            Err(TopologyError::NotAGpu(_))
        ));
    }

    #[test]
    fn direct_path_is_always_first() {
        let t = presets::narval();
        let gpus = t.gpus();
        for sel in [
            PathSelection::TWO_GPUS,
            PathSelection::THREE_GPUS,
            PathSelection::THREE_GPUS_WITH_HOST,
        ] {
            let p = enumerate_paths(&t, gpus[2], gpus[0], sel).unwrap();
            assert!(p[0].kind.is_direct());
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(PathKind::Direct.to_string(), "direct");
        assert_eq!(
            PathKind::GpuStaged { via: DeviceId(2) }.to_string(),
            "gpu-staged(dev2)"
        );
    }
}
