//! Software overheads of the communication stack.
//!
//! The analytical model folds these into the per-path `α` and `ε`
//! parameters; the simulator charges them at the corresponding points of
//! the pipeline (copy launch, event synchronization, rendezvous). Keeping
//! a single definition here guarantees that "model parameters extracted
//! once per system topology" (paper Section 4, Step 1) and the simulated
//! hardware agree on what those costs are.

use crate::units::Secs;
use serde::{Deserialize, Serialize};

/// Fixed software costs charged by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Cost of launching one asynchronous copy on a stream (driver ioctl,
    /// command buffer write). Charged per chunk per leg.
    pub copy_launch: Secs,
    /// Cost of one inter-stream synchronization (CUDA event record+wait)
    /// at a staging device — the paper's `ε`.
    pub stage_sync: Secs,
    /// One-time cost of setting up a transfer in the cuda_ipc module
    /// (handle-cache lookup, rendezvous). Charged once per message.
    pub rendezvous: Secs,
}

impl OverheadModel {
    /// Values representative of CUDA 12-era drivers: ~2.5 µs copy launch,
    /// ~4 µs event sync, ~6 µs rendezvous.
    pub const fn default_cuda() -> Self {
        OverheadModel {
            copy_launch: 2.5e-6,
            stage_sync: 4.0e-6,
            rendezvous: 6.0e-6,
        }
    }

    /// Zero overheads — useful in unit tests where analytic expectations
    /// must be exact.
    pub const fn zero() -> Self {
        OverheadModel {
            copy_launch: 0.0,
            stage_sync: 0.0,
            rendezvous: 0.0,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::default_cuda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cuda_profile() {
        let d = OverheadModel::default();
        assert_eq!(d, OverheadModel::default_cuda());
        assert!(d.copy_launch > 0.0 && d.stage_sync > 0.0 && d.rendezvous > 0.0);
    }

    #[test]
    fn zero_profile_is_all_zero() {
        let z = OverheadModel::zero();
        assert_eq!(z.copy_launch, 0.0);
        assert_eq!(z.stage_sync, 0.0);
        assert_eq!(z.rendezvous, 0.0);
    }
}
