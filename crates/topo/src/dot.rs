//! Graphviz DOT rendering of topologies — the quickest way to sanity-
//! check a hand-written machine description (`mpx export --format dot`).

use crate::device::DeviceKind;
use crate::link::LinkKind;
use crate::topology::Topology;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders `topo` as a Graphviz graph: GPUs as boxes, host memories as
/// ellipses, NICs as hexagons, one edge per physical channel (duplex
/// pairs collapse; self-loop DRAM channels annotate their node), labeled
/// with technology and bandwidth.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", topo.name);
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");

    // Nodes, annotated with DRAM channels where present.
    for d in &topo.devices {
        let (shape, extra) = match d.kind {
            DeviceKind::Gpu(model) => ("box", format!("{model}")),
            DeviceKind::HostMemory => {
                let dram = topo
                    .link_between(d.id, d.id)
                    .map(|l| format!("\\nDRAM {:.0} GB/s", l.bandwidth / 1e9))
                    .unwrap_or_default();
                ("ellipse", format!("host{dram}"))
            }
            DeviceKind::Nic => ("hexagon", "NIC".to_string()),
        };
        let _ = writeln!(
            out,
            "  d{} [shape={shape}, label=\"{}\\n{} node{}\"];",
            d.id.0, d.name, extra, d.node
        );
    }

    // Edges: collapse duplex pairs, skip self-loops (annotated above).
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for l in &topo.links {
        if l.src == l.dst {
            continue;
        }
        let key = (l.src.0.min(l.dst.0), l.src.0.max(l.dst.0));
        if !seen.insert(key) {
            continue;
        }
        let style = match l.kind {
            LinkKind::NvLinkV2 | LinkKind::NvLinkV3 => "bold",
            LinkKind::Pcie => "solid",
            LinkKind::Upi => "dashed",
            LinkKind::HostDram | LinkKind::Custom => "dotted",
        };
        let _ = writeln!(
            out,
            "  d{} -- d{} [style={style}, label=\"{} {:.0}\"];",
            l.src.0,
            l.dst.0,
            l.kind,
            l.bandwidth / 1e9
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn beluga_dot_has_all_devices_and_pairs() {
        let dot = to_dot(&presets::beluga());
        assert!(dot.starts_with("graph \"beluga\""));
        for i in 0..5 {
            assert!(dot.contains(&format!("d{i} [")), "device {i} missing");
        }
        // 6 NVLink pairs + 4 PCIe pairs = 10 edges (duplex collapsed).
        assert_eq!(dot.matches(" -- ").count(), 10, "{dot}");
        assert!(dot.contains("DRAM 38"));
        assert!(dot.contains("NVLink-V2 48"));
    }

    #[test]
    fn two_node_dot_includes_nics_and_wires() {
        let dot = to_dot(&presets::two_node_beluga(2));
        assert!(dot.contains("hexagon"));
        assert!(dot.contains("node1"));
        // Wires appear once each.
        assert!(dot.contains("custom 24"));
    }

    #[test]
    fn dot_is_braces_balanced() {
        for topo in [presets::narval(), presets::dgx1()] {
            let dot = to_dot(&topo);
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
            assert!(dot.ends_with("}\n"));
        }
    }
}
