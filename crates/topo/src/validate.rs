//! Sanity validation for user-constructed topologies.
//!
//! The builder enforces local invariants (positive bandwidth, known
//! devices); this pass checks *global* properties that commonly go wrong
//! when describing a new machine by hand, and that would otherwise
//! surface as confusing model output or simulated deadlocks.

use crate::device::DeviceId;
use crate::topology::Topology;
use std::fmt;

/// One finding from [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationIssue {
    /// A GPU with no links at all — unusable as a transfer endpoint.
    IsolatedGpu(DeviceId),
    /// `a → b` exists but `b → a` does not; real interconnects are
    /// bidirectional, and collectives will deadlock on echo steps.
    AsymmetricLink(DeviceId, DeviceId),
    /// Opposite directions of a pair differ in bandwidth by more than
    /// 2× — legal, but almost always a typo.
    LopsidedDuplex(DeviceId, DeviceId),
    /// A GPU without a PCIe path to any host memory: host-staged paths
    /// and (on a real machine) kernel launches would be impossible.
    NoHostAttachment(DeviceId),
    /// A host memory domain without a DRAM self-loop: staged traffic
    /// through it would not be charged for the memory channel.
    MissingDramChannel(DeviceId),
    /// Latency outside [0, 1 ms] — suspicious units (seconds vs µs).
    SuspiciousLatency(DeviceId, DeviceId, f64),
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::IsolatedGpu(g) => write!(f, "GPU {g} has no links"),
            ValidationIssue::AsymmetricLink(a, b) => {
                write!(f, "link {a} -> {b} has no reverse direction")
            }
            ValidationIssue::LopsidedDuplex(a, b) => {
                write!(f, "duplex {a} <-> {b} bandwidths differ by more than 2x")
            }
            ValidationIssue::NoHostAttachment(g) => {
                write!(f, "GPU {g} has no path to host memory")
            }
            ValidationIssue::MissingDramChannel(h) => {
                write!(f, "host memory {h} has no DRAM self-loop")
            }
            ValidationIssue::SuspiciousLatency(a, b, l) => {
                write!(f, "link {a} -> {b} latency {l}s looks like a unit error")
            }
        }
    }
}

/// Checks `topo` for common construction mistakes. An empty result means
/// the topology passes every lint; issues are advisory, not fatal.
pub fn validate(topo: &Topology) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    for gpu in topo.gpus() {
        let has_any = topo.links.iter().any(|l| l.src == gpu || l.dst == gpu);
        if !has_any {
            issues.push(ValidationIssue::IsolatedGpu(gpu));
            continue;
        }
        let host_attached = topo
            .host_memories()
            .iter()
            .any(|&hm| topo.has_link(gpu, hm) && topo.has_link(hm, gpu));
        if !host_attached && !topo.host_memories().is_empty() {
            issues.push(ValidationIssue::NoHostAttachment(gpu));
        }
    }

    for hm in topo.host_memories() {
        if !topo.has_link(hm, hm) {
            issues.push(ValidationIssue::MissingDramChannel(hm));
        }
    }

    for l in &topo.links {
        if l.src == l.dst {
            continue; // self-loops (DRAM channels) have no reverse
        }
        match topo.link_between(l.dst, l.src) {
            Err(_) => issues.push(ValidationIssue::AsymmetricLink(l.src, l.dst)),
            Ok(rev) => {
                let ratio = l.bandwidth / rev.bandwidth;
                if !(0.5..=2.0).contains(&ratio) && l.src < l.dst {
                    issues.push(ValidationIssue::LopsidedDuplex(l.src, l.dst));
                }
            }
        }
        if l.latency > 1e-3 {
            issues.push(ValidationIssue::SuspiciousLatency(l.src, l.dst, l.latency));
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{GpuModel, NumaNode};
    use crate::link::LinkKind;
    use crate::presets;
    use crate::topology::TopologyBuilder;
    use crate::units::gb_per_s;

    #[test]
    fn shipped_presets_are_clean() {
        for topo in [
            presets::beluga(),
            presets::narval(),
            presets::dgx1(),
            presets::pcie_only(4),
            presets::synthetic_default(),
        ] {
            let issues = validate(&topo);
            assert!(issues.is_empty(), "{}: {issues:?}", topo.name);
        }
    }

    #[test]
    fn flags_isolated_gpu() {
        let mut b = TopologyBuilder::new("t");
        let _g = b.gpu(GpuModel::Generic, NumaNode(0));
        let t = b.build();
        assert!(matches!(validate(&t)[0], ValidationIssue::IsolatedGpu(_)));
    }

    #[test]
    fn flags_one_way_link() {
        let mut b = TopologyBuilder::new("t");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        b.directed_link(g0, g1, LinkKind::Custom, gb_per_s(10.0), 1e-6, 1)
            .unwrap();
        let issues = validate(&b.build());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::AsymmetricLink(_, _))));
    }

    #[test]
    fn flags_lopsided_duplex() {
        let mut b = TopologyBuilder::new("t");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        b.directed_link(g0, g1, LinkKind::Custom, gb_per_s(50.0), 1e-6, 1)
            .unwrap();
        b.directed_link(g1, g0, LinkKind::Custom, gb_per_s(5.0), 1e-6, 1)
            .unwrap();
        let issues = validate(&b.build());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::LopsidedDuplex(_, _))));
    }

    #[test]
    fn flags_missing_host_attachment_and_dram() {
        let mut b = TopologyBuilder::new("t");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        b.duplex_link(g0, g1, LinkKind::Custom, gb_per_s(10.0), 1e-6, 1)
            .unwrap();
        let _hm = b.host_memory(NumaNode(0));
        let issues = validate(&b.build());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::NoHostAttachment(_))));
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::MissingDramChannel(_))));
    }

    #[test]
    fn flags_suspicious_latency() {
        let mut b = TopologyBuilder::new("t");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        // 2 ms "latency" — probably meant microseconds.
        b.duplex_link(g0, g1, LinkKind::Custom, gb_per_s(10.0), 2e-3, 1)
            .unwrap();
        let issues = validate(&b.build());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::SuspiciousLatency(_, _, _))));
    }

    #[test]
    fn display_is_human_readable() {
        let msg = ValidationIssue::IsolatedGpu(DeviceId(3)).to_string();
        assert!(msg.contains("dev3"));
    }
}
