//! Scalar units shared by the model and the simulator.
//!
//! Time is carried as `f64` seconds in analytical code ([`Secs`]) and as
//! integer nanoseconds inside the discrete-event engine (owned by
//! `mpx-sim`); bandwidth is `f64` bytes per second ([`Bandwidth`]).

/// Time in seconds (used by the analytical model).
pub type Secs = f64;

/// Bandwidth in bytes per second.
pub type Bandwidth = f64;

/// One kibibyte (2^10 bytes).
pub const KIB: usize = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: usize = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: usize = 1 << 30;

/// Converts a marketing-style "GB/s" figure (10^9 bytes per second) into
/// [`Bandwidth`].
#[inline]
pub const fn gb_per_s(x: f64) -> Bandwidth {
    x * 1e9
}

/// Converts microseconds into [`Secs`].
#[inline]
pub const fn micros(x: f64) -> Secs {
    x * 1e-6
}

/// Converts nanoseconds into [`Secs`].
#[inline]
pub const fn nanos(x: f64) -> Secs {
    x * 1e-9
}

/// Formats a byte count with a binary-prefix suffix, OSU-benchmark style
/// (`4096`, `64K`, `16M`, `1G`).
pub fn format_bytes(n: usize) -> String {
    if n >= GIB && n.is_multiple_of(GIB) {
        format!("{}G", n / GIB)
    } else if n >= MIB && n.is_multiple_of(MIB) {
        format!("{}M", n / MIB)
    } else if n >= KIB && n.is_multiple_of(KIB) {
        format!("{}K", n / KIB)
    } else {
        format!("{n}")
    }
}

/// Formats a bandwidth in GB/s with two decimals (OSU-style `MB/s` scaled
/// up: the paper's figures use GB/s axes).
pub fn format_bandwidth(b: Bandwidth) -> String {
    format!("{:.2} GB/s", b / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_per_s_scales_decimal() {
        assert_eq!(gb_per_s(25.0), 25e9);
    }

    #[test]
    fn micros_scale() {
        assert!((micros(5.0) - 5e-6).abs() < 1e-15);
    }

    #[test]
    fn nanos_scale() {
        assert!((nanos(250.0) - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn format_bytes_exact_boundaries() {
        assert_eq!(format_bytes(512), "512");
        assert_eq!(format_bytes(KIB), "1K");
        assert_eq!(format_bytes(64 * KIB), "64K");
        assert_eq!(format_bytes(16 * MIB), "16M");
        assert_eq!(format_bytes(GIB), "1G");
    }

    #[test]
    fn format_bytes_non_aligned_falls_back_to_raw() {
        assert_eq!(format_bytes(KIB + 1), "1025");
        assert_eq!(format_bytes(3 * MIB / 2), "1536K");
    }

    #[test]
    fn format_bandwidth_renders_gbps() {
        assert_eq!(format_bandwidth(gb_per_s(50.0)), "50.00 GB/s");
    }
}
