//! Inter-node rails: the multi-node extension the paper lists as future
//! work (Section 6), where multi-*rail* transfers are the inter-node
//! analog of multi-path.
//!
//! A **rail** is one GPUDirect-RDMA route: source GPU → local NIC →
//! wire → remote NIC → destination GPU. RDMA is zero-copy end to end —
//! no staging buffer, no synchronization point — so a rail is a *direct*
//! path with a multi-link route, and the share optimizer applies to a
//! set of rails through exactly Eq. (8).
//!
//! Rail selection mirrors production multi-rail policy: prefer the NIC
//! in the GPU's own NUMA domain (rail affinity), then spill onto the
//! node's other NICs.

use crate::device::DeviceId;
use crate::path::{Leg, PathKind, TransferPath};
use crate::topology::{Topology, TopologyError};

/// Enumerates up to `max_rails` rail paths from `src` to `dst` (GPUs on
/// different nodes). Rails are ordered NUMA-local NIC first.
pub fn enumerate_rails(
    topo: &Topology,
    src: DeviceId,
    dst: DeviceId,
    max_rails: usize,
) -> Result<Vec<TransferPath>, TopologyError> {
    let sdev = topo.device(src)?;
    let ddev = topo.device(dst)?;
    if !sdev.is_gpu() {
        return Err(TopologyError::NotAGpu(src));
    }
    if !ddev.is_gpu() {
        return Err(TopologyError::NotAGpu(dst));
    }
    assert_ne!(
        sdev.node, ddev.node,
        "enumerate_rails needs endpoints on different nodes"
    );

    // Local NICs reachable from the source, NUMA-affine first.
    let mut local_nics: Vec<DeviceId> = topo
        .nics()
        .into_iter()
        .filter(|&nic| topo.device(nic).map(|d| d.node) == Ok(sdev.node) && topo.has_link(src, nic))
        .collect();
    local_nics.sort_by_key(|&nic| {
        let affine = topo.device(nic).map(|d| d.numa) == Ok(sdev.numa);
        (!affine, nic)
    });

    let mut rails = Vec::new();
    for nic in local_nics.into_iter() {
        if rails.len() >= max_rails {
            break;
        }
        // The wire: this NIC's link to a NIC on the destination node
        // that can reach `dst`.
        for remote in topo.nics() {
            if topo.device(remote).map(|d| d.node) != Ok(ddev.node) {
                continue;
            }
            let (Ok(wire), Ok(down)) = (
                topo.link_between(nic, remote),
                topo.link_between(remote, dst),
            ) else {
                continue;
            };
            let up = topo.link_between(src, nic)?;
            rails.push(TransferPath {
                kind: PathKind::Rail {
                    src_nic: nic,
                    dst_nic: remote,
                },
                src,
                dst,
                legs: vec![Leg::new(vec![up.id, wire.id, down.id])],
            });
            break; // one wire per local NIC (rails are point-to-point)
        }
    }
    if rails.is_empty() {
        return Err(TopologyError::NoLink(src, dst));
    }
    Ok(rails)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn two_node_rails_enumerate_per_nic() {
        let t = presets::two_node_beluga(2);
        let gpus = t.gpus();
        // GPU 0 (node 0) to GPU 4 (node 1).
        let rails = enumerate_rails(&t, gpus[0], gpus[4], 4).unwrap();
        assert_eq!(rails.len(), 2, "two rails for two NIC pairs");
        for r in &rails {
            assert!(matches!(r.kind, PathKind::Rail { .. }));
            assert_eq!(r.legs.len(), 1, "RDMA rails are single-leg");
            assert_eq!(r.legs[0].route.len(), 3, "pcie + wire + pcie");
        }
        // Distinct wires.
        assert_ne!(rails[0].legs[0].route[1], rails[1].legs[0].route[1]);
    }

    #[test]
    fn rail_cap_respected() {
        let t = presets::two_node_beluga(2);
        let gpus = t.gpus();
        let rails = enumerate_rails(&t, gpus[1], gpus[6], 1).unwrap();
        assert_eq!(rails.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different nodes")]
    fn same_node_endpoints_panic() {
        let t = presets::two_node_beluga(2);
        let gpus = t.gpus();
        let _ = enumerate_rails(&t, gpus[0], gpus[1], 2);
    }
}
