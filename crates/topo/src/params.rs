//! Extraction of per-path Hockney parameters `(αᵢ, βᵢ, α′ᵢ, β′ᵢ, εᵢ)`
//! from a topology (paper Table 1 / Section 3.1).
//!
//! This is the "ground truth" extraction: parameters read directly off
//! the hardware description. `mpx-model::calibrate` provides the
//! alternative the paper actually uses in Step 1 of Figure 2(a) — fitting
//! the same parameters from measured probe sweeps — and tests assert the
//! two agree on contention-free topologies.

use crate::overhead::OverheadModel;
use crate::path::{PathKind, TransferPath};
use crate::topology::{Topology, TopologyError};
use crate::units::{Bandwidth, Secs};
use serde::{Deserialize, Serialize};

/// Hockney parameters of one leg (one asynchronous copy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LegParams {
    /// Startup latency `α`: link propagation latencies plus the software
    /// cost of launching the copy.
    pub alpha: Secs,
    /// Asymptotic bandwidth `β`: the narrowest link on the route.
    pub beta: Bandwidth,
}

impl LegParams {
    /// Hockney time for `bytes` on this leg alone: `α + n/β`.
    #[inline]
    pub fn time(&self, bytes: f64) -> Secs {
        self.alpha + bytes / self.beta
    }
}

/// Hockney parameters of one candidate path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathParams {
    /// Which class of path these parameters describe.
    pub kind: PathKind,
    /// First (or only) leg: `αᵢ`, `βᵢ`.
    pub first: LegParams,
    /// Second leg of a staged path: `α′ᵢ`, `β′ᵢ`.
    pub second: Option<LegParams>,
    /// Synchronization overhead `εᵢ` at the staging device (zero for the
    /// direct path).
    pub eps: Secs,
}

impl PathParams {
    /// Direct-path constructor.
    pub fn direct(alpha: Secs, beta: Bandwidth) -> Self {
        PathParams {
            kind: PathKind::Direct,
            first: LegParams { alpha, beta },
            second: None,
            eps: 0.0,
        }
    }

    /// Staged-path constructor (GPU- or host-staged depending on `kind`).
    pub fn staged(kind: PathKind, first: LegParams, second: LegParams, eps: Secs) -> Self {
        debug_assert!(!kind.is_direct(), "staged params need a staged kind");
        PathParams {
            kind,
            first,
            second: Some(second),
            eps,
        }
    }

    /// True if this path has a staging hop.
    #[inline]
    pub fn is_staged(&self) -> bool {
        self.second.is_some()
    }

    /// Un-pipelined transfer time of `bytes` on this path — Eq. (2):
    /// `αᵢ + n/βᵢ + εᵢ + α′ᵢ + n/β′ᵢ` (staged) or Eq. (1) (direct).
    pub fn time_unpipelined(&self, bytes: f64) -> Secs {
        match self.second {
            None => self.first.time(bytes),
            Some(second) => self.first.time(bytes) + self.eps + second.time(bytes),
        }
    }

    /// `Ωᵢ = 1/βᵢ + 1/β′ᵢ` (Table 1); `1/βᵢ` for direct paths.
    pub fn omega_unpipelined(&self) -> f64 {
        1.0 / self.first.beta + self.second.map_or(0.0, |s| 1.0 / s.beta)
    }

    /// `Δᵢ = αᵢ + α′ᵢ + εᵢ` (Table 1); `αᵢ` for direct paths.
    pub fn delta_unpipelined(&self) -> Secs {
        self.first.alpha + self.eps + self.second.map_or(0.0, |s| s.alpha)
    }

    /// The sustainable pipelined bandwidth of the path: the narrowest leg.
    pub fn bottleneck_bandwidth(&self) -> Bandwidth {
        match self.second {
            None => self.first.beta,
            Some(second) => self.first.beta.min(second.beta),
        }
    }
}

/// Extracts the Hockney parameters of `path` from the hardware
/// description: per-leg `α` is the sum of link latencies plus one copy
/// launch, per-leg `β` the narrowest link, and `ε` the staging sync cost.
pub fn extract_path_params(
    topo: &Topology,
    path: &TransferPath,
) -> Result<PathParams, TopologyError> {
    let oh: &OverheadModel = &topo.overheads;
    let mut legs = Vec::with_capacity(path.legs.len());
    for leg in &path.legs {
        let mut alpha = oh.copy_launch;
        let mut beta = f64::INFINITY;
        for &lid in &leg.route {
            let link = topo.link(lid)?;
            alpha += link.latency;
            beta = beta.min(link.bandwidth);
        }
        legs.push(LegParams { alpha, beta });
    }
    Ok(match legs.len() {
        1 => PathParams {
            kind: path.kind,
            first: legs[0],
            second: None,
            eps: 0.0,
        },
        _ => PathParams {
            kind: path.kind,
            first: legs[0],
            second: Some(legs[1]),
            eps: oh.stage_sync,
        },
    })
}

/// [`extract_path_params`] over a whole candidate set.
pub fn extract_all(
    topo: &Topology,
    paths: &[TransferPath],
) -> Result<Vec<PathParams>, TopologyError> {
    paths.iter().map(|p| extract_path_params(topo, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{enumerate_paths, PathSelection};
    use crate::presets;
    use crate::units::gb_per_s;

    fn beluga_params() -> Vec<PathParams> {
        let t = presets::beluga();
        let gpus = t.gpus();
        let paths =
            enumerate_paths(&t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
        extract_all(&t, &paths).unwrap()
    }

    #[test]
    fn direct_path_has_no_second_leg() {
        let p = &beluga_params()[0];
        assert!(p.kind.is_direct());
        assert!(!p.is_staged());
        assert_eq!(p.eps, 0.0);
        assert_eq!(p.first.beta, gb_per_s(48.0));
    }

    #[test]
    fn staged_path_parameters() {
        let params = beluga_params();
        let staged = &params[1];
        assert!(staged.is_staged());
        assert_eq!(staged.first.beta, gb_per_s(48.0));
        assert_eq!(staged.second.unwrap().beta, gb_per_s(48.0));
        assert!(staged.eps > 0.0, "staging sync overhead must be charged");
    }

    #[test]
    fn host_path_bottleneck_is_pcie() {
        let params = beluga_params();
        let host = params.last().unwrap();
        assert!(host.is_staged());
        assert_eq!(host.bottleneck_bandwidth(), gb_per_s(12.0));
    }

    #[test]
    fn alpha_includes_launch_overhead() {
        let t = presets::beluga();
        let gpus = t.gpus();
        let paths = enumerate_paths(&t, gpus[0], gpus[1], PathSelection::DIRECT_ONLY).unwrap();
        let p = extract_path_params(&t, &paths[0]).unwrap();
        let link = t.link_between(gpus[0], gpus[1]).unwrap();
        assert!((p.first.alpha - (link.latency + t.overheads.copy_launch)).abs() < 1e-12);
    }

    #[test]
    fn unpipelined_time_direct_is_hockney() {
        let p = PathParams::direct(2e-6, gb_per_s(50.0));
        let t = p.time_unpipelined(50e9);
        assert!((t - 1.000002).abs() < 1e-9);
    }

    #[test]
    fn unpipelined_time_staged_sums_both_legs() {
        let leg = LegParams {
            alpha: 1e-6,
            beta: gb_per_s(10.0),
        };
        let p = PathParams::staged(
            PathKind::GpuStaged {
                via: crate::DeviceId(2),
            },
            leg,
            leg,
            3e-6,
        );
        // 2 legs * (1µs + 1s) + 3µs.
        let t = p.time_unpipelined(10e9);
        assert!((t - 2.000005).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn omega_delta_match_table1() {
        let leg1 = LegParams {
            alpha: 1e-6,
            beta: 2e9,
        };
        let leg2 = LegParams {
            alpha: 2e-6,
            beta: 4e9,
        };
        let p = PathParams::staged(
            PathKind::GpuStaged {
                via: crate::DeviceId(3),
            },
            leg1,
            leg2,
            5e-6,
        );
        assert!((p.omega_unpipelined() - (1.0 / 2e9 + 1.0 / 4e9)).abs() < 1e-20);
        assert!((p.delta_unpipelined() - 8e-6).abs() < 1e-15);
    }

    #[test]
    fn direct_omega_delta_degenerate() {
        let p = PathParams::direct(4e-6, 5e9);
        assert!((p.omega_unpipelined() - 1.0 / 5e9).abs() < 1e-22);
        assert!((p.delta_unpipelined() - 4e-6).abs() < 1e-15);
    }

    #[test]
    fn narval_host_path_slower_than_beluga_relative() {
        // Relative to its direct link, Narval's host path is much weaker
        // (Observation 3): direct 96 vs host bottleneck ≤ 19, while Beluga
        // is 48 vs 12.
        let get = |t: &crate::Topology| {
            let gpus = t.gpus();
            let paths =
                enumerate_paths(t, gpus[0], gpus[1], PathSelection::THREE_GPUS_WITH_HOST).unwrap();
            let params = extract_all(t, &paths).unwrap();
            let host = params.last().unwrap().bottleneck_bandwidth();
            let direct = params[0].first.beta;
            host / direct
        };
        let beluga_ratio = get(&presets::beluga());
        let narval_ratio = get(&presets::narval());
        assert!(
            narval_ratio < beluga_ratio,
            "narval {narval_ratio} vs beluga {beluga_ratio}"
        );
    }
}
