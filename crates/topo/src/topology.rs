//! The topology graph and its builder.

use crate::device::{Device, DeviceId, DeviceKind, GpuModel, NumaNode};
use crate::link::{Link, LinkId, LinkKind};
use crate::overhead::OverheadModel;
use crate::units::{Bandwidth, Secs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or querying a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A device id was out of range.
    UnknownDevice(DeviceId),
    /// A link id was out of range.
    UnknownLink(LinkId),
    /// No directed link exists between the two devices.
    NoLink(DeviceId, DeviceId),
    /// A link was declared with a non-positive bandwidth.
    InvalidBandwidth(Bandwidth),
    /// A link was declared with a negative latency.
    InvalidLatency(Secs),
    /// Operation requires a GPU but the device is not one.
    NotAGpu(DeviceId),
    /// No host memory domain is reachable from the device.
    NoHostMemory(DeviceId),
    /// A manual share vector's length does not match the path count.
    ShareCountMismatch {
        /// Number of candidate paths.
        paths: usize,
        /// Number of shares supplied.
        shares: usize,
    },
    /// A manual share vector does not sum to 1 (value is the actual sum).
    SharesNotNormalized(f64),
    /// Every candidate path between the pair is excluded or down.
    NoUsablePath(DeviceId, DeviceId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::NoLink(a, b) => write!(f, "no link from {a} to {b}"),
            TopologyError::InvalidBandwidth(b) => write!(f, "invalid bandwidth {b}"),
            TopologyError::InvalidLatency(l) => write!(f, "invalid latency {l}"),
            TopologyError::NotAGpu(d) => write!(f, "device {d} is not a GPU"),
            TopologyError::NoHostMemory(d) => write!(f, "no host memory reachable from {d}"),
            TopologyError::ShareCountMismatch { paths, shares } => {
                write!(f, "one share per path: {paths} paths, {shares} shares")
            }
            TopologyError::SharesNotNormalized(sum) => {
                write!(f, "shares must sum to 1, got {sum}")
            }
            TopologyError::NoUsablePath(a, b) => {
                write!(f, "no usable path from {a} to {b} (all excluded or down)")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable description of one multi-GPU node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (`beluga`, `narval`, ...).
    pub name: String,
    /// All devices, indexed by [`DeviceId`].
    pub devices: Vec<Device>,
    /// All directed links, indexed by [`LinkId`].
    pub links: Vec<Link>,
    /// Software overhead profile for this node.
    pub overheads: OverheadModel,
    /// Adjacency: `adjacency[src][dst]` is the directed link `src → dst`,
    /// if one exists. Dense — intra-node topologies are tiny.
    adjacency: Vec<Vec<Option<LinkId>>>,
}

impl Topology {
    /// Device lookup with bounds check.
    pub fn device(&self, id: DeviceId) -> Result<&Device, TopologyError> {
        self.devices
            .get(id.index())
            .ok_or(TopologyError::UnknownDevice(id))
    }

    /// Link lookup with bounds check.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopologyError> {
        self.links
            .get(id.index())
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// The directed link `src → dst`, the `get_link` primitive of
    /// Algorithm 1.
    pub fn link_between(&self, src: DeviceId, dst: DeviceId) -> Result<&Link, TopologyError> {
        let id = self
            .adjacency
            .get(src.index())
            .ok_or(TopologyError::UnknownDevice(src))?
            .get(dst.index())
            .ok_or(TopologyError::UnknownDevice(dst))?
            .ok_or(TopologyError::NoLink(src, dst))?;
        self.link(id)
    }

    /// True if a directed link `src → dst` exists.
    pub fn has_link(&self, src: DeviceId, dst: DeviceId) -> bool {
        self.link_between(src, dst).is_ok()
    }

    /// All GPU devices, in id order.
    pub fn gpus(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.is_gpu())
            .map(|d| d.id)
            .collect()
    }

    /// All NIC devices, in id order.
    pub fn nics(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.is_nic())
            .map(|d| d.id)
            .collect()
    }

    /// True if both devices live on the same physical node.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> Result<bool, TopologyError> {
        Ok(self.device(a)?.node == self.device(b)?.node)
    }

    /// All host-memory devices, in id order.
    pub fn host_memories(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.is_host())
            .map(|d| d.id)
            .collect()
    }

    /// The host memory domain local to `dev` (same NUMA node), falling
    /// back to the first host memory if the NUMA domain has none.
    pub fn local_host_memory(&self, dev: DeviceId) -> Result<DeviceId, TopologyError> {
        let d = self.device(dev)?;
        let same_numa = self
            .devices
            .iter()
            .find(|h| h.is_host() && h.numa == d.numa)
            .map(|h| h.id);
        same_numa
            .or_else(|| self.devices.iter().find(|h| h.is_host()).map(|h| h.id))
            .ok_or(TopologyError::NoHostMemory(dev))
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Render a short human-readable summary (used by the topology
    /// explorer example).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "topology `{}`:", self.name);
        for d in &self.devices {
            let _ = writeln!(out, "  {} [{}] {:?}", d.name, d.numa, d.kind);
        }
        for l in &self.links {
            let src = &self.devices[l.src.index()].name;
            let dst = &self.devices[l.dst.index()].name;
            let _ = writeln!(
                out,
                "  {src} -> {dst}: {} {:.1} GB/s, {:.2} us ({} sub-links)",
                l.kind,
                l.bandwidth / 1e9,
                l.latency * 1e6,
                l.sub_links
            );
        }
        out
    }
}

/// Incremental constructor for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    name: String,
    devices: Vec<Device>,
    links: Vec<Link>,
    overheads: OverheadModel,
    aliases: Vec<(DeviceId, DeviceId, LinkId)>,
    current_node: u16,
}

impl TopologyBuilder {
    /// Starts a new topology with the given name and default (CUDA-like)
    /// overheads.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            devices: Vec::new(),
            links: Vec::new(),
            overheads: OverheadModel::default(),
            aliases: Vec::new(),
            current_node: 0,
        }
    }

    /// Subsequent devices are placed on physical node `node` (machine
    /// index for multi-node topologies; defaults to 0).
    pub fn on_node(&mut self, node: u16) -> &mut Self {
        self.current_node = node;
        self
    }

    /// Overrides the software overhead profile.
    pub fn overheads(mut self, o: OverheadModel) -> Self {
        self.overheads = o;
        self
    }

    /// Adds a GPU in `numa`; returns its id.
    pub fn gpu(&mut self, model: GpuModel, numa: NumaNode) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind: DeviceKind::Gpu(model),
            numa,
            node: self.current_node,
            name: format!("gpu{}", self.devices.iter().filter(|d| d.is_gpu()).count()),
        });
        id
    }

    /// Adds a NIC in `numa` on the current node; returns its id.
    pub fn nic(&mut self, numa: NumaNode) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind: DeviceKind::Nic,
            numa,
            node: self.current_node,
            name: format!("nic{}", self.devices.iter().filter(|d| d.is_nic()).count()),
        });
        id
    }

    /// Adds a host memory domain in `numa`; returns its id.
    pub fn host_memory(&mut self, numa: NumaNode) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(Device {
            id,
            kind: DeviceKind::HostMemory,
            numa,
            node: self.current_node,
            name: format!(
                "host-mem{}",
                self.devices.iter().filter(|d| d.is_host()).count()
            ),
        });
        id
    }

    /// Adds a single directed link; returns its id.
    pub fn directed_link(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        kind: LinkKind,
        bandwidth: Bandwidth,
        latency: Secs,
        sub_links: u32,
    ) -> Result<LinkId, TopologyError> {
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(TopologyError::InvalidBandwidth(bandwidth));
        }
        if !latency.is_finite() || latency < 0.0 {
            return Err(TopologyError::InvalidLatency(latency));
        }
        if src.index() >= self.devices.len() {
            return Err(TopologyError::UnknownDevice(src));
        }
        if dst.index() >= self.devices.len() {
            return Err(TopologyError::UnknownDevice(dst));
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            src,
            dst,
            kind,
            bandwidth,
            latency,
            sub_links,
        });
        Ok(id)
    }

    /// Adds a **shared** channel: one capacity pool that serves both
    /// directions. `link_between(a, b)` and `link_between(b, a)` resolve to
    /// the *same* [`LinkId`], so traffic flowing both ways contends for the
    /// single `bandwidth` budget. Used for resources without independent
    /// per-direction lanes from the transfer engine's perspective —
    /// coherent inter-socket interconnects (UPI) and DRAM channels.
    pub fn shared_link(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        kind: LinkKind,
        bandwidth: Bandwidth,
        latency: Secs,
        sub_links: u32,
    ) -> Result<LinkId, TopologyError> {
        let id = self.directed_link(a, b, kind, bandwidth, latency, sub_links)?;
        if a != b {
            self.aliases.push((b, a, id));
        }
        Ok(id)
    }

    /// Adds a full-duplex channel as two directed links (one per
    /// direction), each with the full per-direction bandwidth.
    pub fn duplex_link(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        kind: LinkKind,
        bandwidth: Bandwidth,
        latency: Secs,
        sub_links: u32,
    ) -> Result<(LinkId, LinkId), TopologyError> {
        let fwd = self.directed_link(a, b, kind, bandwidth, latency, sub_links)?;
        let bwd = self.directed_link(b, a, kind, bandwidth, latency, sub_links)?;
        Ok((fwd, bwd))
    }

    /// Finalizes into an immutable [`Topology`].
    pub fn build(self) -> Topology {
        let n = self.devices.len();
        let mut adjacency = vec![vec![None; n]; n];
        for l in &self.links {
            // Later declarations win; presets declare each pair once.
            adjacency[l.src.index()][l.dst.index()] = Some(l.id);
        }
        for (src, dst, id) in &self.aliases {
            adjacency[src.index()][dst.index()] = Some(*id);
        }
        Topology {
            name: self.name,
            devices: self.devices,
            links: self.links,
            overheads: self.overheads,
            adjacency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gb_per_s;

    fn two_gpu() -> Topology {
        let mut b = TopologyBuilder::new("two-gpu");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        let hm = b.host_memory(NumaNode(0));
        b.duplex_link(g0, g1, LinkKind::NvLinkV2, gb_per_s(50.0), 2e-6, 2)
            .unwrap();
        b.duplex_link(g0, hm, LinkKind::Pcie, gb_per_s(12.0), 5e-6, 1)
            .unwrap();
        b.duplex_link(g1, hm, LinkKind::Pcie, gb_per_s(12.0), 5e-6, 1)
            .unwrap();
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let t = two_gpu();
        assert_eq!(t.device_count(), 3);
        assert_eq!(t.link_count(), 6);
        for (i, d) in t.devices.iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
        for (i, l) in t.links.iter().enumerate() {
            assert_eq!(l.id.index(), i);
        }
    }

    #[test]
    fn link_between_directions_are_distinct() {
        let t = two_gpu();
        let fwd = t.link_between(DeviceId(0), DeviceId(1)).unwrap();
        let bwd = t.link_between(DeviceId(1), DeviceId(0)).unwrap();
        assert_ne!(fwd.id, bwd.id);
        assert_eq!(fwd.bandwidth, bwd.bandwidth);
    }

    #[test]
    fn missing_link_is_error() {
        let mut b = TopologyBuilder::new("disconnected");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        let t = b.build();
        assert_eq!(
            t.link_between(g0, g1).unwrap_err(),
            TopologyError::NoLink(g0, g1)
        );
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        let mut b = TopologyBuilder::new("bad");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        assert!(matches!(
            b.directed_link(g0, g1, LinkKind::Custom, 0.0, 0.0, 1),
            Err(TopologyError::InvalidBandwidth(_))
        ));
        assert!(matches!(
            b.directed_link(g0, g1, LinkKind::Custom, -5.0, 0.0, 1),
            Err(TopologyError::InvalidBandwidth(_))
        ));
        assert!(matches!(
            b.directed_link(g0, g1, LinkKind::Custom, f64::NAN, 0.0, 1),
            Err(TopologyError::InvalidBandwidth(_))
        ));
    }

    #[test]
    fn negative_latency_rejected() {
        let mut b = TopologyBuilder::new("bad");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(0));
        assert!(matches!(
            b.directed_link(g0, g1, LinkKind::Custom, 1.0, -1e-6, 1),
            Err(TopologyError::InvalidLatency(_))
        ));
    }

    #[test]
    fn link_to_unknown_device_rejected() {
        let mut b = TopologyBuilder::new("bad");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        assert!(matches!(
            b.directed_link(g0, DeviceId(9), LinkKind::Custom, 1.0, 0.0, 1),
            Err(TopologyError::UnknownDevice(_))
        ));
    }

    #[test]
    fn gpu_and_host_queries() {
        let t = two_gpu();
        assert_eq!(t.gpus(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(t.host_memories(), vec![DeviceId(2)]);
    }

    #[test]
    fn local_host_memory_prefers_same_numa() {
        let mut b = TopologyBuilder::new("numa");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let g1 = b.gpu(GpuModel::Generic, NumaNode(1));
        let h0 = b.host_memory(NumaNode(0));
        let h1 = b.host_memory(NumaNode(1));
        let t = b.build();
        assert_eq!(t.local_host_memory(g0).unwrap(), h0);
        assert_eq!(t.local_host_memory(g1).unwrap(), h1);
    }

    #[test]
    fn local_host_memory_falls_back_across_numa() {
        let mut b = TopologyBuilder::new("numa");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(3));
        let h0 = b.host_memory(NumaNode(0));
        let t = b.build();
        assert_eq!(t.local_host_memory(g0).unwrap(), h0);
    }

    #[test]
    fn local_host_memory_missing_is_error() {
        let mut b = TopologyBuilder::new("no-host");
        let g0 = b.gpu(GpuModel::Generic, NumaNode(0));
        let t = b.build();
        assert!(matches!(
            t.local_host_memory(g0),
            Err(TopologyError::NoHostMemory(_))
        ));
    }

    #[test]
    fn shared_link_resolves_both_directions_to_same_id() {
        let mut b = TopologyBuilder::new("shared");
        let h0 = b.host_memory(NumaNode(0));
        let h1 = b.host_memory(NumaNode(1));
        let id = b
            .shared_link(h0, h1, LinkKind::Upi, gb_per_s(20.0), 1e-6, 1)
            .unwrap();
        let t = b.build();
        assert_eq!(t.link_between(h0, h1).unwrap().id, id);
        assert_eq!(t.link_between(h1, h0).unwrap().id, id);
    }

    #[test]
    fn self_loop_link_is_allowed() {
        let mut b = TopologyBuilder::new("dram");
        let h0 = b.host_memory(NumaNode(0));
        let id = b
            .shared_link(h0, h0, LinkKind::HostDram, gb_per_s(40.0), 1e-7, 1)
            .unwrap();
        let t = b.build();
        assert_eq!(t.link_between(h0, h0).unwrap().id, id);
    }

    #[test]
    fn describe_mentions_every_device() {
        let t = two_gpu();
        let text = t.describe();
        assert!(text.contains("gpu0"));
        assert!(text.contains("gpu1"));
        assert!(text.contains("host-mem0"));
        assert!(text.contains("NVLink-V2"));
    }
}
